"""Integration tests for the European scenario (§6.2)."""

import numpy as np
import pytest

from repro.core import solve_heuristic
from repro.scenarios import EU_FIBER_STRETCH, europe_scenario


@pytest.fixture(scope="module")
def europe():
    return europe_scenario()


class TestEuropeScenario:
    def test_sites_above_population_floor(self, europe):
        assert all(s.population >= 300_000 for s in europe.sites)
        assert europe.n_sites >= 50

    def test_flat_fiber_assumption(self, europe):
        """The paper reuses the US-measured ~1.9x latency inflation."""
        geo = europe.geodesic_km
        mask = geo > 0
        ratio = europe.fiber_km[mask] / geo[mask]
        assert np.allclose(ratio, EU_FIBER_STRETCH)
        assert europe.fiber is None  # no conduit graph in this mode

    def test_substrate_built(self, europe):
        assert len(europe.registry) > 1000
        assert europe.hop_graph.n_edges > 5000

    def test_mw_links_exist_across_continent(self, europe):
        finite = np.isfinite(europe.catalog.mw_km)
        np.fill_diagonal(finite, False)
        # The overwhelming majority of pairs get a feasible MW chain.
        assert finite.mean() > 0.5

    def test_design_beats_fiber_substantially(self, europe):
        result = solve_heuristic(
            europe.design_input(), 1500.0, ilp_refinement=False
        )
        # Design must recover most of the fiber-vs-c gap, as in the US.
        assert result.objective < 1.35
        assert result.objective >= 1.0

    def test_terrain_is_european(self, europe):
        from repro.geo import GeoPoint

        alps = europe.terrain.point_elevation_m(GeoPoint(46.5, 9.5))
        po_valley = europe.terrain.point_elevation_m(GeoPoint(45.1, 10.5))
        assert alps > po_valley
