"""Unit and property tests for repro.geo.coords."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (
    EARTH_RADIUS_KM,
    GeoPoint,
    c_latency_ms,
    destination_point,
    fiber_latency_ms,
    great_circle_points,
    haversine_km,
    initial_bearing_deg,
    midpoint,
    pairwise_distance_matrix,
)

lat_st = st.floats(min_value=-85.0, max_value=85.0, allow_nan=False)
lon_st = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)


class TestGeoPoint:
    def test_valid_point(self):
        p = GeoPoint(41.88, -87.62)
        assert p.lat == 41.88
        assert p.lon == -87.62

    def test_lat_out_of_range_raises(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(-90.5, 0.0)

    def test_lon_out_of_range_raises(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)

    def test_points_are_hashable_and_ordered(self):
        a = GeoPoint(1.0, 2.0)
        b = GeoPoint(1.0, 2.0)
        assert a == b
        assert len({a, b}) == 1


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(10.0, 20.0, 10.0, 20.0) == 0.0

    def test_known_distance_chicago_nyc(self):
        # Chicago to New York is roughly 1,145 km.
        d = haversine_km(41.8781, -87.6298, 40.7128, -74.0060)
        assert 1100 < d < 1200

    def test_known_distance_equator_quarter(self):
        # A quarter of the equator.
        d = haversine_km(0.0, 0.0, 0.0, 90.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_KM / 2, rel=1e-9)

    def test_antipodal(self):
        d = haversine_km(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-9)

    def test_vectorized_matches_scalar(self):
        lats = np.array([10.0, 20.0, -30.0])
        lons = np.array([5.0, -40.0, 100.0])
        vec = haversine_km(lats, lons, 0.0, 0.0)
        for i in range(3):
            assert vec[i] == pytest.approx(haversine_km(lats[i], lons[i], 0.0, 0.0))

    @given(lat_st, lon_st, lat_st, lon_st)
    @settings(max_examples=100)
    def test_symmetry(self, lat1, lon1, lat2, lon2):
        d12 = haversine_km(lat1, lon1, lat2, lon2)
        d21 = haversine_km(lat2, lon2, lat1, lon1)
        assert d12 == pytest.approx(d21, abs=1e-9)

    @given(lat_st, lon_st, lat_st, lon_st)
    @settings(max_examples=100)
    def test_bounded_by_half_circumference(self, lat1, lon1, lat2, lon2):
        d = haversine_km(lat1, lon1, lat2, lon2)
        assert 0.0 <= d <= math.pi * EARTH_RADIUS_KM + 1e-6

    @given(lat_st, lon_st, lat_st, lon_st, lat_st, lon_st)
    @settings(max_examples=100)
    def test_triangle_inequality(self, lat1, lon1, lat2, lon2, lat3, lon3):
        d12 = haversine_km(lat1, lon1, lat2, lon2)
        d23 = haversine_km(lat2, lon2, lat3, lon3)
        d13 = haversine_km(lat1, lon1, lat3, lon3)
        assert d13 <= d12 + d23 + 1e-6


class TestPairwiseMatrix:
    def test_shape_symmetry_diagonal(self):
        lats = [41.9, 40.7, 34.0, 29.8]
        lons = [-87.6, -74.0, -118.2, -95.4]
        m = pairwise_distance_matrix(lats, lons)
        assert m.shape == (4, 4)
        assert np.allclose(m, m.T)
        assert np.all(np.diag(m) == 0.0)
        assert np.all(m[~np.eye(4, dtype=bool)] > 0)


class TestLatency:
    def test_c_latency_3000km(self):
        # 3000 km at c is almost exactly 10 ms.
        assert c_latency_ms(3000.0) == pytest.approx(10.007, abs=0.01)

    def test_fiber_latency_is_1_5x(self):
        assert fiber_latency_ms(1000.0) == pytest.approx(1.5 * c_latency_ms(1000.0))

    def test_zero(self):
        assert c_latency_ms(0.0) == 0.0


class TestBearingAndDestination:
    def test_due_north(self):
        b = initial_bearing_deg(0.0, 0.0, 10.0, 0.0)
        assert b == pytest.approx(0.0, abs=1e-9)

    def test_due_east_at_equator(self):
        b = initial_bearing_deg(0.0, 0.0, 0.0, 10.0)
        assert b == pytest.approx(90.0, abs=1e-9)

    @given(lat_st, lon_st, st.floats(0, 359.99), st.floats(1.0, 2000.0))
    @settings(max_examples=100)
    def test_destination_round_trip_distance(self, lat, lon, bearing, dist):
        dest = destination_point(lat, lon, bearing, dist)
        back = haversine_km(lat, lon, dest.lat, dest.lon)
        assert back == pytest.approx(dist, rel=1e-6, abs=1e-6)


class TestGreatCirclePoints:
    def test_endpoints_included(self):
        p1 = GeoPoint(10.0, 20.0)
        p2 = GeoPoint(30.0, 60.0)
        lats, lons = great_circle_points(p1, p2, 11)
        assert lats[0] == pytest.approx(p1.lat, abs=1e-9)
        assert lons[0] == pytest.approx(p1.lon, abs=1e-9)
        assert lats[-1] == pytest.approx(p2.lat, abs=1e-6)
        assert lons[-1] == pytest.approx(p2.lon, abs=1e-6)

    def test_even_spacing(self):
        p1 = GeoPoint(40.0, -100.0)
        p2 = GeoPoint(45.0, -80.0)
        lats, lons = great_circle_points(p1, p2, 21)
        gaps = [
            haversine_km(lats[i], lons[i], lats[i + 1], lons[i + 1]) for i in range(20)
        ]
        assert max(gaps) == pytest.approx(min(gaps), rel=1e-6)

    def test_total_length_matches_direct(self):
        p1 = GeoPoint(35.0, -120.0)
        p2 = GeoPoint(42.0, -71.0)
        lats, lons = great_circle_points(p1, p2, 100)
        total = sum(
            haversine_km(lats[i], lons[i], lats[i + 1], lons[i + 1]) for i in range(99)
        )
        assert total == pytest.approx(p1.distance_km(p2), rel=1e-6)

    def test_degenerate_same_point(self):
        p = GeoPoint(10.0, 10.0)
        lats, lons = great_circle_points(p, p, 5)
        assert np.allclose(lats, 10.0)
        assert np.allclose(lons, 10.0)

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            great_circle_points(GeoPoint(0, 0), GeoPoint(1, 1), 1)


class TestMidpoint:
    def test_midpoint_is_equidistant(self):
        p1 = GeoPoint(41.88, -87.62)
        p2 = GeoPoint(40.71, -74.00)
        m = midpoint(p1, p2)
        assert m.distance_km(p1) == pytest.approx(m.distance_km(p2), rel=1e-9)

    def test_midpoint_on_path(self):
        p1 = GeoPoint(0.0, 0.0)
        p2 = GeoPoint(0.0, 10.0)
        m = midpoint(p1, p2)
        assert m.lat == pytest.approx(0.0, abs=1e-9)
        assert m.lon == pytest.approx(5.0, abs=1e-9)
