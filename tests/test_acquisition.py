"""Tests for the probabilistic tower-acquisition model (§6.5)."""

import numpy as np
import pytest

from repro.geo import flat_terrain
from repro.datasets.sites import Site
from repro.towers import LosChecker, Tower, TowerRegistry, build_hop_graph
from repro.towers.acquisition import (
    AcquisitionModel,
    acquisition_study,
    refine_with_confirmations,
    sample_acquisitions,
)


@pytest.fixture(scope="module")
def dense_world():
    """Two sites joined by a 3-chain tower lattice."""
    site_a = Site("A", 40.0, -100.0, 1_000_000)
    site_b = Site("B", 40.0, -96.0, 1_000_000)
    towers = []
    tid = 0
    for row in range(3):
        lon = -100.0
        while lon <= -96.0:
            towers.append(Tower(tid, 40.0 + 0.12 * row, lon, 250.0, source="rental"))
            tid += 1
            lon += 0.5
    reg = TowerRegistry(towers)
    hg = build_hop_graph(reg, LosChecker(flat_terrain(0.0)))
    return site_a, site_b, reg, hg


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            AcquisitionModel(rental_acquire_prob=1.5)
        with pytest.raises(ValueError):
            AcquisitionModel(min_height_fraction=0.0)
        with pytest.raises(ValueError):
            AcquisitionModel(min_height_fraction=0.9, max_height_fraction=0.5)


class TestSampling:
    def test_confirmed_overrides(self, dense_world):
        _, _, reg, _ = dense_world
        rng = np.random.default_rng(0)
        model = AcquisitionModel(rental_acquire_prob=0.0)
        mask = sample_acquisitions(reg, model, rng, confirmed={3: True})
        assert mask[3]
        assert mask.sum() == 1

    def test_probability_extremes(self, dense_world):
        _, _, reg, _ = dense_world
        rng = np.random.default_rng(0)
        all_yes = sample_acquisitions(
            reg, AcquisitionModel(rental_acquire_prob=1.0), rng
        )
        assert all_yes.all()


class TestStudy:
    def test_high_probability_always_feasible(self, dense_world):
        a, b, reg, hg = dense_world
        study = acquisition_study(
            a, b, reg, hg,
            model=AcquisitionModel(rental_acquire_prob=0.98),
            n_draws=40,
        )
        assert study.feasible_fraction > 0.8
        assert study.stretch_percentile(50) >= 1.0

    def test_low_probability_often_infeasible(self, dense_world):
        a, b, reg, hg = dense_world
        study = acquisition_study(
            a, b, reg, hg,
            model=AcquisitionModel(rental_acquire_prob=0.15),
            n_draws=40,
        )
        assert study.feasible_fraction < 0.8

    def test_uncertainty_widens_stretch(self, dense_world):
        """Acquisition risk forces detours: sampled paths are longer
        than the unconstrained shortest path."""
        a, b, reg, hg = dense_world
        sure = acquisition_study(
            a, b, reg, hg,
            model=AcquisitionModel(rental_acquire_prob=1.0),
            n_draws=5,
        )
        risky = acquisition_study(
            a, b, reg, hg,
            model=AcquisitionModel(rental_acquire_prob=0.6),
            n_draws=60,
        )
        assert risky.stretch_percentile(90) >= sure.stretch_percentile(90) - 1e-9

    def test_deterministic(self, dense_world):
        a, b, reg, hg = dense_world
        s1 = acquisition_study(a, b, reg, hg, n_draws=20, seed=3)
        s2 = acquisition_study(a, b, reg, hg, n_draws=20, seed=3)
        assert [p.mw_km for p in s1.paths] == [p.mw_km for p in s2.paths]

    def test_validation(self, dense_world):
        a, b, reg, hg = dense_world
        with pytest.raises(ValueError):
            acquisition_study(a, b, reg, hg, n_draws=0)
        with pytest.raises(ValueError):
            acquisition_study(a, a, reg, hg)


class TestRefinement:
    def test_refinement_narrows_uncertainty(self, dense_world):
        a, b, reg, hg = dense_world
        model = AcquisitionModel(rental_acquire_prob=0.6)
        study = acquisition_study(a, b, reg, hg, model=model, n_draws=60, seed=2)
        refined, confirmed = refine_with_confirmations(
            study, a, b, reg, hg, model=model, n_draws=60
        )
        assert confirmed
        assert refined.feasible_fraction >= study.feasible_fraction - 0.05

    def test_refine_infeasible_raises(self, dense_world):
        a, b, reg, hg = dense_world
        empty = acquisition_study(
            a, b, reg, hg,
            model=AcquisitionModel(rental_acquire_prob=0.01, fcc_acquire_prob=0.01),
            n_draws=3,
        )
        if not empty.paths:
            with pytest.raises(ValueError):
                refine_with_confirmations(empty, a, b, reg, hg)
