"""Tests for the ASCII topology renderer."""

import pytest

from repro.core import Topology, augment_capacity, solve_heuristic
from repro.viz import render_topology


class TestRenderTopology:
    @pytest.fixture(scope="class")
    def designed(self, small_us_scenario):
        sc = small_us_scenario
        topo = solve_heuristic(
            sc.design_input(), 600.0, ilp_refinement=False
        ).topology
        return sc, topo

    def test_renders_string(self, designed):
        _, topo = designed
        art = render_topology(topo)
        assert isinstance(art, str)
        assert "O" in art  # major sites present
        assert "labels:" in art

    def test_links_drawn(self, designed):
        _, topo = designed
        art = render_topology(topo)
        assert "-" in art

    def test_augmentation_glyphs(self, designed):
        sc, topo = designed
        aug = augment_capacity(topo, sc.catalog, sc.registry, 500.0)
        art = render_topology(topo, augmentation=aug)
        # Heavy links exist at 500 Gbps -> multi-series glyphs appear.
        assert "=" in art or "#" in art

    def test_canvas_size(self, designed):
        _, topo = designed
        art = render_topology(topo, width=60, height=20)
        lines = art.split("\n")
        assert all(len(line) <= 60 for line in lines[:20])

    def test_too_small_canvas_raises(self, designed):
        _, topo = designed
        with pytest.raises(ValueError):
            render_topology(topo, width=5, height=2)

    def test_empty_topology_renders_sites_only(self, designed):
        sc, _ = designed
        empty = Topology(design=sc.design_input(), mw_links=frozenset())
        art = render_topology(empty)
        assert "o" in art.lower()
