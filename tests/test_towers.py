"""Tests for tower synthesis, registry culling, LOS, and hop graph."""

import numpy as np
import pytest

from repro.datasets.sites import Site
from repro.geo import GeoPoint, RadioProfile, flat_terrain, us_terrain
from repro.towers import (
    CullingPolicy,
    LosChecker,
    LosConfig,
    Tower,
    TowerRegistry,
    build_hop_graph,
    candidate_pairs,
    cull_towers,
    synthesize_towers,
)
from repro.towers.synthesis import SynthesisConfig, _gabriel_pairs

SITES = [
    Site("A", 40.0, -100.0, 1_000_000),
    Site("B", 40.0, -97.0, 500_000),
    Site("C", 42.0, -99.0, 250_000),
]


class TestTower:
    def test_bad_height_raises(self):
        with pytest.raises(ValueError):
            Tower(0, 40.0, -100.0, 0.0)

    def test_bad_source_raises(self):
        with pytest.raises(ValueError):
            Tower(0, 40.0, -100.0, 100.0, source="mystery")


class TestSynthesis:
    def test_deterministic(self):
        a = synthesize_towers(SITES, config=SynthesisConfig(seed=1))
        b = synthesize_towers(SITES, config=SynthesisConfig(seed=1))
        assert [(t.lat, t.lon, t.height_m) for t in a] == [
            (t.lat, t.lon, t.height_m) for t in b
        ]

    def test_seed_changes_field(self):
        a = synthesize_towers(SITES, config=SynthesisConfig(seed=1))
        b = synthesize_towers(SITES, config=SynthesisConfig(seed=2))
        assert [(t.lat, t.lon) for t in a] != [(t.lat, t.lon) for t in b]

    def test_contiguous_ids(self):
        towers = synthesize_towers(SITES)
        assert [t.tower_id for t in towers] == list(range(len(towers)))

    def test_urban_towers_near_each_site(self):
        towers = synthesize_towers(SITES)
        reg = TowerRegistry(towers)
        for s in SITES:
            assert reg.count_near(s.point, 40.0) >= 3

    def test_bigger_city_gets_more_towers(self):
        cfg = SynthesisConfig(seed=3, rural_density_per_100km2=0.0)
        towers = synthesize_towers(
            [Site("big", 40.0, -100.0, 8_000_000), Site("small", 40.0, -90.0, 100_000)],
            config=cfg,
        )
        reg = TowerRegistry(towers)
        big = reg.count_near(GeoPoint(40.0, -100.0), 40.0)
        small = reg.count_near(GeoPoint(40.0, -90.0), 40.0)
        assert big > small

    def test_corridor_towers_between_cities(self):
        towers = synthesize_towers(SITES, config=SynthesisConfig(seed=5))
        reg = TowerRegistry(towers)
        # Midpoint of the A-B corridor (~255 km apart) should have towers.
        assert reg.count_near(GeoPoint(40.0, -98.5), 40.0) > 0

    def test_empty_sites(self):
        assert synthesize_towers([]) == []

    def test_mountain_thinning(self):
        terrain = us_terrain()
        rockies_sites = [
            Site("W", 39.5, -110.0, 500_000),
            Site("E", 39.5, -101.0, 500_000),
        ]
        cfg = SynthesisConfig(seed=9, rural_density_per_100km2=0.3)
        towers = synthesize_towers(rockies_sites, terrain, cfg)
        reg = TowerRegistry(towers)
        rockies = reg.count_near(GeoPoint(39.5, -106.0), 80.0)
        plains = reg.count_near(GeoPoint(39.5, -102.0), 80.0)
        assert plains > rockies


class TestGabrielPairs:
    def test_two_sites_single_edge(self):
        pairs = _gabriel_pairs(SITES[:2])
        assert pairs == [(0, 1)]

    def test_blocked_edge_removed(self):
        # C exactly between A and B blocks the A-B edge.
        sites = [
            Site("A", 40.0, -100.0),
            Site("B", 40.0, -96.0),
            Site("C", 40.0, -98.0),
        ]
        pairs = _gabriel_pairs(sites)
        assert (0, 1) not in pairs
        assert (0, 2) in pairs and (1, 2) in pairs

    def test_empty(self):
        assert _gabriel_pairs([]) == []


class TestCulling:
    def test_short_fcc_towers_dropped(self):
        towers = [
            Tower(0, 40.0, -100.0, 50.0, source="fcc"),
            Tower(1, 40.0, -100.1, 150.0, source="fcc"),
            Tower(2, 40.0, -100.2, 50.0, source="rental"),
        ]
        kept = cull_towers(towers)
        assert len(kept) == 2
        assert {t.height_m for t in kept} == {150.0, 50.0}

    def test_density_cap(self):
        rng = np.random.default_rng(0)
        towers = [
            Tower(i, 40.0 + float(rng.uniform(0, 0.4)), -100.0 + float(rng.uniform(0, 0.4)), 120.0)
            for i in range(200)
        ]
        kept = cull_towers(towers, CullingPolicy(density_cap=50))
        assert len(kept) == 50

    def test_ids_reassigned(self):
        towers = [Tower(i + 7, 40.0, -100.0 + i, 120.0) for i in range(3)]
        kept = cull_towers(towers)
        assert [t.tower_id for t in kept] == [0, 1, 2]

    def test_culling_deterministic(self):
        towers = [
            Tower(i, 40.0 + (i % 10) * 0.01, -100.0 + (i // 10) * 0.01, 120.0)
            for i in range(300)
        ]
        a = cull_towers(towers, CullingPolicy(seed=5))
        b = cull_towers(towers, CullingPolicy(seed=5))
        assert [(t.lat, t.lon) for t in a] == [(t.lat, t.lon) for t in b]


class TestRegistry:
    def test_near_and_count(self):
        towers = [Tower(i, 40.0, -100.0 + i * 0.5, 100.0) for i in range(10)]
        reg = TowerRegistry(towers)
        found = reg.near(GeoPoint(40.0, -100.0), 100.0)
        assert len(found) >= 2
        assert reg.count_near(GeoPoint(0.0, 0.0), 50.0) == 0

    def test_negative_radius_raises(self):
        reg = TowerRegistry([])
        with pytest.raises(ValueError):
            reg.near(GeoPoint(0, 0), -1.0)

    def test_getitem_matches_id(self):
        towers = [Tower(i, 40.0, -100.0 + i, 100.0) for i in range(5)]
        reg = TowerRegistry(towers)
        assert reg[3].lon == -97.0


class TestLos:
    def test_flat_terrain_in_range_feasible(self):
        checker = LosChecker(flat_terrain(100.0))
        a = Tower(0, 40.0, -100.0, 250.0)
        b = Tower(1, 40.0, -99.0, 250.0)  # ~85 km
        assert checker.hop_feasible(a, b)

    def test_out_of_range_infeasible(self):
        checker = LosChecker(flat_terrain(0.0))
        a = Tower(0, 40.0, -100.0, 300.0)
        b = Tower(1, 40.0, -98.5, 300.0)  # ~128 km > 100 km
        assert not checker.hop_feasible(a, b)

    def test_short_towers_blocked_by_bulge(self):
        # At ~85 km the midpoint clearance is ~123 m; 40 m towers with
        # 12 m clutter cannot clear it over flat ground.
        checker = LosChecker(flat_terrain(0.0))
        a = Tower(0, 40.0, -100.0, 40.0)
        b = Tower(1, 40.0, -99.0, 40.0)
        assert not checker.hop_feasible(a, b)

    def test_mountain_blocks_hop(self):
        from repro.geo import MountainRidge, TerrainModel

        wall = TerrainModel(
            seed=0,
            base_m=0.0,
            relief_m=0.0,
            ridges=(
                MountainRidge("wall", ((39.0, -99.5), (41.0, -99.5)), 2500.0, 30.0),
            ),
        )
        checker = LosChecker(wall)
        a = Tower(0, 40.0, -100.0, 200.0)
        b = Tower(1, 40.0, -99.0, 200.0)
        assert not checker.hop_feasible(a, b)

    def test_usable_height_fraction_reduces_feasibility(self):
        full = LosChecker(flat_terrain(0.0), LosConfig(usable_height_fraction=1.0))
        low = LosChecker(flat_terrain(0.0), LosConfig(usable_height_fraction=0.45))
        a = Tower(0, 40.0, -100.0, 160.0)
        b = Tower(1, 40.0, -99.05, 160.0)
        assert full.hop_feasible(a, b)
        assert not low.hop_feasible(a, b)

    def test_batch_matches_singles(self):
        terrain = us_terrain()
        rng = np.random.default_rng(3)
        towers = [
            Tower(i, float(rng.uniform(38, 42)), float(rng.uniform(-104, -95)), 150.0)
            for i in range(20)
        ]
        checker = LosChecker(terrain)
        pairs = [(towers[i], towers[j]) for i in range(10) for j in range(10, 20)]
        batch = checker.batch_feasible([p[0] for p in pairs], [p[1] for p in pairs])
        singles = [checker.hop_feasible(a, b) for a, b in pairs]
        # The batch shares a sample count sized for its longest hop;
        # individual checks may sample slightly differently, so allow a
        # tiny disagreement rate.
        agreement = np.mean(np.array(singles) == batch)
        assert agreement > 0.95

    def test_misaligned_lists_raise(self):
        checker = LosChecker(flat_terrain())
        with pytest.raises(ValueError):
            checker.batch_feasible([Tower(0, 0, 0, 10.0)], [])

    def test_empty_batch(self):
        checker = LosChecker(flat_terrain())
        assert checker.batch_feasible([], []).shape == (0,)

    def test_antenna_altitude(self):
        checker = LosChecker(flat_terrain(500.0), LosConfig(usable_height_fraction=0.5))
        t = Tower(0, 40.0, -100.0, 200.0)
        assert checker.antenna_altitude_m(t) == pytest.approx(600.0)


class TestHopGraph:
    def test_candidate_pairs_within_range(self):
        towers = [Tower(i, 40.0, -100.0 + i * 0.4, 150.0) for i in range(6)]
        reg = TowerRegistry(towers)
        a, b = candidate_pairs(reg, max_range_km=100.0)
        for i, j in zip(a, b):
            assert i < j
            assert (
                towers[int(i)].point.distance_km(towers[int(j)].point) <= 100.0
            )

    def test_candidate_pairs_complete_on_cluster(self):
        # 5 towers all within range of each other -> all 10 pairs found.
        towers = [Tower(i, 40.0 + 0.05 * i, -100.0, 150.0) for i in range(5)]
        reg = TowerRegistry(towers)
        a, _ = candidate_pairs(reg, max_range_km=100.0)
        assert len(a) == 10

    def test_build_hop_graph_flat(self):
        towers = [Tower(i, 40.0, -100.0 + i * 0.6, 250.0) for i in range(5)]
        reg = TowerRegistry(towers)
        hg = build_hop_graph(reg, LosChecker(flat_terrain(0.0)))
        assert hg.n_towers == 5
        assert hg.n_edges >= 4  # at least the consecutive chain
        assert np.all(hg.lengths_km <= 100.0)

    def test_empty_registry(self):
        hg = build_hop_graph(TowerRegistry([]), LosChecker(flat_terrain()))
        assert hg.n_edges == 0

    def test_degree_histogram(self):
        towers = [Tower(i, 40.0, -100.0 + i * 0.6, 250.0) for i in range(3)]
        reg = TowerRegistry(towers)
        hg = build_hop_graph(reg, LosChecker(flat_terrain(0.0)))
        hist = hg.degree_histogram()
        assert sum(hist.values()) == 3
