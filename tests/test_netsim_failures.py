"""Tests for runtime link failures and the failure-reroute experiment."""

import pytest

from repro.core import route_link_demands, solve_heuristic
from repro.netsim import (
    EdgeSpec,
    FlowMonitor,
    Network,
    Packet,
    Simulator,
    UdpFlow,
    run_failure_reroute_experiment,
)


class TestLinkUpDown:
    def test_down_link_drops_everything(self):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 1e6, 0.001)])
        link = net.link("A", "B")
        link.set_down()
        assert not link.is_up
        net.nodes["A"].inject(Packet(1, "A", "B", 500, ("A", "B"), 0.0))
        sim.run()
        assert net.nodes["B"].delivered == 0
        assert link.dropped_packets == 1

    def test_down_drains_queue(self):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 1e5, 0.0)])
        link = net.link("A", "B")
        for seq in range(5):
            net.nodes["A"].inject(Packet(1, "A", "B", 500, ("A", "B"), 0.0, seq=seq))
        assert link.queue_length > 0
        link.set_down()
        assert link.queue_length == 0
        assert link.dropped_packets == 4  # one was already in service

    def test_restore_resumes_delivery(self):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 1e6, 0.001)])
        mon = FlowMonitor(sim)
        link = net.link("A", "B")
        mon.watch_link(link)
        flow = UdpFlow(sim, net, mon, 1, ("A", "B"), rate_bps=2e5, seed=1)
        flow.start()
        sim.schedule_at(0.5, link.set_down)
        sim.schedule_at(1.0, link.set_up)
        sim.run(until=2.0)
        stats = mon.flows[1]
        assert stats.dropped > 0
        assert stats.received > 0
        # ~25% of the run was dark.
        assert stats.loss_rate == pytest.approx(0.25, abs=0.1)

    def test_drop_callback_fires_on_down_link(self):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 1e6, 0.0)])
        link = net.link("A", "B")
        dropped = []
        link.on_drop(dropped.append)
        link.set_down()
        net.nodes["A"].inject(Packet(1, "A", "B", 500, ("A", "B"), 0.0))
        assert len(dropped) == 1


class TestFailureReroute:
    @pytest.fixture(scope="class")
    def designed(self, small_us_scenario):
        sc = small_us_scenario
        topo = solve_heuristic(sc.design_input(), 800.0, ilp_refinement=False).topology
        demands = route_link_demands(topo, 50.0)
        busiest = max(demands, key=demands.get)
        return topo, busiest

    # The session-scoped fixture must be visible here.
    @pytest.fixture(scope="class")
    def small_us_scenario(self):
        from repro.scenarios import us_scenario

        return us_scenario(n_sites=20)

    def test_outage_then_recovery(self, designed):
        topo, busiest = designed
        r = run_failure_reroute_experiment(topo, 50.0, busiest, seed=3)
        assert r.loss_before < 0.01
        assert r.loss_during_outage > 0.05
        # Centralized reroute restores most of the traffic (§6.1).
        assert r.loss_after_reroute < r.loss_during_outage / 2
        assert r.flows_rerouted > 0

    def test_unbuilt_link_rejected(self, designed):
        topo, _ = designed
        with pytest.raises(ValueError):
            run_failure_reroute_experiment(topo, 50.0, (0, 1) if (0, 1) not in topo.mw_links else (0, 2))

    def test_bad_timing_rejected(self, designed):
        topo, busiest = designed
        with pytest.raises(ValueError):
            run_failure_reroute_experiment(
                topo, 50.0, busiest, fail_at_s=1.0, reroute_delay_s=1.0, duration_s=1.5
            )
