"""Tests for DesignInput / Topology and stretch evaluation."""

import numpy as np
import pytest

from repro.core import DesignInput, Topology, fiber_only_topology
from repro.core.topology import mean_stretch_from_distances

from conftest import make_toy_design


class TestDesignInput:
    def test_shape_validation(self, toy_design_8):
        with pytest.raises(ValueError):
            DesignInput(
                sites=toy_design_8.sites,
                traffic=toy_design_8.traffic[:4, :4],
                geodesic_km=toy_design_8.geodesic_km,
                mw_km=toy_design_8.mw_km,
                cost_towers=toy_design_8.cost_towers,
                fiber_km=toy_design_8.fiber_km,
            )

    def test_candidate_links_all_pairs(self, toy_design_8):
        cands = toy_design_8.candidate_links()
        assert len(cands) == 8 * 7 // 2
        assert all(a < b for a, b in cands)

    def test_pair_weights_upper_triangular(self, toy_design_8):
        w = toy_design_8.pair_weights()
        assert np.all(np.tril(w) == 0.0)
        assert np.all(w >= 0.0)


class TestTopology:
    def test_fiber_only_stretch_matches_fiber(self, toy_design_8):
        topo = fiber_only_topology(toy_design_8)
        d = topo.effective_distance_matrix()
        assert np.allclose(d, toy_design_8.fiber_km)

    def test_invalid_link_raises(self, toy_design_8):
        with pytest.raises(ValueError):
            Topology(design=toy_design_8, mw_links=frozenset({(3, 1)}))

    def test_adding_links_never_increases_stretch(self, toy_design_8):
        base = fiber_only_topology(toy_design_8).mean_stretch()
        topo = Topology(design=toy_design_8, mw_links=frozenset({(0, 1)}))
        assert topo.mean_stretch() <= base

    def test_stretch_at_least_one(self, toy_design_10):
        topo = Topology(
            design=toy_design_10, mw_links=frozenset({(0, 1), (2, 3), (0, 4)})
        )
        s = topo.stretch_matrix()
        vals = s[np.isfinite(s)]
        assert np.all(vals >= 1.0 - 1e-9)

    def test_distances_metric(self, toy_design_8):
        topo = Topology(design=toy_design_8, mw_links=frozenset({(0, 1), (1, 2)}))
        d = topo.effective_distance_matrix()
        n = d.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-9

    def test_total_cost(self, toy_design_8):
        links = frozenset({(0, 1), (2, 5)})
        topo = Topology(design=toy_design_8, mw_links=links)
        expected = sum(toy_design_8.cost_towers[a, b] for a, b in links)
        assert topo.total_cost_towers == pytest.approx(expected)

    def test_multi_link_paths_used(self):
        # A chain of two MW links must beat direct fiber for the far pair.
        design = make_toy_design(6, seed=99)
        topo = Topology(design=design, mw_links=frozenset({(0, 1), (1, 2)}))
        d = topo.effective_distance_matrix()
        via = design.mw_km[0, 1] + design.mw_km[1, 2]
        assert d[0, 2] <= min(via, design.fiber_km[0, 2]) + 1e-9

    def test_routed_paths_cover_demands(self, toy_design_8):
        topo = Topology(design=toy_design_8, mw_links=frozenset({(0, 1)}))
        routes = topo.routed_paths()
        n = toy_design_8.n_sites
        expected_pairs = {
            (s, t)
            for s in range(n)
            for t in range(s + 1, n)
            if toy_design_8.traffic[s, t] > 0
        }
        assert set(routes) == expected_pairs
        for (s, t), path in routes.items():
            assert path[0] == s
            assert path[-1] == t


class TestMeanStretch:
    def test_identity_distances_give_stretch_one(self, toy_design_8):
        s = mean_stretch_from_distances(toy_design_8, toy_design_8.geodesic_km)
        assert s == pytest.approx(1.0)

    def test_weighted_average(self, toy_design_8):
        # Doubling all distances doubles the mean stretch.
        s1 = mean_stretch_from_distances(toy_design_8, toy_design_8.fiber_km)
        s2 = mean_stretch_from_distances(toy_design_8, toy_design_8.fiber_km * 2.0)
        assert s2 == pytest.approx(2.0 * s1)
