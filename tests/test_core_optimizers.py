"""Tests for the exact ILP, the cISP heuristic, and LP rounding.

The central reproduction claims (paper §3.2, Fig 2):
* the heuristic's stretch matches the exact ILP's to two decimals;
* the pruning oracle preserves optimality;
* LP rounding is no better than the ILP (and typically worse);
* greedy prefixes give the whole budget curve.
"""

import numpy as np
import pytest

from repro.core import (
    Topology,
    fiber_only_topology,
    greedy_sequence,
    prune_useless_links,
    solve_heuristic,
    solve_ilp,
    solve_lp_rounding,
)
from repro.core.ilp import useful_arcs_for_commodity

from conftest import make_toy_design


class TestPruning:
    def test_useless_links_are_dominated(self, toy_design_8):
        useful = set(prune_useless_links(toy_design_8))
        for a, b in toy_design_8.candidate_links():
            dominated = (
                toy_design_8.mw_km[a, b] >= toy_design_8.fiber_km[a, b] - 1e-9
            )
            assert ((a, b) not in useful) == dominated

    def test_commodity_arcs_always_include_direct_fiber(self, toy_design_8):
        links = prune_useless_links(toy_design_8)
        _, fiber_arcs = useful_arcs_for_commodity(toy_design_8, 0, 5, links)
        assert (0, 5) in fiber_arcs

    def test_pruning_preserves_ilp_optimum(self):
        design = make_toy_design(7, seed=3)
        budget = 140.0
        with_pruning = solve_ilp(design, budget, use_pruning=True)
        without = solve_ilp(design, budget, use_pruning=False, time_limit_s=300)
        assert with_pruning.objective == pytest.approx(without.objective, abs=1e-6)

    def test_pruning_shrinks_problem(self):
        design = make_toy_design(7, seed=3)
        pruned = solve_ilp(design, 100.0, use_pruning=True)
        full = solve_ilp(design, 100.0, use_pruning=False, time_limit_s=300)
        assert pruned.n_variables < full.n_variables


class TestIlp:
    def test_budget_respected(self):
        design = make_toy_design(8, seed=5)
        budget = 120.0
        res = solve_ilp(design, budget)
        assert res.topology.total_cost_towers <= budget + 1e-9

    def test_zero_budget_gives_fiber_only(self, toy_design_8):
        res = solve_ilp(toy_design_8, 0.0)
        assert res.topology.mw_links == frozenset()
        fiber = fiber_only_topology(toy_design_8).mean_stretch()
        assert res.objective == pytest.approx(fiber)

    def test_negative_budget_raises(self, toy_design_8):
        with pytest.raises(ValueError):
            solve_ilp(toy_design_8, -1.0)

    def test_objective_matches_topology_stretch(self):
        design = make_toy_design(8, seed=5)
        res = solve_ilp(design, 150.0)
        assert res.objective == pytest.approx(res.topology.mean_stretch(), abs=1e-6)

    def test_monotone_in_budget(self):
        design = make_toy_design(8, seed=6)
        objectives = [solve_ilp(design, b).objective for b in (0.0, 100.0, 200.0)]
        assert objectives[0] >= objectives[1] >= objectives[2]

    def test_huge_budget_builds_everything_useful(self):
        design = make_toy_design(6, seed=7)
        res = solve_ilp(design, 10_000.0)
        # With an unconstrained budget, stretch approaches the best
        # possible: every pair uses the better of MW direct and hybrid.
        best = Topology(
            design=design, mw_links=frozenset(prune_useless_links(design))
        ).mean_stretch()
        assert res.objective == pytest.approx(best, abs=1e-6)


class TestHeuristicVsIlp:
    """Fig 2(b): the heuristic matches the ILP to two decimal places."""

    @pytest.mark.parametrize("n,seed", [(6, 1), (7, 2), (8, 3), (9, 4), (10, 5)])
    def test_matches_exact_ilp(self, n, seed):
        design = make_toy_design(n, seed=seed)
        budget = 25.0 * n
        exact = solve_ilp(design, budget, time_limit_s=300)
        heur = solve_heuristic(design, budget)
        assert heur.objective == pytest.approx(exact.objective, abs=5e-3)

    def test_heuristic_budget_respected(self):
        design = make_toy_design(10, seed=11)
        budget = 200.0
        heur = solve_heuristic(design, budget)
        assert heur.topology.total_cost_towers <= budget + 1e-9

    def test_greedy_only_mode(self):
        design = make_toy_design(10, seed=12)
        res = solve_heuristic(design, 200.0, ilp_refinement=False)
        assert not res.used_ilp_refinement
        assert res.topology.total_cost_towers <= 200.0

    def test_bad_inflation_raises(self, toy_design_8):
        with pytest.raises(ValueError):
            solve_heuristic(toy_design_8, 100.0, inflation=0.5)


class TestGreedy:
    def test_sequence_monotone_stretch(self, toy_design_10):
        steps = greedy_sequence(toy_design_10, 400.0)
        stretches = [s.mean_stretch for s in steps]
        assert stretches == sorted(stretches, reverse=True)

    def test_cumulative_cost_increasing_and_bounded(self, toy_design_10):
        budget = 300.0
        steps = greedy_sequence(toy_design_10, budget)
        costs = [s.cumulative_cost for s in steps]
        assert costs == sorted(costs)
        assert costs[-1] <= budget

    def test_prefix_property(self, toy_design_10):
        """A greedy run at a large budget contains the small-budget run
        as a prefix (what makes one run produce the whole Fig 4a curve)."""
        small = greedy_sequence(toy_design_10, 150.0)
        large = greedy_sequence(toy_design_10, 400.0)
        small_links = [s.link for s in small]
        large_links = [s.link for s in large]
        # Skipping (affordability) can reorder the tail; the prefix
        # before the first skip must agree.
        k = 0
        while k < len(small_links) and small_links[k] == large_links[k]:
            k += 1
        assert k >= max(1, len(small_links) - 2)

    def test_gain_per_cost_variant(self, toy_design_10):
        steps = greedy_sequence(toy_design_10, 300.0, selection="gain_per_cost")
        assert steps
        assert steps[-1].cumulative_cost <= 300.0

    def test_invalid_selection_raises(self, toy_design_8):
        with pytest.raises(ValueError):
            greedy_sequence(toy_design_8, 100.0, selection="magic")

    def test_first_pick_is_best_single_link(self, toy_design_8):
        steps = greedy_sequence(toy_design_8, 10_000.0)
        # Recompute by brute force: the first greedy pick must achieve
        # the largest single-link stretch reduction.
        base = fiber_only_topology(toy_design_8).mean_stretch()
        gains = {}
        for a, b in prune_useless_links(toy_design_8):
            topo = Topology(design=toy_design_8, mw_links=frozenset({(a, b)}))
            gains[(a, b)] = base - topo.mean_stretch()
        best = max(gains, key=gains.get)
        assert steps[0].link == best
        assert gains[steps[0].link] == pytest.approx(max(gains.values()))


class TestLpRounding:
    def test_respects_budget(self):
        design = make_toy_design(8, seed=21)
        res = solve_lp_rounding(design, 150.0)
        assert res.topology.total_cost_towers <= 150.0 + 1e-9

    def test_lp_bound_below_ilp(self):
        design = make_toy_design(8, seed=22)
        budget = 150.0
        lp = solve_lp_rounding(design, budget)
        ilp = solve_ilp(design, budget)
        # Fractional LP is a lower bound; the rounded solution is no
        # better than the exact ILP.
        assert lp.lp_objective <= ilp.objective + 1e-6
        assert lp.objective >= ilp.objective - 1e-6

    def test_invalid_threshold(self, toy_design_8):
        with pytest.raises(ValueError):
            solve_lp_rounding(toy_design_8, 100.0, threshold=0.0)
