"""Deeper tests of the web load-engine internals."""

import numpy as np
import pytest

from repro.apps.web import (
    INIT_CWND,
    MAX_CONNECTIONS_PER_ORIGIN,
    MSS_BYTES,
    WebObject,
    WebPage,
    _slow_start_rounds,
    load_page,
)


def make_page(objects, rtts=(100.0,), compute=0.0):
    return WebPage(
        objects=tuple(objects), origin_rtts_ms=tuple(rtts),
        onload_compute_ms=compute,
    )


def obj(i, parent=None, size=1000, origin=0, parse=0.0, think=0.0, req=500):
    return WebObject(
        obj_id=i, origin=origin, size_bytes=size, request_bytes=req,
        parent=parent, parse_delay_ms=parse, server_think_ms=think,
    )


class TestSlowStartRounds:
    def test_fits_initial_window(self):
        assert _slow_start_rounds(INIT_CWND * MSS_BYTES) == 0
        assert _slow_start_rounds(1) == 0

    def test_one_extra_round(self):
        # 11 segments need one doubling beyond the initial 10.
        assert _slow_start_rounds(11 * MSS_BYTES) == 1

    def test_large_object_logarithmic(self):
        # 10 + 20 + 40 + 80 = 150 segments in 3 extra rounds.
        assert _slow_start_rounds(150 * MSS_BYTES) == 3
        assert _slow_start_rounds(151 * MSS_BYTES) == 4

    def test_monotone(self):
        rounds = [_slow_start_rounds(s) for s in range(1, 10**6, 50_000)]
        assert rounds == sorted(rounds)


class TestLoadEngineScheduling:
    def test_single_object_timing(self):
        # handshake RTT + think + 1 RTT response.
        page = make_page([obj(0, size=1000, think=30.0)])
        result = load_page(page)
        assert result.plt_ms == pytest.approx(100.0 + 30.0 + 100.0)

    def test_dependency_serialization(self):
        # Child cannot start before parent finishes + parse delay.
        page = make_page([
            obj(0, size=1000, think=10.0),
            obj(1, parent=0, size=1000, parse=50.0, think=10.0),
        ])
        result = load_page(page)
        parent_done = 100.0 + 10.0 + 100.0
        child_done = parent_done + 50.0 + 100.0 + 10.0 + 100.0
        assert result.plt_ms == pytest.approx(child_done)

    def test_connection_limit_queues_requests(self):
        # 7 parallel children on one origin: the 7th waits for a
        # connection (limit 6).
        children = [obj(i, parent=0, size=1000) for i in range(1, 8)]
        page = make_page([obj(0, size=1000)] + children)
        result = load_page(page)
        olts = result.object_load_times_ms
        # The slowest child's OLT exceeds the fastest's: it queued.
        child_olts = olts[1:]
        assert max(child_olts) > min(child_olts) + 1.0
        assert MAX_CONNECTIONS_PER_ORIGIN == 6

    def test_multiple_origins_parallelize(self):
        serial = make_page(
            [obj(0)] + [obj(i, parent=0, origin=0) for i in range(1, 13)],
            rtts=(100.0,),
        )
        parallel = make_page(
            [obj(0)] + [obj(i, parent=0, origin=i % 2) for i in range(1, 13)],
            rtts=(100.0, 100.0),
        )
        assert load_page(parallel).plt_ms <= load_page(serial).plt_ms

    def test_onload_compute_added_once(self):
        bare = make_page([obj(0)])
        heavy = make_page([obj(0)], compute=500.0)
        assert load_page(heavy).plt_ms == pytest.approx(
            load_page(bare).plt_ms + 500.0
        )

    def test_scaling_only_c2s_halves_round_benefit(self):
        # With symmetric halves, c2s-only scaling recovers exactly half
        # of the per-round saving.
        page = make_page([obj(0, size=1000)])
        base = load_page(page).plt_ms
        full = load_page(page, c2s_scale=1 / 3, s2c_scale=1 / 3).plt_ms
        sel = load_page(page, c2s_scale=1 / 3, s2c_scale=1.0).plt_ms
        assert (base - sel) == pytest.approx((base - full) / 2, rel=1e-6)
