"""Tests for the fault-tolerant sweep service (``repro.exp`` PR-7).

Covers the acceptance contract: the durable work-queue journal survives
kills at any instruction (torn tails, running-state normalization),
crash resume produces a byte-identical records table while re-executing
only missing points, deterministically failing points retry their
budget then quarantine without aborting the sweep, the watchdog
recovers dead and stalled pool workers by respawning the pool, corrupt
store entries are quarantined as cache misses, and the CLI checkpoints
on SIGINT and emits the exact ``--resume`` command.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exp import (
    ArtifactStore,
    DesignSpec,
    EconSpec,
    ExperimentSpec,
    Fault,
    FaultInjected,
    FaultPlan,
    KILL_EXIT_CODE,
    NetsimSpec,
    NullStore,
    RetryPolicy,
    ScenarioSpec,
    SweepPointError,
    SweepRunner,
    SweepService,
    WorkQueue,
    corrupt_artifact,
    run_experiment,
    stage_key,
    sweep_fingerprint,
)
from repro.exp.runner import _axis_list

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def tiny_spec(**overrides) -> ExperimentSpec:
    """A 6-site US experiment cheap enough for per-test cold builds."""
    kwargs = dict(
        scenario=ScenarioSpec(name="us", sites=6, seed=42),
        design=DesignSpec(
            budget_towers=150.0,
            solver="heuristic",
            aggregate_gbps=20.0,
            solver_opts={"ilp_refinement": False},
        ),
        netsim=NetsimSpec(loads=(0.3, 0.9), engine="fluid", seed=0),
        econ=EconSpec(),
    )
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


AXES = {
    "design.budget_towers": [100.0, 150.0],
    "netsim.loads": [(0.3,), (0.9,)],
}

#: RetryPolicy used throughout: fast backoff so retries don't slow tests.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.01)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The uninterrupted SweepRunner result every service run must match."""
    store = ArtifactStore(tmp_path_factory.mktemp("baseline-store"))
    result = SweepRunner(tiny_spec(), axes=AXES, store=store, jobs=1).run()
    return result


# --------------------------------------------------------------------------
# WorkQueue journal.
# --------------------------------------------------------------------------


class TestWorkQueue:
    def test_lifecycle_and_counts(self, tmp_path):
        q = WorkQueue(tmp_path / "j", "fp", 3)
        assert q.pending_indices() == [0, 1, 2]
        q.mark_running(0, owner="w1")
        q.mark_done(0, result={"records": [], "stage_status": {}})
        q.mark_running(1)
        q.mark_requeued(1, error="transient")
        q.mark_running(2)
        q.mark_failed(2, "boom")
        assert q.counts() == {"pending": 1, "running": 0, "done": 1,
                              "failed": 1}
        assert q.record(1).attempts == 1
        assert q.record(2).error == "boom"

    def test_replay_reconstructs_state(self, tmp_path):
        q = WorkQueue(tmp_path / "j", "fp", 3)
        q.mark_running(0, owner="w1")
        q.mark_done(0, result={"records": [{"x": 1}], "stage_status": {}})
        q.mark_running(1)
        q.mark_requeued(1, error="transient")
        q.close()
        q2 = WorkQueue(tmp_path / "j", "fp", 3, resume=True)
        assert q2.done_indices() == [0]
        assert q2.record(0).status == "done"
        assert q2.record(1).status == "pending"
        assert q2.record(1).attempts == 1
        assert q2.load_result(0) == {"records": [{"x": 1}], "stage_status": {}}

    def test_running_tasks_normalize_to_pending_on_resume(self, tmp_path):
        q = WorkQueue(tmp_path / "j", "fp", 2)
        q.mark_running(0, owner="died")
        q.close()  # process "crashed" mid-point
        q2 = WorkQueue(tmp_path / "j", "fp", 2, resume=True)
        rec = q2.record(0)
        assert rec.status == "pending"
        assert rec.attempts == 1  # the interrupted attempt stays counted
        assert rec.interrupted

    def test_torn_journal_tail_is_skipped(self, tmp_path):
        q = WorkQueue(tmp_path / "j", "fp", 2)
        q.mark_running(0)
        q.mark_done(0, result={"records": [], "stage_status": {}})
        q.close()
        with open(q.journal_path, "a") as fh:
            fh.write('{"e": "start", "i": 1, "t":')  # torn mid-write
        q2 = WorkQueue(tmp_path / "j", "fp", 2, resume=True)
        assert q2.record(0).status == "done"
        assert q2.record(1).status == "pending"

    def test_done_without_result_payload_demotes_to_pending(self, tmp_path):
        q = WorkQueue(tmp_path / "j", "fp", 2)
        q.mark_running(0)
        q.close()
        # Model a defective done event that carries no result payload
        # (e.g. written by a buggy or older producer).
        with open(q.journal_path, "a") as fh:
            fh.write('{"e": "done", "i": 0, "t": 0.0, "o": null}\n')
        q2 = WorkQueue(tmp_path / "j", "fp", 2, resume=True)
        assert q2.record(0).status == "pending"

    def test_torn_done_line_demotes_only_that_point(self, tmp_path):
        q = WorkQueue(tmp_path / "j", "fp", 2)
        q.mark_running(0)
        q.mark_done(0, result={"records": [{"x": 1}], "stage_status": {}})
        q.mark_running(1)
        q.mark_done(1, result={"records": [{"x": 2}], "stage_status": {}})
        q.close()
        # Tear the final done line (killed mid-append): point 1 loses
        # its completion and must re-run; point 0 is untouched.
        raw = q.journal_path.read_text().splitlines()
        torn = raw[-1][: len(raw[-1]) // 2]
        q.journal_path.write_text("\n".join(raw[:-1]) + "\n" + torn)
        q2 = WorkQueue(tmp_path / "j", "fp", 2, resume=True)
        assert q2.record(0).status == "done"
        assert q2.load_result(0) == {"records": [{"x": 1}], "stage_status": {}}
        assert q2.record(1).status == "pending"

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        WorkQueue(tmp_path / "j", "fp-a", 2).close()
        with pytest.raises(ValueError, match="different sweep"):
            WorkQueue(tmp_path / "j", "fp-b", 2, resume=True)
        with pytest.raises(ValueError, match="refusing to resume"):
            WorkQueue(tmp_path / "j", "fp-a", 3, resume=True)

    def test_fresh_open_discards_old_journal(self, tmp_path):
        q = WorkQueue(tmp_path / "j", "fp", 2)
        q.mark_running(0)
        q.mark_done(0, result={"records": [], "stage_status": {}})
        q.close()
        q2 = WorkQueue(tmp_path / "j", "fp", 2, resume=False)
        assert q2.pending_indices() == [0, 1]
        assert q2.load_result(0) is None

    def test_resume_with_no_journal_starts_fresh(self, tmp_path):
        q = WorkQueue(tmp_path / "j", "fp", 2, resume=True)
        assert q.pending_indices() == [0, 1]


# --------------------------------------------------------------------------
# Fault plans.
# --------------------------------------------------------------------------


class TestFaultPlan:
    def test_round_trip_and_selection(self):
        plan = FaultPlan(faults=(
            Fault(point=1, action="fail"),
            Fault(point=1, action="delay", attempt=2, seconds=0.5),
        ))
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan
        assert [f.action for f in again.for_point(1, 1)] == ["fail"]
        assert [f.action for f in again.for_point(1, 2)] == ["delay"]
        assert again.for_point(0, 1) == []

    def test_fail_fault_raises(self):
        plan = FaultPlan(faults=(Fault(point=0, action="fail"),))
        with pytest.raises(FaultInjected):
            plan.fire_before(0, 1)
        plan.fire_before(0, 2)  # attempt 2 is clean

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            Fault(point=0, action="explode")
        with pytest.raises(ValueError, match="1-based"):
            Fault(point=0, action="kill", attempt=0)
        with pytest.raises(ValueError, match="unknown fault field"):
            Fault.from_dict({"point": 0, "action": "kill", "when": "now"})

    def test_seeded_kills_deterministic(self):
        a = FaultPlan.seeded_kills(100, seed=7, rate=0.1)
        b = FaultPlan.seeded_kills(100, seed=7, rate=0.1)
        assert a == b
        assert len(a.faults) == 10
        assert all(f.action == "kill" for f in a.faults)
        assert FaultPlan.seeded_kills(100, seed=8, rate=0.1) != a


# --------------------------------------------------------------------------
# Store corruption quarantine (satellite b).
# --------------------------------------------------------------------------


class TestStoreQuarantine:
    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path, caplog):
        store = ArtifactStore(tmp_path / "store")
        spec = tiny_spec()
        run_experiment(spec, store=store)
        key = stage_key(spec, "substrate")
        corrupt_artifact(store, key, mode="garbage")
        fresh = ArtifactStore(tmp_path / "store")  # no memory layer
        with caplog.at_level(logging.WARNING, logger="repro.exp.store"):
            found, _ = fresh.get(key)
        assert not found
        assert "quarantin" in caplog.text
        quarantined = store.path_for(key).with_name(
            store.path_for(key).name + ".corrupt"
        )
        assert quarantined.exists()
        assert not store.path_for(key).exists()
        # The recompute republishes into the now-empty slot.
        rerun = run_experiment(spec, store=fresh)
        assert rerun.stage_status["substrate"] == "computed"
        assert fresh.get(key)[0]

    def test_truncated_entry_is_also_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        spec = tiny_spec()
        run_experiment(spec, store=store)
        key = stage_key(spec, "design")
        corrupt_artifact(store, key, mode="truncate")
        assert not ArtifactStore(tmp_path / "store").get(key)[0]


# --------------------------------------------------------------------------
# SweepRunner failure naming (satellite a).
# --------------------------------------------------------------------------

class TestSweepPointError:
    def test_inline_failure_names_point_and_keeps_rows(self, tmp_path):
        axes = {"design.aggregate_gbps": [20.0, -5.0]}
        runner = SweepRunner(
            tiny_spec(), axes=axes,
            store=ArtifactStore(tmp_path / "s"), jobs=1,
        )
        with pytest.raises(SweepPointError) as excinfo:
            runner.run()
        err = excinfo.value
        assert err.index == 1
        assert err.assignment == {"design.aggregate_gbps": -5.0}
        assert err.completed == [0]
        assert err.partial_records
        assert all(row["point"] == 0 for row in err.partial_records)
        assert "sweep point 1" in str(err)
        assert "design.aggregate_gbps" in str(err)

    def test_pool_failure_names_point(self, tmp_path):
        axes = {"design.aggregate_gbps": [20.0, -5.0]}
        runner = SweepRunner(
            tiny_spec(), axes=axes,
            store=ArtifactStore(tmp_path / "s"), jobs=2,
        )
        with pytest.raises(SweepPointError) as excinfo:
            runner.run()
        assert excinfo.value.index == 1
        assert excinfo.value.assignment == {"design.aggregate_gbps": -5.0}


# --------------------------------------------------------------------------
# SweepService.
# --------------------------------------------------------------------------


class TestSweepService:
    def test_matches_sweep_runner_byte_for_byte(self, tmp_path, baseline):
        service = SweepService(
            tiny_spec(), axes=AXES,
            store=ArtifactStore(tmp_path / "s"), jobs=1, retry=FAST_RETRY,
        )
        result = service.run()
        assert result.records_json() == baseline.records_json()
        assert result.executed_points == 4
        assert not result.interrupted
        assert not result.failures
        # A clean sweep writes no quarantine report.
        assert not service.queue.failure_report_path.exists()

    def test_nullstore_requires_journal_dir(self):
        with pytest.raises(ValueError, match="journal_dir"):
            SweepService(tiny_spec(), axes=AXES, store=NullStore())

    def test_transient_fault_retries_to_success(self, tmp_path, baseline):
        plan = FaultPlan(faults=(Fault(point=1, action="fail", attempt=1),))
        service = SweepService(
            tiny_spec(), axes=AXES, store=ArtifactStore(tmp_path / "s"),
            jobs=1, retry=FAST_RETRY, fault_plan=plan,
        )
        result = service.run()
        assert result.records_json() == baseline.records_json()
        assert service.queue.record(1).attempts == 2
        assert not result.failures

    def test_deterministic_failure_quarantines_without_aborting(
        self, tmp_path, baseline
    ):
        plan = FaultPlan(faults=tuple(
            Fault(point=2, action="fail", attempt=a) for a in (1, 2, 3)
        ))
        service = SweepService(
            tiny_spec(), axes=AXES, store=ArtifactStore(tmp_path / "s"),
            jobs=1, retry=FAST_RETRY, fault_plan=plan,
        )
        result = service.run()
        # Every other point completed; the table is the baseline minus
        # point 2's rows.
        expected = [r for r in baseline.records if r["point"] != 2]
        assert result.records == expected
        assert [f.index for f in result.failures] == [2]
        assert result.failures[0].attempts == 3
        assert "FaultInjected" in result.failures[0].error
        report = json.loads(service.queue.failure_report_path.read_text())
        assert report["counts"]["failed"] == 1
        assert report["failures"][0]["index"] == 2
        assert not result.interrupted

    def test_stop_then_resume_is_byte_identical(self, tmp_path, baseline):
        store = ArtifactStore(tmp_path / "s")
        service = SweepService(
            tiny_spec(), axes=AXES, store=store, jobs=1, retry=FAST_RETRY,
        )
        seen = []

        def stop_after_two(index, rows):
            seen.append(index)
            if len(seen) == 2:
                service.request_stop()

        first = service.run(on_point=stop_after_two)
        assert first.interrupted
        assert len(service.queue.done_indices()) == 2
        resumed = SweepService(
            tiny_spec(), axes=AXES, store=store, jobs=1, retry=FAST_RETRY,
            resume=True,
        )
        result = resumed.run()
        assert result.records_json() == baseline.records_json()
        assert not result.interrupted
        assert result.resumed_points == 2
        assert result.executed_points == 2
        # Shared expensive stages came from the first session's store:
        # nothing completed re-executes.
        assert result.session_executed("substrate") == 0
        assert result.session_executed("design") <= 1

    def test_resume_of_complete_sweep_executes_nothing(
        self, tmp_path, baseline
    ):
        store = ArtifactStore(tmp_path / "s")
        SweepService(
            tiny_spec(), axes=AXES, store=store, jobs=1, retry=FAST_RETRY
        ).run()
        again = SweepService(
            tiny_spec(), axes=AXES, store=store, jobs=1, retry=FAST_RETRY,
            resume=True,
        ).run()
        assert again.records_json() == baseline.records_json()
        assert again.executed_points == 0
        assert again.resumed_points == 4

    def test_fingerprint_distinguishes_sweeps(self):
        spec = tiny_spec()
        a = sweep_fingerprint(spec, _axis_list(AXES))
        b = sweep_fingerprint(
            spec, _axis_list({"design.budget_towers": [100.0, 200.0]})
        )
        assert a != b
        assert a == sweep_fingerprint(spec, _axis_list(AXES))

    def test_retry_policy_backoff_deterministic(self):
        policy = RetryPolicy(max_attempts=4, backoff_base_s=0.5, seed=3)
        assert policy.delay_s(1, 0) == 0.0
        d2, d3 = policy.delay_s(2, 5), policy.delay_s(3, 5)
        assert 0.5 <= d2 <= 0.5 * 1.25
        assert 1.0 <= d3 <= 1.0 * 1.25
        assert policy.delay_s(2, 5) == d2  # same seed, same jitter
        assert RetryPolicy(max_attempts=4, backoff_base_s=0.5,
                           seed=4).delay_s(2, 5) != d2


class TestSweepServicePool:
    """Pool-mode chaos: dead workers and the watchdog."""

    def test_killed_worker_respawns_pool_and_completes(
        self, tmp_path, baseline
    ):
        plan = FaultPlan(faults=(Fault(point=2, action="kill", attempt=1),))
        service = SweepService(
            tiny_spec(), axes=AXES, store=ArtifactStore(tmp_path / "s"),
            jobs=2, retry=FAST_RETRY, fault_plan=plan,
            poll_interval_s=0.05,
        )
        result = service.run()
        assert result.records_json() == baseline.records_json()
        assert result.pool_restarts >= 1
        assert not result.failures

    def test_watchdog_kills_stalled_point(self, tmp_path, baseline):
        plan = FaultPlan(faults=(
            Fault(point=1, action="delay", attempt=1, seconds=60.0),
        ))
        service = SweepService(
            tiny_spec(), axes=AXES, store=ArtifactStore(tmp_path / "s"),
            jobs=2, retry=FAST_RETRY, fault_plan=plan,
            point_timeout_s=2.0, poll_interval_s=0.1,
        )
        start = time.monotonic()
        result = service.run()
        assert time.monotonic() - start < 40.0  # far less than the 60s stall
        assert result.records_json() == baseline.records_json()
        assert result.pool_restarts >= 1
        assert not result.failures


# --------------------------------------------------------------------------
# CLI: crash resume, SIGINT checkpoint, quarantine exit codes.
# --------------------------------------------------------------------------


SPEC_DOC = {
    "spec": {
        "scenario": {"name": "us", "sites": 6, "seed": 42},
        "design": {
            "budget_towers": 150.0,
            "solver": "heuristic",
            "aggregate_gbps": 20.0,
            "solver_opts": {"ilp_refinement": False},
        },
        "netsim": {"loads": [0.3, 0.9], "engine": "fluid", "seed": 0},
        "econ": {},
    },
    "axes": {
        "design.budget_towers": [100.0, 150.0],
        "netsim.loads": [[0.3], [0.9]],
    },
}


def _cli_env():
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_cli(args, cwd, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=_cli_env(), cwd=cwd,
        timeout=timeout,
    )


@pytest.fixture()
def cli_sweep_dir(tmp_path):
    (tmp_path / "spec.json").write_text(json.dumps(SPEC_DOC))
    return tmp_path


class TestCliFaultTolerance:
    def test_parent_crash_then_resume_byte_identical(self, cli_sweep_dir):
        # The uninterrupted reference run (separate store).
        clean = _run_cli(
            ["run", "spec.json", "--json", "--cache-dir", "ref-store"],
            cli_sweep_dir,
        )
        assert clean.returncode == 0, clean.stderr
        # A kill fault in inline mode os._exit()s the parent process —
        # the SIGKILL-the-driver crash of the acceptance contract.
        (cli_sweep_dir / "plan.json").write_text(json.dumps(
            {"faults": [{"point": 2, "action": "kill", "attempt": 1}]}
        ))
        crashed = _run_cli(
            ["run", "spec.json", "--json", "--cache-dir", "store",
             "--fault-plan", "plan.json"],
            cli_sweep_dir,
        )
        assert crashed.returncode == KILL_EXIT_CODE
        resumed = _run_cli(
            ["run", "spec.json", "--json", "--cache-dir", "store",
             "--resume"],
            cli_sweep_dir,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == clean.stdout  # byte-identical records

    def test_sigint_checkpoints_and_prints_resume_command(
        self, cli_sweep_dir
    ):
        (cli_sweep_dir / "plan.json").write_text(json.dumps(
            {"faults": [
                {"point": 1, "action": "delay", "attempt": 1, "seconds": 15.0}
            ]}
        ))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "run", "spec.json", "--json",
             "--cache-dir", "store", "--fault-plan", "plan.json"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=_cli_env(), cwd=cli_sweep_dir,
        )
        # Give the run time to finish point 0 and enter point 1's delay.
        time.sleep(10)
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=180)
        assert proc.returncode == 130, err
        assert "point(s) done" in err
        assert "resume with: python -m repro run spec.json" in err
        assert "--resume" in err
        # And the printed command actually completes the sweep.
        clean = _run_cli(
            ["run", "spec.json", "--json", "--cache-dir", "ref-store"],
            cli_sweep_dir,
        )
        resumed = _run_cli(
            ["run", "spec.json", "--json", "--cache-dir", "store",
             "--fault-plan", "plan.json", "--resume"],
            cli_sweep_dir,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == clean.stdout

    def test_quarantined_sweep_exits_one_with_report(self, cli_sweep_dir):
        (cli_sweep_dir / "plan.json").write_text(json.dumps(
            {"faults": [
                {"point": 0, "action": "fail", "attempt": a}
                for a in (1, 2)
            ]}
        ))
        out = _run_cli(
            ["run", "spec.json", "--json", "--cache-dir", "store",
             "--fault-plan", "plan.json", "--retries", "2"],
            cli_sweep_dir,
        )
        assert out.returncode == 1
        assert "quarantined" in out.stderr
        assert "point 0" in out.stderr
        rows = json.loads(out.stdout)
        assert rows and all(row["point"] != 0 for row in rows)

    def test_resume_without_journal_location_is_rejected(self, cli_sweep_dir):
        out = _run_cli(
            ["run", "spec.json", "--no-cache", "--resume"], cli_sweep_dir
        )
        assert out.returncode != 0
        assert "--journal-dir" in out.stderr
