"""Tests for the synthetic fiber conduit network."""

import numpy as np
import pytest

from repro.datasets import us_population_centers
from repro.datasets.sites import Site
from repro.fiber import (
    FiberEdge,
    FiberNetwork,
    build_conduit_network,
    fiber_stretch_matrix,
)
from repro.geo import FIBER_SLOWDOWN

SITES = [
    Site("A", 40.0, -100.0, 1_000_000),
    Site("B", 40.0, -95.0, 500_000),
    Site("C", 43.0, -97.0, 250_000),
    Site("D", 37.0, -97.0, 250_000),
]


class TestBuild:
    def test_connected(self):
        net = build_conduit_network(SITES)
        d = net.route_distance_matrix()
        assert np.all(np.isfinite(d))

    def test_edges_longer_than_geodesic(self):
        net = build_conduit_network(SITES)
        for e in net.edges:
            geo = SITES[e.site_a].distance_km(SITES[e.site_b])
            assert e.route_km > geo

    def test_deterministic(self):
        a = build_conduit_network(SITES, seed=3)
        b = build_conduit_network(SITES, seed=3)
        assert a.edges == b.edges

    def test_single_site(self):
        net = build_conduit_network(SITES[:1])
        assert net.edges == ()

    def test_two_sites(self):
        net = build_conduit_network(SITES[:2])
        assert len(net.edges) == 1


class TestMatrices:
    def test_latency_equivalent_is_1_5x_route(self):
        net = build_conduit_network(SITES)
        route = net.route_distance_matrix()
        lat = net.latency_equivalent_matrix()
        assert np.allclose(lat, route * FIBER_SLOWDOWN)

    def test_symmetric_zero_diagonal(self):
        net = build_conduit_network(SITES)
        o = net.latency_equivalent_matrix()
        assert np.allclose(o, o.T)
        assert np.all(np.diag(o) == 0.0)

    def test_triangle_inequality(self):
        # Shortest-path closure must be a metric.
        net = build_conduit_network(SITES)
        o = net.latency_equivalent_matrix()
        n = o.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert o[i, j] <= o[i, k] + o[k, j] + 1e-9


class TestCalibration:
    def test_us_mean_stretch_near_paper(self):
        """The paper measures ~1.93x mean fiber latency stretch (§1)."""
        sites = us_population_centers()
        net = build_conduit_network(sites)
        s = fiber_stretch_matrix(net, sites)
        vals = s[np.isfinite(s)]
        assert 1.8 < vals.mean() < 2.1

    def test_every_pair_slower_than_c(self):
        sites = us_population_centers()[:30]
        net = build_conduit_network(sites)
        s = fiber_stretch_matrix(net, sites)
        vals = s[np.isfinite(s)]
        assert np.all(vals >= FIBER_SLOWDOWN - 1e-9)


class TestAdjacency:
    def test_matches_edges(self):
        net = FiberNetwork(
            n_sites=3,
            edges=(FiberEdge(0, 1, 100.0), FiberEdge(1, 2, 200.0)),
        )
        adj = net.adjacency().toarray()
        assert adj[0, 1] == 100.0
        assert adj[1, 0] == 100.0
        assert adj[0, 2] == 0.0
        d = net.route_distance_matrix()
        assert d[0, 2] == pytest.approx(300.0)
