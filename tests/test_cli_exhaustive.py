"""Tests for the CLI and the exhaustive verification oracle."""

import pytest

from repro.cli import build_parser, main
from repro.core import solve_ilp
from repro.core.exhaustive import solve_exhaustive

from conftest import make_toy_design


class TestExhaustive:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_ilp_matches_ground_truth(self, seed):
        """The flow ILP reproduces the enumeration optimum exactly."""
        design = make_toy_design(6, seed=seed)
        budget = 120.0
        truth = solve_exhaustive(design, budget)
        ilp = solve_ilp(design, budget)
        assert ilp.objective == pytest.approx(truth.mean_stretch(), abs=1e-9)

    def test_budget_zero(self, toy_design_8):
        topo = solve_exhaustive(toy_design_8, 0.0, candidate_links=[(0, 1)])
        assert topo.mw_links == frozenset()

    def test_too_many_candidates_raises(self, toy_design_10):
        with pytest.raises(ValueError):
            solve_exhaustive(toy_design_10, 100.0, max_candidates=3)

    def test_negative_budget_raises(self, toy_design_8):
        with pytest.raises(ValueError):
            solve_exhaustive(toy_design_8, -1.0, candidate_links=[(0, 1)])


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["design", "--sites", "10", "--budget", "300"])
        assert args.sites == 10

    def test_econ_command(self, capsys):
        assert main(["econ", "--cost-per-gb", "0.81"]) == 0
        out = capsys.readouterr().out
        assert "web-search" in out
        assert "True" in out

    def test_design_command(self, capsys):
        assert main(["design", "--sites", "10", "--budget", "300",
                     "--gbps", "20"]) == 0
        out = capsys.readouterr().out
        assert "mean stretch" in out

    def test_design_with_map(self, capsys):
        assert main(["design", "--sites", "10", "--budget", "300",
                     "--gbps", "20", "--map"]) == 0
        out = capsys.readouterr().out
        assert "labels:" in out

    def test_sweep_command(self, capsys):
        assert main(["sweep", "--sites", "10", "--max-budget", "400",
                     "--points", "4"]) == 0
        out = capsys.readouterr().out
        assert "budget_towers" in out

    def test_weather_command(self, capsys):
        assert main(["weather", "--sites", "10", "--budget", "300",
                     "--intervals", "10"]) == 0
        out = capsys.readouterr().out
        assert "fiber" in out

    def test_unknown_scenario_exits(self):
        with pytest.raises(SystemExit):
            main(["design", "--scenario", "mars"])

    def test_solvers_command_lists_all_backends(self, capsys):
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        for name in ("heuristic", "ilp", "lp_rounding", "exhaustive", "evolution"):
            assert name in out

    @pytest.mark.parametrize(
        "solver,sites",
        [
            ("heuristic", 10),
            ("ilp", 8),
            ("lp_rounding", 8),
            ("exhaustive", 5),
            ("evolution", 10),
        ],
    )
    def test_design_with_every_solver_backend(self, capsys, solver, sites):
        """All five registry backends are reachable from the CLI."""
        assert main(["design", "--sites", str(sites), "--budget", "300",
                     "--gbps", "20", "--solver", solver]) == 0
        out = capsys.readouterr().out
        assert f"solver:          {solver}" in out
        assert "mean stretch" in out

    def test_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            main(["design", "--solver", "annealing"])
