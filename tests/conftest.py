"""Shared fixtures: small deterministic design problems and substrates."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.sparse.csgraph import shortest_path

from repro.core.topology import DesignInput
from repro.datasets.sites import Site


def make_toy_design(n: int, seed: int = 0) -> DesignInput:
    """A small, random-but-deterministic design problem.

    MW links are cheap and straight (1.02-1.2x geodesic), fiber is slow
    (metric closure of 1.7-2.3x geodesic), traffic is population-product
    — structurally the same problem the paper solves.
    """
    rng = np.random.default_rng(seed)
    lats = rng.uniform(30.0, 45.0, n)
    lons = rng.uniform(-120.0, -75.0, n)
    pops = rng.integers(100_000, 5_000_000, n)
    sites = tuple(
        Site(name=f"s{i}", lat=float(lats[i]), lon=float(lons[i]), population=int(pops[i]))
        for i in range(n)
    )
    from repro.geo import pairwise_distance_matrix

    geo = pairwise_distance_matrix(lats, lons)
    mw = geo * rng.uniform(1.02, 1.2, (n, n))
    mw = (mw + mw.T) / 2.0
    np.fill_diagonal(mw, np.inf)
    cost = np.ceil(mw / 35.0)
    np.fill_diagonal(cost, np.inf)
    fiber = geo * rng.uniform(1.7, 2.3, (n, n))
    fiber = (fiber + fiber.T) / 2.0
    np.fill_diagonal(fiber, 0.0)
    # repro: allow[dense-fw-ban] -- fixture builds the fiber metric closure without importing the kernel under test
    fiber = shortest_path(fiber, method="FW", directed=False)
    h = np.outer(pops, pops).astype(float)
    np.fill_diagonal(h, 0.0)
    h /= np.triu(h, 1).sum()
    return DesignInput(
        sites=sites,
        traffic=h,
        geodesic_km=geo,
        mw_km=mw,
        cost_towers=cost,
        fiber_km=fiber,
    )


@pytest.fixture(autouse=True)
def _isolated_artifact_store(monkeypatch, tmp_path_factory):
    """Point the experiment artifact store at a per-session temp dir.

    Tests must never read or write the user-level cache: stale artifacts
    could mask regressions, and test runs should not pollute it.  One
    shared session directory still lets CLI tests reuse substrates.
    """
    root = tmp_path_factory.getbasetemp() / "artifact-store"
    monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(root))


@pytest.fixture
def toy_design_8():
    return make_toy_design(8, seed=8)


@pytest.fixture
def toy_design_10():
    return make_toy_design(10, seed=10)


@pytest.fixture(scope="session")
def small_us_scenario():
    """A cached 20-city US scenario for integration tests."""
    from repro.scenarios import us_scenario

    return us_scenario(n_sites=20)
