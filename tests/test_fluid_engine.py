"""PR-6 fluid-engine suite: allocation-bug regressions, vectorized
commodity-aggregate solver parity/properties, the Mathis TCP macro-
model, and the million-user demand layer."""

import numpy as np
import pytest

from repro.datasets.sites import Site
from repro.exp.spec import (
    DEMAND_MODELS,
    ENGINES,
    TRANSPORTS,
    ExperimentSpec,
    NetsimSpec,
)
from repro.exp.stages import STAGES, _netsim_payload
from repro.netsim import (
    EdgeSpec,
    FluidFlow,
    aggregate_capacities,
    mathis_rate_bps,
    max_min_rates,
    max_min_rates_vectorized,
    solve_fluid,
    solve_fluid_tcp,
)
from repro.netsim.fluid import _assert_capacity_invariant
from repro.netsim.tcpmodel import DEFAULT_LOSS_FLOOR
from repro.traffic import (
    PEAK_LOCAL_HOUR,
    active_users,
    diurnal_factor,
    heavy_tail_multipliers,
    user_demand_gbps,
    user_demand_matrix,
)


def random_workload(rng, n_nodes=12, n_links=40, n_flows=60):
    """A random strongly-usable directed workload for property tests."""
    nodes = [f"n{i}" for i in range(n_nodes)]
    capacities = {}
    # A ring guarantees every node pair is connected.
    for i in range(n_nodes):
        u, v = nodes[i], nodes[(i + 1) % n_nodes]
        capacities[(u, v)] = float(rng.uniform(1.0, 20.0))
        capacities[(v, u)] = float(rng.uniform(1.0, 20.0))
    while len(capacities) < n_links:
        u, v = rng.choice(nodes, size=2, replace=False)
        capacities.setdefault((str(u), str(v)), float(rng.uniform(1.0, 20.0)))

    adjacency = {}
    for u, v in capacities:
        adjacency.setdefault(u, []).append(v)
    flows = []
    for fid in range(n_flows):
        # Random edge-simple walk of 1-4 hops.
        path = [str(rng.choice(nodes))]
        used = set()
        for _ in range(int(rng.integers(1, 5))):
            choices = [
                w for w in adjacency.get(path[-1], [])
                if (path[-1], w) not in used
            ]
            if not choices:
                break
            nxt = str(rng.choice(choices))
            used.add((path[-1], nxt))
            path.append(nxt)
        if len(path) < 2:
            continue
        flows.append(FluidFlow(fid, tuple(path), float(rng.uniform(0.1, 15.0))))
    return capacities, flows


def link_loads(capacities, flows, rates):
    loads = {link: 0.0 for link in capacities}
    for flow in flows:
        for edge in zip(flow.path[:-1], flow.path[1:]):
            loads[edge] += rates[flow.flow_id]
    return loads


class TestMaxMinProperties:
    """Property tests over random workloads, both solvers."""

    @pytest.mark.parametrize("solver", [max_min_rates, max_min_rates_vectorized])
    @pytest.mark.parametrize("seed", range(8))
    def test_capacity_never_exceeded(self, solver, seed):
        rng = np.random.default_rng(seed)
        capacities, flows = random_workload(rng)
        rates = solver(capacities, flows)
        loads = link_loads(capacities, flows, rates)
        for link, load in loads.items():
            assert load <= capacities[link] * (1 + 1e-9) + 1e-9

    @pytest.mark.parametrize("solver", [max_min_rates, max_min_rates_vectorized])
    @pytest.mark.parametrize("seed", range(8))
    def test_max_min_certificate(self, solver, seed):
        """Every flow below its demand has a saturated bottleneck link on
        which no other flow gets more — so no flow can be raised without
        lowering an equal-or-smaller one (Bertsekas & Gallager §6.5.2)."""
        rng = np.random.default_rng(100 + seed)
        capacities, flows = random_workload(rng)
        rates = solver(capacities, flows)
        loads = link_loads(capacities, flows, rates)
        on_link = {}
        for flow in flows:
            for edge in zip(flow.path[:-1], flow.path[1:]):
                on_link.setdefault(edge, []).append(flow.flow_id)
        eps = 1e-6
        for flow in flows:
            rate = rates[flow.flow_id]
            assert rate <= flow.offered_bps + eps
            if rate >= flow.offered_bps - eps:
                continue  # demand-limited, not constrained by the network
            bottleneck = False
            for edge in zip(flow.path[:-1], flow.path[1:]):
                saturated = loads[edge] >= capacities[edge] * (1 - 1e-6) - eps
                largest = all(
                    rate >= rates[other] - eps for other in on_link[edge]
                )
                if saturated and largest:
                    bottleneck = True
                    break
            assert bottleneck, f"flow {flow.flow_id} has no max-min bottleneck"

    @pytest.mark.parametrize("seed", range(8))
    def test_scalar_vectorized_parity(self, seed):
        rng = np.random.default_rng(200 + seed)
        capacities, flows = random_workload(rng)
        scalar = max_min_rates(capacities, flows)
        vector = max_min_rates_vectorized(capacities, flows)
        assert set(scalar) == set(vector)
        for fid, rate in scalar.items():
            assert vector[fid] == pytest.approx(rate, rel=1e-6, abs=1e-9)

    def test_commodity_collapse_keeps_per_flow_demands(self):
        """Flows sharing one path but with different demands must freeze
        individually, exactly as the scalar per-flow solver does."""
        capacities = {("A", "B"): 10.0}
        flows = [
            FluidFlow(1, ("A", "B"), 1.0),
            FluidFlow(2, ("A", "B"), 3.0),
            FluidFlow(3, ("A", "B"), 100.0),
        ]
        scalar = max_min_rates(capacities, flows)
        vector = max_min_rates_vectorized(capacities, flows)
        assert scalar == pytest.approx({1: 1.0, 2: 3.0, 3: 6.0})
        for fid in scalar:
            assert vector[fid] == pytest.approx(scalar[fid], rel=1e-9)

    def test_empty_workload(self):
        assert max_min_rates_vectorized({("A", "B"): 1.0}, []) == {}

    def test_vectorized_unknown_link_raises(self):
        with pytest.raises(KeyError):
            max_min_rates_vectorized(
                {("A", "B"): 1.0}, [FluidFlow(1, ("A", "X"), 1.0)]
            )


class TestAllocationBugRegressions:
    def test_duplicate_edge_specs_aggregate(self):
        """Two specs on one directed link add bandwidth (packet-path
        parallel-link semantics) instead of the last one winning."""
        specs = [
            EdgeSpec("A", "B", 1e6, 0.002),
            EdgeSpec("A", "B", 3e6, 0.001),
        ]
        capacities, delays = aggregate_capacities(specs)
        assert capacities[("A", "B")] == pytest.approx(4e6)
        assert capacities[("B", "A")] == pytest.approx(4e6)
        assert delays[("A", "B")] == pytest.approx(0.001)
        result = solve_fluid(specs, [FluidFlow(1, ("A", "B"), 10e6)])
        # The regression: with overwrite semantics this is 3e6.
        assert result.rates_bps[1] == pytest.approx(4e6)

    def test_repeated_edge_path_rejected(self):
        with pytest.raises(ValueError, match="edge-simple"):
            FluidFlow(1, ("A", "B", "A", "B"), 1.0)

    def test_node_revisit_without_edge_repeat_allowed(self):
        # A -> B -> A is two *different* directed links; only repeating
        # the same directed link is ill-defined.
        flow = FluidFlow(1, ("A", "B", "A"), 1.0)
        rates = max_min_rates(
            {("A", "B"): 4.0, ("B", "A"): 2.0}, [flow]
        )
        assert rates[1] == pytest.approx(1.0)

    def test_epsilon_asymmetric_bottleneck_regression(self):
        """A demand step epsilon-above the link share must not over-fill
        the link (the historical one-pass detection drove the residual
        negative and leaned on the freeze-everything valve)."""
        capacities = {("A", "B"): 10.0}
        demand = 5.0 + 0.5e-9  # within _EPS_BPS of the 5.0 fair share
        flows = [
            FluidFlow(1, ("A", "B"), demand),
            FluidFlow(2, ("A", "B"), demand),
        ]
        for solver in (max_min_rates, max_min_rates_vectorized):
            rates = solver(capacities, flows)
            total = rates[1] + rates[2]
            assert total <= 10.0 * (1 + 1e-9) + 1e-9
            assert rates[1] == pytest.approx(5.0, abs=1e-8)
            assert rates[2] == pytest.approx(5.0, abs=1e-8)

    def test_utilization_is_true_ratio_not_clamped(self):
        specs = [EdgeSpec("A", "B", 1e6, 0.001)]
        under = solve_fluid(specs, [FluidFlow(1, ("A", "B"), 4e5)])
        assert under.max_link_utilization == pytest.approx(0.4)
        over = solve_fluid(specs, [FluidFlow(1, ("A", "B"), 9e6)])
        assert over.max_link_utilization == pytest.approx(1.0)
        assert over.loss_rate == pytest.approx(1 - 1e6 / 9e6)

    def test_capacity_invariant_assertion_fires(self):
        with pytest.raises(AssertionError, match="over-allocated"):
            _assert_capacity_invariant(
                np.array([2.0]), np.array([1.0])
            )


class TestTcpMacroModel:
    def test_mathis_monotone_in_loss_and_rtt(self):
        base = mathis_rate_bps(0.05, 1e-3)
        assert mathis_rate_bps(0.05, 4e-3) == pytest.approx(base / 2)
        assert mathis_rate_bps(0.10, 1e-3) == pytest.approx(base / 2)

    def test_mathis_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            mathis_rate_bps(0.0, 1e-3)
        with pytest.raises(ValueError):
            mathis_rate_bps(0.05, 0.0)

    def test_underloaded_unbounded_flow_runs_at_ambient_mathis_rate(self):
        # Huge capacity, huge app demand: the only cap is the Mathis
        # rate at the ambient loss floor.
        specs = [EdgeSpec("A", "B", 1e12, 0.01)]
        result = solve_fluid_tcp(specs, [FluidFlow(1, ("A", "B"), 1e11)])
        rtt = 2 * result.latencies_s[1]
        expected = mathis_rate_bps(rtt, DEFAULT_LOSS_FLOOR)
        assert result.rates_bps[1] == pytest.approx(expected, rel=1e-6)

    def test_application_limited_flow_keeps_its_demand(self):
        specs = [EdgeSpec("A", "B", 1e9, 0.01)]
        result = solve_fluid_tcp(specs, [FluidFlow(1, ("A", "B"), 2e6)])
        assert result.rates_bps[1] == pytest.approx(2e6, rel=1e-9)

    def test_congested_flows_fill_bottleneck_and_converge(self):
        specs = [EdgeSpec("A", "B", 10e6, 0.02)]
        flows = [FluidFlow(i, ("A", "B"), 1e9) for i in range(4)]
        result = solve_fluid_tcp(specs, flows)
        assert result.max_link_utilization == pytest.approx(1.0, abs=1e-6)
        # Fair split of the bottleneck across identical flows.
        for fid in range(4):
            assert result.rates_bps[fid] == pytest.approx(2.5e6, rel=1e-3)
        # The converged offers sit near the carried rates (loss has
        # relaxed to its fixed point), far below the application demand.
        assert result.loss_rate < 0.5


SITES = [
    Site("east", 40.0, -75.0, 8_000_000),
    Site("central", 41.0, -90.0, 2_500_000),
    Site("west", 37.0, -122.0, 4_000_000),
]


class TestUserDemandLayer:
    def test_diurnal_peak_and_trough(self):
        # Local 20:00 at longitude 0 is 20:00 UTC.
        assert diurnal_factor(0.0, PEAK_LOCAL_HOUR) == pytest.approx(1.0)
        assert diurnal_factor(0.0, PEAK_LOCAL_HOUR - 12.0) == pytest.approx(0.25)
        assert diurnal_factor(0.0, 3.0, trough_fraction=0.4) >= 0.4

    def test_diurnal_follows_longitude(self):
        # 20:00 UTC is evening on the US east coast, afternoon on the
        # west coast: east must be more active.
        east = diurnal_factor(-75.0, 1.0)  # ~20:00 local
        west = diurnal_factor(-122.0, 1.0)  # ~16:52 local
        assert east > west

    def test_heavy_tail_multipliers_mean_one_and_deterministic(self):
        a = heavy_tail_multipliers(500, seed=3)
        b = heavy_tail_multipliers(500, seed=3)
        c = heavy_tail_multipliers(500, seed=4)
        assert a == pytest.approx(b)
        assert not np.allclose(a, c)
        assert a.mean() == pytest.approx(1.0)
        assert a.min() > 0

    def test_users_millions_rescales_total(self):
        users = active_users(SITES, users_millions=3.5)
        assert users.sum() == pytest.approx(3.5e6)

    def test_zero_population_rejected(self):
        dead = [Site("a", 0.0, 0.0, 0), Site("b", 1.0, 1.0, 0)]
        with pytest.raises(ValueError):
            active_users(dead)

    def test_demand_matrix_normalized_symmetric(self):
        matrix, aggregate = user_demand_matrix(SITES, users_millions=2.0)
        assert matrix.shape == (3, 3)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)
        assert np.triu(matrix, k=1).sum() == pytest.approx(1.0)
        # 2M users x 600 kbps mean x mean-1 tail = 1.2 Tbps aggregate.
        per_site = user_demand_gbps(SITES, users_millions=2.0)
        assert aggregate == pytest.approx(per_site.sum())
        assert aggregate == pytest.approx(1200.0, rel=0.5)


class TestSpecAndStage:
    def test_netsim_spec_new_fields_round_trip(self):
        spec = ExperimentSpec(
            netsim=NetsimSpec(
                loads=(0.5,),
                engine="fluid",
                transport="tcp",
                demand_model="users",
                demand_hour_utc=3.5,
                demand_seed=9,
                users_millions=12.0,
            )
        )
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_tcp_requires_fluid_engine(self):
        with pytest.raises(ValueError, match="fluid"):
            NetsimSpec(engine="packet", transport="tcp")

    def test_unknown_demand_model_rejected(self):
        with pytest.raises(ValueError, match="demand model"):
            NetsimSpec(demand_model="gravity")
        with pytest.raises(ValueError):
            NetsimSpec(demand_hour_utc=24.0)
        with pytest.raises(ValueError):
            NetsimSpec(users_millions=-1.0)

    def test_constant_tuples(self):
        assert "fluid" in ENGINES
        assert DEMAND_MODELS == ("design", "users")
        assert TRANSPORTS == ("udp", "tcp")

    def test_netsim_stage_payload_and_version(self):
        spec = ExperimentSpec(
            netsim=NetsimSpec(engine="fluid", demand_model="users",
                              users_millions=2.0, transport="tcp")
        )
        payload = _netsim_payload(spec)
        assert payload["demand_model"] == "users"
        assert payload["transport"] == "tcp"
        assert payload["users_millions"] == 2.0
        assert payload["demand_hour_utc"] == 20.0
        assert payload["demand_seed"] == 0
        assert payload["workload"] == "object"
        assert payload["profile"] is False
        # Cache keys must move with the new payload fields.
        assert STAGES["netsim"].version == "3"
