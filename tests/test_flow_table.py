"""PR-9 array-native flow tables: struct-of-arrays validation, the
table fast path's bit-identity with the ``FluidFlow``-object reference
(both solvers, UDP and TCP), and the hoisted load-curve invariants."""

import dataclasses

import numpy as np
import pytest

from repro.exp.spec import WORKLOADS, NetsimSpec
from repro.netsim import (
    CommodityTable,
    EdgeSpec,
    FlowTable,
    FluidFlow,
    PathPool,
    flows_from_table,
    max_min_rates_table,
    max_min_rates_vectorized,
    run_load_curve,
    run_udp_experiment,
    solve_fluid,
    solve_fluid_tcp,
)
from repro.netsim.experiments import kept_flow_shares, kept_flow_table
from repro.netsim.fluid import _CommodityProblem
from repro.traffic import demand_pairs, user_demand_matrix, user_demand_pairs


def ring_capacities(n_nodes, rng):
    nodes = [f"n{i}" for i in range(n_nodes)]
    capacities = {}
    for i in range(n_nodes):
        u, v = nodes[i], nodes[(i + 1) % n_nodes]
        capacities[(u, v)] = float(rng.uniform(1.0, 20.0))
        capacities[(v, u)] = float(rng.uniform(1.0, 20.0))
    return nodes, capacities


def random_table_workload(seed, n_nodes=10, n_paths=18, n_flows=70):
    """A random ring workload as (capacities, FlowTable, FluidFlow list).

    The object list is derived from the table via ``flows_from_table``,
    so the two forms describe the same workload by construction and
    every comparison isolates the *solver path*, not the generator.
    """
    rng = np.random.default_rng(seed)
    nodes, capacities = ring_capacities(n_nodes, rng)
    paths = []
    for _ in range(n_paths):
        start = int(rng.integers(0, n_nodes))
        hops = int(rng.integers(1, min(4, n_nodes - 1) + 1))
        paths.append(tuple(nodes[(start + j) % n_nodes] for j in range(hops + 1)))
    pool = PathPool.from_paths(paths, node_names=tuple(nodes))
    table = FlowTable(
        pool=pool,
        path_id=rng.integers(0, n_paths, size=n_flows),
        demand_bps=rng.uniform(0.05, 12.0, size=n_flows),
        flow_ids=np.arange(n_flows),
    )
    return capacities, table, flows_from_table(table)


def specs_from_capacities(capacities, delay_s=1e-3):
    # One spec per undirected pair; aggregate_capacities re-derives the
    # directed map.  Use symmetric capacities to keep them equivalent.
    specs = []
    seen = set()
    for (u, v), cap in capacities.items():
        if (v, u) in seen:
            continue
        seen.add((u, v))
        specs.append(
            EdgeSpec(a=u, b=v, rate_bps=cap, delay_s=delay_s, queue_capacity=10)
        )
    return specs


def symmetric_ring(seed, n_nodes=10):
    rng = np.random.default_rng(seed)
    nodes = [f"n{i}" for i in range(n_nodes)]
    capacities = {}
    for i in range(n_nodes):
        u, v = nodes[i], nodes[(i + 1) % n_nodes]
        cap = float(rng.uniform(1.0, 20.0))
        capacities[(u, v)] = cap
        capacities[(v, u)] = cap
    return nodes, capacities


class TestPathPool:
    def test_from_paths_round_trip(self):
        paths = [("a", "b", "c"), ("c", "a"), ("b", "c")]
        pool = PathPool.from_paths(paths)
        assert pool.n_paths == 3
        assert pool.lengths().tolist() == [3, 2, 2]
        assert [pool.path_names(i) for i in range(3)] == paths

    def test_from_paths_unknown_node_rejected(self):
        with pytest.raises(ValueError, match="not in node_names"):
            PathPool.from_paths([("a", "x")], node_names=("a", "b"))

    def test_bad_indptr_rejected(self):
        with pytest.raises(ValueError):
            PathPool(node_names=("a",), nodes=np.array([0]), indptr=np.array([1, 1]))
        with pytest.raises(ValueError):
            PathPool(node_names=("a",), nodes=np.array([0]), indptr=np.array([0, 2]))

    def test_node_id_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="name table"):
            PathPool(node_names=("a",), nodes=np.array([1]), indptr=np.array([0, 1]))

    def test_gather_edges_traversal_order(self):
        pool = PathPool.from_paths([("a", "b", "c"), ("b", "a")])
        edge_u, edge_v, indptr = pool.gather_edges(np.array([1, 0]))
        assert indptr.tolist() == [0, 1, 3]
        names = pool.node_names
        got = [(names[u], names[v]) for u, v in zip(edge_u, edge_v)]
        assert got == [("b", "a"), ("a", "b"), ("b", "c")]

    def test_edge_simple_mask(self):
        pool = PathPool.from_paths(
            [("a", "b", "a", "b"), ("a", "b", "a"), ("a", "b")]
        )
        mask = pool.edge_simple_mask(np.arange(3))
        assert mask.tolist() == [False, True, True]

    def test_within_mask(self):
        pool = PathPool.from_paths([("a", "b"), ("b", "c"), ("a", "c")])
        ok = np.array([name != "c" for name in pool.node_names])
        assert pool.within_mask(ok).tolist() == [True, False, False]


class TestFlowTableValidation:
    def make_pool(self):
        return PathPool.from_paths([("a", "b"), ("a", "b", "a", "b")])

    def test_non_positive_demand_rejected(self):
        pool = self.make_pool()
        with pytest.raises(ValueError, match="offered rate must be positive"):
            FlowTable(pool, np.array([0]), np.array([0.0]), np.array([0]))

    def test_short_path_rejected(self):
        pool = PathPool.from_paths([("a",)])
        with pytest.raises(ValueError, match="at least two nodes"):
            FlowTable(pool, np.array([0]), np.array([1.0]), np.array([0]))

    def test_repeated_edge_path_rejected_with_flow_id(self):
        pool = self.make_pool()
        with pytest.raises(ValueError, match="flow 7 path.*edge-simple"):
            FlowTable(
                pool,
                np.array([0, 1]),
                np.array([1.0, 1.0]),
                np.array([3, 7]),
            )

    def test_path_id_out_of_pool_rejected(self):
        pool = self.make_pool()
        with pytest.raises(ValueError, match="outside the pool"):
            FlowTable(pool, np.array([5]), np.array([1.0]), np.array([0]))

    def test_mismatched_columns_rejected(self):
        pool = self.make_pool()
        with pytest.raises(ValueError, match="equal length"):
            FlowTable(pool, np.array([0]), np.array([1.0, 2.0]), np.array([0]))


class TestToCommodities:
    def test_first_seen_order_and_collapse(self):
        pool = PathPool.from_paths([("a", "b"), ("b", "c"), ("a", "b", "c")])
        table = FlowTable(
            pool,
            path_id=np.array([2, 0, 2, 1, 0]),
            demand_bps=np.ones(5),
            flow_ids=np.arange(5),
        )
        ct = table.to_commodities()
        # Commodities in first-seen flow order: path 2, then 0, then 1.
        assert ct.commodity_path.tolist() == [2, 0, 1]
        assert ct.flow_commodity.tolist() == [0, 1, 0, 2, 1]

    def test_value_dedupe_matches_object_semantics(self):
        # Two pool rows with identical node sequences collapse into ONE
        # commodity, exactly like _CommodityProblem's path-value keying.
        pool = PathPool.from_paths([("a", "b", "c"), ("a", "b", "c"), ("a", "b")])
        table = FlowTable(
            pool,
            path_id=np.array([0, 1, 2]),
            demand_bps=np.ones(3),
            flow_ids=np.arange(3),
        )
        ct = table.to_commodities()
        assert ct.n_commodities == 2
        assert ct.flow_commodity.tolist() == [0, 0, 1]

    def test_problem_matches_object_problem_exactly(self):
        capacities, table, flows = random_table_workload(3)
        obj = _CommodityProblem(capacities, flows)
        tab = _CommodityProblem.from_table(capacities, table.to_commodities())
        assert obj.n_commodities == tab.n_commodities
        assert (obj.incidence != tab.incidence).nnz == 0
        assert obj.incidence.indices.tolist() == tab.incidence.indices.tolist()
        assert obj.incidence.indptr.tolist() == tab.incidence.indptr.tolist()
        assert obj.demands.tolist() == tab.demands.tolist()
        assert obj.flow_commodity.tolist() == tab.flow_commodity.tolist()
        assert obj.flow_ids.tolist() == tab.flow_ids.tolist()

    def test_unknown_link_message_matches_object_path(self):
        pool = PathPool.from_paths([("a", "b"), ("a", "z", "b")])
        table = FlowTable(
            pool,
            path_id=np.array([0, 1]),
            demand_bps=np.array([1.0, 1.0]),
            flow_ids=np.array([10, 11]),
        ).to_commodities()
        capacities = {("a", "b"): 1.0, ("b", "a"): 1.0}
        with pytest.raises(KeyError) as table_err:
            _CommodityProblem.from_table(capacities, table)
        with pytest.raises(KeyError) as object_err:
            _CommodityProblem(
                capacities,
                [
                    FluidFlow(10, ("a", "b"), 1.0),
                    FluidFlow(11, ("a", "z", "b"), 1.0),
                ],
            )
        assert str(table_err.value) == str(object_err.value)
        assert "flow 11" in str(table_err.value)


class TestBitIdenticalRates:
    @pytest.mark.parametrize("seed", range(10))
    def test_vectorized_rates_bit_identical(self, seed):
        capacities, table, flows = random_table_workload(seed)
        expected = max_min_rates_vectorized(capacities, flows)
        rates = max_min_rates_table(capacities, table)
        got = dict(zip(table.flow_ids.tolist(), rates.tolist()))
        assert got == expected  # exact float equality, not approx

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("solver", ["vectorized", "scalar"])
    def test_solve_fluid_bit_identical(self, seed, solver):
        capacities, table, flows = random_table_workload(100 + seed)
        specs = specs_from_capacities(
            {k: v for k, v in capacities.items()}
        )
        obj = solve_fluid(specs, flows, solver=solver)
        tab = solve_fluid(specs, table, solver=solver)
        assert tab.rates_by_flow() == obj.rates_bps
        assert dict(
            zip(tab.flow_ids.tolist(), tab.offered_bps.tolist())
        ) == obj.offered_bps
        assert dict(
            zip(tab.flow_ids.tolist(), tab.latencies_s.tolist())
        ) == obj.latencies_s
        assert tab.link_utilization == obj.link_utilization
        assert tab.loss_rate == obj.loss_rate
        assert tab.mean_latency_s() == obj.mean_latency_s()
        assert tab.max_link_utilization == obj.max_link_utilization

    @pytest.mark.parametrize("seed", range(4))
    def test_solve_fluid_tcp_bit_identical(self, seed):
        # Symmetric capacities: spec expansion must reproduce the map.
        _nodes, capacities = symmetric_ring(seed)
        rng = np.random.default_rng(1000 + seed)
        _cap2, table, flows = random_table_workload(seed)
        del _cap2, rng
        specs = specs_from_capacities(capacities)
        obj = solve_fluid_tcp(specs, flows)
        tab = solve_fluid_tcp(specs, table)
        assert tab.rates_by_flow() == obj.rates_bps
        assert dict(
            zip(tab.flow_ids.tolist(), tab.offered_bps.tolist())
        ) == obj.offered_bps
        assert tab.link_utilization == obj.link_utilization
        assert tab.loss_rate == obj.loss_rate

    def test_duplicate_pairs_shared_vs_unshared_paths(self):
        """Adversarial: many flows on the same (src, dst) pair.

        Shared path rows, duplicated-value path rows, and a distinct
        route for the same pair must all match the object reference
        exactly — value-duplicates collapse, distinct routes don't.
        """
        nodes, capacities = symmetric_ring(42, n_nodes=6)
        specs = specs_from_capacities(capacities)
        direct = ("n0", "n1")
        around = tuple(["n0"] + [f"n{i}" for i in range(5, 0, -1)])
        pool = PathPool.from_paths(
            [direct, direct, around], node_names=tuple(nodes)
        )
        # 12 flows, all n0 -> n1: four on pool row 0, four on the
        # value-identical row 1, four on the long way around.
        path_id = np.array([0, 1, 2] * 4)
        demand = np.linspace(0.5, 6.0, 12)
        table = FlowTable(pool, path_id, demand, np.arange(12))
        ct = table.to_commodities()
        assert ct.n_commodities == 2  # rows 0 and 1 collapse by value
        flows = flows_from_table(table)
        obj = solve_fluid(specs, flows)
        tab = solve_fluid(specs, table)
        assert tab.rates_by_flow() == obj.rates_bps
        assert tab.link_utilization == obj.link_utilization

    def test_empty_table_solves(self):
        pool = PathPool.from_paths([("a", "b")])
        empty = np.empty(0, dtype=np.int64)
        table = FlowTable(pool, empty, np.empty(0), empty)
        specs = [EdgeSpec(a="a", b="b", rate_bps=1.0, delay_s=1e-3,
                          queue_capacity=10)]
        res = solve_fluid(specs, table)
        assert res.n_flows == 0
        assert res.loss_rate == 0.0
        tcp = solve_fluid_tcp(specs, table)
        assert tcp.n_flows == 0


class TestWithDemands:
    def test_with_demands_replaces_only_demands(self):
        _cap, table, _flows = random_table_workload(5)
        ct = table.to_commodities()
        new = ct.with_demands(np.full(ct.n_flows, 2.5))
        assert new.demand_bps.tolist() == [2.5] * ct.n_flows
        assert new.flow_commodity.tolist() == ct.flow_commodity.tolist()
        with pytest.raises(ValueError, match="positive"):
            ct.with_demands(np.zeros(ct.n_flows))


class TestKeptFlowTable:
    def make_routes(self):
        routes = {
            (0, 1): [0, 1],
            (0, 2): [0, 1, 2],
            (1, 2): [1, 2],
            (0, 3): [0, 3],
        }
        traffic = np.zeros((4, 4))
        for (s, t), w in [((0, 1), 4.0), ((0, 2), 3.0), ((1, 2), 2.0),
                          ((0, 3), 1.0)]:
            traffic[s, t] = traffic[t, s] = w
        return routes, traffic

    def test_matches_kept_flow_shares(self):
        routes, traffic = self.make_routes()
        names = {"0", "1", "2"}  # node 3 outside the simulated set
        kept, mass = kept_flow_shares(routes, traffic, names, 0.25)
        pool, path_ids, shares, table_mass = kept_flow_table(
            routes, traffic, names, 0.25
        )
        assert table_mass == mass  # bit-identical accumulation
        assert len(path_ids) == len(kept)
        for i, ((_pair, node_path, h)) in enumerate(kept):
            assert pool.path_names(int(path_ids[i])) == node_path
            assert shares[i] == h

    def test_cutoff_and_node_filter(self):
        routes, traffic = self.make_routes()
        all_names = {"0", "1", "2", "3"}
        _pool, path_ids, _shares, _mass = kept_flow_table(
            routes, traffic, all_names, 0.35
        )
        # Only the (0, 1) share (0.4) survives a 0.35 cutoff.
        assert len(path_ids) == 1


class TestExperimentIntegration:
    @pytest.fixture(scope="class")
    def designed(self, small_us_scenario):
        from repro.core import solve_heuristic

        topo = solve_heuristic(
            small_us_scenario.design_input(), 800.0, ilp_refinement=False
        ).topology
        return topo

    @pytest.mark.parametrize("transport", ["udp", "tcp"])
    def test_table_workload_bit_identical_records(self, designed, transport):
        kwargs = dict(engine="fluid", transport=transport)
        obj = run_udp_experiment(designed, 50.0, 0.9, **kwargs)
        tab = run_udp_experiment(
            designed, 50.0, 0.9, workload="table", **kwargs
        )
        assert tab.mean_delay_ms == obj.mean_delay_ms
        assert tab.loss_rate == obj.loss_rate
        assert tab.max_link_utilization == obj.max_link_utilization

    def test_table_workload_users_model(self, designed):
        obj = run_udp_experiment(
            designed, 50.0, 0.8, engine="fluid", demand_model="users",
            users_millions=2.0,
        )
        tab = run_udp_experiment(
            designed, 50.0, 0.8, engine="fluid", demand_model="users",
            users_millions=2.0, workload="table",
        )
        assert tab.loss_rate == obj.loss_rate
        assert tab.max_link_utilization == obj.max_link_utilization

    def test_table_requires_fluid_engine(self, designed):
        with pytest.raises(ValueError, match="fluid"):
            run_udp_experiment(designed, 50.0, 0.5, workload="table")

    def test_unknown_workload_rejected(self, designed):
        with pytest.raises(ValueError, match="workload"):
            run_udp_experiment(
                designed, 50.0, 0.5, engine="fluid", workload="soa"
            )

    def test_load_curve_hoisting_keeps_records_unchanged(self, designed):
        """The hoisted invariants must not change a single record value
        vs running each load point standalone (fresh setup per call)."""
        loads = (0.4, 0.8, 1.1)
        curve = run_load_curve(designed, 50.0, loads, engine="fluid")
        for row, load in zip(curve, loads):
            res = run_udp_experiment(designed, 50.0, load, engine="fluid")
            assert row["load"] == load
            assert row["mean_delay_ms"] == res.mean_delay_ms
            assert row["loss_rate"] == res.loss_rate
            assert row["max_link_utilization"] == res.max_link_utilization

    def test_load_curve_workloads_bit_identical(self, designed):
        loads = (0.5, 1.0)
        obj = run_load_curve(designed, 50.0, loads, engine="fluid")
        tab = run_load_curve(
            designed, 50.0, loads, engine="fluid", workload="table"
        )
        assert obj == tab  # same keys, same values, bit for bit

    def test_profile_rows_carry_timings(self, designed):
        rows = run_load_curve(
            designed, 50.0, (0.5,), engine="fluid", workload="table",
            profile=True,
        )
        assert {"setup_s", "fill_s", "freeze_s"} <= set(rows[0])
        default_rows = run_load_curve(designed, 50.0, (0.5,), engine="fluid")
        assert "setup_s" not in default_rows[0]

    def test_fluid_result_timings_surface(self, designed):
        res = run_udp_experiment(
            designed, 50.0, 0.5, engine="fluid", workload="table"
        )
        assert set(res.timings_s) == {"setup_s", "fill_s", "freeze_s"}
        assert all(v >= 0.0 for v in res.timings_s.values())


class TestSpecKnobs:
    def test_workloads_tuple(self):
        assert WORKLOADS == ("object", "table")

    def test_defaults(self):
        spec = NetsimSpec()
        assert spec.workload == "object"
        assert spec.profile is False

    def test_table_requires_fluid(self):
        with pytest.raises(ValueError, match="fluid"):
            NetsimSpec(engine="packet", workload="table")
        NetsimSpec(engine="fluid", workload="table")  # valid

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            NetsimSpec(workload="soa")

    def test_profile_must_be_bool(self):
        with pytest.raises(ValueError, match="boolean"):
            NetsimSpec(profile="yes")

    def test_round_trips_canonical_form(self):
        from repro.exp.spec import ExperimentSpec

        spec = ExperimentSpec(
            netsim=NetsimSpec(engine="fluid", workload="table", profile=True)
        )
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again == spec


class TestDemandPairs:
    def test_pairs_match_matrix(self):
        m = np.array(
            [[0.0, 2.0, 0.0], [2.0, 0.0, 1.0], [0.0, 1.0, 0.0]]
        )
        pairs, shares = demand_pairs(m)
        assert pairs.tolist() == [[0, 1], [1, 2]]
        assert shares.tolist() == [2.0 / 3.0, 1.0 / 3.0]

    def test_no_demand_rejected(self):
        with pytest.raises(ValueError, match="no demand"):
            demand_pairs(np.zeros((3, 3)))

    def test_user_demand_pairs_consistent(self, small_us_scenario):
        sites = list(small_us_scenario.sites)
        matrix, aggregate = user_demand_matrix(sites, users_millions=1.0)
        pairs, demands, agg2 = user_demand_pairs(sites, users_millions=1.0)
        assert agg2 == aggregate
        i, j = pairs[0]
        assert demands[0] == matrix[i, j] * aggregate


class TestValidationDedup:
    def test_shared_path_objects_validate_once(self):
        # The object path must stay usable with many flows sharing one
        # path tuple; this exercises the identity-dedup branch.
        path = ("a", "b", "c")
        flows = [FluidFlow(i, path, 1.0 + i) for i in range(200)]
        specs = [
            EdgeSpec(a="a", b="b", rate_bps=50.0, delay_s=1e-3,
                     queue_capacity=10),
            EdgeSpec(a="b", b="c", rate_bps=50.0, delay_s=1e-3,
                     queue_capacity=10),
        ]
        res = solve_fluid(specs, flows)
        assert len(res.rates_bps) == 200

    def test_unknown_link_still_detected(self):
        from repro.netsim import max_min_rates

        path = ("a", "x")
        with pytest.raises(KeyError, match="unknown link"):
            max_min_rates({("a", "b"): 1.0}, [FluidFlow(0, path, 1.0)])

    def test_table_is_frozen(self):
        _cap, table, _flows = random_table_workload(0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            table.path_id = None
