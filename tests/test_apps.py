"""Tests for gaming, web page-load, and cost-benefit models."""

import numpy as np
import pytest

from repro.apps import (
    PacmanState,
    all_estimates,
    compare_corpus,
    ecommerce_value,
    fast_fraction_from_topology,
    fat_client_latency_ms,
    frame_time_curve,
    gaming_value,
    load_page,
    simulate_thin_client,
    synthesize_page,
    synthesize_pages,
    value_summary,
    web_search_value,
)


class TestPacman:
    def test_moves(self):
        s = PacmanState(x=10, y=10)
        assert s.apply("up").y == 9
        assert s.apply("down").y == 11
        assert s.apply("left").x == 9
        assert s.apply("right").x == 11

    def test_toroidal_wrap(self):
        s = PacmanState(x=0, y=0)
        assert s.apply("left").x == 19
        assert s.apply("up").y == 19

    def test_score_accumulates(self):
        s = PacmanState()
        for _ in range(30):
            s = s.apply("right")
        assert s.score > 0


class TestThinClient:
    def test_augmentation_cuts_frame_time(self):
        """Fig 12: the augmented line sits well below conventional."""
        for lat in (60.0, 150.0, 300.0):
            aug = simulate_thin_client(lat, use_augmentation=True, seed=1)
            conv = simulate_thin_client(lat, use_augmentation=False, seed=1)
            assert aug.mean_frame_time_ms < 0.6 * conv.mean_frame_time_ms

    def test_frame_time_grows_with_latency(self):
        curve = frame_time_curve([0.0, 100.0, 200.0, 300.0], use_augmentation=True)
        means = [p.mean_frame_time_ms for p in curve]
        assert means == sorted(means)

    def test_zero_latency_dominated_by_render(self):
        stats = simulate_thin_client(0.0, use_augmentation=True)
        assert stats.mean_frame_time_ms < 20.0

    def test_speculation_hit_rate_high(self):
        stats = simulate_thin_client(200.0, use_augmentation=True)
        assert stats.speculation_hit_rate > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_thin_client(-1.0)
        with pytest.raises(ValueError):
            simulate_thin_client(100.0, fast_fraction=0.0)

    def test_fat_client(self):
        assert fat_client_latency_ms(90.0) == pytest.approx(30.0)
        with pytest.raises(ValueError):
            fat_client_latency_ms(-5.0)


class TestFastFractionFromDesign:
    def test_fiber_only_is_one(self, toy_design_8):
        from repro.core import fiber_only_topology

        assert fast_fraction_from_topology(
            fiber_only_topology(toy_design_8)
        ) == pytest.approx(1.0)

    def test_designs_shrink_the_fraction(self, toy_design_10):
        from repro.core import solve_heuristic

        few = solve_heuristic(toy_design_10, 100.0, ilp_refinement=False).topology
        many = solve_heuristic(toy_design_10, 500.0, ilp_refinement=False).topology
        f_few = fast_fraction_from_topology(few)
        f_many = fast_fraction_from_topology(many)
        assert 0.0 < f_many <= f_few <= 1.0
        # Feeding the derived fraction into the gaming model works
        # end-to-end (the kernel-backed stretch drives the curve).
        stats = simulate_thin_client(80.0, fast_fraction=f_many, n_inputs=50)
        assert stats.mean_frame_time_ms > 0


class TestWebModel:
    def test_page_structure(self):
        page = synthesize_page(seed=1)
        assert page.objects[0].parent is None
        for obj in page.objects[1:]:
            assert obj.parent is not None
            assert obj.parent < obj.obj_id
        assert all(0 <= o.origin < len(page.origin_rtts_ms) for o in page.objects)

    def test_pages_deterministic(self):
        a = synthesize_page(seed=4)
        b = synthesize_page(seed=4)
        assert a == b

    def test_corpus_size(self):
        assert len(synthesize_pages(80)) == 80
        with pytest.raises(ValueError):
            synthesize_pages(0)

    def test_load_page_scaling_reduces_plt(self):
        page = synthesize_page(seed=7)
        base = load_page(page)
        fast = load_page(page, c2s_scale=1 / 3, s2c_scale=1 / 3)
        assert fast.plt_ms < base.plt_ms

    def test_compute_floor(self):
        # Even at near-zero latency, PLT cannot drop below client compute.
        page = synthesize_page(seed=7)
        tiny = load_page(page, c2s_scale=1e-6, s2c_scale=1e-6)
        assert tiny.plt_ms >= page.onload_compute_ms

    def test_selective_between_baseline_and_full(self):
        page = synthesize_page(seed=9)
        base = load_page(page).plt_ms
        full = load_page(page, c2s_scale=1 / 3, s2c_scale=1 / 3).plt_ms
        sel = load_page(page, c2s_scale=1 / 3, s2c_scale=1.0).plt_ms
        assert full <= sel <= base

    def test_invalid_scales(self):
        page = synthesize_page(seed=1)
        with pytest.raises(ValueError):
            load_page(page, c2s_scale=0.0)

    def test_corpus_comparison_shapes(self):
        cmp = compare_corpus(synthesize_pages(12, seed=3))
        assert cmp.baseline_plts.shape == (12,)
        assert len(cmp.baseline_olts) == len(cmp.small_object_mask)

    def test_fig13_shape(self):
        """Fig 13 + §7.2 headline numbers, as shape targets."""
        cmp = compare_corpus(synthesize_pages(80, seed=1))
        plt_red = cmp.median_plt_reduction("cisp")
        sel_red = cmp.median_plt_reduction("selective")
        olt_red = cmp.median_olt_reduction()
        small_red = cmp.median_olt_reduction(small_only=True)
        assert 0.2 < plt_red < 0.45  # paper: 31%
        assert 0.0 < sel_red < plt_red  # selective helps, less than full
        assert olt_red > plt_red  # objects improve more than pages
        assert small_red > olt_red - 0.02  # small objects improve most
        assert cmp.upstream_byte_fraction < 0.15  # paper: 8.5%

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            compare_corpus([])


class TestEconomics:
    def test_web_search_matches_paper(self):
        est = web_search_value()
        assert est.low_usd_per_gb == pytest.approx(1.84, abs=0.05)
        assert est.high_usd_per_gb == pytest.approx(3.74, abs=0.08)

    def test_ecommerce_matches_paper(self):
        est = ecommerce_value()
        assert est.low_usd_per_gb == pytest.approx(3.26, abs=0.15)
        assert est.high_usd_per_gb == pytest.approx(22.82, abs=0.6)

    def test_gaming_matches_paper(self):
        est = gaming_value()
        assert est.low_usd_per_gb == pytest.approx(3.7, abs=0.2)

    def test_all_exceed_cost(self):
        """§8's conclusion: value >> $0.81/GB everywhere."""
        for est in all_estimates():
            assert est.exceeds_cost(0.81)

    def test_value_summary(self):
        summary = value_summary(cost_per_gb=0.81)
        assert set(summary) == {"web-search", "e-commerce", "gaming"}
        assert all(v["exceeds_cost"] for v in summary.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            ecommerce_value(cisp_byte_fraction=0.0)
        with pytest.raises(ValueError):
            gaming_value(hours_per_day=0.0)
