"""Tests for the static-analysis layer (``repro.analysis``).

Covers the five rules on synthetic snippets (positive and negative
cases), suppression-comment parsing, the call-graph fingerprints, the
stage-version lockfile round trip, the ``repro lint`` CLI, and the
tier-1 gate that the shipped tree is lint-clean.
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    LintConfig,
    RuleScope,
    lint_source,
    run_lint,
)
from repro.analysis.callgraph import ProjectIndex, normalized_dump
from repro.analysis.engine import parse_suppressions
from repro.analysis.rules import get_rule, rule_names
from repro.analysis.versions import (
    LOCK_NAME,
    UPDATE_COMMAND,
    LockEntry,
    compare_lock,
    compute_entries,
    default_lock_path,
    default_package_root,
    read_lock,
    update_lock,
    write_lock,
)
from repro.cli import main

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


def findings_for(source: str, rule: str) -> list:
    return lint_source(textwrap.dedent(source), rules=[rule]).findings


def lines_for(source: str, rule: str) -> list[int]:
    return [f.line for f in findings_for(source, rule)]


# ---------------------------------------------------------------------------
# Registry


class TestRegistry:
    def test_all_five_rules_registered(self):
        names = set(rule_names())
        assert {
            "unseeded-rng",
            "wall-clock-in-cached-code",
            "stage-version-drift",
            "dense-fw-ban",
            "nondeterministic-iteration",
        } <= names

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="no-such-rule"):
            get_rule("no-such-rule")

    def test_rules_carry_descriptions(self):
        for name in rule_names():
            assert get_rule(name).description


# ---------------------------------------------------------------------------
# unseeded-rng


class TestUnseededRng:
    def test_default_rng_without_seed_flagged(self):
        src = """\
        import numpy as np
        rng = np.random.default_rng()
        """
        assert lines_for(src, "unseeded-rng") == [2]

    def test_default_rng_with_seed_clean(self):
        src = """\
        import numpy as np
        rng = np.random.default_rng(1234)
        """
        assert lines_for(src, "unseeded-rng") == []

    def test_explicit_none_seed_flagged(self):
        src = """\
        import numpy as np
        rng = np.random.default_rng(None)
        """
        assert lines_for(src, "unseeded-rng") == [2]

    def test_aliased_import_resolved(self):
        src = """\
        from numpy.random import default_rng as make_rng
        rng = make_rng()
        """
        assert lines_for(src, "unseeded-rng") == [2]

    def test_module_level_numpy_draw_flagged(self):
        src = """\
        import numpy as np
        x = np.random.uniform(0.0, 1.0)
        """
        assert lines_for(src, "unseeded-rng") == [2]

    def test_global_random_module_flagged(self):
        src = """\
        import random
        x = random.random()
        """
        assert lines_for(src, "unseeded-rng") == [2]

    def test_seeded_random_instance_clean(self):
        src = """\
        import random
        rng = random.Random(7)
        x = rng.random()
        """
        assert lines_for(src, "unseeded-rng") == []

    def test_generator_method_calls_clean(self):
        src = """\
        import numpy as np
        rng = np.random.default_rng(7)
        x = rng.uniform(0.0, 1.0)
        """
        assert lines_for(src, "unseeded-rng") == []


# ---------------------------------------------------------------------------
# wall-clock-in-cached-code


class TestWallClock:
    def test_time_time_flagged(self):
        src = """\
        import time
        stamp = time.time()
        """
        assert lines_for(src, "wall-clock-in-cached-code") == [2]

    def test_datetime_now_flagged(self):
        src = """\
        import datetime
        now = datetime.datetime.now()
        """
        assert lines_for(src, "wall-clock-in-cached-code") == [2]

    def test_from_import_alias_flagged(self):
        src = """\
        from time import time as wall
        stamp = wall()
        """
        assert lines_for(src, "wall-clock-in-cached-code") == [2]

    def test_perf_counter_clean(self):
        src = """\
        import time
        t0 = time.perf_counter()
        t1 = time.monotonic()
        """
        assert lines_for(src, "wall-clock-in-cached-code") == []

    def test_scope_excludes_service_and_queue(self, tmp_path):
        body = "import time\nstamp = time.time()\n"
        for rel in (
            "src/repro/exp/service.py",
            "src/repro/exp/queue.py",
            "src/repro/exp/stages.py",
        ):
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(body)
        result = run_lint(
            [tmp_path / "src"],
            rules=["wall-clock-in-cached-code"],
            config=LintConfig(repo_root=tmp_path),
        )
        assert [f.path for f in result.findings] == ["src/repro/exp/stages.py"]


# ---------------------------------------------------------------------------
# nondeterministic-iteration


class TestNondeterministicIteration:
    def test_set_iteration_with_accumulation_flagged(self):
        src = """\
        def collect(items):
            out = []
            for name in set(items):
                out.append(name)
            return out
        """
        assert lines_for(src, "nondeterministic-iteration") == [3]

    def test_sorted_set_iteration_clean(self):
        src = """\
        def collect(items):
            out = []
            for name in sorted(set(items)):
                out.append(name)
            return out
        """
        assert lines_for(src, "nondeterministic-iteration") == []

    def test_set_iteration_without_accumulation_clean(self):
        src = """\
        def total(items):
            acc = 0.0
            for value in set(items):
                acc += value
            return acc
        """
        assert lines_for(src, "nondeterministic-iteration") == []

    def test_listdir_iteration_flagged(self):
        src = """\
        import os
        def scan(root):
            rows = []
            for name in os.listdir(root):
                rows.append(name)
            return rows
        """
        assert lines_for(src, "nondeterministic-iteration") == [4]

    def test_sorted_listdir_clean(self):
        src = """\
        import os
        def scan(root):
            rows = []
            for name in sorted(os.listdir(root)):
                rows.append(name)
            return rows
        """
        assert lines_for(src, "nondeterministic-iteration") == []

    def test_set_comprehension_source_flagged(self):
        src = """\
        def keys(mapping):
            bucket = {1, 2, 3}
            return [k for k in bucket]
        """
        assert lines_for(src, "nondeterministic-iteration") == [3]

    def test_local_set_variable_tracked_in_for(self):
        src = """\
        def collect(items):
            seen = set(items)
            out = []
            for name in seen:
                out.append(name)
            return out
        """
        assert lines_for(src, "nondeterministic-iteration") == [4]


# ---------------------------------------------------------------------------
# dense-fw-ban (core behaviour lives in tests/test_graph_kernel.py; this
# checks the scope wiring the gate relies on)


class TestDenseFwBanScope:
    def test_graph_package_is_exempt(self, tmp_path):
        body = "from scipy.sparse.csgraph import " "floyd_warshall\n"
        inside = tmp_path / "src/repro/graph/kernel.py"
        outside = tmp_path / "src/repro/design/opt.py"
        for target in (inside, outside):
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(body)
        result = run_lint(
            [tmp_path / "src"],
            rules=["dense-fw-ban"],
            config=LintConfig(repo_root=tmp_path),
        )
        assert [f.path for f in result.findings] == ["src/repro/design/opt.py"]


# ---------------------------------------------------------------------------
# Suppressions


class TestSuppressions:
    def test_same_line_suppression(self):
        src = """\
        import time
        t = time.time()  # repro: allow[wall-clock-in-cached-code] -- test fixture
        """
        result = lint_source(
            textwrap.dedent(src), rules=["wall-clock-in-cached-code"]
        )
        assert result.findings == []
        assert [f.suppress_reason for f in result.suppressed] == ["test fixture"]

    def test_standalone_line_above_suppression(self):
        src = """\
        import time
        # repro: allow[wall-clock-in-cached-code] -- test fixture
        t = time.time()
        """
        result = lint_source(
            textwrap.dedent(src), rules=["wall-clock-in-cached-code"]
        )
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_trailing_comment_above_does_not_leak_down(self):
        src = """\
        import time
        x = 1  # repro: allow[wall-clock-in-cached-code] -- wrong line
        t = time.time()
        """
        result = lint_source(
            textwrap.dedent(src), rules=["wall-clock-in-cached-code"]
        )
        assert [f.line for f in result.findings] == [3]

    def test_suppression_is_rule_specific(self):
        src = """\
        import time
        t = time.time()  # repro: allow[unseeded-rng] -- names the wrong rule
        """
        result = lint_source(
            textwrap.dedent(src), rules=["wall-clock-in-cached-code"]
        )
        assert [f.rule for f in result.findings] == ["wall-clock-in-cached-code"]

    def test_multiple_ids_in_one_suppression(self):
        src = """\
        import time, random
        # repro: allow[wall-clock-in-cached-code, unseeded-rng] -- test fixture
        t = time.time() + random.random()
        """
        result = lint_source(
            textwrap.dedent(src),
            rules=["wall-clock-in-cached-code", "unseeded-rng"],
        )
        assert result.findings == []
        assert len(result.suppressed) == 2

    def test_missing_reason_is_reported(self):
        src = """\
        import time
        t = time.time()  # repro: allow[wall-clock-in-cached-code]
        """
        result = lint_source(
            textwrap.dedent(src), rules=["wall-clock-in-cached-code"]
        )
        rules = sorted(f.rule for f in result.findings)
        assert rules == ["bad-suppression", "wall-clock-in-cached-code"]

    def test_unknown_rule_id_is_reported(self):
        src = """\
        x = 1  # repro: allow[no-such-rule] -- typo
        """
        result = lint_source(textwrap.dedent(src), rules=["unseeded-rng"])
        assert [f.rule for f in result.findings] == ["bad-suppression"]
        assert "no-such-rule" in result.findings[0].message

    def test_suppression_inside_string_literal_ignored(self):
        src = """\
        import time
        doc = "# repro: allow[wall-clock-in-cached-code] -- not a comment"
        t = time.time()
        """
        result = lint_source(
            textwrap.dedent(src), rules=["wall-clock-in-cached-code"]
        )
        assert [f.line for f in result.findings] == [3]

    def test_parse_suppressions_known_set(self):
        src = "x = 1  # repro: allow[dense-fw-ban] -- justified\n"
        sups, bad = parse_suppressions(src, "f.py", set(rule_names()))
        assert bad == []
        assert sups[1].rules == ("dense-fw-ban",)
        assert sups[1].standalone is False


# ---------------------------------------------------------------------------
# Scope matching


class TestRuleScope:
    def test_include_glob_crosses_directories(self):
        scope = RuleScope(include=("src/repro/*",))
        assert scope.matches("src/repro/exp/stages.py")
        assert not scope.matches("tests/test_cli.py")

    def test_exclude_wins(self):
        scope = RuleScope(include=("*",), exclude=("src/repro/graph/*",))
        assert scope.matches("src/repro/design/opt.py")
        assert not scope.matches("src/repro/graph/kernel.py")


# ---------------------------------------------------------------------------
# Call-graph fingerprints


@pytest.fixture
def toy_package(tmp_path):
    pkg = tmp_path / "toy"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "core.py").write_text(
        textwrap.dedent(
            """\
            from .util import helper

            def payload(x):
                \"\"\"Docstring.\"\"\"
                return helper(x) + 1
            """
        )
    )
    (pkg / "util.py").write_text(
        textwrap.dedent(
            """\
            def helper(x):
                return x * 2
            """
        )
    )
    (pkg / "kernel.py").write_text(
        textwrap.dedent(
            """\
            def fast_path(x):
                return x - 1
            """
        )
    )
    return pkg


def toy_fingerprint(pkg, boundaries=None):
    index = ProjectIndex(pkg, package="toy")
    return index.fingerprint([("toy.core", "payload")], boundaries or {})


class TestCallGraph:
    def test_closure_follows_imported_callee(self, toy_package):
        index = ProjectIndex(toy_package, package="toy")
        defs, markers = index.closure([("toy.core", "payload")], {})
        assert ("toy.util", "helper") in defs
        assert markers == set()

    def test_callee_change_moves_fingerprint(self, toy_package):
        before = toy_fingerprint(toy_package)
        (toy_package / "util.py").write_text(
            "def helper(x):\n    return x * 3\n"
        )
        assert toy_fingerprint(toy_package) != before

    def test_comment_and_docstring_edits_do_not(self, toy_package):
        before = toy_fingerprint(toy_package)
        (toy_package / "core.py").write_text(
            textwrap.dedent(
                """\
                from .util import helper


                def payload(x):
                    \"\"\"A totally rewritten docstring.\"\"\"
                    # a new comment
                    return helper(x) + 1
                """
            )
        )
        assert toy_fingerprint(toy_package) == before

    def test_boundary_package_becomes_opaque_marker(self, toy_package):
        (toy_package / "core.py").write_text(
            textwrap.dedent(
                """\
                from .kernel import fast_path

                def payload(x):
                    return fast_path(x)
                """
            )
        )
        boundaries = {"toy.kernel": "graph:kernel"}
        before = toy_fingerprint(toy_package, boundaries)
        index = ProjectIndex(toy_package, package="toy")
        _, markers = index.closure([("toy.core", "payload")], boundaries)
        assert markers == {"graph:kernel"}
        (toy_package / "kernel.py").write_text(
            "def fast_path(x):\n    return x + 100\n"
        )
        assert toy_fingerprint(toy_package, boundaries) == before

    def test_lazy_function_local_import_followed(self, toy_package):
        (toy_package / "core.py").write_text(
            textwrap.dedent(
                """\
                def payload(x):
                    from .util import helper
                    return helper(x)
                """
            )
        )
        before = toy_fingerprint(toy_package)
        (toy_package / "util.py").write_text(
            "def helper(x):\n    return x * 9\n"
        )
        assert toy_fingerprint(toy_package) != before

    def test_normalized_dump_skips_empty_fields(self):
        dump = normalized_dump(ast.parse("def f(x):\n    return x\n"))
        assert "type_comment" not in dump
        assert "type_params" not in dump
        assert "decorator_list" not in dump


# ---------------------------------------------------------------------------
# Lockfile


@pytest.fixture(scope="module")
def current_entries():
    return compute_entries()


class TestLockfile:
    def test_expected_components_present(self, current_entries):
        names = set(current_entries)
        assert "graph:kernel" in names
        assert {n for n in names if n.startswith("stage:")} >= {
            "stage:substrate",
            "stage:design",
            "stage:netsim",
        }
        assert any(n.startswith("solver:") for n in names)

    def test_round_trip(self, tmp_path, current_entries):
        lock = tmp_path / LOCK_NAME
        write_lock(lock, current_entries)
        assert read_lock(lock) == current_entries
        assert compare_lock(current_entries, read_lock(lock), str(lock)) == []

    def test_missing_lock_reported(self, current_entries):
        findings = compare_lock(current_entries, None, LOCK_NAME)
        assert len(findings) == 1
        assert UPDATE_COMMAND in findings[0].message

    def test_drift_without_bump_demands_bump(self, current_entries):
        stale = dict(current_entries)
        name = sorted(stale)[0]
        stale[name] = LockEntry(
            version=stale[name].version, fingerprint="0" * 64
        )
        findings = compare_lock(current_entries, stale, LOCK_NAME)
        assert len(findings) == 1
        assert "version tag is still" in findings[0].message
        assert UPDATE_COMMAND in findings[0].message

    def test_bumped_version_with_stale_lock_demands_regen(
        self, current_entries
    ):
        stale = dict(current_entries)
        name = sorted(stale)[0]
        stale[name] = LockEntry(version="ancient", fingerprint="0" * 64)
        findings = compare_lock(current_entries, stale, LOCK_NAME)
        assert len(findings) == 1
        assert "stale" in findings[0].message

    def test_new_and_removed_components_reported(self, current_entries):
        locked = dict(current_entries)
        removed = sorted(locked)[0]
        del locked[removed]
        locked["stage:ghost"] = LockEntry(version="1", fingerprint="f" * 64)
        messages = [
            f.message for f in compare_lock(current_entries, locked, LOCK_NAME)
        ]
        assert any(removed in m and "not in" in m for m in messages)
        assert any("stage:ghost" in m and "no longer" in m for m in messages)

    def test_update_lock_round_trip(self, tmp_path, current_entries):
        lock = tmp_path / LOCK_NAME
        path, entries = update_lock(lock)
        assert path == lock
        assert read_lock(lock) == entries == current_entries

    def test_committed_lock_is_current(self, current_entries):
        locked = read_lock(default_lock_path())
        assert locked is not None, (
            f"{LOCK_NAME} missing; run: {UPDATE_COMMAND}"
        )
        findings = compare_lock(current_entries, locked, LOCK_NAME)
        assert findings == [], "\n".join(f.message for f in findings)


# ---------------------------------------------------------------------------
# CLI


class TestCli:
    def test_lint_clean_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_json_format(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["summary"]["rules"]
        assert payload["summary"]["files_checked"] > 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in rule_names():
            assert name in out

    def test_unknown_rule_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "--rules", "no-such-rule"])

    def test_offending_path_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "offender.py"
        bad.write_text(
            "from scipy.sparse.csgraph import " "floyd_warshall\n"
        )
        code = main(["lint", str(bad), "--rules", "dense-fw-ban"])
        out = capsys.readouterr().out
        assert code == 1
        assert "dense-fw-ban" in out

    def test_update_lock_writes_current_entries(
        self, tmp_path, capsys, current_entries
    ):
        lock = tmp_path / LOCK_NAME
        assert main(["lint", "--update-lock", "--lock", str(lock)]) == 0
        assert read_lock(lock) == current_entries


# ---------------------------------------------------------------------------
# Tier-1 gate: the shipped tree lints clean


class TestTreeIsLintClean:
    def test_src_tests_benchmarks_lint_clean(self):
        paths = [
            REPO_ROOT / name
            for name in ("src", "tests", "benchmarks")
            if (REPO_ROOT / name).is_dir()
        ]
        result = run_lint(paths)
        assert result.rules_run and len(result.rules_run) >= 5
        assert result.findings == [], "\n".join(
            f"{f.location()}: {f.rule}: {f.message}" for f in result.findings
        )

    def test_known_suppressions_carry_reasons(self):
        result = run_lint([REPO_ROOT / "src", REPO_ROOT / "tests"])
        for finding in result.suppressed:
            assert finding.suppress_reason
