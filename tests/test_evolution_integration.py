"""Tests for budget evolution, graded degradation, and fast-path planning."""

import numpy as np
import pytest

from repro.apps import (
    DEFAULT_CLASSES,
    TrafficClass,
    breakeven_capacity_gbps,
    plan_fast_path,
)
from repro.core import (
    Topology,
    budget_evolution,
    fiber_only_topology,
    greedy_sequence,
    mw_shares,
    solve_heuristic,
)
from repro.weather import graded_capacity_fraction, graded_yearly_comparison


class TestMwShares:
    def test_fiber_only_all_fiber(self, toy_design_8):
        topo = fiber_only_topology(toy_design_8)
        traffic_on_mw, distance_share = mw_shares(topo)
        assert traffic_on_mw == 0.0
        assert distance_share == 0.0

    def test_shares_grow_with_links(self, toy_design_10):
        few = solve_heuristic(toy_design_10, 100.0, ilp_refinement=False).topology
        many = solve_heuristic(toy_design_10, 500.0, ilp_refinement=False).topology
        few_share = mw_shares(few)[1]
        many_share = mw_shares(many)[1]
        assert many_share >= few_share

    def test_shares_are_fractions(self, toy_design_10):
        topo = solve_heuristic(toy_design_10, 300.0, ilp_refinement=False).topology
        t, d = mw_shares(topo)
        assert 0.0 <= t <= 1.0
        assert 0.0 <= d <= 1.0


class TestBudgetEvolution:
    def test_evolution_table(self, toy_design_10):
        steps = greedy_sequence(toy_design_10, 500.0)
        points = budget_evolution(toy_design_10, steps, [0.0, 150.0, 500.0])
        assert len(points) == 3
        # Mostly-fiber at 0, mostly-MW at the top: the paper's animation.
        assert points[0].distance_share_mw == 0.0
        assert points[-1].distance_share_mw > points[0].distance_share_mw
        stretches = [p.mean_stretch for p in points]
        assert stretches == sorted(stretches, reverse=True)

    def test_budget_respected(self, toy_design_10):
        steps = greedy_sequence(toy_design_10, 500.0)
        for p in budget_evolution(toy_design_10, steps, [100.0, 300.0]):
            assert p.towers_used <= p.budget_towers


class TestGradedDegradation:
    def test_capacity_fraction_regions(self):
        assert graded_capacity_fraction(5.0) == 1.0
        assert graded_capacity_fraction(18.0) == 1.0
        assert graded_capacity_fraction(50.0) == 0.0
        mid = graded_capacity_fraction(21.0)  # one 3 dB step
        assert mid == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        values = [graded_capacity_fraction(a) for a in np.linspace(0, 45, 40)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            graded_capacity_fraction(10.0, soft_margin_db=0.0)
        with pytest.raises(ValueError):
            graded_capacity_fraction(10.0, soft_margin_db=30.0, hard_margin_db=20.0)

    def test_graded_never_worse_than_binary(self, small_us_scenario):
        sc = small_us_scenario
        topo = solve_heuristic(sc.design_input(), 800.0, ilp_refinement=False).topology
        cmp = graded_yearly_comparison(
            topo, sc.catalog, sc.registry, n_intervals=40, seed=5
        )
        # Graded links only fail above the (higher) hard margin, so
        # latency statistics can only improve.
        assert np.median(cmp.graded_worst) <= np.median(cmp.binary_worst) + 1e-9
        assert np.median(cmp.graded_p99) <= np.median(cmp.binary_p99) + 1e-9
        assert 0.0 <= cmp.capacity_loss_fraction <= 1.0


class TestFastPathPlanning:
    def test_value_order_admission(self):
        plan = plan_fast_path(10.0)
        # The highest-value class (rtb-and-finance) is fully admitted
        # before anything else.
        first = plan.allocations[0]
        assert first.traffic_class.name == "rtb-and-finance"
        assert first.fraction_admitted == 1.0

    def test_capacity_respected(self):
        for cap in (5.0, 30.0, 100.0):
            plan = plan_fast_path(cap)
            assert plan.admitted_gbps() <= cap + 1e-9

    def test_insensitive_traffic_never_admitted(self):
        plan = plan_fast_path(10_000.0)
        names = {a.traffic_class.name for a in plan.allocations}
        assert "bulk-transfer" not in names
        assert "video-streaming" not in names

    def test_value_floor(self):
        plan = plan_fast_path(10_000.0, min_value_per_gb=3.0)
        names = {a.traffic_class.name for a in plan.allocations}
        assert "search" not in names  # $1.84 < $3.00 floor

    def test_more_capacity_more_value(self):
        small = plan_fast_path(10.0)
        large = plan_fast_path(80.0)
        assert large.value_per_year_usd > small.value_per_year_usd

    def test_breakeven_capacity(self):
        # At the paper's $0.81/GB, all latency-sensitive default classes
        # are worth carrying.
        sensitive_total = sum(
            c.volume_gbps for c in DEFAULT_CLASSES if c.latency_sensitive
        )
        assert breakeven_capacity_gbps(0.81) == pytest.approx(sensitive_total)
        # At an absurd $5/GB, only the premium classes pay.
        assert breakeven_capacity_gbps(5.0) < sensitive_total

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_fast_path(0.0)
        with pytest.raises(ValueError):
            TrafficClass("x", volume_gbps=-1.0, value_per_gb=1.0)
        with pytest.raises(ValueError):
            breakeven_capacity_gbps(-1.0)
