"""FailureSetSolver: route selection, delta parity, and the LRU budget."""

import numpy as np
import pytest

from repro.graph import (
    ByteBudgetLRU,
    FailureSetSolver,
    GraphKernel,
    GraphView,
)

from test_graph_kernel import random_weights


def present_links(w: np.ndarray) -> list[tuple[int, int]]:
    iu = np.triu_indices(w.shape[0], k=1)
    return [
        (int(a), int(b)) for a, b in zip(*iu) if np.isfinite(w[a, b])
    ]


def reference_distances(w: np.ndarray, failed, fail_weight) -> np.ndarray:
    """Independent full solve of the query graph (no solver involved)."""
    modified = w.copy()
    for a, b in failed:
        value = np.inf if fail_weight is None else fail_weight(a, b)
        modified[a, b] = modified[b, a] = value
    return GraphKernel(modified).distances()


def flap_sequence(links, seed: int, steps: int, flaps: int = 2):
    """A randomized storm track: flip 1..flaps links per step."""
    rng = np.random.default_rng(seed)
    current: set = set()
    out = []
    for _ in range(steps):
        for _ in range(rng.integers(1, flaps + 1)):
            current.symmetric_difference_update(
                [links[rng.integers(len(links))]]
            )
        out.append(frozenset(current))
    return out


class TestRouteParity:
    """Memo, delta, and full-solve routes agree to <= 1e-9."""

    @pytest.mark.parametrize("density", [0.12, 0.5, 0.95])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_flap_sequence(self, density, seed):
        w = random_weights(28, density, seed)
        view = GraphView(w)
        solver = FailureSetSolver(view, fail_weight=None, delta_k=2)
        links = present_links(w)
        for query in flap_sequence(links, seed + 100, steps=40):
            got = solver.distances_for(query)
            want = reference_distances(w, query, None)
            both = np.isfinite(got) & np.isfinite(want)
            assert np.array_equal(np.isfinite(got), np.isfinite(want))
            np.testing.assert_allclose(
                got[both], want[both], rtol=1e-9, atol=1e-9
            )
        stats = solver.stats()
        # A 1-2 link flap walk must actually ride the delta route.
        assert stats["delta_solves"] > 0

    @pytest.mark.parametrize("seed", [3, 4])
    def test_finite_fail_weights(self, seed):
        """Fiber-revert style failures (finite worsened weight)."""
        w = random_weights(24, 0.3, seed)
        fail = lambda a, b: 500.0  # noqa: E731 — worse than any distance
        view = GraphView(w)
        solver = FailureSetSolver(view, fail_weight=fail, delta_k=2)
        links = present_links(w)
        for query in flap_sequence(links, seed + 7, steps=30):
            got = solver.distances_for(query)
            want = reference_distances(w, query, fail)
            np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)
        assert solver.stats()["delta_solves"] > 0

    def test_removal_only_delta_bitwise_on_sparse_base(self):
        """A pure-removal delta from a sparse base is bit-identical to
        the full solve — it runs the very machinery behind
        ``distances_with_edges_removed``."""
        w = random_weights(30, 0.12, 5)
        links = present_links(w)
        query = frozenset(links[:2])
        delta = FailureSetSolver(GraphView(w), delta_k=2)
        full = FailureSetSolver(GraphView(w), delta_k=0)
        got = delta.distances_for(query)
        want = full.distances_for(query)
        assert delta.stats()["delta_solves"] == 1
        assert full.stats()["full_solves"] == 1
        assert np.array_equal(got, want)

    def test_deterministic_across_identical_solvers(self):
        """Same config + same query sequence -> bitwise-identical arrays."""
        w = random_weights(25, 0.4, 6)
        links = present_links(w)
        queries = flap_sequence(links, 11, steps=25)
        a = FailureSetSolver(GraphView(w), delta_k=2)
        b = FailureSetSolver(GraphView(w), delta_k=2)
        for query in queries:
            assert np.array_equal(
                a.distances_for(query), b.distances_for(query)
            )
        assert a.stats() == b.stats()


class TestRouteSelection:
    def test_memo_hits_return_same_array(self):
        w = random_weights(20, 0.3, 0)
        solver = FailureSetSolver(GraphView(w), delta_k=2)
        query = frozenset(present_links(w)[:1])
        first = solver.distances_for(query)
        assert solver.distances_for(query) is first
        assert solver.stats()["memo_hits"] == 1

    def test_empty_set_is_the_pinned_base(self):
        w = random_weights(20, 0.3, 1)
        view = GraphView(w)
        solver = FailureSetSolver(view, delta_k=2)
        assert solver.distances_for(frozenset()) is view.distances()
        assert solver.stats()["memo_hits"] == 1
        assert solver.stats()["full_solves"] == 0

    def test_nearest_neighbor_not_the_previous_query(self):
        """Adversarial: the best neighbor is an *older* cached set.

        After solving {x} and then {a, b, c, d} (far from everything),
        the query {x, y, z} must delta from {x} (symdiff 2) — not from
        the most recent solve (symdiff 7), and not from the base
        (symdiff 3 > delta_k).  Sparse base: removal restarts are
        never cost-gated there, so the route choice is pure.
        """
        w = random_weights(26, 0.12, 2)
        links = present_links(w)
        x, y, z, a, b, c, d = links[:7]
        solver = FailureSetSolver(GraphView(w), delta_k=2)
        solver.distances_for(frozenset([x]))
        solver.distances_for(frozenset([a, b, c, d]))
        stats = solver.stats()
        got = solver.distances_for(frozenset([x, y, z]))
        after = solver.stats()
        assert after["delta_solves"] == stats["delta_solves"] + 1
        assert after["full_solves"] == stats["full_solves"]
        want = reference_distances(w, [x, y, z], None)
        both = np.isfinite(got) & np.isfinite(want)
        np.testing.assert_allclose(got[both], want[both], rtol=1e-9, atol=1e-9)
        # And the delta really came from {x}: a solver that never saw
        # {x} has no neighbor within delta_k for the same query and
        # must pay another full solve (a padded union fallback).
        other = FailureSetSolver(GraphView(w), delta_k=2)
        other.distances_for(frozenset([a, b, c, d]))
        other.distances_for(frozenset([x, y, z]))
        assert other.stats()["full_solves"] == 2
        assert other.stats()["union_solves"] >= 1

    def test_delta_k_zero_is_memo_only(self):
        w = random_weights(22, 0.3, 3)
        links = present_links(w)
        solver = FailureSetSolver(GraphView(w), delta_k=0)
        for query in flap_sequence(links, 5, steps=15):
            solver.distances_for(query)
        stats = solver.stats()
        assert stats["delta_solves"] == 0
        assert stats["full_solves"] > 0

    def test_canonicalization(self):
        """Mirrored endpoints and no-op links collapse to one key."""
        w = random_weights(20, 0.3, 4)
        (a, b), *_ = present_links(w)
        iu = np.triu_indices(20, k=1)
        absent = next(
            (int(s), int(t)) for s, t in zip(*iu) if not np.isfinite(w[s, t])
        )
        solver = FailureSetSolver(GraphView(w), delta_k=2)
        first = solver.distances_for(frozenset([(a, b)]))
        assert solver.distances_for(frozenset([(b, a)])) is first
        assert solver.distances_for(frozenset([(a, b), absent])) is first
        assert solver.stats()["memo_hits"] == 2

    def test_improving_fail_weight_rejected(self):
        w = random_weights(20, 0.3, 5)
        (a, b), *_ = present_links(w)
        solver = FailureSetSolver(
            GraphView(w), fail_weight=lambda s, t: 0.0
        )
        with pytest.raises(ValueError, match="improves"):
            solver.distances_for(frozenset([(a, b)]))

    def test_mutated_view_rejected(self):
        w = random_weights(20, 0.3, 6)
        (a, b), *_ = present_links(w)
        view = GraphView(w)
        solver = FailureSetSolver(view, delta_k=2)
        view.set_edge(a, b, float(w[a, b]) * 2.0)
        with pytest.raises(RuntimeError, match="mutated"):
            solver.distances_for(frozenset())

    def test_max_chain_forces_periodic_full_solves(self):
        # Sparse base: every removal restart is in budget, so the walk
        # rides delta chains until max_chain alone forces the resets.
        w = random_weights(30, 0.12, 7)
        links = present_links(w)
        solver = FailureSetSolver(GraphView(w), delta_k=2, max_chain=4)
        # A long walk of fresh single-link additions builds delta
        # chains; once every reachable neighbor sits at the depth cap,
        # the walk must reset with a full solve.
        current: set = set()
        for link in links[:18]:
            current.add(link)
            solver.distances_for(frozenset(current))
        assert solver.stats()["full_solves"] >= 3
        assert solver.stats()["delta_solves"] > 0


class TestByteBudget:
    def test_lru_eviction_under_budget(self):
        value = np.zeros(128)  # 1024 bytes each
        lru = ByteBudgetLRU(3 * value.nbytes)
        for key in "abcd":
            lru.put(key, value.copy())
        assert len(lru) == 3
        assert "a" not in lru  # least recently used went first
        assert lru.evictions == 1
        assert lru.bytes_held == 3 * value.nbytes

    def test_get_refreshes_recency(self):
        value = np.zeros(16)
        lru = ByteBudgetLRU(2 * value.nbytes)
        lru.put("a", value.copy())
        lru.put("b", value.copy())
        assert lru.get("a") is not None
        lru.put("c", value.copy())
        assert "a" in lru and "b" not in lru

    def test_pinned_keys_survive(self):
        value = np.zeros(64)
        lru = ByteBudgetLRU(2 * value.nbytes)
        lru.pin("base")
        lru.put("base", value.copy())
        for key in "abcde":
            lru.put(key, value.copy())
        assert "base" in lru

    def test_solver_evicts_but_stays_correct(self):
        w = random_weights(24, 0.3, 8)
        links = present_links(w)
        n = w.shape[0]
        matrix_bytes = n * n * 8
        view = GraphView(w)
        # Room for the pinned base plus ~3 query matrices.
        solver = FailureSetSolver(
            view, delta_k=2, cache_bytes=4 * matrix_bytes
        )
        queries = flap_sequence(links, 13, steps=30)
        for query in queries:
            solver.distances_for(query)
        stats = solver.stats()
        assert stats["evictions"] > 0
        assert stats["cached_sets"] <= 5
        assert frozenset() in solver.cached_failure_sets()
        # Evicted or not, every query still answers correctly.
        for query in queries[:5]:
            want = reference_distances(w, query, None)
            got = solver.distances_for(query)
            both = np.isfinite(got) & np.isfinite(want)
            np.testing.assert_allclose(
                got[both], want[both], rtol=1e-9, atol=1e-9
            )

    def test_evaluator_stretch_cache_is_bounded(self):
        """The weather evaluator's stretch cache honors cache_mb."""
        pytest.importorskip("scipy")
        from repro.graph.whatif import ByteBudgetLRU as LRU

        lru = LRU(0)
        lru.pin(frozenset())
        lru.put(frozenset(), np.zeros(8))
        lru.put(frozenset([(0, 1)]), np.zeros(8))
        # Zero budget: only the pinned key and the newest entry remain.
        assert len(lru) == 2
        lru.put(frozenset([(2, 3)]), np.zeros(8))
        assert frozenset([(0, 1)]) not in lru
