"""Tests for the overhauled netsim kernel: event cancellation,
commit-on-arrival drop-tail semantics, routing-cache invalidation, and
the fluid-approximation engine."""

import networkx as nx
import pytest

from repro.netsim import (
    EdgeSpec,
    FlowMonitor,
    FluidFlow,
    Network,
    Packet,
    RoutingCache,
    Simulator,
    TcpFlow,
    UdpFlow,
    max_min_rates,
    run_udp_experiment,
    solve_fluid,
)


class TestEventCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        event.cancel()
        sim.run()
        assert fired == ["b"]

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, 1)
        sim.run()
        event.cancel()
        event.cancel()
        assert fired == [1]
        assert sim.pending_events == 0

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        sim.post(3.0, lambda: None)
        assert sim.pending_events == 3
        drop.cancel()
        assert sim.pending_events == 2
        assert not keep.cancelled
        sim.run()
        assert sim.pending_events == 0

    def test_rearm_pattern_fires_once_at_latest_deadline(self):
        # The TCP RTO pattern: cancel + re-schedule must leave exactly
        # one live timer, firing at the newest deadline.
        sim = Simulator()
        fired = []
        timer = sim.schedule(1.0, fired.append, "stale")
        timer.cancel()
        sim.schedule(2.0, fired.append, "fresh")
        sim.run()
        assert fired == ["fresh"]
        assert sim.now == 2.0

    def test_post_args_passed_through(self):
        sim = Simulator()
        got = []
        sim.post(1.0, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]

    def test_tcp_completion_leaves_no_live_events(self):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 10e6, 0.01)])
        mon = FlowMonitor(sim)
        flow = TcpFlow(sim, net, mon, 1, ("A", "B"), total_bytes=50_000)
        flow.start()
        sim.run(until=30.0)
        assert flow.stats.fct_s is not None
        # The RTO timer was cancelled at completion, not left to fire
        # as a ghost event.
        assert sim.pending_events == 0


class TestCommitOnArrivalQueue:
    def test_mid_service_arrival_sees_exact_occupancy(self):
        # rate 1e6, 1250 B packets -> 10 ms serialization each.
        sim = Simulator()
        net = Network.from_edges(
            sim, [EdgeSpec("A", "B", 1e6, 0.0, queue_capacity=2)]
        )
        link = net.link("A", "B")
        deliveries = []
        net.nodes["B"].on_deliver(lambda p: deliveries.append((p.seq, sim.now)))

        def inject(seq):
            net.nodes["A"].inject(
                Packet(1, "A", "B", 1250, ("A", "B"), sim.now, seq=seq)
            )

        for seq in range(3):
            inject(seq)  # one in service + two committed waiting
        # At t=25ms packet 2 is in service, nothing waits: two more fit,
        # a third must drop.
        sim.schedule_at(0.025, inject, 3)
        sim.schedule_at(0.025, inject, 4)
        sim.schedule_at(0.025, inject, 5)
        sim.run()
        assert link.dropped_packets == 1
        assert [seq for seq, _ in deliveries] == [0, 1, 2, 3, 4]
        # Serialization stays back-to-back: 10 ms per packet.
        assert [t for _, t in deliveries] == pytest.approx(
            [0.01, 0.02, 0.03, 0.04, 0.05]
        )

    def test_set_down_drops_committed_waiting_and_rolls_back_stats(self):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 1e5, 0.0)])
        link = net.link("A", "B")
        dropped = []
        link.on_drop(dropped.append)
        for seq in range(5):
            net.nodes["A"].inject(
                Packet(1, "A", "B", 500, ("A", "B"), 0.0, seq=seq)
            )
        assert link.tx_packets == 5  # all committed on arrival
        link.set_down()
        # The in-service packet survives; the four waiting are dropped
        # and their transmission accounting is rolled back.
        assert link.dropped_packets == 4
        assert link.tx_packets == 1
        assert link.tx_bits == 500 * 8
        assert [p.seq for p in dropped] == [1, 2, 3, 4]
        sim.run()
        assert net.nodes["B"].delivered == 1

    def test_queue_length_tracks_service_progress(self):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 1e6, 0.0)])
        link = net.link("A", "B")
        for seq in range(4):
            net.nodes["A"].inject(
                Packet(1, "A", "B", 1250, ("A", "B"), 0.0, seq=seq)
            )
        observed = []
        for t in (0.005, 0.015, 0.025, 0.035):
            sim.schedule_at(t, lambda: observed.append(link.queue_length))
        sim.run()
        assert observed == [3, 2, 1, 0]


class TestRoutingCache:
    def graph(self):
        g = nx.Graph()
        for u, v, lat in [
            ("A", "B", 1.0),
            ("B", "C", 1.0),
            ("C", "D", 1.0),
            ("D", "A", 1.0),
            ("A", "C", 2.5),
        ]:
            g.add_edge(u, v, latency=lat)
        return g

    def test_hit_after_miss(self):
        cache = RoutingCache(self.graph())
        first = cache.shortest_path("A", "C")
        second = cache.shortest_path("A", "C")
        assert first == second
        assert cache.misses == 1
        assert cache.hits == 1

    def test_fail_link_invalidates_only_affected_commodities(self):
        cache = RoutingCache(self.graph())
        path_ac = cache.shortest_path("A", "C")
        cache.shortest_path("A", "D")  # uses only A-D
        assert cache.misses == 2
        crossing = tuple(zip(path_ac[:-1], path_ac[1:]))[0]
        dropped = cache.fail_link(*crossing)
        assert dropped == 1
        # The untouched commodity is still served from cache...
        cache.shortest_path("A", "D")
        assert cache.hits == 1
        # ...while the affected one is recomputed around the failure.
        rerouted = cache.shortest_path("A", "C")
        assert rerouted != path_ac
        assert crossing not in set(zip(rerouted[:-1], rerouted[1:]))
        assert cache.misses == 3

    def test_signature_changes_on_mutation(self):
        cache = RoutingCache(self.graph())
        sig = cache.signature
        cache.fail_link("A", "B")
        assert cache.signature != sig

    def test_restore_link_flushes_and_recovers_shortest(self):
        cache = RoutingCache(self.graph())
        cache.fail_link("A", "B")
        detour = cache.shortest_path("A", "B")
        assert len(detour) > 2
        cache.restore_link("A", "B")
        assert cache.shortest_path("A", "B") == ["A", "B"]

    def test_k_shortest_cached(self):
        cache = RoutingCache(self.graph())
        paths = cache.k_shortest("A", "C", 2)
        assert len(paths) == 2
        assert cache.k_shortest("A", "C", 2) == paths
        assert cache.hits == 1

    def test_fail_unknown_link_raises(self):
        cache = RoutingCache(self.graph())
        with pytest.raises(KeyError):
            cache.fail_link("A", "Z")


class TestFluidEngine:
    def test_two_flows_share_bottleneck_equally(self):
        capacities = {("A", "B"): 10.0, ("B", "C"): 10.0}
        flows = [
            FluidFlow(1, ("A", "B", "C"), 8.0),
            FluidFlow(2, ("A", "B", "C"), 8.0),
        ]
        rates = max_min_rates(capacities, flows)
        assert rates[1] == pytest.approx(5.0)
        assert rates[2] == pytest.approx(5.0)

    def test_demand_limited_flow_frees_share(self):
        capacities = {("A", "B"): 10.0}
        flows = [
            FluidFlow(1, ("A", "B"), 2.0),
            FluidFlow(2, ("A", "B"), 100.0),
        ]
        rates = max_min_rates(capacities, flows)
        assert rates[1] == pytest.approx(2.0)
        assert rates[2] == pytest.approx(8.0)

    def test_underloaded_flows_get_offered_rate(self):
        specs = [EdgeSpec("A", "B", 1e6, 0.001), EdgeSpec("B", "C", 1e6, 0.002)]
        result = solve_fluid(
            specs, [FluidFlow(1, ("A", "B", "C"), 3e5)]
        )
        assert result.rates_bps[1] == pytest.approx(3e5)
        assert result.loss_rate == 0.0
        assert result.max_link_utilization == pytest.approx(0.3)

    def test_unknown_link_raises(self):
        with pytest.raises(KeyError):
            max_min_rates({("A", "B"): 1.0}, [FluidFlow(1, ("A", "X"), 1.0)])

    def test_packet_vs_fluid_parity_three_nodes(self):
        """Fluid mean throughput within 10% of the packet engine on a
        congested 3-node chain."""
        specs = [
            EdgeSpec("A", "B", 2e6, 0.002, queue_capacity=50),
            EdgeSpec("B", "C", 1e6, 0.003, queue_capacity=50),
        ]
        offered = [("A", "B", "C", 8e5), ("A", "B", 6e5), ("B", "C", 7e5)]
        sim = Simulator()
        net = Network.from_edges(sim, specs)
        mon = FlowMonitor(sim)
        for link in net.links.values():
            mon.watch_link(link)
        fluid_flows = []
        for fid, spec in enumerate(offered):
            *path, rate = spec
            UdpFlow(sim, net, mon, fid, tuple(path), rate_bps=rate,
                    seed=fid + 1).start()
            fluid_flows.append(FluidFlow(fid, tuple(path), rate))
        duration = 5.0
        sim.run(until=duration)
        packet_mean = mon.mean_flow_throughput_bps(duration)
        fluid_mean = solve_fluid(specs, fluid_flows).mean_rate_bps
        assert fluid_mean == pytest.approx(packet_mean, rel=0.10)


class TestEngineSelector:
    @pytest.fixture(scope="class")
    def topology(self):
        from repro.core import solve_heuristic
        from repro.scenarios import us_scenario

        scenario = us_scenario(n_sites=15)
        return solve_heuristic(
            scenario.design_input(), 600.0, ilp_refinement=False
        ).topology

    def test_unknown_engine_rejected(self, topology):
        with pytest.raises(ValueError):
            run_udp_experiment(topology, 50.0, 0.5, engine="quantum")

    def test_fluid_engine_matches_packet_shape(self, topology):
        packet = run_udp_experiment(
            topology, 50.0, 0.5, duration_s=0.3, engine="packet"
        )
        fluid = run_udp_experiment(
            topology, 50.0, 0.5, duration_s=0.3, engine="fluid"
        )
        assert fluid.input_rate_fraction == packet.input_rate_fraction
        assert fluid.loss_rate == pytest.approx(packet.loss_rate, abs=0.02)
        assert fluid.max_link_utilization == pytest.approx(
            packet.max_link_utilization, abs=0.15
        )
        assert fluid.mean_delay_ms == pytest.approx(
            packet.mean_delay_ms, rel=0.5
        )

    def test_fluid_loss_appears_beyond_capacity(self, topology):
        overloaded = run_udp_experiment(
            topology, 50.0, 1.5, engine="fluid", capacity_mode="tight"
        )
        assert overloaded.loss_rate > 0.0
        assert overloaded.max_link_utilization == pytest.approx(1.0)
