"""Tests for UDP flows, TCP behavior, pacing, and routing schemes."""

import networkx as nx
import numpy as np
import pytest

from repro.netsim import (
    EdgeSpec,
    FlowMonitor,
    Network,
    QueueSampler,
    Simulator,
    TcpFlow,
    UdpFlow,
    k_shortest_paths,
    mean_route_latency,
    min_max_utilization_routing,
    shortest_path_routing,
    throughput_optimal_routing,
)


def simple_net(rate=10e6, delay=0.005, queue=100):
    sim = Simulator()
    net = Network.from_edges(sim, [EdgeSpec("A", "B", rate, delay, queue)])
    mon = FlowMonitor(sim)
    for link in net.links.values():
        mon.watch_link(link)
    return sim, net, mon


class TestUdpFlow:
    def test_rate_accuracy(self):
        sim, net, mon = simple_net()
        UdpFlow(sim, net, mon, 1, ("A", "B"), rate_bps=5e6, seed=2).start()
        sim.run(until=4.0)
        stats = mon.flows[1]
        achieved = stats.sent * 500 * 8 / 4.0
        assert achieved == pytest.approx(5e6, rel=0.1)

    def test_no_loss_below_capacity(self):
        sim, net, mon = simple_net()
        UdpFlow(sim, net, mon, 1, ("A", "B"), rate_bps=6e6, seed=3).start()
        sim.run(until=3.0)
        assert mon.flows[1].loss_rate < 0.01

    def test_loss_above_capacity(self):
        sim, net, mon = simple_net(queue=20)
        UdpFlow(sim, net, mon, 1, ("A", "B"), rate_bps=15e6, seed=4).start()
        sim.run(until=3.0)
        # Offered 150% of capacity: ~1/3 of packets must drop.
        assert mon.flows[1].loss_rate == pytest.approx(1 / 3, abs=0.08)

    def test_delay_grows_with_load(self):
        delays = []
        for rate in (3e6, 9e6):
            sim, net, mon = simple_net()
            UdpFlow(sim, net, mon, 1, ("A", "B"), rate_bps=rate, seed=5).start()
            sim.run(until=3.0)
            delays.append(mon.flows[1].mean_delay_s)
        assert delays[1] > delays[0]

    def test_cbr_mode_is_regular(self):
        sim, net, mon = simple_net()
        UdpFlow(
            sim, net, mon, 1, ("A", "B"), rate_bps=1e6, poisson=False, seed=6
        ).start()
        sim.run(until=1.0)
        # 1 Mbps / 4000 bits per packet = 250 packets per second.
        assert mon.flows[1].sent == pytest.approx(250, abs=2)

    def test_stop(self):
        sim, net, mon = simple_net()
        flow = UdpFlow(sim, net, mon, 1, ("A", "B"), rate_bps=1e6, seed=7)
        flow.start()
        sim.schedule(0.5, flow.stop)
        sim.run(until=2.0)
        sent_at_stop = mon.flows[1].sent
        sim.run(until=3.0)
        assert mon.flows[1].sent == sent_at_stop

    def test_validation(self):
        sim, net, mon = simple_net()
        with pytest.raises(ValueError):
            UdpFlow(sim, net, mon, 1, ("A", "B"), rate_bps=0.0)
        with pytest.raises(ValueError):
            UdpFlow(sim, net, mon, 1, ("A",), rate_bps=1e6)


class TestTcpFlow:
    def test_completes_and_fct_reasonable(self):
        sim, net, mon = simple_net(rate=10e6, delay=0.01)
        flow = TcpFlow(sim, net, mon, 1, ("A", "B"), total_bytes=100_000)
        flow.start()
        sim.run(until=30.0)
        fct = flow.stats.fct_s
        assert fct is not None
        # Lower bound: transfer time at line rate.
        assert fct >= 100_000 * 8 / 10e6
        assert fct < 1.0

    def test_larger_transfer_takes_longer(self):
        fcts = []
        for size in (50_000, 500_000):
            sim, net, mon = simple_net(rate=10e6, delay=0.01)
            flow = TcpFlow(sim, net, mon, 1, ("A", "B"), total_bytes=size)
            flow.start()
            sim.run(until=60.0)
            fcts.append(flow.stats.fct_s)
        assert fcts[1] > fcts[0]

    def test_recovers_from_loss(self):
        # A tiny queue forces slow-start overshoot drops; the flow must
        # still complete via fast retransmit / RTO.
        sim, net, mon = simple_net(rate=2e6, delay=0.02, queue=5)
        flow = TcpFlow(sim, net, mon, 1, ("A", "B"), total_bytes=300_000)
        flow.start()
        sim.run(until=120.0)
        assert flow.stats.fct_s is not None
        assert flow.stats.retransmits > 0

    def test_validation(self):
        sim, net, mon = simple_net()
        with pytest.raises(ValueError):
            TcpFlow(sim, net, mon, 1, ("A", "B"), total_bytes=0)

    def test_two_flows_share_fairly(self):
        sim, net, mon = simple_net(rate=10e6, delay=0.01)
        f1 = TcpFlow(sim, net, mon, 1, ("A", "B"), total_bytes=200_000)
        f2 = TcpFlow(sim, net, mon, 2, ("A", "B"), total_bytes=200_000)
        f1.start(at=0.0)
        f2.start(at=0.0)
        sim.run(until=60.0)
        assert f1.stats.fct_s is not None
        assert f2.stats.fct_s is not None


class TestPacing:
    """Fig 6: pacing eliminates speed-mismatch queue buildup."""

    @staticmethod
    def run_mismatch(edge_rate_bps: float, pacing: bool):
        sim = Simulator()
        edges = [
            EdgeSpec(f"S{i}", "M", edge_rate_bps, 0.001, queue_capacity=10**9)
            for i in range(10)
        ] + [EdgeSpec("M", "D", 20e6, 0.005, queue_capacity=10**9)]
        net = Network.from_edges(sim, edges)
        mon = FlowMonitor(sim)
        sampler = QueueSampler(sim, net.link("M", "D"), interval_s=0.002)
        sampler.start()
        rng = np.random.default_rng(11)
        flows = []
        t, fid = 0.0, 0
        while t < 4.0:
            t += float(rng.exponential(100_000 * 8 / (0.7 * 20e6)))
            flow = TcpFlow(
                sim, net, mon, fid, (f"S{fid % 10}", "M", "D"), 100_000,
                pacing=pacing,
            )
            flow.start(at=t)
            flows.append(flow)
            fid += 1
        sim.run(until=10.0)
        fcts = [f.stats.fct_s for f in flows if f.stats.fct_s is not None]
        return sampler, fcts

    def test_pacing_reduces_queue_tail(self):
        fast_burst, _ = self.run_mismatch(10e9, pacing=False)
        fast_paced, _ = self.run_mismatch(10e9, pacing=True)
        assert fast_paced.percentile(95) <= fast_burst.percentile(95)

    def test_pacing_keeps_fct_comparable(self):
        _, fct_burst = self.run_mismatch(10e9, pacing=False)
        _, fct_paced = self.run_mismatch(10e9, pacing=True)
        assert np.median(fct_paced) < 2.5 * np.median(fct_burst)


def ring_graph():
    g = nx.Graph()
    for u, v, lat in [
        ("A", "B", 1.0),
        ("B", "C", 1.0),
        ("C", "D", 1.0),
        ("D", "A", 1.0),
        ("A", "C", 2.5),
    ]:
        g.add_edge(u, v, latency=lat, capacity=10.0)
    return g


class TestRouting:
    def test_k_shortest_paths_ordering(self):
        g = ring_graph()
        paths = k_shortest_paths(g, "A", "C", 3)
        assert paths[0] in ([["A", "B", "C"], ["A", "D", "C"]][0],
                            [["A", "B", "C"], ["A", "D", "C"]][1])
        lengths = [
            sum(g[u][v]["latency"] for u, v in zip(p[:-1], p[1:])) for p in paths
        ]
        assert lengths == sorted(lengths)

    def test_shortest_path_routing(self):
        g = ring_graph()
        routing = shortest_path_routing(g, {("A", "C"): 1.0})
        assert routing[("A", "C")] in (["A", "B", "C"], ["A", "D", "C"])

    def test_min_max_util_spreads_load(self):
        g = ring_graph()
        demands = {("A", "C"): 15.0}  # exceeds any single 10-capacity path
        routing = min_max_utilization_routing(g, demands)
        assert routing[("A", "C")][0] == "A"
        assert routing[("A", "C")][-1] == "C"

    def test_throughput_optimal_runs(self):
        g = ring_graph()
        routing = throughput_optimal_routing(g, {("A", "C"): 5.0, ("B", "D"): 5.0})
        assert set(routing) == {("A", "C"), ("B", "D")}

    def test_alternative_routing_latency_penalty(self):
        """§5: non-shortest-path schemes pay a latency premium under
        load that forces detours."""
        g = ring_graph()
        demands = {("A", "B"): 9.0, ("A", "C"): 9.0}
        sp = shortest_path_routing(g, demands)
        mm = min_max_utilization_routing(g, demands)
        lat_sp = mean_route_latency(g, sp, demands)
        lat_mm = mean_route_latency(g, mm, demands)
        assert lat_mm >= lat_sp - 1e-9

    def test_mean_route_latency_requires_demand(self):
        g = ring_graph()
        with pytest.raises(ValueError):
            mean_route_latency(g, {}, {})
