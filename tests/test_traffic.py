"""Tests for traffic matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.sites import Site
from repro.traffic import (
    city_to_dc_matrix,
    dc_to_dc_matrix,
    demands_gbps,
    mixed_matrix,
    perturbed_population_matrix,
    population_product_matrix,
)

SITES = [
    Site("A", 40.0, -100.0, 2_000_000),
    Site("B", 41.0, -95.0, 1_000_000),
    Site("C", 37.0, -90.0, 500_000),
    Site("DC1", 39.0, -98.0, 0),
    Site("DC2", 36.0, -94.0, 0),
]


def assert_valid_tm(h, n):
    assert h.shape == (n, n)
    assert np.allclose(h, h.T)
    assert np.all(np.diag(h) == 0.0)
    assert np.all(h >= 0.0)
    assert np.triu(h, 1).sum() == pytest.approx(1.0)


class TestPopulationProduct:
    def test_valid(self):
        h = population_product_matrix(SITES[:3])
        assert_valid_tm(h, 3)

    def test_proportionality(self):
        h = population_product_matrix(SITES[:3])
        # h_AB / h_AC = pop_B / pop_C = 2.
        assert h[0, 1] / h[0, 2] == pytest.approx(2.0)

    def test_zero_population_sites_get_no_traffic(self):
        h = population_product_matrix(SITES)
        assert h[3, 4] == 0.0
        assert h[0, 3] == 0.0

    def test_all_zero_raises(self):
        with pytest.raises(ValueError):
            population_product_matrix(SITES[3:])


class TestPerturbation:
    def test_gamma_zero_is_identity(self):
        base = population_product_matrix(SITES[:3])
        pert = perturbed_population_matrix(SITES[:3], gamma=0.0, seed=1)
        assert np.allclose(base, pert)

    def test_gamma_changes_matrix(self):
        base = population_product_matrix(SITES[:3])
        pert = perturbed_population_matrix(SITES[:3], gamma=0.5, seed=1)
        assert not np.allclose(base, pert)
        assert_valid_tm(pert, 3)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            perturbed_population_matrix(SITES[:3], gamma=1.5)

    @given(st.floats(0.0, 1.0), st.integers(0, 100))
    @settings(max_examples=40)
    def test_always_valid(self, gamma, seed):
        h = perturbed_population_matrix(SITES[:3], gamma=gamma, seed=seed)
        assert_valid_tm(h, 3)


class TestDcModels:
    def test_dc_dc_uniform(self):
        h = dc_to_dc_matrix(SITES, [3, 4])
        assert_valid_tm(h, 5)
        assert h[3, 4] == pytest.approx(1.0)
        assert h[0, 1] == 0.0

    def test_dc_dc_needs_two(self):
        with pytest.raises(ValueError):
            dc_to_dc_matrix(SITES, [3])

    def test_city_dc_nearest_assignment(self):
        h = city_to_dc_matrix(SITES, [3, 4])
        assert_valid_tm(h, 5)
        # A (40,-100) is nearer DC1 (39,-98) than DC2 (36,-94).
        assert h[0, 3] > 0.0
        assert h[0, 4] == 0.0
        # C (37,-90) is nearer DC2.
        assert h[2, 4] > 0.0
        assert h[2, 3] == 0.0

    def test_city_dc_population_weighting(self):
        h = city_to_dc_matrix(SITES, [3, 4])
        # A and B both map to DC1; traffic ratio = population ratio.
        assert h[0, 3] / h[1, 3] == pytest.approx(2.0)

    def test_city_dc_needs_dcs(self):
        with pytest.raises(ValueError):
            city_to_dc_matrix(SITES, [])


class TestMixing:
    def test_ratio_mix(self):
        cc = population_product_matrix(SITES[:3])
        n = 3
        other = np.zeros((n, n))
        other[0, 1] = other[1, 0] = 1.0
        mixed = mixed_matrix([(cc, 4.0), (other, 6.0)])
        assert_valid_tm(mixed, 3)
        # The "other" component puts 60% of traffic on pair (0, 1).
        assert mixed[0, 1] >= 0.6

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mixed_matrix([])

    def test_shape_mismatch_raises(self):
        a = population_product_matrix(SITES[:3])
        b = dc_to_dc_matrix(SITES, [3, 4])
        with pytest.raises(ValueError):
            mixed_matrix([(a, 1.0), (b, 1.0)])


class TestDemandScaling:
    def test_aggregate_sum(self):
        h = population_product_matrix(SITES[:3])
        g = demands_gbps(h, 100.0)
        assert np.triu(g, 1).sum() == pytest.approx(100.0)

    def test_nonpositive_raises(self):
        h = population_product_matrix(SITES[:3])
        with pytest.raises(ValueError):
            demands_gbps(h, 0.0)
