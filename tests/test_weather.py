"""Tests for attenuation physics, storm fields, failures, loss traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.weather import (
    PrecipitationYear,
    US_CLIMATE,
    effective_path_km,
    graded_yearly_comparison,
    hop_fails,
    path_attenuation_db,
    rain_coefficients,
    specific_attenuation_db_per_km,
    synthesize_hft_trace,
)


class TestCoefficients:
    def test_known_10ghz_values(self):
        k, alpha = rain_coefficients(10.0)
        assert k == pytest.approx(0.01217, rel=1e-3)
        assert alpha == pytest.approx(1.2571, rel=1e-3)

    def test_interpolation_between_table_rows(self):
        k10, _ = rain_coefficients(10.0)
        k11, _ = rain_coefficients(11.0)
        k12, _ = rain_coefficients(12.0)
        assert k10 < k11 < k12

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            rain_coefficients(1.0)
        with pytest.raises(ValueError):
            rain_coefficients(99.0)


class TestSpecificAttenuation:
    def test_zero_rain_zero_attenuation(self):
        assert specific_attenuation_db_per_km(0.0) == 0.0

    def test_realistic_magnitude(self):
        # Heavy rain (50 mm/h) at 11 GHz is a ~2 dB/km event.
        gamma = specific_attenuation_db_per_km(50.0, 11.0)
        assert 1.0 < gamma < 4.0

    @given(st.floats(0.1, 150.0), st.floats(0.1, 150.0))
    @settings(max_examples=50)
    def test_monotone_in_rain(self, r1, r2):
        lo, hi = sorted((r1, r2))
        assert specific_attenuation_db_per_km(lo) <= specific_attenuation_db_per_km(hi)

    def test_negative_rain_raises(self):
        with pytest.raises(ValueError):
            specific_attenuation_db_per_km(-1.0)

    def test_vectorized(self):
        rates = np.array([0.0, 10.0, 50.0])
        gammas = specific_attenuation_db_per_km(rates)
        assert gammas.shape == (3,)
        assert gammas[0] == 0.0


class TestEffectivePath:
    def test_shorter_than_physical(self):
        assert effective_path_km(50.0, 30.0) < 50.0

    def test_heavier_rain_shorter_effective_path(self):
        assert effective_path_km(50.0, 80.0) < effective_path_km(50.0, 10.0)

    def test_zero_hop(self):
        assert effective_path_km(0.0, 50.0) == 0.0


class TestHopFailure:
    def test_dry_hop_never_fails(self):
        assert not hop_fails(100.0, 0.0)

    def test_extreme_rain_fails_long_hop(self):
        assert hop_fails(80.0, 100.0, fade_margin_db=30.0)

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            hop_fails(50.0, 10.0, fade_margin_db=0.0)

    def test_longer_hop_fails_first(self):
        rain = 45.0
        short = path_attenuation_db(10.0, rain)
        long = path_attenuation_db(90.0, rain)
        assert long > short


class TestPrecipitation:
    def test_deterministic_per_day(self):
        year = PrecipitationYear(seed=5)
        a = year.storms_for_day(180)
        b = year.storms_for_day(180)
        assert a == b

    def test_different_days_differ(self):
        year = PrecipitationYear(seed=5)
        assert year.storms_for_day(10) != year.storms_for_day(200)

    def test_rates_non_negative_and_bounded(self):
        year = PrecipitationYear()
        lats = np.linspace(25, 49, 40)
        lons = np.linspace(-120, -70, 40)
        for day in (15, 100, 200, 300):
            rate = year.rain_rate_mm_h(day, lats, lons)
            assert np.all(rate >= 0.0)
            assert np.all(rate <= 150.0)

    def test_summer_has_more_storms_than_winter(self):
        year = PrecipitationYear(seed=3)
        summer = np.mean([len(year.storms_for_day(d)) for d in range(190, 220)])
        winter = np.mean([len(year.storms_for_day(d)) for d in range(5, 35)])
        assert summer > winter

    def test_wet_bias_region_rainier(self):
        year = PrecipitationYear(seed=9)
        southeast, west = [], []
        for day in range(1, 366, 3):
            southeast.append(
                float(year.rain_rate_mm_h(day, [32.0], [-88.0])[0])
            )
            west.append(float(year.rain_rate_mm_h(day, [40.0], [-118.0])[0]))
        assert np.mean(southeast) > np.mean(west)

    def test_invalid_day_raises(self):
        with pytest.raises(ValueError):
            PrecipitationYear().storms_for_day(0)

    def test_storm_rate_peaks_at_cell_center(self):
        year = PrecipitationYear(seed=11)
        cells = year.storms_for_day(200)
        assert cells, "expected storms on a summer day"
        cell = max(cells, key=lambda c: c.peak_mm_h)
        at_center = year.rain_rate_mm_h(200, [cell.lat], [cell.lon])[0]
        far = year.rain_rate_mm_h(
            200, [cell.lat + 8.0 if cell.lat < 42 else cell.lat - 8.0], [cell.lon]
        )[0]
        assert at_center >= far


class TestYearlyAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self, small_us_scenario):
        from repro.core import solve_heuristic
        from repro.weather import yearly_stretch_analysis

        sc = small_us_scenario
        topo = solve_heuristic(
            sc.design_input(), 800.0, ilp_refinement=False
        ).topology
        return yearly_stretch_analysis(
            topo, sc.catalog, sc.registry, n_intervals=80, seed=3
        )

    def test_ordering_best_p99_worst(self, analysis):
        assert np.all(analysis.best <= analysis.p99 + 1e-9)
        assert np.all(analysis.p99 <= analysis.worst + 1e-9)

    def test_worst_never_exceeds_fiber(self, analysis):
        """Failures reroute over fiber at worst, never worse than it."""
        assert np.all(analysis.worst <= analysis.fiber + 1e-9)

    def test_p99_close_to_best(self, analysis):
        """Fig 7's headline: 99th-percentile ~ fair-weather stretch."""
        assert np.median(analysis.p99) < np.median(analysis.best) * 1.25

    def test_fiber_clearly_worse(self, analysis):
        assert np.median(analysis.fiber) > 1.5 * np.median(analysis.best)

    def test_some_weather_impact_exists(self, analysis):
        assert analysis.links_failed_per_interval.sum() > 0


class TestLossTraces:
    def test_paper_headline_statistics(self):
        trace = synthesize_hft_trace()
        # Mean 16.1%, median 1.4% in the paper; synthetic trace must
        # land in the neighborhood.
        assert 0.10 < trace.mean < 0.25
        assert 0.005 < trace.median < 0.04

    def test_trace_length(self):
        assert len(synthesize_hft_trace().loss_rates) == 2743

    def test_rates_are_probabilities(self):
        trace = synthesize_hft_trace()
        assert np.all(trace.loss_rates >= 0.0)
        assert np.all(trace.loss_rates <= 1.0)

    def test_hurricane_segment_is_worse(self):
        trace = synthesize_hft_trace(hurricane_days=4)
        cut = len(trace.loss_rates) - 4 * 390
        fair = trace.loss_rates[:cut]
        storm = trace.loss_rates[cut:]
        assert storm.mean() > 5 * fair.mean()

    def test_deterministic(self):
        a = synthesize_hft_trace(seed=1)
        b = synthesize_hft_trace(seed=1)
        assert np.array_equal(a.loss_rates, b.loss_rates)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_hft_trace(n_minutes=0)


class TestCriticalRainRate:
    """The inverted failure thresholds must classify exactly like the rule."""

    def test_classification_matches_attenuation_rule(self):
        from repro.weather import critical_rain_rates, path_attenuation_db_many

        hops = np.array([0.5, 2.0, 8.0, 20.0, 45.0, 80.0])
        rains = np.concatenate(
            [np.linspace(0.0, 150.0, 1201),
             np.random.default_rng(0).lognormal(1.7, 1.25, 500)]
        )
        for margin in (20.0, 30.0, 40.0):
            for freq in (7.0, 11.0, 15.0):
                crit = critical_rain_rates(hops, margin, freq)
                for i, hop in enumerate(hops):
                    att = path_attenuation_db_many(hop, rains, freq)
                    per_hop = type(crit)(
                        rise=crit.rise[i], dip=crit.dip[i], recovery=crit.recovery[i]
                    )
                    assert np.array_equal(per_hop.failed(rains), att > margin), (
                        f"hop {hop} km, margin {margin} dB, {freq} GHz"
                    )

    def test_classification_in_the_nonmonotone_dip(self):
        """Attenuation peaks below the 100 mm/h cap, dips, then rises.

        Regression: a single threshold misclassifies rains in the dip
        (e.g. a 34 km hop at 13 GHz straddles a 40 dB margin there);
        the piecewise rise/dip/recovery thresholds must match the
        direct rule on a dense grid through the whole band.
        """
        from repro.weather import critical_rain_rates, path_attenuation_db_many

        rains = np.concatenate(
            [np.linspace(60.0, 160.0, 40001), np.linspace(0.0, 60.0, 2001)]
        )
        cases = [
            (34.15, 40.0, 13.0),
            (40.0, 30.875, 11.0),
            (80.0, 35.0, 11.0),
            (60.0, 38.0, 13.0),
        ]
        for hop, margin, freq in cases:
            crit = critical_rain_rates(np.array([hop]), margin, freq)
            att = path_attenuation_db_many(hop, rains, freq)
            direct = att > margin
            assert np.array_equal(crit.failed(rains), direct), (
                f"hop {hop} km, margin {margin} dB, {freq} GHz: "
                f"{(crit.failed(rains) != direct).sum()} misclassified"
            )

    def test_vectorized_attenuation_bitwise_equals_scalar(self):
        from repro.weather import path_attenuation_db_many

        rng = np.random.default_rng(3)
        hops = rng.uniform(0.1, 90.0, 64)
        rains = rng.lognormal(1.7, 1.25, 64)
        many = path_attenuation_db_many(hops, rains, 11.0)
        for h, r, a in zip(hops, rains, many):
            assert a == path_attenuation_db(float(h), float(r), 11.0)

    def test_unfailable_hop_never_fails(self):
        from repro.weather import critical_rain_rates

        crit = critical_rain_rates(np.array([0.0, 0.05]), 40.0)
        assert not crit.failed(np.linspace(0.0, 900.0, 500)[:, None]).any()

    def test_margin_validation(self):
        from repro.weather import critical_rain_rates

        with pytest.raises(ValueError):
            critical_rain_rates(np.array([10.0]), 0.0)


class TestBulkRain:
    def test_many_matches_stacked_single_days(self):
        year = PrecipitationYear(seed=5)
        lats = np.linspace(28, 47, 25)
        lons = np.linspace(-118, -72, 25)
        days = [10, 100, 100, 250, 10]
        bulk = year.rain_rate_mm_h_many(days, lats, lons)
        assert bulk.shape == (5, 25)
        for row, day in zip(bulk, days):
            assert np.array_equal(row, year.rain_rate_mm_h(day, lats, lons))

    def test_year_has_365_days(self):
        from repro.weather import DAYS_PER_YEAR

        year = PrecipitationYear()
        assert DAYS_PER_YEAR == 365
        assert year.storms_for_day(365) is not None
        with pytest.raises(ValueError):
            year.storms_for_day(366)
        with pytest.raises(ValueError):
            year.rain_rate_mm_h_many([1, 366], [30.0], [-90.0])


class TestIntervalSampler:
    def test_shared_sampler_recipe(self):
        from repro.weather import sample_interval_days

        days = sample_interval_days(7, 120)
        assert days.shape == (120,)
        assert days.min() >= 1 and days.max() <= 365
        assert len(np.unique(days)) == 120  # no replacement within a year
        assert np.array_equal(days, sample_interval_days(7, 120))

    def test_oversampling_replaces(self):
        from repro.weather import sample_interval_days

        days = sample_interval_days(1, 400)
        assert days.shape == (400,)
        assert days.max() <= 365

    def test_validation(self):
        from repro.weather import sample_interval_days

        with pytest.raises(ValueError):
            sample_interval_days(7, 0)

    def test_strided_grid(self):
        from repro.weather import strided_interval_days

        daily = strided_interval_days(1)
        assert np.array_equal(daily, np.arange(1, 366))
        weekly = strided_interval_days(7)
        assert weekly[0] == 1 and np.all(np.diff(weekly) == 7)
        for bad in (0, 366, -1):
            with pytest.raises(ValueError):
                strided_interval_days(bad)


class TestWeatherEvaluator:
    @pytest.fixture(scope="class")
    def topology(self, small_us_scenario):
        from repro.core import solve_heuristic

        sc = small_us_scenario
        return solve_heuristic(sc.design_input(), 800.0, ilp_refinement=False).topology

    def test_binary_year_bitwise_matches_reference_loop(
        self, small_us_scenario, topology
    ):
        from repro.weather import (
            YearlyWeatherEvaluator,
            link_hop_segments,
            sample_interval_days,
        )
        from repro.weather.failures import distances_with_failures, failed_links

        sc = small_us_scenario
        precipitation = PrecipitationYear()
        days = sample_interval_days(3, 40)
        segments = link_hop_segments(topology, sc.catalog, sc.registry)
        # delta_k=0 pins the memo-only route, whose matrices are
        # bit-identical to the reference loop; the delta route is gated
        # to <= 1e-9 separately (test below, plus bench_storm_track).
        evaluator = YearlyWeatherEvaluator(
            topology, sc.catalog, sc.registry, precipitation=precipitation,
            delta_k=0,
        )
        result = evaluator.binary_year(days, fade_margin_db=30.0)
        geo = topology.design.geodesic_km
        iu = np.triu_indices(topology.design.n_sites, k=1)
        valid = geo[iu] > 0
        for k, day in enumerate(days):
            failed = failed_links(segments, precipitation, int(day))
            assert result.links_failed_per_interval[k] == len(failed)
            expected = (
                distances_with_failures(topology, failed)[iu] / geo[iu]
            )[valid]
            row = evaluator.stretches_for(frozenset(failed))
            assert np.array_equal(row, expected)

    def test_default_delta_evaluator_matches_reference_to_1e9(
        self, small_us_scenario, topology
    ):
        """The default (delta-reuse) evaluator stays within 1e-9 relative."""
        from repro.weather import (
            YearlyWeatherEvaluator,
            link_hop_segments,
            sample_interval_days,
        )
        from repro.weather.failures import distances_with_failures, failed_links

        sc = small_us_scenario
        precipitation = PrecipitationYear()
        days = sample_interval_days(3, 40)
        segments = link_hop_segments(topology, sc.catalog, sc.registry)
        evaluator = YearlyWeatherEvaluator(
            topology, sc.catalog, sc.registry, precipitation=precipitation
        )
        evaluator.binary_year(days, fade_margin_db=30.0)
        geo = topology.design.geodesic_km
        iu = np.triu_indices(topology.design.n_sites, k=1)
        valid = geo[iu] > 0
        for day in days:
            failed = failed_links(segments, precipitation, int(day))
            expected = (
                distances_with_failures(topology, failed)[iu] / geo[iu]
            )[valid]
            row = evaluator.stretches_for(frozenset(failed))
            np.testing.assert_allclose(row, expected, rtol=1e-9, atol=1e-9)

    def test_failure_set_memoization(self, small_us_scenario, topology):
        from repro.weather import YearlyWeatherEvaluator, sample_interval_days

        sc = small_us_scenario
        evaluator = YearlyWeatherEvaluator(topology, sc.catalog, sc.registry)
        days = sample_interval_days(3, 50)
        first = evaluator.binary_year(days)
        solves = evaluator.solve_count
        assert solves <= (first.links_failed_per_interval > 0).sum()
        # A repeated pass re-serves every interval from the cache ...
        second = evaluator.binary_year(days)
        assert evaluator.solve_count == solves
        # ... with bit-identical distance matrices (the same arrays).
        assert np.array_equal(first.p99, second.p99)
        assert np.array_equal(first.worst, second.worst)
        for failure_set in evaluator.solver.cached_failure_sets():
            assert evaluator.distances_for(failure_set) is evaluator.distances_for(
                failure_set
            )

    def test_graded_elementwise_never_worse_than_binary(
        self, small_us_scenario, topology
    ):
        """The paper's claim, per pair: graded can only improve the numbers."""
        sc = small_us_scenario
        cmp = graded_yearly_comparison(
            topology, sc.catalog, sc.registry, n_intervals=60, seed=11
        )
        assert np.all(cmp.graded_p99 <= cmp.binary_p99 + 1e-12)
        assert np.all(cmp.graded_worst <= cmp.binary_worst + 1e-12)

    def test_graded_binary_pass_shares_sampler_and_frequency(
        self, small_us_scenario, topology
    ):
        """Regression: binary-inside-graded == standalone binary, bitwise."""
        from repro.weather import yearly_stretch_analysis

        sc = small_us_scenario
        for freq in (7.0, 15.0):
            cmp = graded_yearly_comparison(
                topology, sc.catalog, sc.registry,
                n_intervals=30, seed=9, frequency_ghz=freq,
            )
            solo = yearly_stretch_analysis(
                topology, sc.catalog, sc.registry,
                n_intervals=30, seed=9, frequency_ghz=freq,
            )
            assert np.array_equal(cmp.binary_p99, solo.p99)
            assert np.array_equal(cmp.binary_worst, solo.worst)
            assert np.all(cmp.graded_p99 <= cmp.binary_p99 + 1e-12)
            assert np.all(cmp.graded_worst <= cmp.binary_worst + 1e-12)

    def test_frequency_threads_through_both_models(
        self, small_us_scenario, topology
    ):
        """Regression: the graded physics follow the carrier frequency."""
        from repro.weather import yearly_stretch_analysis

        sc = small_us_scenario
        low = graded_yearly_comparison(
            topology, sc.catalog, sc.registry,
            n_intervals=40, seed=3, frequency_ghz=7.0,
        )
        high = graded_yearly_comparison(
            topology, sc.catalog, sc.registry,
            n_intervals=40, seed=3, frequency_ghz=15.0,
        )
        # More attenuation at 15 GHz: more capacity lost to downshifts
        # and at least as many binary failures.
        assert high.capacity_loss_fraction > low.capacity_loss_fraction
        low_fail = yearly_stretch_analysis(
            topology, sc.catalog, sc.registry,
            n_intervals=40, seed=3, frequency_ghz=7.0,
        ).links_failed_per_interval.sum()
        high_fail = yearly_stretch_analysis(
            topology, sc.catalog, sc.registry,
            n_intervals=40, seed=3, frequency_ghz=15.0,
        ).links_failed_per_interval.sum()
        assert high_fail >= low_fail

    def test_injected_evaluator_conflicts_rejected(
        self, small_us_scenario, topology
    ):
        from repro.weather import (
            YearlyWeatherEvaluator,
            yearly_stretch_analysis,
        )

        sc = small_us_scenario
        ev = YearlyWeatherEvaluator(
            topology, sc.catalog, sc.registry, frequency_ghz=15.0
        )
        # The pinned context wins when the caller stays silent ...
        result = yearly_stretch_analysis(
            topology, sc.catalog, sc.registry,
            n_intervals=5, seed=2, evaluator=ev,
        )
        assert result.links_failed_per_interval.shape == (5,)
        # ... and contradicting it is an error, not a silent override.
        with pytest.raises(ValueError, match="pinned to 15.0 GHz"):
            yearly_stretch_analysis(
                topology, sc.catalog, sc.registry,
                n_intervals=5, seed=2, frequency_ghz=11.0, evaluator=ev,
            )
        with pytest.raises(ValueError, match="precipitation"):
            graded_yearly_comparison(
                topology, sc.catalog, sc.registry,
                precipitation=PrecipitationYear(seed=99),
                n_intervals=5, seed=2, evaluator=ev,
            )


class TestDailyResolution:
    """The strided-day grid and the solver counters in stage records."""

    @pytest.fixture(scope="class")
    def topology(self, small_us_scenario):
        from repro.core import solve_heuristic

        sc = small_us_scenario
        return solve_heuristic(
            sc.design_input(), 800.0, ilp_refinement=False
        ).topology

    def test_daily_year_end_to_end(self, small_us_scenario, topology):
        """A full 365-interval year runs through the analysis entry point."""
        from repro.weather import yearly_stretch_analysis

        sc = small_us_scenario
        result = yearly_stretch_analysis(
            topology, sc.catalog, sc.registry, sample_interval_days=1
        )
        assert result.links_failed_per_interval.shape == (365,)
        assert np.all(result.best <= result.p99 + 1e-9)
        assert np.all(result.worst <= result.fiber + 1e-9)

    def test_stride_overrides_random_sampling(
        self, small_us_scenario, topology
    ):
        from repro.weather import yearly_stretch_analysis

        sc = small_us_scenario
        # seed/n_intervals are ignored once the stride is set: two
        # different seeds give identical (deterministic-grid) results.
        a = yearly_stretch_analysis(
            topology, sc.catalog, sc.registry,
            n_intervals=5, seed=1, sample_interval_days=30,
        )
        b = yearly_stretch_analysis(
            topology, sc.catalog, sc.registry,
            n_intervals=9, seed=2, sample_interval_days=30,
        )
        assert a.links_failed_per_interval.shape[0] == len(range(1, 366, 30))
        assert np.array_equal(a.p99, b.p99)
        assert np.array_equal(a.worst, b.worst)

    def test_stage_records_report_solver_counters(
        self, small_us_scenario, topology
    ):
        from repro.weather import weather_stage_records

        sc = small_us_scenario
        rows = weather_stage_records(
            topology, sc.catalog, sc.registry, sample_interval_days=7
        )
        series = [row["series"] for row in rows]
        assert series == ["best", "p99", "worst", "fiber", "solver"]
        solver = rows[-1]
        assert solver["intervals"] == len(range(1, 366, 7))
        for key in (
            "full_solves", "delta_solves", "memo_hits",
            "cached_sets", "cache_bytes", "evictions",
        ):
            assert solver[key] >= 0
        # Every distinct non-empty set was solved somehow, and the
        # dry/repeat days all hit the memo.
        assert solver["full_solves"] + solver["delta_solves"] >= 1
        assert solver["memo_hits"] >= 1
        # Route totals account for every distances_for() lookup.
        lookups = (
            solver["full_solves"]
            + solver["delta_solves"]
            + solver["memo_hits"]
        )
        assert lookups >= 1

    def test_memo_only_and_delta_stage_records_agree(
        self, small_us_scenario, topology
    ):
        from repro.weather import weather_stage_records

        sc = small_us_scenario
        delta = weather_stage_records(
            topology, sc.catalog, sc.registry, sample_interval_days=7
        )
        memo = weather_stage_records(
            topology, sc.catalog, sc.registry,
            sample_interval_days=7, delta_k=0,
        )
        for row_d, row_m in zip(delta[:-1], memo[:-1]):
            assert row_d["series"] == row_m["series"]
            np.testing.assert_allclose(
                [row_d["median"], row_d["p95"]],
                [row_m["median"], row_m["p95"]],
                rtol=1e-9,
            )
        assert memo[-1]["delta_solves"] == 0
