"""Tests for attenuation physics, storm fields, failures, loss traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.weather import (
    PrecipitationYear,
    US_CLIMATE,
    effective_path_km,
    hop_fails,
    path_attenuation_db,
    rain_coefficients,
    specific_attenuation_db_per_km,
    synthesize_hft_trace,
)


class TestCoefficients:
    def test_known_10ghz_values(self):
        k, alpha = rain_coefficients(10.0)
        assert k == pytest.approx(0.01217, rel=1e-3)
        assert alpha == pytest.approx(1.2571, rel=1e-3)

    def test_interpolation_between_table_rows(self):
        k10, _ = rain_coefficients(10.0)
        k11, _ = rain_coefficients(11.0)
        k12, _ = rain_coefficients(12.0)
        assert k10 < k11 < k12

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            rain_coefficients(1.0)
        with pytest.raises(ValueError):
            rain_coefficients(99.0)


class TestSpecificAttenuation:
    def test_zero_rain_zero_attenuation(self):
        assert specific_attenuation_db_per_km(0.0) == 0.0

    def test_realistic_magnitude(self):
        # Heavy rain (50 mm/h) at 11 GHz is a ~2 dB/km event.
        gamma = specific_attenuation_db_per_km(50.0, 11.0)
        assert 1.0 < gamma < 4.0

    @given(st.floats(0.1, 150.0), st.floats(0.1, 150.0))
    @settings(max_examples=50)
    def test_monotone_in_rain(self, r1, r2):
        lo, hi = sorted((r1, r2))
        assert specific_attenuation_db_per_km(lo) <= specific_attenuation_db_per_km(hi)

    def test_negative_rain_raises(self):
        with pytest.raises(ValueError):
            specific_attenuation_db_per_km(-1.0)

    def test_vectorized(self):
        rates = np.array([0.0, 10.0, 50.0])
        gammas = specific_attenuation_db_per_km(rates)
        assert gammas.shape == (3,)
        assert gammas[0] == 0.0


class TestEffectivePath:
    def test_shorter_than_physical(self):
        assert effective_path_km(50.0, 30.0) < 50.0

    def test_heavier_rain_shorter_effective_path(self):
        assert effective_path_km(50.0, 80.0) < effective_path_km(50.0, 10.0)

    def test_zero_hop(self):
        assert effective_path_km(0.0, 50.0) == 0.0


class TestHopFailure:
    def test_dry_hop_never_fails(self):
        assert not hop_fails(100.0, 0.0)

    def test_extreme_rain_fails_long_hop(self):
        assert hop_fails(80.0, 100.0, fade_margin_db=30.0)

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            hop_fails(50.0, 10.0, fade_margin_db=0.0)

    def test_longer_hop_fails_first(self):
        rain = 45.0
        short = path_attenuation_db(10.0, rain)
        long = path_attenuation_db(90.0, rain)
        assert long > short


class TestPrecipitation:
    def test_deterministic_per_day(self):
        year = PrecipitationYear(seed=5)
        a = year.storms_for_day(180)
        b = year.storms_for_day(180)
        assert a == b

    def test_different_days_differ(self):
        year = PrecipitationYear(seed=5)
        assert year.storms_for_day(10) != year.storms_for_day(200)

    def test_rates_non_negative_and_bounded(self):
        year = PrecipitationYear()
        lats = np.linspace(25, 49, 40)
        lons = np.linspace(-120, -70, 40)
        for day in (15, 100, 200, 300):
            rate = year.rain_rate_mm_h(day, lats, lons)
            assert np.all(rate >= 0.0)
            assert np.all(rate <= 150.0)

    def test_summer_has_more_storms_than_winter(self):
        year = PrecipitationYear(seed=3)
        summer = np.mean([len(year.storms_for_day(d)) for d in range(190, 220)])
        winter = np.mean([len(year.storms_for_day(d)) for d in range(5, 35)])
        assert summer > winter

    def test_wet_bias_region_rainier(self):
        year = PrecipitationYear(seed=9)
        southeast, west = [], []
        for day in range(1, 366, 3):
            southeast.append(
                float(year.rain_rate_mm_h(day, [32.0], [-88.0])[0])
            )
            west.append(float(year.rain_rate_mm_h(day, [40.0], [-118.0])[0]))
        assert np.mean(southeast) > np.mean(west)

    def test_invalid_day_raises(self):
        with pytest.raises(ValueError):
            PrecipitationYear().storms_for_day(0)

    def test_storm_rate_peaks_at_cell_center(self):
        year = PrecipitationYear(seed=11)
        cells = year.storms_for_day(200)
        assert cells, "expected storms on a summer day"
        cell = max(cells, key=lambda c: c.peak_mm_h)
        at_center = year.rain_rate_mm_h(200, [cell.lat], [cell.lon])[0]
        far = year.rain_rate_mm_h(
            200, [cell.lat + 8.0 if cell.lat < 42 else cell.lat - 8.0], [cell.lon]
        )[0]
        assert at_center >= far


class TestYearlyAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self, small_us_scenario):
        from repro.core import solve_heuristic
        from repro.weather import yearly_stretch_analysis

        sc = small_us_scenario
        topo = solve_heuristic(
            sc.design_input(), 800.0, ilp_refinement=False
        ).topology
        return yearly_stretch_analysis(
            topo, sc.catalog, sc.registry, n_intervals=80, seed=3
        )

    def test_ordering_best_p99_worst(self, analysis):
        assert np.all(analysis.best <= analysis.p99 + 1e-9)
        assert np.all(analysis.p99 <= analysis.worst + 1e-9)

    def test_worst_never_exceeds_fiber(self, analysis):
        """Failures reroute over fiber at worst, never worse than it."""
        assert np.all(analysis.worst <= analysis.fiber + 1e-9)

    def test_p99_close_to_best(self, analysis):
        """Fig 7's headline: 99th-percentile ~ fair-weather stretch."""
        assert np.median(analysis.p99) < np.median(analysis.best) * 1.25

    def test_fiber_clearly_worse(self, analysis):
        assert np.median(analysis.fiber) > 1.5 * np.median(analysis.best)

    def test_some_weather_impact_exists(self, analysis):
        assert analysis.links_failed_per_interval.sum() > 0


class TestLossTraces:
    def test_paper_headline_statistics(self):
        trace = synthesize_hft_trace()
        # Mean 16.1%, median 1.4% in the paper; synthetic trace must
        # land in the neighborhood.
        assert 0.10 < trace.mean < 0.25
        assert 0.005 < trace.median < 0.04

    def test_trace_length(self):
        assert len(synthesize_hft_trace().loss_rates) == 2743

    def test_rates_are_probabilities(self):
        trace = synthesize_hft_trace()
        assert np.all(trace.loss_rates >= 0.0)
        assert np.all(trace.loss_rates <= 1.0)

    def test_hurricane_segment_is_worse(self):
        trace = synthesize_hft_trace(hurricane_days=4)
        cut = len(trace.loss_rates) - 4 * 390
        fair = trace.loss_rates[:cut]
        storm = trace.loss_rates[cut:]
        assert storm.mean() > 5 * fair.mean()

    def test_deterministic(self):
        a = synthesize_hft_trace(seed=1)
        b = synthesize_hft_trace(seed=1)
        assert np.array_equal(a.loss_rates, b.loss_rates)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_hft_trace(n_minutes=0)
