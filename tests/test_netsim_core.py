"""Tests for the event engine, links, queues, nodes, and packets."""

import pytest

from repro.netsim import EdgeSpec, FlowMonitor, Link, Network, Packet, Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]
        assert sim.now == 2.0

    def test_ties_break_in_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run(until=2.0)
        assert not fired
        assert sim.now == 2.0
        sim.run(until=10.0)
        assert fired

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def outer():
            times.append(sim.now)
            sim.schedule(1.0, lambda: times.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert times == [1.0, 2.0]

    def test_stop_from_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, sim.stop)
        sim.schedule(2.0, lambda: fired.append(1))
        sim.run()
        assert not fired


class TestPacket:
    def test_validation(self):
        with pytest.raises(ValueError):
            Packet(1, "A", "B", 0, ("A", "B"), 0.0)
        with pytest.raises(ValueError):
            Packet(1, "A", "B", 100, ("A",), 0.0)
        with pytest.raises(ValueError):
            Packet(1, "A", "B", 100, ("B", "A"), 0.0)

    def test_next_hop(self):
        p = Packet(1, "A", "C", 100, ("A", "B", "C"), 0.0)
        assert p.next_hop() == "B"
        p.hop_index = 2
        assert p.next_hop() is None

    def test_unique_ids(self):
        a = Packet(1, "A", "B", 100, ("A", "B"), 0.0)
        b = Packet(1, "A", "B", 100, ("A", "B"), 0.0)
        assert a.packet_id != b.packet_id


class TestLink:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, "x", 0.0, 0.01)
        with pytest.raises(ValueError):
            Link(sim, "x", 1e6, -1.0)

    def test_serialization_plus_propagation(self):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 1e6, 0.01)])
        arrivals = []
        net.nodes["B"].on_deliver(lambda p: arrivals.append(sim.now))
        p = Packet(1, "A", "B", 1250, ("A", "B"), 0.0)  # 10 kbit -> 10 ms tx
        net.nodes["A"].inject(p)
        sim.run()
        assert arrivals[0] == pytest.approx(0.01 + 0.01)

    def test_fifo_order(self):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 1e6, 0.0)])
        got = []
        net.nodes["B"].on_deliver(lambda p: got.append(p.seq))
        for seq in range(5):
            net.nodes["A"].inject(Packet(1, "A", "B", 500, ("A", "B"), 0.0, seq=seq))
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_drop_tail(self):
        sim = Simulator()
        net = Network.from_edges(
            sim, [EdgeSpec("A", "B", 1e6, 0.0, queue_capacity=2)]
        )
        link = net.link("A", "B")
        # 1 in service + 2 queued = 3 accepted, the 4th drops.
        for seq in range(4):
            net.nodes["A"].inject(Packet(1, "A", "B", 500, ("A", "B"), 0.0, seq=seq))
        assert link.dropped_packets == 1
        sim.run()
        assert net.nodes["B"].delivered == 3

    def test_packet_conservation(self):
        """Every sent packet is delivered, queued, or dropped."""
        sim = Simulator()
        net = Network.from_edges(
            sim, [EdgeSpec("A", "B", 1e6, 0.001, queue_capacity=5)]
        )
        n = 50
        for seq in range(n):
            net.nodes["A"].inject(Packet(1, "A", "B", 500, ("A", "B"), 0.0, seq=seq))
        sim.run()
        link = net.link("A", "B")
        assert net.nodes["B"].delivered + link.dropped_packets == n

    def test_utilization(self):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 1e6, 0.0)])
        net.nodes["A"].inject(Packet(1, "A", "B", 12_500, ("A", "B"), 0.0))  # 0.1 s
        sim.run()
        assert net.link("A", "B").utilization(1.0) == pytest.approx(0.1)

    def test_unattached_link_raises(self):
        sim = Simulator()
        link = Link(sim, "x", 1e6, 0.0)
        with pytest.raises(RuntimeError):
            link.send(Packet(1, "A", "B", 100, ("A", "B"), 0.0))


class TestNode:
    def test_multi_hop_forwarding(self):
        sim = Simulator()
        net = Network.from_edges(
            sim,
            [EdgeSpec("A", "B", 1e6, 0.001), EdgeSpec("B", "C", 1e6, 0.001)],
        )
        delivered = []
        net.nodes["C"].on_deliver(lambda p: delivered.append(p))
        net.nodes["A"].inject(Packet(1, "A", "C", 500, ("A", "B", "C"), 0.0))
        sim.run()
        assert len(delivered) == 1
        assert net.nodes["B"].forwarded == 1

    def test_missing_link_raises(self):
        sim = Simulator()
        net = Network(sim)
        net.add_node("A")
        with pytest.raises(KeyError):
            net.nodes["A"].link_to("Z")

    def test_inject_foreign_packet_raises(self):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 1e6, 0.0)])
        with pytest.raises(ValueError):
            net.nodes["B"].inject(Packet(1, "A", "B", 100, ("A", "B"), 0.0))

    def test_flow_keyed_delivery(self):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 1e6, 0.0)])
        got_1, got_2 = [], []
        net.nodes["B"].on_deliver_flow(1, got_1.append)
        net.nodes["B"].on_deliver_flow(2, got_2.append)
        net.nodes["A"].inject(Packet(1, "A", "B", 100, ("A", "B"), 0.0))
        net.nodes["A"].inject(Packet(2, "A", "B", 100, ("A", "B"), 0.0))
        sim.run()
        assert len(got_1) == 1
        assert len(got_2) == 1


class TestNetwork:
    def test_duplicate_node_raises(self):
        net = Network(Simulator())
        net.add_node("A")
        with pytest.raises(ValueError):
            net.add_node("A")

    def test_duplicate_edge_raises(self):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 1e6, 0.0)])
        with pytest.raises(ValueError):
            net.add_edge(EdgeSpec("A", "B", 1e6, 0.0))

    def test_bidirectional_links(self):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 1e6, 0.0)])
        assert ("A", "B") in net.links
        assert ("B", "A") in net.links


class TestFlowMonitorAccounting:
    def test_loss_and_delay(self):
        sim = Simulator()
        net = Network.from_edges(
            sim, [EdgeSpec("A", "B", 1e6, 0.005, queue_capacity=3)]
        )
        mon = FlowMonitor(sim)
        mon.watch_link(net.link("A", "B"))
        for seq in range(10):
            p = Packet(7, "A", "B", 500, ("A", "B"), sim.now, seq=seq)
            mon.record_sent(p)
            net.nodes["A"].inject(p)
        net.nodes["B"].on_deliver_flow(7, mon.record_delivered)
        # Delivery handler registered after injection misses nothing:
        # nothing has been delivered yet at t=0.
        sim.run()
        stats = mon.flows[7]
        assert stats.sent == 10
        assert stats.received + stats.dropped == 10
        assert stats.dropped == 6  # 1 in service + 3 queued survive
        assert stats.mean_delay_s > 0.005
