"""Tests for the Fresnel-zone / Earth-bulge clearance math (paper §3.1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (
    RadioProfile,
    earth_bulge_m,
    fresnel_radius_m,
    midpoint_clearance_m,
    required_clearance_m,
)

hop_st = st.floats(min_value=0.5, max_value=150.0, allow_nan=False)


class TestFresnelRadius:
    def test_paper_midpoint_formula(self):
        # hFres ~= 8.7 m sqrt(D/1km) / sqrt(f/1GHz): D=100 km, f=11 GHz.
        expected = 8.7 * math.sqrt(100.0) / math.sqrt(11.0)
        got = fresnel_radius_m(50.0, 50.0, frequency_ghz=11.0)
        assert got == pytest.approx(expected, rel=0.01)

    def test_one_km_one_ghz(self):
        # The paper's normalization point: D = 1 km, f = 1 GHz -> 8.7 m.
        assert fresnel_radius_m(0.5, 0.5, frequency_ghz=1.0) == pytest.approx(8.7, rel=0.01)

    def test_zero_at_endpoints(self):
        assert fresnel_radius_m(0.0, 10.0) == 0.0
        assert fresnel_radius_m(10.0, 0.0) == 0.0

    def test_higher_frequency_smaller_zone(self):
        low = fresnel_radius_m(25.0, 25.0, frequency_ghz=6.0)
        high = fresnel_radius_m(25.0, 25.0, frequency_ghz=18.0)
        assert high < low

    @given(hop_st)
    @settings(max_examples=60)
    def test_maximum_at_midpoint(self, hop):
        mid = fresnel_radius_m(hop / 2, hop / 2)
        off = fresnel_radius_m(hop / 4, 3 * hop / 4)
        assert mid >= off

    @given(hop_st, hop_st)
    @settings(max_examples=60)
    def test_symmetric_in_d1_d2(self, d1, d2):
        assert fresnel_radius_m(d1, d2) == pytest.approx(fresnel_radius_m(d2, d1))


class TestEarthBulge:
    def test_paper_midpoint_formula_100km(self):
        # hEarth ~= D^2/(50 K) m: D=100, K=1.3 -> 153.8 m.
        assert earth_bulge_m(50.0, 50.0, k_factor=1.3) == pytest.approx(153.85, rel=0.01)

    def test_paper_midpoint_formula_60km(self):
        assert earth_bulge_m(30.0, 30.0, k_factor=1.3) == pytest.approx(
            60.0**2 / (50 * 1.3), rel=0.01
        )

    def test_zero_at_endpoints(self):
        assert earth_bulge_m(0.0, 42.0) == 0.0

    def test_larger_k_smaller_bulge(self):
        # More refraction (larger K) lets the beam follow the Earth more.
        assert earth_bulge_m(50.0, 50.0, k_factor=1.6) < earth_bulge_m(
            50.0, 50.0, k_factor=1.0
        )

    @given(hop_st)
    @settings(max_examples=60)
    def test_quadratic_scaling(self, hop):
        # Doubling the hop length quadruples the midpoint bulge.
        single = earth_bulge_m(hop / 2, hop / 2)
        double = earth_bulge_m(hop, hop)
        assert double == pytest.approx(4.0 * single, rel=1e-9)


class TestClearance:
    def test_100km_hop_total(self):
        # 153.8 m bulge + 26.2 m Fresnel = ~180 m at the midpoint.
        assert midpoint_clearance_m(100.0) == pytest.approx(180.1, abs=1.0)

    def test_required_clearance_sums_terms(self):
        d1, d2 = 30.0, 70.0
        expect = earth_bulge_m(d1, d2) + fresnel_radius_m(d1, d2)
        assert required_clearance_m(d1, d2) == pytest.approx(expect)

    @given(hop_st)
    @settings(max_examples=60)
    def test_monotone_in_hop_length(self, hop):
        assert midpoint_clearance_m(hop * 1.5) > midpoint_clearance_m(hop)


class TestRadioProfile:
    def test_defaults_match_paper(self):
        p = RadioProfile()
        assert p.frequency_ghz == 11.0
        assert p.k_factor == 1.3
        assert p.max_range_km == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioProfile(frequency_ghz=0.0)
        with pytest.raises(ValueError):
            RadioProfile(k_factor=-1.0)
        with pytest.raises(ValueError):
            RadioProfile(max_range_km=0.0)

    def test_clearance_delegates(self):
        p = RadioProfile()
        assert p.clearance_m(50.0, 50.0) == pytest.approx(midpoint_clearance_m(100.0))
