"""Cross-stack property-based tests (hypothesis).

Invariants that must hold for *any* valid input, not just the fixtures:
random design problems, random packet workloads, random storm queries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Topology,
    fiber_only_topology,
    greedy_sequence,
    prune_useless_links,
    solve_heuristic,
)
from repro.netsim import EdgeSpec, FlowMonitor, Network, Simulator, UdpFlow
from repro.weather import specific_attenuation_db_per_km

from conftest import make_toy_design

design_seed = st.integers(min_value=0, max_value=10_000)


class TestDesignInvariants:
    @given(design_seed, st.floats(50.0, 500.0))
    @settings(max_examples=15, deadline=None)
    def test_greedy_never_worse_than_fiber(self, seed, budget):
        design = make_toy_design(7, seed=seed)
        result = solve_heuristic(design, budget, ilp_refinement=False)
        fiber = fiber_only_topology(design).mean_stretch()
        assert result.objective <= fiber + 1e-9
        assert result.objective >= 1.0 - 1e-9

    @given(design_seed)
    @settings(max_examples=15, deadline=None)
    def test_greedy_budget_and_monotonicity(self, seed):
        design = make_toy_design(8, seed=seed)
        steps = greedy_sequence(design, 300.0)
        costs = [s.cumulative_cost for s in steps]
        stretches = [s.mean_stretch for s in steps]
        assert costs == sorted(costs)
        assert all(c <= 300.0 for c in costs)
        assert stretches == sorted(stretches, reverse=True)

    @given(design_seed)
    @settings(max_examples=15, deadline=None)
    def test_pruned_links_truly_useless(self, seed):
        """Building a pruned-away link never improves mean stretch."""
        design = make_toy_design(6, seed=seed)
        useful = set(prune_useless_links(design))
        useless = [e for e in design.candidate_links() if e not in useful]
        base = fiber_only_topology(design).mean_stretch()
        for link in useless[:3]:
            topo = Topology(design=design, mw_links=frozenset({link}))
            assert topo.mean_stretch() == pytest.approx(base, abs=1e-9)

    @given(design_seed)
    @settings(max_examples=10, deadline=None)
    def test_stretch_matrix_lower_bound(self, seed):
        design = make_toy_design(7, seed=seed)
        result = solve_heuristic(design, 200.0, ilp_refinement=False)
        s = result.topology.stretch_matrix()
        vals = s[np.isfinite(s)]
        assert np.all(vals >= 1.0 - 1e-9)


class TestNetsimInvariants:
    @given(
        st.integers(2, 5),
        st.floats(0.2, 1.4),
        st.integers(0, 1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_packet_conservation_on_chain(self, n_nodes, load, seed):
        """sent == received + dropped + in-flight on any chain/load."""
        sim = Simulator()
        edges = [
            EdgeSpec(f"N{i}", f"N{i + 1}", 1e6, 0.001, queue_capacity=20)
            for i in range(n_nodes - 1)
        ]
        net = Network.from_edges(sim, edges)
        monitor = FlowMonitor(sim)
        for link in net.links.values():
            monitor.watch_link(link)
        path = tuple(f"N{i}" for i in range(n_nodes))
        flow = UdpFlow(
            sim, net, monitor, 1, path, rate_bps=load * 1e6, seed=seed
        )
        flow.start()
        sim.run(until=1.0)
        flow.stop()
        sim.run(until=3.0)  # drain
        stats = monitor.flows[1]
        assert stats.sent == stats.received + stats.dropped

    @given(st.floats(0.1, 0.8), st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_underloaded_link_lossless(self, load, seed):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 1e6, 0.001)])
        monitor = FlowMonitor(sim)
        monitor.watch_link(net.link("A", "B"))
        flow = UdpFlow(
            sim, net, monitor, 1, ("A", "B"), rate_bps=load * 1e6, seed=seed
        )
        flow.start()
        sim.run(until=1.5)
        assert monitor.flows[1].loss_rate < 0.05

    @given(st.floats(0.1, 0.9))
    @settings(max_examples=10, deadline=None)
    def test_utilization_tracks_offered_load(self, load):
        sim = Simulator()
        net = Network.from_edges(sim, [EdgeSpec("A", "B", 1e6, 0.0)])
        monitor = FlowMonitor(sim)
        flow = UdpFlow(
            sim, net, monitor, 1, ("A", "B"), rate_bps=load * 1e6,
            poisson=False, seed=0,
        )
        flow.start()
        sim.run(until=4.0)
        assert net.link("A", "B").utilization(4.0) == pytest.approx(load, abs=0.05)


class TestPhysicsInvariants:
    @given(st.floats(6.0, 18.0), st.floats(0.0, 120.0))
    @settings(max_examples=40)
    def test_attenuation_finite_and_nonnegative(self, freq, rain):
        gamma = specific_attenuation_db_per_km(rain, freq)
        assert np.isfinite(gamma)
        assert gamma >= 0.0

    @given(st.floats(6.0, 17.0), st.floats(1.0, 120.0))
    @settings(max_examples=40)
    def test_attenuation_increases_with_frequency(self, freq, rain):
        low = specific_attenuation_db_per_km(rain, freq)
        high = specific_attenuation_db_per_km(rain, freq + 1.0)
        assert high >= low * 0.95  # monotone up to interpolation wiggle
