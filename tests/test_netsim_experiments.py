"""Integration tests: packet simulation over designed topologies."""

import numpy as np
import pytest

from repro.core import solve_heuristic
from repro.netsim import build_edge_specs, run_udp_experiment
from repro.traffic import mixed_matrix, perturbed_population_matrix


@pytest.fixture(scope="module")
def designed_20(small_us_scenario):
    sc = small_us_scenario
    topo = solve_heuristic(sc.design_input(), 800.0, ilp_refinement=False).topology
    return sc, topo


# Make the session fixture visible at module scope.
@pytest.fixture(scope="module")
def small_us_scenario():
    from repro.scenarios import us_scenario

    return us_scenario(n_sites=20)


class TestEdgeSpecs:
    def test_specs_cover_all_mw_links(self, designed_20):
        _, topo = designed_20
        specs = build_edge_specs(topo, 50.0)
        names = {(s.a, s.b) for s in specs}
        for a, b in topo.mw_links:
            assert (str(a), str(b)) in names

    def test_delays_match_distances(self, designed_20):
        _, topo = designed_20
        specs = build_edge_specs(topo, 50.0)
        by_name = {(s.a, s.b): s for s in specs}
        for a, b in topo.mw_links:
            spec = by_name[(str(a), str(b))]
            expected = topo.design.mw_km[a, b] / 299_792.458
            assert spec.delay_s == pytest.approx(expected)

    def test_rate_scale_validation(self, designed_20):
        _, topo = designed_20
        with pytest.raises(ValueError):
            build_edge_specs(topo, 50.0, rate_scale=0.0)


class TestUdpExperiments:
    def test_low_load_near_zero_loss(self, designed_20):
        _, topo = designed_20
        r = run_udp_experiment(topo, 50.0, 0.3, duration_s=0.5)
        assert r.loss_rate < 0.01
        assert r.mean_delay_ms > 0.0

    def test_matched_traffic_high_load_low_loss(self, designed_20):
        """§5: with matching traffic, 95% load runs with near-zero loss."""
        _, topo = designed_20
        r = run_udp_experiment(topo, 50.0, 0.95, duration_s=0.5)
        assert r.loss_rate < 0.02

    def test_delay_monotone_in_load(self, designed_20):
        _, topo = designed_20
        delays = [
            run_udp_experiment(topo, 50.0, f, duration_s=0.5).mean_delay_ms
            for f in (0.2, 0.9)
        ]
        assert delays[1] >= delays[0] - 0.5

    def test_perturbed_traffic_low_load_ok(self, designed_20):
        """Fig 5: perturbations cost little until high load."""
        sc, topo = designed_20
        pert = perturbed_population_matrix(list(sc.sites), gamma=0.5, seed=7)
        base = run_udp_experiment(topo, 50.0, 0.5, duration_s=0.5)
        shaken = run_udp_experiment(
            topo, 50.0, 0.5, offered_traffic=pert, duration_s=0.5
        )
        assert shaken.loss_rate < 0.02
        assert abs(shaken.mean_delay_ms - base.mean_delay_ms) < 5.0

    def test_mixed_traffic_runs(self, designed_20):
        sc, topo = designed_20
        h = topo.design.traffic
        rng_m = np.zeros_like(h)
        rng_m[0, 1] = rng_m[1, 0] = 1.0
        mix = mixed_matrix([(h, 4.0), (rng_m, 1.0)])
        r = run_udp_experiment(topo, 50.0, 0.4, offered_traffic=mix, duration_s=0.3)
        assert r.loss_rate < 0.05

    def test_bad_fraction_raises(self, designed_20):
        _, topo = designed_20
        with pytest.raises(ValueError):
            run_udp_experiment(topo, 50.0, 0.0)


class TestDeterminism:
    def test_same_seed_identical_results(self, designed_20):
        """Two runs with one seed reproduce delivery/loss exactly."""
        _, topo = designed_20
        first = run_udp_experiment(topo, 50.0, 0.6, duration_s=0.5, seed=3)
        second = run_udp_experiment(topo, 50.0, 0.6, duration_s=0.5, seed=3)
        assert first.mean_delay_ms == second.mean_delay_ms
        assert first.loss_rate == second.loss_rate
        assert first.max_link_utilization == second.max_link_utilization
        assert first.input_rate_fraction == second.input_rate_fraction

    def test_seed_changes_arrivals(self, designed_20):
        """Different seeds draw different Poisson arrival processes."""
        _, topo = designed_20
        a = run_udp_experiment(topo, 50.0, 0.6, duration_s=0.5, seed=3)
        b = run_udp_experiment(topo, 50.0, 0.6, duration_s=0.5, seed=4)
        # Same load, same topology — only the arrival randomness moves.
        assert (a.mean_delay_ms, a.loss_rate) != (b.mean_delay_ms, b.loss_rate)
