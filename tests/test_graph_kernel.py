"""Tests for the shared graph kernel (repro.graph) and its consumers.

Covers the kernel's solver equivalences (CSR Dijkstra vs dense FW),
the incremental single-edge delta rule (against full recomputes, with
add/remove round-trips), the versioned GraphView, Topology memoization,
RoutingCache over a GraphView, the delta-evaluated budget evolution,
and the repo-wide ban on dense Floyd-Warshall call sites outside
``src/repro/graph/``.
"""

from __future__ import annotations

import pickle
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core import budget_evolution, greedy_sequence, mw_shares, shares_from_state
from repro.core.topology import Topology, mean_stretch_from_distances
from repro.graph import (
    GraphKernel,
    GraphView,
    closure_with_edges,
    edge_delta_distances,
    edge_delta_with_carry,
    graph_kernel_version,
)
from repro.netsim.routing import RoutingCache

from conftest import make_toy_design


def random_weights(n: int, density: float, seed: int) -> np.ndarray:
    """A random symmetric weight matrix with the given edge density."""
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2)) * 50.0
    full = np.sqrt(((pts[:, None, :] - pts[None, :, :]) ** 2).sum(-1))
    w = np.full((n, n), np.inf)
    iu = np.triu_indices(n, k=1)
    keep = rng.random(len(iu[0])) < density
    # Guarantee connectivity with a path 0-1-...-(n-1).
    chain = iu[0] + 1 == iu[1]
    keep |= chain
    w[iu[0][keep], iu[1][keep]] = full[iu[0][keep], iu[1][keep]]
    w[iu[1][keep], iu[0][keep]] = full[iu[0][keep], iu[1][keep]]
    np.fill_diagonal(w, 0.0)
    return w


class TestDeltaRule:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_delta_equals_full_recompute_on_add(self, seed):
        w = random_weights(25, 0.3, seed)
        rng = np.random.default_rng(seed + 100)
        dist = GraphKernel(w).distances()
        for _ in range(5):
            a, b = rng.choice(25, size=2, replace=False)
            new_w = float(dist[a, b] * rng.uniform(0.2, 0.9))
            updated = edge_delta_distances(dist, int(a), int(b), new_w)
            w = w.copy()
            w[a, b] = w[b, a] = min(w[a, b], new_w)
            full = GraphKernel(w).distances()
            np.testing.assert_allclose(updated, full, rtol=1e-9, atol=1e-9)
            dist = updated

    def test_delta_matches_greedy_formula_bitwise(self):
        # The seed heuristic's update, verbatim: the kernel rule must be
        # bit-identical so greedy link selection cannot drift.
        w = random_weights(20, 1.0, 7)
        dist = GraphKernel(w).distances()
        a, b, mw_len = 3, 11, float(dist[3, 11]) * 0.5
        via = np.minimum(
            dist[:, a][:, None] + dist[b, :][None, :],
            dist[:, b][:, None] + dist[a, :][None, :],
        )
        expected = np.minimum(dist, via + mw_len)
        actual = edge_delta_distances(dist, a, b, mw_len)
        assert np.array_equal(expected, actual)

    def test_delta_with_carry_distances_bitwise(self):
        w = random_weights(18, 0.5, 5)
        dist = GraphKernel(w).distances()
        carry = np.zeros_like(dist)
        a, b, new_w = 2, 9, float(dist[2, 9]) * 0.4
        new_dist, _ = edge_delta_with_carry(dist, carry, a, b, new_w)
        assert np.array_equal(new_dist, edge_delta_distances(dist, a, b, new_w))

    def test_carry_tracks_edge_quantity(self):
        # Triangle: 0-1 (10), 1-2 (10); adding 0-2 at length 4 reroutes
        # the 0-2 pair over the new edge and carries its quantity.
        w = np.full((3, 3), np.inf)
        np.fill_diagonal(w, 0.0)
        w[0, 1] = w[1, 0] = 10.0
        w[1, 2] = w[2, 1] = 10.0
        dist = GraphKernel(w).distances()
        carry = np.zeros_like(dist)
        new_dist, new_carry = edge_delta_with_carry(dist, carry, 0, 2, 4.0)
        assert new_dist[0, 2] == 4.0
        assert new_carry[0, 2] == 4.0       # rerouted pair carries the edge
        assert new_carry[0, 1] == 0.0       # untouched pair keeps its carry
        # 1 -> 2 now goes 1-0-2 (14 > 10 direct): not improved, carry 0.
        assert new_dist[1, 2] == 10.0
        assert new_carry[1, 2] == 0.0
        # A second, longer chain through the carried edge accumulates.
        d2, c2 = edge_delta_with_carry(new_dist, new_carry, 1, 2, 1.0)
        assert d2[0, 1] == 5.0              # 0 -[4]- 2 -[1]- 1
        assert c2[0, 1] == 5.0

    def test_closure_with_edges_matches_kernel(self):
        w = random_weights(22, 1.0, 11)
        closure = GraphKernel(w).distances()
        edges = [(0, 21, float(closure[0, 21]) * 0.3),
                 (5, 15, float(closure[5, 15]) * 0.5),
                 (2, 19, float(closure[2, 19]) * 0.4)]
        incremental = closure_with_edges(closure, edges)
        w2 = w.copy()
        for a, b, ew in edges:
            w2[a, b] = w2[b, a] = min(w2[a, b], ew)
        np.testing.assert_allclose(
            incremental, GraphKernel(w2).distances(), rtol=1e-9, atol=1e-9
        )


class TestGraphKernel:
    @pytest.mark.parametrize("density", [0.15, 0.5, 1.0])
    def test_dijkstra_equals_dense_fw(self, density):
        w = random_weights(30, density, 42)
        dense = GraphKernel(w, method="dense").distances()
        sparse = GraphKernel(w, method="sparse").distances()
        np.testing.assert_allclose(dense, sparse, rtol=1e-9, atol=1e-9)

    def test_auto_method_matches_both(self):
        w = random_weights(30, 0.4, 3)
        auto = GraphKernel(w).distances()
        np.testing.assert_allclose(
            auto, GraphKernel(w, method="dense").distances(), rtol=1e-9
        )

    def test_distances_cached_and_readonly(self):
        k = GraphKernel(random_weights(10, 1.0, 0))
        d1 = k.distances()
        assert k.distances() is d1
        with pytest.raises(ValueError):
            d1[0, 1] = -1.0

    def test_distances_from_matches_full(self):
        w = random_weights(25, 0.4, 9)
        k = GraphKernel(w)
        rows = k.distances_from([3, 17])
        full = k.distances()
        np.testing.assert_allclose(rows[0], full[3], rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(rows[1], full[17], rtol=1e-9, atol=1e-9)

    def test_path_reconstruction_length(self):
        w = random_weights(20, 0.3, 13)
        k = GraphKernel(w)
        dist = k.distances()
        for s, t in [(0, 19), (4, 12), (7, 7)]:
            path = k.path(s, t)
            assert path is not None
            assert path[0] == s and path[-1] == t
            length = sum(w[u, v] for u, v in zip(path[:-1], path[1:]))
            assert length == pytest.approx(float(dist[s, t]), rel=1e-9)

    def test_unreachable_pair(self):
        w = np.full((4, 4), np.inf)
        np.fill_diagonal(w, 0.0)
        w[0, 1] = w[1, 0] = 1.0
        w[2, 3] = w[3, 2] = 1.0
        k = GraphKernel(w)
        assert not np.isfinite(k.distances()[0, 2])
        assert k.path(0, 2) is None
        assert k.path(0, 1) == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            GraphKernel(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            GraphKernel(np.zeros((3, 3)), method="quantum")

    def test_version_tag(self):
        assert graph_kernel_version() == "1"


class TestGraphView:
    def test_version_and_signature(self):
        view = GraphView(random_weights(10, 0.5, 1), tag="t")
        sig0 = view.signature
        assert sig0[0] == "t" and sig0[1] == 0
        view.set_edge(0, 9, 0.5)
        assert view.version == 1
        assert view.signature != sig0
        # Setting the identical weight is a no-op.
        view.set_edge(0, 9, 0.5)
        assert view.version == 1

    def test_improvement_delta_matches_full_solve(self):
        w = random_weights(20, 0.6, 21)
        view = GraphView(w)
        view.distances()  # prime the cache so set_edge delta-updates it
        view.set_edge(2, 17, 0.1)
        w2 = w.copy()
        w2[2, 17] = w2[17, 2] = 0.1
        np.testing.assert_allclose(
            view.distances(), GraphKernel(w2).distances(), rtol=1e-9, atol=1e-9
        )

    def test_add_remove_round_trip(self):
        w = random_weights(15, 0.5, 33)
        baseline = GraphKernel(w).distances()
        view = GraphView(w)
        view.distances()
        view.set_edge(0, 14, 0.01)
        assert view.distances()[0, 14] == pytest.approx(0.01)
        view.remove_edge(0, 14)
        # Exact fallback: identical weights, identical solver, so the
        # round-trip restores the original distances bit-for-bit.
        assert np.array_equal(view.distances(), baseline)

    def test_worsening_invalidates(self):
        w = random_weights(12, 1.0, 8)
        view = GraphView(w)
        d_before = view.distances()[3, 7]
        view.set_edge(3, 7, float(w[3, 7]) * 10.0)
        assert view.distances()[3, 7] <= float(w[3, 7]) * 10.0
        w2 = w.copy()
        w2[3, 7] = w2[7, 3] = w[3, 7] * 10.0
        np.testing.assert_allclose(
            view.distances(), GraphKernel(w2).distances(), rtol=1e-9
        )
        assert view.distances()[3, 7] >= d_before - 1e-12

    def test_to_networkx_matches_weights(self):
        w = random_weights(8, 0.5, 2)
        graph = GraphView(w).to_networkx(weight="latency")
        assert set(graph.nodes) == set(range(8))
        iu = np.triu_indices(8, k=1)
        finite = np.isfinite(w[iu])
        assert graph.number_of_edges() == int(finite.sum())
        for u, v, data in graph.edges(data=True):
            assert data["latency"] == pytest.approx(float(w[u, v]))

    def test_validation(self):
        view = GraphView(random_weights(5, 1.0, 0))
        with pytest.raises(ValueError):
            view.set_edge(0, 0, 1.0)
        with pytest.raises(ValueError):
            view.set_edge(0, 7, 1.0)
        with pytest.raises(ValueError):
            view.set_edge(0, 1, -2.0)


class TestTopologyMemoization:
    def test_distance_matrix_memoized(self, toy_design_8):
        topo = Topology(design=toy_design_8, mw_links=frozenset({(0, 1)}))
        d1 = topo.effective_distance_matrix()
        assert topo.effective_distance_matrix() is d1
        assert topo.hybrid_weight_matrix() is topo.hybrid_weight_matrix()
        assert topo.routed_paths() is topo.routed_paths()
        with pytest.raises(ValueError):
            d1[0, 1] = 0.0

    def test_kernel_shared_view_fresh(self, toy_design_8):
        topo = Topology(design=toy_design_8, mw_links=frozenset({(0, 1)}))
        assert topo.graph_kernel() is topo.graph_kernel()
        view_a = topo.graph_view()
        view_b = topo.graph_view()
        assert view_a is not view_b
        # Mutating a caller-owned view never leaks into the topology.
        before = topo.effective_distance_matrix().copy()
        view_a.set_edge(0, 7, 1e-6)
        np.testing.assert_array_equal(topo.effective_distance_matrix(), before)

    def test_pickle_drops_cache(self, toy_design_8):
        topo = Topology(design=toy_design_8, mw_links=frozenset({(0, 1)}))
        d1 = topo.effective_distance_matrix()
        clone = pickle.loads(pickle.dumps(topo))
        assert clone.mw_links == topo.mw_links
        np.testing.assert_array_equal(clone.effective_distance_matrix(), d1)

    def test_stretch_consistent_with_distances(self, toy_design_8):
        topo = Topology(design=toy_design_8, mw_links=frozenset({(0, 1)}))
        expected = mean_stretch_from_distances(
            toy_design_8, topo.effective_distance_matrix()
        )
        assert topo.mean_stretch() == pytest.approx(expected, rel=1e-12)


class TestRoutedPathsDisconnected:
    def _disconnected_design(self):
        design = make_toy_design(6, seed=4)
        fiber = design.fiber_km.copy()
        mw = design.mw_km.copy()
        # Split {0,1,2} from {3,4,5}: no fiber, no MW across the cut.
        for i in range(3):
            for j in range(3, 6):
                fiber[i, j] = fiber[j, i] = np.inf
                mw[i, j] = mw[j, i] = np.inf
        return replace(design, fiber_km=fiber, mw_km=mw)

    def test_unreachable_pairs_skipped(self):
        design = self._disconnected_design()
        topo = Topology(design=design, mw_links=frozenset({(0, 1), (3, 4)}))
        routes = topo.routed_paths()
        for (s, t), path in routes.items():
            # Regression (pre-kernel bug): a -9999 predecessor stored a
            # truncated partial path instead of skipping the pair.
            assert path[0] == s and path[-1] == t
            assert (s < 3) == (t < 3), "cross-component pair got a route"
        assert ((0, 1)) in routes
        assert all((s < 3) == (t < 3) for s, t in routes)
        dist = topo.effective_distance_matrix()
        assert not np.isfinite(dist[0, 3])


class TestRoutingCacheOnGraphView:
    def _topology(self):
        design = make_toy_design(8, seed=8)
        return Topology(design=design, mw_links=frozenset({(0, 1), (2, 3)}))

    def test_cache_consumes_view(self):
        topo = self._topology()
        view = topo.graph_view()
        cache = RoutingCache(view, weight="latency")
        assert cache.view is view
        assert cache.graph.number_of_nodes() == 8
        path = cache.shortest_path(0, 5)
        assert path[0] == 0 and path[-1] == 5
        assert cache.misses == 1
        assert cache.shortest_path(0, 5) == path
        assert cache.hits == 1

    def test_view_export_matches_legacy_graph(self):
        from repro.netsim.experiments import hybrid_routing_graph

        topo = self._topology()
        graph = hybrid_routing_graph(topo)
        w = topo.hybrid_weight_matrix()
        assert graph.number_of_nodes() == 8
        for u, v, data in graph.edges(data=True):
            assert data["latency"] == pytest.approx(float(w[u, v]))
        # The design-side MW link is present at its MW length.
        design = topo.design
        if design.mw_km[0, 1] < design.fiber_km[0, 1]:
            assert graph[0][1]["latency"] == pytest.approx(
                float(design.mw_km[0, 1])
            )

    def test_fail_link_eviction_and_signature(self):
        topo = self._topology()
        cache = RoutingCache(topo.graph_view(), weight="latency")
        crossing = cache.shortest_path(0, 1)
        sig0 = cache.signature
        # Warm a second entry that cannot cross the (0, 1) edge.
        far_pair = None
        for s in range(8):
            for t in range(s + 1, 8):
                p = cache.shortest_path(s, t)
                edges = {(min(u, v), max(u, v)) for u, v in zip(p[:-1], p[1:])}
                if (0, 1) not in edges:
                    far_pair = (s, t)
                    break
            if far_pair:
                break
        assert far_pair is not None
        misses_before = cache.misses
        dropped = cache.fail_link(0, 1)
        assert dropped >= 1
        assert cache.signature != sig0
        # The non-crossing entry stayed warm.
        cache.shortest_path(*far_pair)
        assert cache.misses == misses_before
        # The crossing pair recomputes around the failure.
        rerouted = cache.shortest_path(0, 1)
        assert rerouted != crossing or len(rerouted) > 2
        # Restore flushes everything and bumps the signature again.
        sig1 = cache.signature
        cache.restore_link(0, 1)
        assert cache.signature != sig1
        assert len(cache._cache) == 0

    def test_mutations_mirror_into_view(self):
        topo = self._topology()
        view = topo.graph_view()
        cache = RoutingCache(view, weight="latency")
        original = view.weight(0, 1)
        assert np.isfinite(original)
        cache.fail_link(0, 1)
        assert not np.isfinite(view.weight(0, 1))
        assert view.version == 1
        cache.restore_link(0, 1)
        assert view.weight(0, 1) == pytest.approx(original)
        assert view.version == 2

    def test_single_solve_any_call_order(self, toy_design_8):
        # mean_stretch + mw_shares + routed_paths chains cost one full
        # solve regardless of call order (distances piggyback on the
        # predecessor solve).
        topo = Topology(design=toy_design_8, mw_links=frozenset({(0, 1)}))
        d1 = topo.mean_stretch()
        dist_obj = topo.effective_distance_matrix()
        routes = topo.routed_paths()
        assert topo.graph_kernel().predecessors()[0] is dist_obj
        assert routes is topo.routed_paths()
        assert topo.mean_stretch() == d1


class TestBudgetEvolutionDelta:
    def test_matches_per_budget_recompute(self, toy_design_10):
        steps = greedy_sequence(toy_design_10, 500.0)
        budgets = [0.0, 120.0, 250.0, 500.0]
        points = budget_evolution(toy_design_10, steps, budgets)
        assert [p.budget_towers for p in points] == budgets
        for point in points:
            links = frozenset(
                s.link for s in steps if s.cumulative_cost <= point.budget_towers
            )
            topo = Topology(design=toy_design_10, mw_links=links)
            assert point.n_links == len(links)
            assert point.mean_stretch == pytest.approx(
                topo.mean_stretch(), rel=1e-9
            )
            traffic_on_mw, share = mw_shares(topo)
            assert point.traffic_on_mw == pytest.approx(
                traffic_on_mw, abs=1e-9
            )
            assert point.distance_share_mw == pytest.approx(share, abs=1e-9)

    def test_unsorted_and_duplicate_budgets(self, toy_design_10):
        steps = greedy_sequence(toy_design_10, 500.0)
        shuffled = [500.0, 0.0, 250.0, 250.0]
        points = budget_evolution(toy_design_10, steps, shuffled)
        assert [p.budget_towers for p in points] == shuffled
        by_budget = {p.budget_towers: p for p in points}
        assert points[2].n_links == points[3].n_links
        assert by_budget[0.0].n_links == 0
        assert by_budget[500.0].n_links == len(steps)

    def test_shares_from_state_matches_route_walk(self, toy_design_10):
        steps = greedy_sequence(toy_design_10, 400.0)
        links = frozenset(s.link for s in steps)
        topo = Topology(design=toy_design_10, mw_links=links)
        dist = toy_design_10.fiber_km.copy()
        np.fill_diagonal(dist, 0.0)
        carry = np.zeros_like(dist)
        for step in steps:
            a, b = step.link
            dist, carry = edge_delta_with_carry(
                dist, carry, a, b, toy_design_10.mw_km[a, b]
            )
        expected = mw_shares(topo)
        actual = shares_from_state(toy_design_10, dist, carry)
        assert actual[0] == pytest.approx(expected[0], abs=1e-9)
        assert actual[1] == pytest.approx(expected[1], abs=1e-9)


class TestNoDenseFwOutsideKernel:
    """The historical grep ban, migrated onto the AST lint engine.

    The ``dense-fw-ban`` rule flags code (imports, references,
    ``method="FW"`` arguments, getattr-style string constants) with AST
    precision instead of substring matching — a comment or docstring
    discussing Floyd-Warshall no longer trips the gate, while an
    aliased import still does.
    """

    def test_ast_rule_gate(self):
        """Dense Floyd-Warshall may only appear inside src/repro/graph/."""
        from repro.analysis import run_lint

        package_root = Path(repro.__file__).resolve().parent
        result = run_lint([package_root], rules=["dense-fw-ban"])
        assert result.findings == [], (
            "dense FW call sites outside the graph kernel: "
            + ", ".join(f.location() for f in result.findings)
        )

    def test_rule_has_teeth(self, tmp_path):
        """The rule actually fires on the patterns the grep used to catch."""
        from repro.analysis import run_lint

        offender = tmp_path / "offender.py"
        offender.write_text(
            "from scipy.sparse.csgraph import floyd_warshall as fw\n"
            "import scipy.sparse.csgraph as csg\n"
            "def solve(m, sp):\n"
            "    fw(m)\n"
            "    csg.floyd_warshall(m)\n"
            '    return sp(m, method="FW")\n'
        )
        result = run_lint([tmp_path], rules=["dense-fw-ban"])
        lines = sorted(f.line for f in result.findings)
        assert lines == [1, 4, 5, 6]

    def test_rule_ignores_prose(self, tmp_path):
        """AST precision: mentions in comments/docstrings do not trip it."""
        from repro.analysis import run_lint

        clean = tmp_path / "clean.py"
        clean.write_text(
            '"""Discusses the floyd_warshall algorithm at length."""\n'
            "# floyd_warshall would be wrong here; see the graph kernel\n"
            "def nothing():\n"
            "    return None\n"
        )
        result = run_lint([tmp_path], rules=["dense-fw-ban"])
        assert result.findings == []


class TestBatchRemoval:
    """GraphView.distances_with_edges_removed: the what-if batch query."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sparse_matches_full_solve(self, seed):
        w = random_weights(30, 0.12, seed)
        view = GraphView(w)
        rng = np.random.default_rng(seed + 50)
        iu = np.triu_indices(30, k=1)
        present = [
            (int(a), int(b))
            for a, b in zip(*iu)
            if np.isfinite(w[a, b])
        ]
        removed = [present[i] for i in rng.choice(len(present), 4, replace=False)]
        result = view.distances_with_edges_removed(removed)
        modified = w.copy()
        for a, b in removed:
            modified[a, b] = modified[b, a] = np.inf
        expected = GraphKernel(modified).distances()
        assert np.array_equal(result, expected)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_dense_matches_exact_fallback(self, seed):
        w = random_weights(20, 0.9, seed)
        view = GraphView(w)
        removed = [(0, 1), (2, 5, float(w[2, 5]) * 3.0)]
        result = view.distances_with_edges_removed(removed)
        clone = GraphView(w)
        clone.set_edge(0, 1, np.inf)
        clone.set_edge(2, 5, float(w[2, 5]) * 3.0)
        assert np.array_equal(result, clone.distances())

    def test_worsening_triples_match_set_edge(self):
        w = random_weights(25, 0.15, 7)
        view = GraphView(w)
        worse = [(0, 1, float(w[0, 1]) * 2.0), (3, 4, float(w[3, 4]) + 10.0)]
        result = view.distances_with_edges_removed(worse)
        modified = w.copy()
        for a, b, nw in worse:
            modified[a, b] = modified[b, a] = nw
        assert np.allclose(result, GraphKernel(modified).distances(), rtol=1e-12)

    def test_duplicate_entries_deduplicated(self):
        """Regression: a duplicated (a, b) must not be processed twice.

        Both duplicates read the same ``old`` weight, so applying both
        would double-process the edge; with conflicting weights the
        result depended on entry order.  Duplicates — in either
        orientation — now merge, the strongest worsening winning.
        """
        w = random_weights(20, 0.15, 9)
        view = GraphView(w)
        worse = float(w[0, 1]) * 2.0
        worst = float(w[0, 1]) * 5.0
        for batch in (
            [(0, 1, worse), (0, 1, worse)],          # exact duplicate
            [(0, 1, worse), (1, 0, worse)],          # mirrored duplicate
            [(0, 1, worse), (0, 1, worst)],          # conflict, either order
            [(0, 1, worst), (1, 0, worse)],
        ):
            result = view.distances_with_edges_removed(batch)
            strongest = max(new for _, _, new in batch)
            expected = view.distances_with_edges_removed([(0, 1, strongest)])
            assert np.array_equal(result, expected)

    def test_view_not_mutated(self):
        w = random_weights(15, 0.3, 3)
        view = GraphView(w)
        base = view.distances()
        version = view.version
        view.distances_with_edges_removed([(0, 1), (1, 2)])
        assert view.version == version
        assert view.weight(0, 1) == w[0, 1]
        assert view.distances() is base

    def test_noop_edges_return_base(self):
        w = random_weights(15, 0.3, 4)
        # Pick an absent pair: removing it is a no-op.
        iu = np.triu_indices(15, k=1)
        absent = next(
            (int(a), int(b)) for a, b in zip(*iu) if not np.isfinite(w[a, b])
        )
        view = GraphView(w)
        base = view.distances()
        same_weight = (0, 1, float(w[0, 1]))
        assert view.distances_with_edges_removed([absent, same_weight]) is base
        assert view.distances_with_edges_removed([]) is base

    def test_improvement_rejected(self):
        w = random_weights(15, 0.3, 5)
        view = GraphView(w)
        with pytest.raises(ValueError, match="improves"):
            view.distances_with_edges_removed([(0, 1, float(w[0, 1]) / 2.0)])

    def test_invalid_edge_rejected(self):
        view = GraphView(random_weights(10, 0.3, 6))
        with pytest.raises(ValueError):
            view.distances_with_edges_removed([(0, 99)])
        with pytest.raises(ValueError):
            view.distances_with_edges_removed([(3, 3)])

    def test_result_read_only(self):
        w = random_weights(20, 0.15, 8)
        view = GraphView(w)
        result = view.distances_with_edges_removed([(0, 1)])
        with pytest.raises(ValueError):
            result[0, 0] = 1.0

    def test_dense_base_sparse_modified_uses_exact_fallback(self):
        """Removals that cross the density threshold stay bit-exact.

        A base graph just above DENSE_DENSITY_THRESHOLD solves with
        dense FW; removing edges can push the *modified* graph below
        the threshold, where merging FW base rows with Dijkstra
        restarts would drift by ulps — the branch must follow the base
        solve.
        """
        from repro.graph import DENSE_DENSITY_THRESHOLD

        w = random_weights(20, 0.27, 11)
        view = GraphView(w)
        assert view.kernel().density() >= DENSE_DENSITY_THRESHOLD
        iu = np.triu_indices(20, k=1)
        present = [
            (int(a), int(b))
            for a, b in zip(*iu)
            if np.isfinite(w[a, b]) and a + 1 != b  # keep the chain
        ]
        n_pairs = len(iu[0])
        excess = view.kernel().edge_count() - int(
            DENSE_DENSITY_THRESHOLD * n_pairs
        )
        removed = present[: excess + 2]
        result = view.distances_with_edges_removed(removed)
        clone = GraphView(w)
        for a, b in removed:
            clone.set_edge(a, b, np.inf)
        assert clone.kernel().density() < DENSE_DENSITY_THRESHOLD
        assert np.array_equal(result, clone.distances())
