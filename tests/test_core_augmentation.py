"""Tests for capacity augmentation (Step 3) and the cost model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CostModel,
    Topology,
    augment_capacity,
    route_link_demands,
    series_needed,
    solve_heuristic,
)


class TestSeriesNeeded:
    def test_paper_breakpoints(self):
        # <1 Gbps -> 1 series; 1-4 -> 2; 4-9 -> 3 (k^2 rule, §3.3).
        assert series_needed(0.2) == 1
        assert series_needed(1.0) == 1
        assert series_needed(1.5) == 2
        assert series_needed(4.0) == 2
        assert series_needed(4.1) == 3
        assert series_needed(9.0) == 3
        assert series_needed(63.9) == 8

    def test_zero_demand_one_series(self):
        assert series_needed(0.0) == 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            series_needed(-1.0)

    @given(st.floats(0.0, 1000.0))
    @settings(max_examples=60)
    def test_capacity_covers_demand(self, demand):
        k = series_needed(demand)
        assert k * k >= demand or demand <= 1.0

    @given(st.floats(0.1, 1000.0))
    @settings(max_examples=60)
    def test_minimality(self, demand):
        k = series_needed(demand)
        if k > 1:
            assert (k - 1) ** 2 < demand


class TestCostModel:
    def test_paper_defaults(self):
        m = CostModel()
        assert m.link_cost_1gbps_usd == 150_000.0
        assert m.new_tower_cost_usd == 100_000.0
        assert 25_000.0 <= m.tower_rent_usd_per_year <= 50_000.0
        assert m.amortization_years == 5.0

    def test_capex(self):
        m = CostModel()
        assert m.capex_usd(10, 2) == 10 * 150_000 + 2 * 100_000

    def test_opex(self):
        m = CostModel()
        assert m.opex_usd(100) == 100 * 37_500 * 5

    def test_gb_carried_100gbps(self):
        m = CostModel()
        gb = m.gb_carried(100.0)
        # 100 Gbps for 5 years is ~2e9 GB.
        assert gb == pytest.approx(100 / 8 * 5 * 365.25 * 86400, rel=1e-9)

    def test_cost_per_gb_scales_inversely_with_throughput(self):
        m = CostModel()
        low = m.cost_per_gb(1000, 10, 500, aggregate_gbps=10.0)
        high = m.cost_per_gb(1000, 10, 500, aggregate_gbps=100.0)
        assert low == pytest.approx(10.0 * high)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(amortization_years=0.0)
        with pytest.raises(ValueError):
            CostModel(new_tower_cost_usd=-5.0)
        m = CostModel()
        with pytest.raises(ValueError):
            m.gb_carried(0.0)
        with pytest.raises(ValueError):
            m.gb_carried(10.0, utilization=1.5)


class TestRouteLinkDemands:
    def test_demand_conservation_single_link(self, toy_design_8):
        topo = Topology(design=toy_design_8, mw_links=frozenset({(0, 1)}))
        demands = route_link_demands(topo, 100.0)
        assert set(demands) == {(0, 1)}
        # The direct pair's demand is at least routed over the link
        # whenever the MW link is shorter than its fiber.
        if toy_design_8.mw_km[0, 1] < toy_design_8.fiber_km[0, 1]:
            assert demands[(0, 1)] >= 100.0 * toy_design_8.traffic[0, 1] - 1e-9

    def test_total_demand_bounded_by_aggregate_times_links(self, toy_design_10):
        res = solve_heuristic(toy_design_10, 300.0, ilp_refinement=False)
        demands = route_link_demands(res.topology, 50.0)
        assert all(d >= 0 for d in demands.values())

    def test_bad_aggregate_raises(self, toy_design_8):
        topo = Topology(design=toy_design_8, mw_links=frozenset({(0, 1)}))
        with pytest.raises(ValueError):
            route_link_demands(topo, 0.0)


class TestAugmentation:
    @pytest.fixture(scope="class")
    def designed(self, small_us_scenario):
        sc = small_us_scenario
        design = sc.design_input()
        res = solve_heuristic(design, 800.0, ilp_refinement=False)
        return sc, res.topology

    def test_census_sums_to_hops(self, designed):
        sc, topo = designed
        aug = augment_capacity(topo, sc.catalog, sc.registry, 100.0)
        assert sum(aug.hop_census.values()) == sum(
            p.n_hops for p in aug.provisions
        )

    def test_higher_aggregate_needs_more_series(self, designed):
        sc, topo = designed
        low = augment_capacity(topo, sc.catalog, sc.registry, 10.0)
        high = augment_capacity(topo, sc.catalog, sc.registry, 500.0)
        assert high.n_hop_series >= low.n_hop_series
        assert high.n_new_towers >= low.n_new_towers

    def test_cost_per_gb_decreases_with_throughput(self, designed):
        """Fig 4(c): amortized $/GB falls as aggregate throughput rises."""
        sc, topo = designed
        costs = [
            augment_capacity(topo, sc.catalog, sc.registry, g).cost_per_gb()
            for g in (10.0, 100.0, 500.0)
        ]
        assert costs[0] > costs[1] > costs[2]

    def test_series_match_demands(self, designed):
        sc, topo = designed
        aug = augment_capacity(topo, sc.catalog, sc.registry, 200.0)
        for p in aug.provisions:
            assert p.n_series == series_needed(p.demand_gbps)

    def test_rented_towers_positive(self, designed):
        sc, topo = designed
        aug = augment_capacity(topo, sc.catalog, sc.registry, 100.0)
        assert aug.n_rented_towers > 0
