"""Tests for the experiment orchestration layer (``repro.exp``).

Covers the PR-3 acceptance contract: canonical spec form, cache-key
stability across processes, invalidation on spec changes, warm-cache
runs skipping substrate/design executions, sweep determinism across
worker counts, and the ``repro run`` CLI round trip.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exp import (
    ArtifactStore,
    DesignSpec,
    EconSpec,
    ExperimentSpec,
    NetsimSpec,
    NullStore,
    ScenarioSpec,
    SweepRunner,
    WeatherSpec,
    canonical_json,
    run_experiment,
    stage_key,
)

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def tiny_spec(**overrides) -> ExperimentSpec:
    """A 6-site US experiment cheap enough for per-test cold builds."""
    kwargs = dict(
        scenario=ScenarioSpec(name="us", sites=6, seed=42),
        design=DesignSpec(
            budget_towers=150.0,
            solver="heuristic",
            aggregate_gbps=20.0,
            solver_opts={"ilp_refinement": False},
        ),
        netsim=NetsimSpec(loads=(0.3, 0.9), engine="fluid", seed=0),
        econ=EconSpec(),
    )
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


@pytest.fixture(scope="module")
def shared_store(tmp_path_factory):
    return ArtifactStore(tmp_path_factory.mktemp("exp-store"))


class TestSpec:
    def test_json_round_trip(self):
        spec = tiny_spec(weather=WeatherSpec(n_intervals=3))
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_canonical_dict_is_json_clean(self):
        doc = tiny_spec().to_dict()
        json.dumps(doc, allow_nan=False)  # no numpy scalars, no NaN
        assert doc["design"]["solver_opts"] == [["ilp_refinement", False]]

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment spec section"):
            ExperimentSpec.from_dict({"scnario": {}})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown design spec field"):
            ExperimentSpec.from_dict({"design": {"budget": 100}})

    def test_fixed_site_scenarios_reject_sites(self):
        with pytest.raises(ValueError, match="fixed site list"):
            ScenarioSpec(name="europe", sites=10)
        with pytest.raises(ValueError, match="fixed site list"):
            ScenarioSpec(name="interdc", sites=4)

    def test_fixed_los_scenarios_reject_overrides(self):
        with pytest.raises(ValueError, match="LoS overrides"):
            ScenarioSpec(name="interdc", max_range_km=60.0)
        with pytest.raises(ValueError, match="LoS overrides"):
            ScenarioSpec(name="city_dc", usable_height_fraction=0.65)

    def test_scalar_loads_rejected_cleanly(self):
        with pytest.raises(ValueError, match="loads must be a list"):
            ExperimentSpec.from_dict({"netsim": {"loads": 0.5}})

    def test_with_value_replaces_one_field(self):
        spec = tiny_spec()
        moved = spec.with_value("design.budget_towers", 500.0)
        assert moved.design.budget_towers == 500.0
        assert moved.scenario == spec.scenario

    def test_with_value_rejects_disabled_section(self):
        spec = tiny_spec(weather=None)
        with pytest.raises(ValueError, match="not enabled"):
            spec.with_value("weather.n_intervals", 7)

    def test_with_value_rejects_bad_path(self):
        with pytest.raises(ValueError, match="bad spec path"):
            tiny_spec().with_value("budget_towers", 1.0)

    def test_solver_opts_order_is_canonical(self):
        a = DesignSpec(solver_opts={"b": 1, "a": 2})
        b = DesignSpec(solver_opts={"a": 2, "b": 1})
        assert a == b
        assert canonical_json(a.solver_opts) == canonical_json(b.solver_opts)


class TestStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("ab" * 32, {"x": [1, 2, 3]})
        found, value = store.get("ab" * 32)
        assert found and value == {"x": [1, 2, 3]}

    def test_missing_key_is_a_miss(self, tmp_path):
        assert ArtifactStore(tmp_path).get("cd" * 32) == (False, None)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        writer = ArtifactStore(tmp_path)
        key = "ef" * 32
        writer.put(key, 123)
        writer.path_for(key).write_bytes(b"torn write")
        # A fresh store (another process) sees the torn entry as absent.
        assert ArtifactStore(tmp_path).get(key) == (False, None)

    def test_memory_layer_shares_loaded_artifacts(self, tmp_path):
        writer = ArtifactStore(tmp_path)
        key = "0f" * 32
        writer.put(key, {"big": "artifact"})
        reader = ArtifactStore(tmp_path)
        _, first = reader.get(key)
        _, second = reader.get(key)
        assert first is second  # deserialized once per process

    def test_null_store_never_caches(self):
        store = NullStore()
        store.put("ab" * 32, 1)
        assert store.get("ab" * 32) == (False, None)


class TestCacheKeys:
    def test_key_is_stable_across_processes(self):
        """The same canonical spec hashes identically in a fresh process."""
        spec = tiny_spec()
        here = {name: stage_key(spec, name) for name in ("substrate", "design")}
        program = (
            "import json, sys\n"
            "from repro.exp import ExperimentSpec, stage_key\n"
            "spec = ExperimentSpec.from_json(sys.stdin.read())\n"
            "print(json.dumps({n: stage_key(spec, n)"
            " for n in ('substrate', 'design')}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", program],
            input=spec.to_json(),
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout
        assert json.loads(out) == here

    def test_design_field_change_rekeys_design_only(self):
        spec = tiny_spec()
        moved = spec.with_value("design.budget_towers", 999.0)
        assert stage_key(spec, "substrate") == stage_key(moved, "substrate")
        assert stage_key(spec, "design") != stage_key(moved, "design")
        assert stage_key(spec, "netsim") != stage_key(moved, "netsim")

    def test_scenario_seed_change_rekeys_everything(self):
        spec = tiny_spec()
        moved = spec.with_value("scenario.seed", 7)
        for name in ("substrate", "design", "netsim"):
            assert stage_key(spec, name) != stage_key(moved, name)

    def test_default_seed_is_pinned(self):
        """seed=None and the explicit default seed share one substrate."""
        assert stage_key(
            tiny_spec(scenario=ScenarioSpec(name="us", sites=6)), "substrate"
        ) == stage_key(tiny_spec(), "substrate")

    def test_eval_change_leaves_design_key_alone(self):
        spec = tiny_spec()
        moved = spec.with_value("netsim.loads", (0.5,))
        assert stage_key(spec, "design") == stage_key(moved, "design")
        assert stage_key(spec, "netsim") != stage_key(moved, "netsim")

    def test_solver_version_enters_design_key(self, monkeypatch):
        from repro.core import get_solver

        spec = tiny_spec()
        before = stage_key(spec, "design")
        monkeypatch.setattr(
            type(get_solver("heuristic")), "version", "2", raising=False
        )
        assert stage_key(spec, "design") != before


class TestRunExperiment:
    def test_cold_then_warm(self, shared_store):
        spec = tiny_spec()
        cold = run_experiment(spec, store=shared_store)
        warm = run_experiment(spec, store=shared_store)
        assert cold.stage_status["substrate"] == "computed"
        assert warm.stage_status["substrate"] == "cached"
        assert warm.stage_status["design"] == "cached"
        assert cold.records_json() == warm.records_json()

    def test_records_cover_requested_stages(self, shared_store):
        run = run_experiment(tiny_spec(), store=shared_store)
        stages = {row["stage"] for row in run.records}
        assert stages == {"substrate", "design", "netsim", "econ"}

    def test_econ_only_run_skips_design(self, shared_store):
        spec = ExperimentSpec(econ=EconSpec(cost_per_gb=0.81))
        run = run_experiment(spec, store=shared_store, stages=("econ",))
        assert set(run.stage_status) == {"econ"}
        assert {row["stage"] for row in run.records} == {"econ"}

    def test_explicit_stage_records_identical_cold_vs_warm(self, tmp_path):
        """Dependencies pulled in by a cache miss never enter the records."""
        spec = tiny_spec(econ=EconSpec(cost_per_gb=None))
        cold = run_experiment(spec, store=ArtifactStore(tmp_path), stages=("econ",))
        warm = run_experiment(spec, store=ArtifactStore(tmp_path), stages=("econ",))
        assert cold.stage_status["design"] == "computed"  # dep materialized
        assert "design" not in warm.stage_status  # served from cache
        assert {row["stage"] for row in cold.records} == {"econ"}
        assert cold.records_json() == warm.records_json()

    def test_netsim_without_aggregate_fails_loudly(self, shared_store):
        spec = tiny_spec(
            design=DesignSpec(budget_towers=150.0, aggregate_gbps=None)
        )
        with pytest.raises(ValueError, match="aggregate_gbps"):
            run_experiment(spec, store=shared_store)


AXES = {
    "design.budget_towers": [100.0, 150.0],
    "netsim.loads": [(0.3,), (0.9,)],
}


class TestSweepRunner:
    def test_warm_two_axis_sweep_is_byte_identical_and_skips_stages(
        self, shared_store
    ):
        """The PR acceptance criterion, end to end."""
        spec = tiny_spec()
        cold = SweepRunner(spec, AXES, store=shared_store).run()
        warm = SweepRunner(spec, AXES, store=shared_store).run()
        assert cold.records_json() == warm.records_json()
        assert warm.executed("substrate") == 0
        assert warm.executed("design") == 0
        assert warm.stage_counts["design"]["cached"] == 4

    def test_jobs_4_matches_jobs_1(self, shared_store):
        spec = tiny_spec()
        serial = SweepRunner(spec, AXES, store=shared_store, jobs=1).run()
        parallel = SweepRunner(spec, AXES, store=shared_store, jobs=4).run()
        assert serial.records_json() == parallel.records_json()

    def test_parallel_cold_sweep_computes_shared_stages_once(self, tmp_path):
        """Workers must not race to rebuild shared substrates/designs."""
        result = SweepRunner(
            tiny_spec(), AXES, store=ArtifactStore(tmp_path), jobs=4
        ).run()
        assert result.stage_counts["substrate"]["computed"] == 1
        assert result.stage_counts["design"]["computed"] == 2  # one per budget

    def test_point_rows_carry_axis_columns(self, shared_store):
        result = SweepRunner(tiny_spec(), AXES, store=shared_store).run()
        row = result.records[0]
        assert row["point"] == 0
        assert row["design.budget_towers"] == 100.0
        assert row["netsim.loads"] == (0.3,)

    def test_streaming_callback_sees_every_point(self, shared_store):
        seen = []
        SweepRunner(tiny_spec(), AXES, store=shared_store).run(
            on_point=lambda index, rows: seen.append(index)
        )
        assert sorted(seen) == [0, 1, 2, 3]

    def test_bad_axis_path_fails_before_any_work(self, shared_store):
        with pytest.raises(ValueError, match="not enabled"):
            SweepRunner(
                tiny_spec(weather=None),
                {"weather.n_intervals": [3, 5]},
                store=shared_store,
            )

    def test_null_store_still_deterministic(self):
        spec = tiny_spec()
        a = SweepRunner(spec, {"design.budget_towers": [100.0]}, store=NullStore()).run()
        b = SweepRunner(spec, {"design.budget_towers": [100.0]}, store=NullStore()).run()
        assert a.records_json() == b.records_json()
        assert a.executed("design") == 1


class TestCliRun:
    def _write_spec(self, tmp_path, doc) -> str:
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_run_round_trip_single_spec(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = self._write_spec(tmp_path, tiny_spec().to_dict())
        assert main(["run", spec_path]) == 0
        out = capsys.readouterr().out
        assert "mean_stretch" in out
        assert "stages:" in out

    def test_run_json_output_round_trips(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = self._write_spec(tmp_path, tiny_spec().to_dict())
        assert main(["run", spec_path, "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert any(row["stage"] == "design" for row in records)

    def test_run_sweep_document(self, tmp_path, capsys):
        from repro.cli import main

        doc = {
            "spec": tiny_spec().to_dict(),
            "axes": {"design.budget_towers": [100.0, 150.0]},
        }
        assert main(["run", self._write_spec(tmp_path, doc), "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "point" in out

    def test_run_rejects_bad_spec_file(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit):
            main(["run", str(bad)])

    def test_sites_for_europe_errors_loudly(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="fixed site list"):
            main(["design", "--scenario", "europe", "--sites", "10"])

    def test_seed_flag_reaches_the_substrate(self, capsys):
        from repro.cli import main

        assert main(["design", "--sites", "6", "--budget", "150",
                     "--gbps", "20", "--seed", "7"]) == 0
        assert "us-6" in capsys.readouterr().out


class TestGetScenario:
    def test_unknown_name_rejected(self):
        from repro.scenarios import get_scenario

        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("mars")

    def test_interdc_rejects_los_overrides(self):
        from repro.scenarios import get_scenario

        with pytest.raises(ValueError, match="LoS overrides"):
            get_scenario("interdc", max_range_km=60.0)
