"""Integration tests: scenario assembly and end-to-end design."""

import numpy as np
import pytest

from repro.core import design_network, fiber_only_topology
from repro.scenarios import (
    dc_dc_traffic,
    dc_indices,
    interdc_scenario,
    us_scenario,
)


class TestSmallUsScenario:
    def test_substrate_sizes(self, small_us_scenario):
        sc = small_us_scenario
        assert sc.n_sites == 20
        assert len(sc.registry) > 200
        assert sc.hop_graph.n_edges > 500

    def test_fiber_slower_than_mw(self, small_us_scenario):
        sc = small_us_scenario
        finite = np.isfinite(sc.catalog.mw_km) & (sc.geodesic_km > 0)
        # MW links are close to geodesic; fiber is ~1.9x.
        assert np.median(sc.catalog.mw_km[finite] / sc.geodesic_km[finite]) < 1.3
        assert np.nanmean(sc.fiber_km[finite] / sc.geodesic_km[finite]) > 1.6

    def test_design_input_roundtrip(self, small_us_scenario):
        di = small_us_scenario.design_input()
        assert di.n_sites == 20
        assert np.triu(di.traffic, 1).sum() == pytest.approx(1.0)

    def test_end_to_end_design(self, small_us_scenario):
        sc = small_us_scenario
        di = sc.design_input()
        res = design_network(
            di,
            budget_towers=600.0,
            aggregate_gbps=50.0,
            catalog=sc.catalog,
            registry=sc.registry,
            ilp_refinement=False,
        )
        fiber = fiber_only_topology(di).mean_stretch()
        assert res.mean_stretch < fiber
        assert res.mean_stretch >= 1.0
        assert res.towers_used <= 600.0
        assert res.cost_per_gb_usd is not None
        assert 0.01 < res.cost_per_gb_usd < 100.0

    def test_missing_catalog_raises(self, small_us_scenario):
        di = small_us_scenario.design_input()
        with pytest.raises(ValueError):
            design_network(di, 100.0, aggregate_gbps=10.0)

    def test_stretch_percentiles(self, small_us_scenario):
        sc = small_us_scenario
        res = design_network(
            sc.design_input(), budget_towers=600.0, ilp_refinement=False
        )
        pct = res.stretch_percentiles((50, 99))
        assert 1.0 <= pct[50] <= pct[99]


class TestInterdcScenario:
    def test_six_sites(self):
        sc = interdc_scenario()
        assert sc.n_sites == 6
        assert dc_indices(sc) == list(range(6))

    def test_dc_traffic_uniform(self):
        sc = interdc_scenario()
        h = dc_dc_traffic(sc)
        vals = h[np.triu_indices(6, 1)]
        assert np.allclose(vals, vals[0])

    def test_design_runs(self):
        sc = interdc_scenario()
        res = design_network(
            sc.design_input(dc_dc_traffic(sc)),
            budget_towers=400.0,
            aggregate_gbps=30.0,
            catalog=sc.catalog,
            registry=sc.registry,
            ilp_refinement=False,
        )
        assert res.mean_stretch < res.fiber_mean_stretch

    def test_default_traffic_is_equal_demand(self):
        """Zero-population site lists fall back to uniform demand, so
        ``design_input()`` works for inter-DC scenarios (the CLI and the
        orchestration layer's design stage call it with no matrix)."""
        sc = interdc_scenario()
        h = sc.design_input().traffic
        assert np.array_equal(h, dc_dc_traffic(sc))


class TestScenarioCaching:
    def test_cache_returns_same_object(self):
        a = us_scenario(n_sites=20)
        b = us_scenario(n_sites=20)
        assert a is b
