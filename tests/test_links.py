"""Tests for Step-1 link building and tower-disjoint paths."""

import numpy as np
import pytest

from repro.datasets.sites import Site
from repro.geo import flat_terrain
from repro.links import CandidateLink, build_link_catalog, tower_disjoint_paths
from repro.towers import LosChecker, Tower, TowerRegistry, build_hop_graph


def chain_world(n_chains: int = 1, spacing_deg: float = 0.5):
    """Sites at both ends of n parallel west-east tower chains."""
    site_a = Site("A", 40.0, -100.0, 1_000_000)
    site_b = Site("B", 40.0, -96.0, 1_000_000)
    towers = []
    tid = 0
    for c in range(n_chains):
        lat = 40.0 + 0.15 * c
        lon = -100.0
        while lon <= -96.0:
            towers.append(Tower(tid, lat, lon, 250.0))
            tid += 1
            lon += spacing_deg
    reg = TowerRegistry(towers)
    hg = build_hop_graph(reg, LosChecker(flat_terrain(0.0)))
    return site_a, site_b, reg, hg


class TestCandidateLink:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            CandidateLink(site_a=2, site_b=1, mw_km=10.0, n_towers=3, tower_path=())

    def test_positive_length(self):
        with pytest.raises(ValueError):
            CandidateLink(site_a=0, site_b=1, mw_km=0.0, n_towers=0, tower_path=())


class TestBuildCatalog:
    def test_simple_chain(self):
        a, b, reg, hg = chain_world()
        cat = build_link_catalog([a, b], reg, hg)
        link = cat.link(0, 1)
        assert link is not None
        geod = a.distance_km(b)
        assert geod <= link.mw_km < geod * 1.2
        assert link.n_towers >= 5

    def test_symmetry_of_matrices(self):
        a, b, reg, hg = chain_world()
        cat = build_link_catalog([a, b], reg, hg)
        assert cat.mw_km[0, 1] == cat.mw_km[1, 0]
        assert cat.cost_towers[0, 1] == cat.cost_towers[1, 0]

    def test_unreachable_pair_infinite(self):
        a = Site("A", 40.0, -100.0, 1)
        b = Site("B", 40.0, -80.0, 1)  # no towers anywhere near B
        towers = [Tower(0, 40.0, -100.1, 200.0)]
        reg = TowerRegistry(towers)
        hg = build_hop_graph(reg, LosChecker(flat_terrain(0.0)))
        cat = build_link_catalog([a, b], reg, hg)
        assert np.isinf(cat.mw_km[0, 1])
        assert cat.link(0, 1) is None

    def test_tower_path_is_connected_hops(self):
        a, b, reg, hg = chain_world()
        cat = build_link_catalog([a, b], reg, hg)
        path = cat.link(0, 1).tower_path
        for u, v in zip(path[:-1], path[1:]):
            d = reg[u].point.distance_km(reg[v].point)
            assert d <= 100.0

    def test_diagonal_zero(self):
        a, b, reg, hg = chain_world()
        cat = build_link_catalog([a, b], reg, hg)
        assert cat.mw_km[0, 0] == 0.0
        assert cat.cost_towers[1, 1] == 0.0


class TestDisjointPaths:
    def test_single_chain_gives_one_path(self):
        a, b, reg, hg = chain_world(n_chains=1)
        paths = tower_disjoint_paths(a, b, reg, hg, max_iterations=5)
        assert len(paths) == 1
        assert paths[0].stretch >= 1.0

    def test_parallel_chains_give_multiple_paths(self):
        a, b, reg, hg = chain_world(n_chains=4)
        paths = tower_disjoint_paths(a, b, reg, hg, max_iterations=10)
        assert 2 <= len(paths) <= 4
        # Stretch is non-decreasing across iterations.
        stretches = [p.stretch for p in paths]
        assert stretches == sorted(stretches)

    def test_paths_are_tower_disjoint(self):
        a, b, reg, hg = chain_world(n_chains=3)
        paths = tower_disjoint_paths(a, b, reg, hg, max_iterations=10)
        seen: set[int] = set()
        for p in paths:
            assert not (seen & set(p.tower_path))
            seen |= set(p.tower_path)

    def test_identical_sites_raise(self):
        a, _, reg, hg = chain_world()
        with pytest.raises(ValueError):
            tower_disjoint_paths(a, a, reg, hg)
