"""Tests for the synthetic terrain model (SRTM substitute)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (
    GeoPoint,
    MountainRidge,
    europe_terrain,
    flat_terrain,
    fractal_noise,
    us_terrain,
)

lat_st = st.floats(min_value=25.0, max_value=49.0, allow_nan=False)
lon_st = st.floats(min_value=-124.0, max_value=-67.0, allow_nan=False)


class TestFractalNoise:
    def test_range(self):
        x = np.linspace(-50, 50, 200)
        y = np.linspace(-20, 20, 200)
        v = fractal_noise(x, y, seed=3)
        assert np.all(v >= 0.0)
        assert np.all(v < 1.0)

    def test_deterministic(self):
        x = np.array([1.5, 2.5, 3.5])
        y = np.array([0.1, 0.2, 0.3])
        assert np.array_equal(fractal_noise(x, y, seed=5), fractal_noise(x, y, seed=5))

    def test_seed_changes_field(self):
        x = np.linspace(0, 10, 50)
        y = np.linspace(0, 10, 50)
        assert not np.allclose(fractal_noise(x, y, seed=1), fractal_noise(x, y, seed=2))

    def test_continuity(self):
        # Neighboring samples differ by a small amount (no lattice jumps).
        x = np.linspace(3.0, 3.01, 100)
        y = np.full(100, 7.0)
        v = fractal_noise(x, y, seed=9)
        assert np.max(np.abs(np.diff(v))) < 0.05


class TestMountainRidge:
    def test_distance_zero_on_crest(self):
        ridge = MountainRidge("test", ((40.0, -100.0), (42.0, -100.0)), 1000.0, 50.0)
        d = ridge.distance_km(np.array([41.0]), np.array([-100.0]))
        assert d[0] < 5.0

    def test_distance_far_away(self):
        ridge = MountainRidge("test", ((40.0, -100.0), (42.0, -100.0)), 1000.0, 50.0)
        d = ridge.distance_km(np.array([41.0]), np.array([-90.0]))
        # ~10 degrees of longitude at 41N is about 840 km.
        assert 700 < d[0] < 950

    def test_distance_beyond_endpoint_clamps(self):
        ridge = MountainRidge("test", ((40.0, -100.0), (42.0, -100.0)), 1000.0, 50.0)
        d = ridge.distance_km(np.array([45.0]), np.array([-100.0]))
        # Clamped to the endpoint at 42N: roughly 3 degrees of latitude.
        assert 300 < d[0] < 370


class TestTerrainModel:
    def test_flat_terrain_is_flat(self):
        t = flat_terrain(100.0)
        lats = np.linspace(30, 45, 50)
        lons = np.linspace(-120, -80, 50)
        assert np.allclose(t.elevation_m(lats, lons), 100.0)

    def test_elevation_never_negative(self):
        t = us_terrain()
        rng = np.random.default_rng(0)
        lats = rng.uniform(25, 49, 500)
        lons = rng.uniform(-124, -67, 500)
        assert np.all(t.elevation_m(lats, lons) >= 0.0)

    def test_deterministic_across_instances(self):
        a = us_terrain(seed=7)
        b = us_terrain(seed=7)
        lats = np.linspace(30, 45, 20)
        lons = np.linspace(-110, -80, 20)
        assert np.array_equal(a.elevation_m(lats, lons), b.elevation_m(lats, lons))

    def test_rockies_higher_than_midwest(self):
        t = us_terrain()
        rockies = t.point_elevation_m(GeoPoint(39.5, -106.0))
        midwest = t.point_elevation_m(GeoPoint(41.0, -93.0))
        assert rockies > midwest + 800.0

    def test_alps_higher_than_netherlands(self):
        t = europe_terrain()
        alps = t.point_elevation_m(GeoPoint(46.5, 9.5))
        holland = t.point_elevation_m(GeoPoint(52.3, 4.9))
        assert alps > holland + 1000.0

    def test_profile_shapes(self):
        t = us_terrain()
        lats, lons, elev = t.profile(GeoPoint(41.9, -87.6), GeoPoint(40.7, -74.0), 64)
        assert lats.shape == lons.shape == elev.shape == (64,)

    def test_profile_endpoints_match_point_queries(self):
        t = us_terrain()
        p1, p2 = GeoPoint(35.0, -101.0), GeoPoint(36.0, -97.0)
        _, _, elev = t.profile(p1, p2, 10)
        assert elev[0] == pytest.approx(t.point_elevation_m(p1))
        assert elev[-1] == pytest.approx(t.point_elevation_m(p2))

    @given(lat_st, lon_st)
    @settings(max_examples=50)
    def test_scalar_query_finite(self, lat, lon):
        t = us_terrain()
        e = t.point_elevation_m(GeoPoint(lat, lon))
        assert np.isfinite(e)
        assert 0.0 <= e < 6000.0
