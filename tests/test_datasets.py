"""Tests for the site datasets and the coalescing rule."""

import pytest

from repro.datasets import (
    Site,
    coalesce_sites,
    eu_population_centers,
    google_us_datacenters,
    raw_us_cities,
    us_population_centers,
)


class TestSite:
    def test_valid(self):
        s = Site("Chicago", 41.88, -87.63, 2_695_598)
        assert s.point.lat == 41.88

    def test_empty_name_raises(self):
        with pytest.raises(ValueError):
            Site("", 0.0, 0.0)

    def test_bad_lat_raises(self):
        with pytest.raises(ValueError):
            Site("x", 95.0, 0.0)

    def test_negative_population_raises(self):
        with pytest.raises(ValueError):
            Site("x", 0.0, 0.0, -1)

    def test_distance(self):
        a = Site("a", 41.88, -87.63)
        b = Site("b", 40.71, -74.01)
        assert 1100 < a.distance_km(b) < 1200


class TestCoalesce:
    def test_merges_within_radius(self):
        sites = [
            Site("big", 40.0, -100.0, 1_000_000),
            Site("suburb", 40.2, -100.0, 100_000),
            Site("far", 45.0, -90.0, 500_000),
        ]
        centers = coalesce_sites(sites, radius_km=50.0)
        assert len(centers) == 2
        assert centers[0].name == "big"
        assert centers[0].population == 1_100_000

    def test_zero_radius_keeps_all(self):
        sites = [Site(f"s{i}", 40.0 + i, -100.0, 1000 * (i + 1)) for i in range(5)]
        assert len(coalesce_sites(sites, radius_km=0.0)) == 5

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            coalesce_sites([], radius_km=-1.0)

    def test_ordering_by_population(self):
        centers = coalesce_sites(
            [Site("small", 30.0, -90.0, 10), Site("large", 45.0, -80.0, 1000)],
            radius_km=10.0,
        )
        assert [c.name for c in centers] == ["large", "small"]


class TestUsCities:
    def test_raw_count_near_papers_200(self):
        # We carry more raw cities than the paper's 200 so coalescing
        # lands at the same 120 centers.
        assert len(raw_us_cities()) >= 200

    def test_120_population_centers(self):
        centers = us_population_centers()
        assert len(centers) == 120

    def test_contiguous_us_bounds(self):
        for c in us_population_centers():
            assert 24.0 < c.lat < 50.0
            assert -125.0 < c.lon < -66.0

    def test_new_york_is_largest(self):
        centers = us_population_centers()
        assert centers[0].name == "New York"

    def test_unique_names(self):
        names = [c.name for c in us_population_centers()]
        assert len(names) == len(set(names))

    def test_centers_are_separated(self):
        centers = us_population_centers()
        for i, a in enumerate(centers[:30]):
            for b in centers[i + 1 : 30]:
                assert a.distance_km(b) > 50.0


class TestEuCities:
    def test_population_floor(self):
        for c in eu_population_centers():
            assert c.population >= 300_000

    def test_reasonable_count(self):
        # The paper connects European cities >300k; continental Europe
        # plus GB has on the order of 60-100 such centers.
        assert 50 <= len(eu_population_centers()) <= 120

    def test_london_present(self):
        names = {c.name for c in eu_population_centers()}
        assert "London" in names


class TestDatacenters:
    def test_six_locations(self):
        dcs = google_us_datacenters()
        assert len(dcs) == 6

    def test_zero_population(self):
        assert all(d.population == 0 for d in google_us_datacenters())

    def test_the_dalles_in_oregon(self):
        dalles = next(d for d in google_us_datacenters() if "Dalles" in d.name)
        assert 45.0 < dalles.lat < 46.0
        assert -122.0 < dalles.lon < -120.0
