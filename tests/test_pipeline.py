"""The candidate-hop pipeline: spatial index, cached LoS, solver registry."""

import numpy as np
import pytest

from repro.core import (
    SolveOutcome,
    Solver,
    get_solver,
    solve,
    solve_heuristic,
    solve_exhaustive,
    solve_ilp,
    solve_lp_rounding,
    solver_names,
)
from repro.core.heuristic import greedy_sequence
from repro.core.pipeline import (
    CachingLosChecker,
    HopPipeline,
    enumerate_hops,
    shared_pipeline,
)
from repro.geo.coords import GeoPoint, haversine_km
from repro.geo.spatial import GridIndex, brute_force_pairs_within
from repro.geo.terrain import flat_terrain, us_terrain
from repro.towers.hops import build_hop_graph, candidate_pairs
from repro.towers.los import LosChecker, LosConfig
from repro.towers.registry import Tower, TowerRegistry

from conftest import make_toy_design


def random_towers(n: int, seed: int = 0, spread: float = 1.0) -> list[Tower]:
    rng = np.random.default_rng(seed)
    return [
        Tower(
            tower_id=i,
            lat=float(rng.uniform(33.0, 33.0 + 12.0 * spread)),
            lon=float(rng.uniform(-110.0, -110.0 + 30.0 * spread)),
            height_m=float(rng.uniform(60.0, 180.0)),
        )
        for i in range(n)
    ]


def pair_set(a, b) -> set[tuple[int, int]]:
    return {(int(i), int(j)) for i, j in zip(a, b)}


class TestGridIndex:
    def test_pairs_match_brute_force_200_towers(self):
        towers = random_towers(200, seed=11)
        lats = np.array([t.lat for t in towers])
        lons = np.array([t.lon for t in towers])
        for max_range in (40.0, 100.0, 250.0):
            index = GridIndex(lats, lons, max_range)
            got = pair_set(*index.pairs_within(max_range))
            want = pair_set(*brute_force_pairs_within(lats, lons, max_range))
            assert got == want, f"range {max_range}: {len(got)} vs {len(want)}"

    def test_pairs_dense_cluster(self):
        # Every pair of a tight cluster is in range: C(25, 2) pairs.
        towers = random_towers(25, seed=3, spread=0.02)
        lats = np.array([t.lat for t in towers])
        lons = np.array([t.lon for t in towers])
        a, b = GridIndex(lats, lons, 500.0).pairs_within(500.0)
        assert len(a) == 25 * 24 // 2
        assert np.all(a < b)

    def test_query_radius_matches_linear_scan(self):
        towers = random_towers(150, seed=5)
        lats = np.array([t.lat for t in towers])
        lons = np.array([t.lon for t in towers])
        index = GridIndex(lats, lons, 120.0)
        center = (39.0, -95.0)
        got = set(index.query_radius(*center, 120.0).tolist())
        dist = haversine_km(center[0], center[1], lats, lons)
        want = set(np.where(dist <= 120.0)[0].tolist())
        assert got == want

    def test_query_radius_beyond_build_radius(self):
        towers = random_towers(100, seed=9)
        lats = np.array([t.lat for t in towers])
        lons = np.array([t.lon for t in towers])
        index = GridIndex(lats, lons, 50.0)
        dist = haversine_km(40.0, -100.0, lats, lons)
        want = set(np.where(dist <= 400.0)[0].tolist())
        assert set(index.query_radius(40.0, -100.0, 400.0).tolist()) == want

    def test_empty_and_validation(self):
        index = GridIndex([], [], 100.0)
        a, b = index.pairs_within(100.0)
        assert len(a) == 0 and len(b) == 0
        with pytest.raises(ValueError):
            GridIndex([1.0], [1.0], 0.0)

    def test_registry_near_uses_index(self):
        towers = random_towers(120, seed=21)
        reg = TowerRegistry(towers)
        center = GeoPoint(38.0, -100.0)
        got = {t.tower_id for t in reg.near(center, 150.0)}
        want = {
            t.tower_id
            for t in towers
            if haversine_km(center.lat, center.lon, t.lat, t.lon) <= 150.0
        }
        assert got == want


class TestPipelineLos:
    def test_pipeline_matches_scalar_checks(self):
        """Batch verdicts through the pipeline == per-pair scalar checks."""
        towers = random_towers(60, seed=2, spread=0.25)
        reg = TowerRegistry(towers)
        checker = LosChecker(us_terrain(), LosConfig())
        pipeline = HopPipeline(checker, chunk_size=17)
        cand_a, cand_b = pipeline.candidate_pairs(reg)
        assert len(cand_a) > 0
        mask = pipeline.feasible_mask(reg, cand_a, cand_b)
        for i, j, got in zip(cand_a, cand_b, mask):
            assert bool(got) == checker.hop_feasible(towers[i], towers[j])

    def test_pipeline_equals_build_hop_graph(self):
        towers = random_towers(80, seed=4, spread=0.4)
        reg = TowerRegistry(towers)
        checker = LosChecker(us_terrain(), LosConfig())
        hg = build_hop_graph(reg, checker)
        graph = HopPipeline(LosChecker(us_terrain(), LosConfig())).enumerate_hops(reg)
        assert pair_set(graph.edges_a, graph.edges_b) == pair_set(hg.edges_a, hg.edges_b)

    def test_caching_checker_same_verdicts_and_hits(self):
        towers = random_towers(70, seed=6, spread=0.3)
        reg = TowerRegistry(towers)
        plain = HopPipeline(LosChecker(us_terrain(), LosConfig()))
        cached = HopPipeline.from_terrain(us_terrain(), LosConfig())
        want = plain.enumerate_hops(reg)
        got_cold = cached.enumerate_hops(reg)
        stats_cold = cached.checker.cache_stats()
        got_warm = cached.enumerate_hops(reg)
        stats_warm = cached.checker.cache_stats()
        assert pair_set(got_cold.edges_a, got_cold.edges_b) == pair_set(
            want.edges_a, want.edges_b
        )
        assert pair_set(got_warm.edges_a, got_warm.edges_b) == pair_set(
            want.edges_a, want.edges_b
        )
        assert stats_cold["profile_hits"] == 0
        # The warm run re-reads every profile from the cache.
        assert stats_warm["profile_hits"] >= stats_cold["profile_misses"]
        assert stats_warm["profile_misses"] == stats_cold["profile_misses"]

    def test_cache_is_reversal_invariant(self):
        terrain = us_terrain()
        checker = CachingLosChecker(terrain, LosConfig())
        plain = LosChecker(terrain, LosConfig())
        t1 = Tower(tower_id=0, lat=39.0, lon=-100.0, height_m=120.0)
        t2 = Tower(tower_id=1, lat=39.3, lon=-99.5, height_m=120.0)
        assert checker.hop_feasible(t1, t2) == plain.hop_feasible(t1, t2)
        # Reverse direction: same profile, flipped — and a cache hit.
        assert checker.hop_feasible(t2, t1) == plain.hop_feasible(t2, t1)
        stats = checker.cache_stats()
        assert stats["profile_hits"] >= 1

    def test_enumerate_hops_flat_terrain_full_clique(self):
        # A tight cluster (hops <= ~30 km) on flat terrain: every
        # in-range pair clears bulge + Fresnel + clutter, so the hop
        # graph equals the candidate set.
        towers = random_towers(30, seed=8, spread=0.01)
        reg = TowerRegistry(towers)
        graph = enumerate_hops(reg, LosChecker(flat_terrain(0.0)))
        a, b = candidate_pairs(reg, LosConfig().radio.max_range_km)
        assert graph.n_edges == len(a)

    def test_shared_pipeline_shares_terrain_cache(self):
        towers = random_towers(40, seed=10, spread=0.2)
        reg = TowerRegistry(towers)
        p1 = shared_pipeline(us_terrain(), LosConfig())
        p1.enumerate_hops(reg)
        # Same terrain value, different config: profiles are reused.
        p2 = shared_pipeline(us_terrain(), LosConfig(usable_height_fraction=0.85))
        p2.enumerate_hops(reg)
        assert p2.checker.cache_stats()["profile_hits"] > 0

    def test_stats_account_for_pruning(self):
        towers = random_towers(100, seed=12)
        reg = TowerRegistry(towers)
        pipeline = HopPipeline.from_terrain(us_terrain(), LosConfig())
        pipeline.enumerate_hops(reg)
        s = pipeline.stats
        assert s.all_pairs == 100 * 99 // 2
        assert 0 < s.candidate_pairs <= s.all_pairs
        assert s.feasible_hops <= s.candidate_pairs
        assert 0.0 <= s.pruned_fraction < 1.0


class TestSolverRegistry:
    def test_all_five_backends_registered(self):
        assert solver_names() == [
            "evolution",
            "exhaustive",
            "heuristic",
            "ilp",
            "lp_rounding",
        ]
        for name in solver_names():
            assert isinstance(get_solver(name), Solver)

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="registered"):
            get_solver("simulated_annealing")

    def test_heuristic_matches_direct_call(self):
        design = make_toy_design(8, seed=8)
        direct = solve_heuristic(design, 60.0)
        via = solve(design, 60.0, backend="heuristic")
        assert isinstance(via, SolveOutcome)
        assert via.backend == "heuristic"
        assert via.topology.mw_links == direct.topology.mw_links
        assert via.objective == pytest.approx(direct.objective)

    def test_ilp_matches_direct_call(self):
        design = make_toy_design(7, seed=3)
        direct = solve_ilp(design, 50.0)
        via = solve(design, 50.0, backend="ilp")
        assert via.topology.mw_links == direct.topology.mw_links
        assert via.objective == pytest.approx(direct.objective)
        assert via.details.n_variables == direct.n_variables

    def test_lp_rounding_matches_direct_call(self):
        design = make_toy_design(7, seed=5)
        direct = solve_lp_rounding(design, 50.0)
        via = solve(design, 50.0, backend="lp_rounding")
        assert via.topology.mw_links == direct.topology.mw_links
        assert via.objective == pytest.approx(direct.objective)

    def test_exhaustive_matches_direct_call(self):
        design = make_toy_design(5, seed=1)
        direct = solve_exhaustive(design, 40.0)
        via = solve(design, 40.0, backend="exhaustive")
        assert via.topology.mw_links == direct.mw_links
        assert via.objective == pytest.approx(direct.mean_stretch())

    def test_evolution_matches_greedy_prefix(self):
        design = make_toy_design(8, seed=8)
        budget = 70.0
        via = solve(design, budget, backend="evolution")
        steps = greedy_sequence(design, budget)
        links, spent = set(), 0.0
        for step in steps:
            if spent + step.cost_towers <= budget:
                links.add(step.link)
                spent += step.cost_towers
        assert via.topology.mw_links == frozenset(links)
        assert via.details == tuple(steps)

    def test_runtime_recorded(self):
        design = make_toy_design(6, seed=2)
        for name in ("heuristic", "lp_rounding", "evolution"):
            outcome = solve(design, 40.0, backend=name)
            assert outcome.runtime_s >= 0.0
