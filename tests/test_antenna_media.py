"""Tests for antenna geometry (§3.3/Fig 1) and media generality (§3.4)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.media import (
    ALL_MEDIA,
    FREE_SPACE_OPTICS,
    HOLLOW_CORE_FIBER,
    MICROWAVE,
    MILLIMETER_WAVE,
    SOLID_FIBER,
    Medium,
    hollow_core_fiber_stretch,
    reprice_links_for_medium,
)
from repro.core import solve_heuristic
from repro.geo.antenna import (
    lateral_offset_stretch,
    min_parallel_spacing_km,
    series_for_bandwidth_gbps,
)

from conftest import make_toy_design


class TestAntennaGeometry:
    def test_paper_example_100km(self):
        # 100 km hops need 100 * tan(6 deg) ~= 10.5 km series spacing.
        assert min_parallel_spacing_km(100.0) == pytest.approx(10.51, abs=0.05)

    def test_shorter_hops_need_less_spacing(self):
        assert min_parallel_spacing_km(50.0) < min_parallel_spacing_km(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            min_parallel_spacing_km(0.0)
        with pytest.raises(ValueError):
            min_parallel_spacing_km(100.0, separation_deg=0.0)

    def test_paper_offset_example(self):
        # 10 km mid-path offset on a 500 km link: ~0.2% stretch (§3.3).
        stretch = lateral_offset_stretch(500.0, 10.0)
        assert stretch == pytest.approx(1.0008, abs=5e-4)
        assert stretch - 1.0 < 0.002

    def test_zero_offset_is_identity(self):
        assert lateral_offset_stretch(300.0, 0.0) == 1.0

    @given(st.floats(10.0, 3000.0), st.floats(0.0, 50.0))
    @settings(max_examples=50)
    def test_offset_stretch_at_least_one(self, link, offset):
        assert lateral_offset_stretch(link, offset) >= 1.0

    def test_series_for_bandwidth(self):
        assert series_for_bandwidth_gbps(0.5) == 1
        assert series_for_bandwidth_gbps(3.9) == 2
        assert series_for_bandwidth_gbps(20.0, per_series_gbps=10.0) == 2


class TestMedia:
    def test_all_media_registered(self):
        assert set(ALL_MEDIA) == {
            "microwave",
            "mmw",
            "fso",
            "fiber",
            "hollow-core",
        }

    def test_microwave_matches_paper(self):
        assert MICROWAVE.speed_factor == 1.0
        assert MICROWAVE.max_hop_km == 100.0
        assert MICROWAVE.bandwidth_gbps == 1.0

    def test_fiber_speed_two_thirds(self):
        assert SOLID_FIBER.speed_factor == pytest.approx(2.0 / 3.0)
        # Latency-equivalent distance is the paper's 1.5x rule.
        assert SOLID_FIBER.latency_equivalent_km(100.0) == pytest.approx(150.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Medium("x", 0.0, 10.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            Medium("x", 1.0, 0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            MICROWAVE.latency_equivalent_km(-1.0)

    def test_hollow_core_stretch(self):
        # Conduits at 1.29x circuitousness with hollow-core: ~1.3x floor,
        # still worse than cISP's 1.05.
        floor = hollow_core_fiber_stretch(1.29)
        assert 1.25 < floor < 1.35
        with pytest.raises(ValueError):
            hollow_core_fiber_stretch(0.9)


class TestRepricing:
    def test_mmw_costs_more_towers(self, toy_design_8):
        repriced = reprice_links_for_medium(toy_design_8, MILLIMETER_WAVE)
        finite = np.isfinite(toy_design_8.cost_towers)
        np.fill_diagonal(finite, False)
        assert np.all(
            repriced.cost_towers[finite] >= toy_design_8.cost_towers[finite]
        )

    def test_same_speed_media_keep_latency(self, toy_design_8):
        repriced = reprice_links_for_medium(toy_design_8, FREE_SPACE_OPTICS)
        assert np.allclose(
            repriced.mw_km[np.isfinite(repriced.mw_km)],
            toy_design_8.mw_km[np.isfinite(toy_design_8.mw_km)],
        )

    def test_design_under_mmw_needs_bigger_budget(self, toy_design_10):
        budget = 250.0
        mw = solve_heuristic(toy_design_10, budget, ilp_refinement=False)
        mmw_design = reprice_links_for_medium(toy_design_10, MILLIMETER_WAVE)
        mmw = solve_heuristic(mmw_design, budget, ilp_refinement=False)
        # Same budget buys fewer (relay-hungrier) MMW links -> stretch
        # no better than microwave's.
        assert mmw.objective >= mw.objective - 1e-9

    def test_hollow_core_diagonal_zero(self, toy_design_8):
        repriced = reprice_links_for_medium(toy_design_8, HOLLOW_CORE_FIBER)
        assert np.all(np.diag(repriced.cost_towers) == 0.0)
