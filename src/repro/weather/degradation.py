"""Graded (non-binary) weather degradation (§6.1's refinement).

The paper treats precipitation conservatively: any hop whose attenuation
exceeds a threshold fails its whole link.  It notes that "a more
sophisticated analysis allowing dynamic link bandwidth adjustment
rather than binary failures can only improve these numbers."  This
module implements that refinement: between a *soft* and a *hard* fade
margin, the physical layer trades bandwidth for resilience (stepping
down the modulation), so the link stays up — at reduced capacity — and
only a hard-margin breach drops it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.topology import Topology
from ..links.builder import LinkCatalog
from ..towers.registry import TowerRegistry
from .attenuation import path_attenuation_db
from .failures import (
    distances_with_failures,
    link_hop_segments,
    yearly_stretch_analysis,
)
from .precipitation import PrecipitationYear


def graded_capacity_fraction(
    attenuation_db: float, soft_margin_db: float = 18.0, hard_margin_db: float = 40.0
) -> float:
    """Remaining capacity fraction under rain fade.

    At or below the soft margin the link runs at full rate; above the
    hard margin it is down; in between, every 3 dB costs one modulation
    step, halving throughput (256-QAM downshifting).
    """
    if soft_margin_db <= 0 or hard_margin_db <= soft_margin_db:
        raise ValueError("need 0 < soft margin < hard margin")
    if attenuation_db <= soft_margin_db:
        return 1.0
    if attenuation_db >= hard_margin_db:
        return 0.0
    steps = (attenuation_db - soft_margin_db) / 3.0
    return float(0.5**steps)


@dataclass(frozen=True)
class GradedComparison:
    """Binary vs graded failure models over the same sampled year.

    Attributes:
        binary_p99: per-pair 99th-percentile stretch, binary model.
        graded_p99: same under the graded model.
        binary_worst / graded_worst: per-pair worst stretch.
        capacity_loss_fraction: mean fraction of MW capacity lost to
            modulation downshifts under the graded model (the bandwidth
            price paid for keeping latency).
    """

    binary_p99: np.ndarray
    graded_p99: np.ndarray
    binary_worst: np.ndarray
    graded_worst: np.ndarray
    capacity_loss_fraction: float


def graded_yearly_comparison(
    topology: Topology,
    catalog: LinkCatalog,
    registry: TowerRegistry,
    precipitation: PrecipitationYear | None = None,
    n_intervals: int = 120,
    soft_margin_db: float = 18.0,
    hard_margin_db: float = 40.0,
    binary_margin_db: float = 30.0,
    seed: int = 7,
) -> GradedComparison:
    """Run the paper's binary model and the graded refinement side by side.

    The graded model only drops links above the (higher) hard margin, so
    its latency statistics are no worse than the binary model's; the
    cost is surfaced as the mean capacity-loss fraction.
    """
    precipitation = precipitation or PrecipitationYear()
    binary = yearly_stretch_analysis(
        topology,
        catalog,
        registry,
        precipitation=precipitation,
        n_intervals=n_intervals,
        fade_margin_db=binary_margin_db,
        seed=seed,
    )
    # Graded pass: same sampled days (same seed and count).
    rng = np.random.default_rng(seed)
    days = rng.choice(np.arange(1, 366), size=n_intervals, replace=n_intervals > 365)
    segments = link_hop_segments(topology, catalog, registry)
    design = topology.design
    geo = design.geodesic_km
    iu = np.triu_indices(design.n_sites, k=1)
    valid = geo[iu] > 0

    def stretches(dist: np.ndarray) -> np.ndarray:
        return (dist[iu] / geo[iu])[valid]

    best = stretches(topology.effective_distance_matrix())
    per_interval = np.empty((n_intervals, int(valid.sum())))
    capacity_losses = []
    for k, day in enumerate(days):
        failed: set[tuple[int, int]] = set()
        for link, hops in segments.items():
            if not hops:
                continue
            lats = np.array([h[0] for h in hops])
            lons = np.array([h[1] for h in hops])
            rain = precipitation.rain_rate_mm_h(int(day), lats, lons)
            fractions = []
            for (lat, lon, hop_km), r in zip(hops, rain):
                att = path_attenuation_db(hop_km, float(r))
                fractions.append(
                    graded_capacity_fraction(att, soft_margin_db, hard_margin_db)
                )
            # A link's capacity is its weakest hop's; it fails only at 0.
            link_fraction = min(fractions)
            capacity_losses.append(1.0 - link_fraction)
            if link_fraction <= 0.0:
                failed.add(link)
        if failed:
            per_interval[k] = stretches(distances_with_failures(topology, failed))
        else:
            per_interval[k] = best
    return GradedComparison(
        binary_p99=binary.p99,
        graded_p99=np.percentile(per_interval, 99, axis=0),
        binary_worst=binary.worst,
        graded_worst=per_interval.max(axis=0),
        capacity_loss_fraction=float(np.mean(capacity_losses)),
    )


def weather_stage_records(
    topology: Topology,
    catalog: LinkCatalog,
    registry: TowerRegistry,
    n_intervals: int = 120,
    fade_margin_db: float = 30.0,
    seed: int = 7,
    graded: bool = False,
) -> list[dict]:
    """The yearly weather analysis as tidy records (the weather stage).

    One row per stretch series (best / p99 / worst / fiber) with its
    median and 95th percentile; with ``graded`` the graded-degradation
    comparison adds a graded-p99 series and the mean capacity-loss
    fraction paid for keeping links up through modulation downshifts.
    """
    binary = yearly_stretch_analysis(
        topology,
        catalog,
        registry,
        n_intervals=n_intervals,
        fade_margin_db=fade_margin_db,
        seed=seed,
    )
    rows = [
        {
            "stage": "weather",
            "series": label,
            "median": float(np.median(values)),
            "p95": float(np.percentile(values, 95)),
        }
        for label, values in (
            ("best", binary.best),
            ("p99", binary.p99),
            ("worst", binary.worst),
            ("fiber", binary.fiber),
        )
    ]
    if graded:
        comparison = graded_yearly_comparison(
            topology,
            catalog,
            registry,
            n_intervals=n_intervals,
            binary_margin_db=fade_margin_db,
            seed=seed,
        )
        rows.append(
            {
                "stage": "weather",
                "series": "graded_p99",
                "median": float(np.median(comparison.graded_p99)),
                "p95": float(np.percentile(comparison.graded_p99, 95)),
                "capacity_loss_fraction": comparison.capacity_loss_fraction,
            }
        )
    return rows
