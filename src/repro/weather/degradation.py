"""Graded (non-binary) weather degradation (§6.1's refinement).

The paper treats precipitation conservatively: any hop whose attenuation
exceeds a threshold fails its whole link.  It notes that "a more
sophisticated analysis allowing dynamic link bandwidth adjustment
rather than binary failures can only improve these numbers."  This
module implements that refinement: between a *soft* and a *hard* fade
margin, the physical layer trades bandwidth for resilience (stepping
down the modulation), so the link stays up — at reduced capacity — and
only a hard-margin breach drops it.

Both the binary and the graded pass run through one shared
:class:`~repro.weather.evaluation.YearlyWeatherEvaluator` on one
shared day sample (:func:`~repro.weather.evaluation.sample_interval_days`)
with one ``frequency_ghz``, so the two models always evaluate the same
physics over the same days — and split the evaluator's per-day storm
fields and failure-set solve cache between them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.topology import Topology
from ..links.builder import LinkCatalog
from ..towers.registry import TowerRegistry
from .evaluation import (
    YearlyWeatherEvaluator,
    resolve_evaluator,
    strided_interval_days,
)

# The keyword argument ``sample_interval_days`` (the stride) shadows the
# sampler of the same name inside the functions below.
from .evaluation import sample_interval_days as _random_interval_days
from .precipitation import PrecipitationYear


def graded_capacity_fraction(
    attenuation_db: float, soft_margin_db: float = 18.0, hard_margin_db: float = 40.0
) -> float:
    """Remaining capacity fraction under rain fade.

    At or below the soft margin the link runs at full rate; above the
    hard margin it is down; in between, every 3 dB costs one modulation
    step, halving throughput (256-QAM downshifting).
    """
    if soft_margin_db <= 0 or hard_margin_db <= soft_margin_db:
        raise ValueError("need 0 < soft margin < hard margin")
    if attenuation_db <= soft_margin_db:
        return 1.0
    if attenuation_db >= hard_margin_db:
        return 0.0
    steps = (attenuation_db - soft_margin_db) / 3.0
    return float(0.5**steps)


@dataclass(frozen=True)
class GradedComparison:
    """Binary vs graded failure models over the same sampled year.

    Attributes:
        binary_p99: per-pair 99th-percentile stretch, binary model.
        graded_p99: same under the graded model.
        binary_worst / graded_worst: per-pair worst stretch.
        capacity_loss_fraction: mean fraction of MW capacity lost to
            modulation downshifts under the graded model (the bandwidth
            price paid for keeping latency).
    """

    binary_p99: np.ndarray
    graded_p99: np.ndarray
    binary_worst: np.ndarray
    graded_worst: np.ndarray
    capacity_loss_fraction: float


def graded_yearly_comparison(
    topology: Topology,
    catalog: LinkCatalog,
    registry: TowerRegistry,
    precipitation: PrecipitationYear | None = None,
    n_intervals: int = 120,
    soft_margin_db: float = 18.0,
    hard_margin_db: float = 40.0,
    binary_margin_db: float = 30.0,
    seed: int = 7,
    frequency_ghz: float | None = None,
    evaluator: YearlyWeatherEvaluator | None = None,
    sample_interval_days: int | None = None,
) -> GradedComparison:
    """Run the paper's binary model and the graded refinement side by side.

    The graded model only drops links above the (higher) hard margin, so
    its latency statistics are no worse than the binary model's; the
    cost is surfaced as the mean capacity-loss fraction.  Both passes
    consume one day sample and one carrier frequency
    (``None`` = 11 GHz) through the shared evaluator — they can never
    desynchronize.  An injected ``evaluator``'s pinned context wins;
    contradicting ``precipitation``/``frequency_ghz`` raise.  A set
    ``sample_interval_days`` stride replaces the random day sample with
    the deterministic every-Nth-day grid (``n_intervals``/``seed``
    ignored).
    """
    if sample_interval_days is not None:
        days = strided_interval_days(sample_interval_days)
    else:
        days = _random_interval_days(seed, n_intervals)
    evaluator = resolve_evaluator(
        topology, catalog, registry, precipitation, frequency_ghz, evaluator
    )
    binary = evaluator.binary_year(days, fade_margin_db=binary_margin_db)
    per_interval, capacity_loss = evaluator.graded_year(
        days, soft_margin_db=soft_margin_db, hard_margin_db=hard_margin_db
    )
    return GradedComparison(
        binary_p99=binary.p99,
        graded_p99=np.percentile(per_interval, 99, axis=0),
        binary_worst=binary.worst,
        graded_worst=per_interval.max(axis=0),
        capacity_loss_fraction=capacity_loss,
    )


def weather_stage_records(
    topology: Topology,
    catalog: LinkCatalog,
    registry: TowerRegistry,
    n_intervals: int = 120,
    fade_margin_db: float = 30.0,
    seed: int = 7,
    graded: bool = False,
    frequency_ghz: float = 11.0,
    sample_interval_days: int | None = None,
    delta_k: int = 2,
    cache_mb: float = 256.0,
) -> list[dict]:
    """The yearly weather analysis as tidy records (the weather stage).

    One row per stretch series (best / p99 / worst / fiber) with its
    median and 95th percentile; with ``graded`` the graded-degradation
    comparison adds a graded-p99 series and the mean capacity-loss
    fraction paid for keeping links up through modulation downshifts.
    One evaluator serves both models, so the binary pass runs once and
    the graded pass reuses its storm fields and failure-set solver.

    A set ``sample_interval_days`` stride replaces the random day
    sample with the deterministic every-Nth-day grid (``1`` = the full
    daily-resolution year; ``n_intervals``/``seed`` are then ignored).
    A final ``series="solver"`` row reports the failure-set solver's
    route counters (full / delta / memo) and cache occupancy.
    """
    if sample_interval_days is not None:
        days = strided_interval_days(sample_interval_days)
    else:
        days = _random_interval_days(seed, n_intervals)
    evaluator = YearlyWeatherEvaluator(
        topology,
        catalog,
        registry,
        frequency_ghz=frequency_ghz,
        delta_k=delta_k,
        cache_mb=cache_mb,
    )
    binary = evaluator.binary_year(days, fade_margin_db=fade_margin_db)
    rows = [
        {
            "stage": "weather",
            "series": label,
            "median": float(np.median(values)),
            "p95": float(np.percentile(values, 95)),
        }
        for label, values in (
            ("best", binary.best),
            ("p99", binary.p99),
            ("worst", binary.worst),
            ("fiber", binary.fiber),
        )
    ]
    if graded:
        per_interval, capacity_loss = evaluator.graded_year(days)
        graded_p99 = np.percentile(per_interval, 99, axis=0)
        rows.append(
            {
                "stage": "weather",
                "series": "graded_p99",
                "median": float(np.median(graded_p99)),
                "p95": float(np.percentile(graded_p99, 95)),
                "capacity_loss_fraction": capacity_loss,
            }
        )
    rows.append(
        {
            "stage": "weather",
            "series": "solver",
            "intervals": int(days.size),
            **evaluator.solver_stats(),
        }
    )
    return rows
