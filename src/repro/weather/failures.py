"""Weather-driven link failures and yearly latency analysis (§6.1, Fig 7).

For each sampled interval, every hop of every built MW link is checked
against the precipitation field: a hop whose rain attenuation exceeds
the fade margin fails, failing its whole link (the paper's conservative
binary rule).  Traffic then reroutes over surviving MW links and fiber,
and per-pair stretch is recomputed.

The yearly analysis reproduces Fig 7's CDFs: per city pair, the best
(fair-weather) stretch, the 99th-percentile and worst stretch over the
year, and the fiber-only baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.topology import Topology
from ..links.builder import LinkCatalog
from ..towers.registry import TowerRegistry
from .attenuation import path_attenuation_db
from .precipitation import PrecipitationYear


@dataclass(frozen=True)
class YearlyStretchResult:
    """Per-pair stretch statistics over a sampled year.

    All arrays are flattened over the site pairs (i < j) with finite
    geodesic separation.

    Attributes:
        best: fair-weather stretch per pair.
        p99: 99th-percentile stretch per pair across intervals.
        worst: worst stretch per pair.
        fiber: fiber-only stretch per pair.
        links_failed_per_interval: number of failed MW links per
            sampled interval.
    """

    best: np.ndarray
    p99: np.ndarray
    worst: np.ndarray
    fiber: np.ndarray
    links_failed_per_interval: np.ndarray


def link_hop_segments(
    topology: Topology, catalog: LinkCatalog, registry: TowerRegistry
) -> dict[tuple[int, int], list[tuple[float, float, float]]]:
    """Per built link: (mid_lat, mid_lon, hop_km) of each tower hop."""
    segments: dict[tuple[int, int], list[tuple[float, float, float]]] = {}
    for link in sorted(topology.mw_links):
        cand = catalog.link(*link)
        if cand is None:
            raise ValueError(f"link {link} missing from catalog")
        hops = []
        path = cand.tower_path
        for u, v in zip(path[:-1], path[1:]):
            a, b = registry[u], registry[v]
            hops.append(
                (
                    (a.lat + b.lat) / 2.0,
                    (a.lon + b.lon) / 2.0,
                    a.point.distance_km(b.point),
                )
            )
        segments[link] = hops
    return segments


def failed_links(
    segments: dict[tuple[int, int], list[tuple[float, float, float]]],
    precipitation: PrecipitationYear,
    day_of_year: int,
    fade_margin_db: float = 30.0,
    frequency_ghz: float = 11.0,
) -> set[tuple[int, int]]:
    """Links with at least one hop exceeding the fade margin today."""
    failed: set[tuple[int, int]] = set()
    # Vectorize the rain query across all hops of all links at once.
    all_links = list(segments)
    lats, lons, lens, owner = [], [], [], []
    for idx, link in enumerate(all_links):
        for lat, lon, hop_km in segments[link]:
            lats.append(lat)
            lons.append(lon)
            lens.append(hop_km)
            owner.append(idx)
    if not lats:
        return failed
    rain = precipitation.rain_rate_mm_h(day_of_year, np.array(lats), np.array(lons))
    for r, hop_km, idx in zip(rain, lens, owner):
        link = all_links[idx]
        if link in failed:
            continue
        if path_attenuation_db(hop_km, float(r), frequency_ghz) > fade_margin_db:
            failed.add(link)
    return failed


def distances_with_failures(
    topology: Topology, failed: set[tuple[int, int]]
) -> np.ndarray:
    """Effective distance matrix with the failed links removed.

    Consumes the topology's :class:`~repro.graph.GraphView`: each
    failed MW link reverts to the always-available direct fiber, and
    the view's exact fallback answers with one batched kernel solve.
    With no failures the topology's memoized distances are reused
    as-is.  The returned array is read-only.
    """
    design = topology.design
    if not failed:
        return topology.effective_distance_matrix()
    view = topology.graph_view()
    for a, b in topology.mw_links:
        if (a, b) in failed:
            view.set_edge(a, b, design.fiber_km[a, b])
    return view.distances()


def yearly_stretch_analysis(
    topology: Topology,
    catalog: LinkCatalog,
    registry: TowerRegistry,
    precipitation: PrecipitationYear | None = None,
    n_intervals: int = 365,
    fade_margin_db: float = 30.0,
    seed: int = 7,
) -> YearlyStretchResult:
    """Reproduce Fig 7: stretch across all pairs over a sampled year.

    One randomly placed 30-minute interval per day is emulated by one
    storm-field sample per day (our fields are daily); ``n_intervals``
    days are drawn uniformly from the year.
    """
    if n_intervals <= 0:
        raise ValueError("need at least one interval")
    precipitation = precipitation or PrecipitationYear()
    rng = np.random.default_rng(seed)
    days = rng.choice(np.arange(1, 366), size=n_intervals, replace=n_intervals > 365)

    design = topology.design
    geo = design.geodesic_km
    iu = np.triu_indices(design.n_sites, k=1)
    valid = geo[iu] > 0

    def stretches(dist: np.ndarray) -> np.ndarray:
        return (dist[iu] / geo[iu])[valid]

    best = stretches(topology.effective_distance_matrix())
    fiber = stretches(design.fiber_km)
    segments = link_hop_segments(topology, catalog, registry)

    per_interval = np.empty((n_intervals, valid.sum()))
    n_failed = np.zeros(n_intervals, dtype=int)
    for k, day in enumerate(days):
        failed = failed_links(
            segments, precipitation, int(day), fade_margin_db=fade_margin_db
        )
        n_failed[k] = len(failed)
        if failed:
            per_interval[k] = stretches(distances_with_failures(topology, failed))
        else:
            per_interval[k] = best
    return YearlyStretchResult(
        best=best,
        p99=np.percentile(per_interval, 99, axis=0),
        worst=per_interval.max(axis=0),
        fiber=fiber,
        links_failed_per_interval=n_failed,
    )
