"""Weather-driven link failures and yearly latency analysis (§6.1, Fig 7).

For each sampled interval, every hop of every built MW link is checked
against the precipitation field: a hop whose rain attenuation exceeds
the fade margin fails, failing its whole link (the paper's conservative
binary rule).  Traffic then reroutes over surviving MW links and fiber,
and per-pair stretch is recomputed.

The yearly analysis reproduces Fig 7's CDFs: per city pair, the best
(fair-weather) stretch, the 99th-percentile and worst stretch over the
year, and the fiber-only baseline.  The heavy lifting — vectorized
failure detection against precomputed critical rain rates, one storm
field per day, one solve per *distinct* failure set — lives in the
shared :class:`~repro.weather.evaluation.YearlyWeatherEvaluator`;
:func:`failed_links` and :func:`distances_with_failures` below are the
single-interval reference path it is gated against.
"""

from __future__ import annotations

import numpy as np

from ..core.topology import Topology
from ..links.builder import LinkCatalog
from ..towers.registry import TowerRegistry
from .attenuation import path_attenuation_db
from ..graph import FailureSetSolver
from .evaluation import (  # noqa: F401  (re-exported: the public home moved)
    YearlyStretchResult,
    YearlyWeatherEvaluator,
    link_hop_segments,
    resolve_evaluator,
    sample_interval_days,
    strided_interval_days,
)

# The keyword argument ``sample_interval_days`` (the stride) shadows the
# sampler of the same name inside the analysis functions below.
from .evaluation import sample_interval_days as _random_interval_days
from .precipitation import PrecipitationYear


def failed_links(
    segments: dict[tuple[int, int], list[tuple[float, float, float]]],
    precipitation: PrecipitationYear,
    day_of_year: int,
    fade_margin_db: float = 30.0,
    frequency_ghz: float = 11.0,
) -> set[tuple[int, int]]:
    """Links with at least one hop exceeding the fade margin today."""
    failed: set[tuple[int, int]] = set()
    # Vectorize the rain query across all hops of all links at once.
    all_links = list(segments)
    lats, lons, lens, owner = [], [], [], []
    for idx, link in enumerate(all_links):
        for lat, lon, hop_km in segments[link]:
            lats.append(lat)
            lons.append(lon)
            lens.append(hop_km)
            owner.append(idx)
    if not lats:
        return failed
    rain = precipitation.rain_rate_mm_h(day_of_year, np.array(lats), np.array(lons))
    for r, hop_km, idx in zip(rain, lens, owner):
        link = all_links[idx]
        if link in failed:
            continue
        if path_attenuation_db(hop_km, float(r), frequency_ghz) > fade_margin_db:
            failed.add(link)
    return failed


def distances_with_failures(
    topology: Topology,
    failed: set[tuple[int, int]],
    solver: FailureSetSolver | None = None,
) -> np.ndarray:
    """Effective distance matrix with the failed links removed.

    Each failed MW link reverts to the always-available direct fiber.
    With a ``solver`` — a :class:`~repro.graph.FailureSetSolver` built
    over this topology's view (e.g.
    :attr:`~repro.weather.evaluation.YearlyWeatherEvaluator.solver`) —
    the query routes through its memo / delta / full-solve selection,
    sharing work with every other set the solver has seen.  Without
    one, this is the single-shot reference path: a fresh
    :class:`~repro.graph.GraphView`, one :meth:`set_edge` per failed
    link, one exact full solve — the path the evaluator is gated
    against.  With no failures the topology's memoized distances are
    reused as-is.  The returned array is read-only.
    """
    if solver is not None:
        return solver.distances_for(frozenset(failed))
    design = topology.design
    if not failed:
        return topology.effective_distance_matrix()
    view = topology.graph_view()
    for a, b in topology.mw_links:
        if (a, b) in failed:
            view.set_edge(a, b, design.fiber_km[a, b])
    return view.distances()


def yearly_stretch_analysis(
    topology: Topology,
    catalog: LinkCatalog,
    registry: TowerRegistry,
    precipitation: PrecipitationYear | None = None,
    n_intervals: int = 365,
    fade_margin_db: float = 30.0,
    seed: int = 7,
    frequency_ghz: float | None = None,
    evaluator: YearlyWeatherEvaluator | None = None,
    sample_interval_days: int | None = None,
) -> YearlyStretchResult:
    """Reproduce Fig 7: stretch across all pairs over a sampled year.

    One randomly placed 30-minute interval per day is emulated by one
    storm-field sample per day (our fields are daily); ``n_intervals``
    days are drawn uniformly from the 365-day year by
    :func:`sample_interval_days`.

    Args:
        frequency_ghz: MW carrier frequency for the rain-fade physics
            (``None`` means the default 11 GHz, or — with an injected
            ``evaluator`` — its pinned frequency).
        evaluator: an existing
            :class:`~repro.weather.evaluation.YearlyWeatherEvaluator`
            to reuse (its storm fields and failure-set solver are
            shared across calls).  Its pinned context wins; passing a
            contradicting ``precipitation``/``frequency_ghz`` raises.
        sample_interval_days: when set, replace the random day sample
            with the deterministic every-Nth-day grid of
            :func:`strided_interval_days` (``1`` = the full
            daily-resolution year); ``n_intervals`` and ``seed`` are
            then ignored.
    """
    if sample_interval_days is not None:
        days = strided_interval_days(sample_interval_days)
    else:
        days = _random_interval_days(seed, n_intervals)
    evaluator = resolve_evaluator(
        topology, catalog, registry, precipitation, frequency_ghz, evaluator
    )
    return evaluator.binary_year(days, fade_margin_db=fade_margin_db)
