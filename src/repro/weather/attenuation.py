"""Rain attenuation per ITU-R P.838 (paper §6.1).

The paper computes microwave signal attenuation from precipitation with
the "standard equations in MW engineering" — the ITU-R P.838 power law:

    gamma = k * R^alpha   [dB/km]

where R is the rain rate (mm/h) and (k, alpha) are frequency- and
polarization-dependent coefficients.  Path attenuation applies gamma
over an *effective* path length shorter than the physical hop (rain
cells are finite; ITU-R P.530's distance factor).

A link is treated as failed, in the paper's binary model, when its path
attenuation exceeds the link's fade margin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: ITU-R P.838-3 horizontal-polarization coefficients (k_H, alpha_H),
#: a subset of the published table bracketing the paper's 6-18 GHz band.
_COEFFS_H: list[tuple[float, float, float]] = [
    # (frequency GHz, k_H, alpha_H)
    (4.0, 0.0001071, 1.6009),
    (6.0, 0.0017500, 1.3080),
    (7.0, 0.0030100, 1.3320),
    (8.0, 0.0045400, 1.3270),
    (10.0, 0.0121700, 1.2571),
    (12.0, 0.0238600, 1.1825),
    (15.0, 0.0448100, 1.1233),
    (20.0, 0.0916400, 1.0568),
    (25.0, 0.1571000, 0.9991),
    (30.0, 0.2403000, 0.9485),
]


def rain_coefficients(frequency_ghz: float) -> tuple[float, float]:
    """(k, alpha) at ``frequency_ghz``, log-interpolated from the table."""
    freqs = np.array([f for f, _, _ in _COEFFS_H])
    ks = np.array([k for _, k, _ in _COEFFS_H])
    alphas = np.array([a for _, _, a in _COEFFS_H])
    if not freqs[0] <= frequency_ghz <= freqs[-1]:
        raise ValueError(
            f"frequency {frequency_ghz} GHz outside table range "
            f"[{freqs[0]}, {freqs[-1]}]"
        )
    log_f = np.log(frequency_ghz)
    k = float(np.exp(np.interp(log_f, np.log(freqs), np.log(ks))))
    alpha = float(np.interp(log_f, np.log(freqs), alphas))
    return k, alpha


def specific_attenuation_db_per_km(rain_mm_h, frequency_ghz: float = 11.0):
    """gamma = k R^alpha, dB/km.  Accepts scalar or array rain rates."""
    k, alpha = rain_coefficients(frequency_ghz)
    rain = np.asarray(rain_mm_h, dtype=float)
    if np.any(rain < 0):
        raise ValueError("rain rate must be non-negative")
    result = k * np.power(rain, alpha, where=rain > 0, out=np.zeros_like(rain))
    if np.ndim(rain_mm_h) == 0:
        return float(result)
    return result


def effective_path_km(hop_km: float, rain_mm_h: float) -> float:
    """ITU-R P.530 effective path length through rain.

    d_eff = d / (1 + d/d0),  d0 = 35 exp(-0.015 R)  (R capped at 100).
    """
    if hop_km < 0:
        raise ValueError("hop length must be non-negative")
    r = min(max(rain_mm_h, 0.0), 100.0)
    d0 = 35.0 * np.exp(-0.015 * r)
    return float(hop_km / (1.0 + hop_km / d0))


def path_attenuation_db(
    hop_km: float, rain_mm_h: float, frequency_ghz: float = 11.0
) -> float:
    """Total rain attenuation over a hop, dB."""
    gamma = specific_attenuation_db_per_km(rain_mm_h, frequency_ghz)
    return float(gamma * effective_path_km(hop_km, rain_mm_h))


def path_attenuation_db_many(
    hop_km, rain_mm_h, frequency_ghz: float = 11.0
) -> np.ndarray:
    """Vectorized :func:`path_attenuation_db` (broadcasting inputs).

    Elementwise results are bit-identical to the scalar function: the
    exact same IEEE operations run per element, so the yearly analyses
    can swap their per-hop Python loops for one array expression
    without perturbing any failure decision.
    """
    hop = np.asarray(hop_km, dtype=float)
    rain = np.asarray(rain_mm_h, dtype=float)
    if np.any(hop < 0):
        raise ValueError("hop length must be non-negative")
    gamma = specific_attenuation_db_per_km(rain, frequency_ghz)
    # effective_path_km, vectorized (same IEEE ops, elementwise).
    r = np.minimum(np.maximum(rain, 0.0), 100.0)
    d0 = 35.0 * np.exp(-0.015 * r)
    effective = hop / (1.0 + hop / d0)
    return gamma * effective


@dataclass(frozen=True)
class CriticalRainRates:
    """The binary failure rule, inverted into per-hop rain thresholds.

    Path attenuation is *not* monotone in the rain rate: it rises with
    ``gamma = k R^alpha``, but ITU-R P.530's effective-path factor
    shrinks as ``d0 = 35 exp(-0.015 R)`` collapses, so on a long hop
    the product peaks below the R = 100 mm/h cap, *dips* until the cap,
    then rises again (``d0`` frozen, ``gamma`` still growing).  The
    derivative of ``log(attenuation)`` is strictly decreasing in R up
    to the cap and positive beyond it, so the failing set
    ``{R : attenuation(R) > margin}`` is exactly
    ``(rise, dip] ∪ (recovery, inf)`` — three thresholds per hop, all
    bisected to adjacent floats on their monotone segment, so
    :meth:`failed` classifies every representable rain rate exactly as
    the direct rule does.

    Attributes:
        rise: largest rate on the rising segment that does not breach
            (``inf`` when that segment never breaches).
        dip: largest breaching rate in the dip (``inf`` when the dip
            never drops back under the margin, ``-inf`` when nothing
            below the recovery threshold breaches).
        recovery: largest non-breaching rate at/above the 100 mm/h cap
            (``inf`` when the margin holds up to ``max_rain_mm_h``).
    """

    rise: np.ndarray
    dip: np.ndarray
    recovery: np.ndarray

    def failed(self, rain_mm_h) -> np.ndarray:
        """Elementwise: does this rain rate breach the fade margin?"""
        rain = np.asarray(rain_mm_h, dtype=float)
        return ((rain > self.rise) & (rain <= self.dip)) | (
            rain > self.recovery
        )


def _bisect_breach_boundary(hop, frequency_ghz, margin, lo, hi):
    """Adjacent-float boundary of ``attenuation > margin`` on a segment.

    Elementwise over hops; the attenuation must be monotone between
    ``lo`` (not breaching) and ``hi`` (breaching) — the caller orients
    the segment, so numerically ``lo`` may sit on either side of
    ``hi``.  Returns ``(lo, hi)`` narrowed until no representable
    float lies strictly between them (midpoint rounds onto an
    endpoint).  Lanes whose endpoints violate the predicate are
    harmless — their result is discarded by the caller.
    """
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        converged = (mid == lo) | (mid == hi)
        if converged.all():
            break
        breach = path_attenuation_db_many(hop, mid, frequency_ghz) > margin
        hi = np.where(~converged & breach, mid, hi)
        lo = np.where(~converged & ~breach, mid, lo)
    return lo, hi


def critical_rain_rates(
    hop_km,
    fade_margin_db: float = 30.0,
    frequency_ghz: float = 11.0,
    max_rain_mm_h: float = 1000.0,
) -> CriticalRainRates:
    """Invert the fade margin into per-hop :class:`CriticalRainRates`.

    The failure rule ``path_attenuation_db(hop, R) > margin`` becomes
    the vectorized comparison :meth:`CriticalRainRates.failed` with no
    attenuation evaluation per day.  Exact for every representable
    rain rate up to ``max_rain_mm_h`` (and beyond, whenever the margin
    is already breached there); hops that never breach get all-``inf``
    thresholds.
    """
    if fade_margin_db <= 0:
        raise ValueError("fade margin must be positive")
    margin = float(fade_margin_db)
    hop = np.atleast_1d(np.asarray(hop_km, dtype=float))
    if np.any(hop < 0):
        raise ValueError("hop length must be non-negative")
    k, alpha = rain_coefficients(frequency_ghz)
    cap = 100.0

    def att(rain):
        return path_attenuation_db_many(hop, rain, frequency_ghz)

    # -- locate the peak of the rising segment (d log att / dR = 0) ----
    # g(R) = alpha/R - 0.015 * hop/(d0(R) + hop) is strictly decreasing,
    # so the attenuation is unimodal on (0, 100] and rising beyond.
    def g(rain):
        d0 = 35.0 * np.exp(-0.015 * rain)
        with np.errstate(divide="ignore"):
            return alpha / rain - 0.015 * hop / (d0 + hop)

    peak_lo = np.full_like(hop, 1e-6)
    peak_hi = np.full_like(hop, cap)
    no_peak = g(peak_hi) >= 0  # still rising at the cap
    for _ in range(200):
        mid = 0.5 * (peak_lo + peak_hi)
        stuck = (mid == peak_lo) | (mid == peak_hi)
        falling = g(mid) < 0
        peak_hi = np.where(~stuck & falling, mid, peak_hi)
        peak_lo = np.where(~stuck & ~falling, mid, peak_lo)
        if stuck.all():
            break
    peak_lo = np.where(no_peak, cap, peak_lo)  # rising all the way
    peak_hi = np.where(no_peak, cap, peak_hi)
    att_peak_lo = att(peak_lo)  # largest float on the rising segment
    att_peak_hi = att(peak_hi)  # first float on the falling segment
    att_cap = att(np.full_like(hop, cap))
    att_max = att(np.full_like(hop, float(max_rain_mm_h)))

    # -- rise: crossing on the increasing segment [0, peak_lo] ---------
    lo, hi = _bisect_breach_boundary(
        hop, frequency_ghz, margin, np.zeros_like(hop), peak_lo
    )
    rise = np.where(
        att_peak_lo > margin,
        lo,
        # The 1-ulp corner where only the falling side breaches: every
        # float above peak_lo sits on that side.
        np.where(att_peak_hi > margin, peak_lo, np.inf),
    )

    # -- dip: crossing on the decreasing segment [peak_hi, 100] --------
    # Orient so the predicate is False at lo' = 100 and True at hi' =
    # peak_hi, then the largest breaching float is the returned hi'.
    dip_cap, dip_peak = _bisect_breach_boundary(
        hop, frequency_ghz, margin, np.full_like(hop, cap), peak_hi
    )
    dip = np.where(
        att_peak_hi <= margin,
        -np.inf,  # nothing on the falling segment breaches
        np.where(att_cap > margin, np.inf, dip_peak),
    )

    # -- recovery: crossing on the increasing segment [100, max] -------
    rec_lo, _ = _bisect_breach_boundary(
        hop, frequency_ghz, margin,
        np.full_like(hop, cap), np.full_like(hop, float(max_rain_mm_h)),
    )
    recovery = np.where(
        (att_cap <= margin) & (att_max > margin), rec_lo, np.inf
    )
    return CriticalRainRates(rise=rise, dip=dip, recovery=recovery)


def hop_fails(
    hop_km: float,
    rain_mm_h: float,
    fade_margin_db: float = 35.0,
    frequency_ghz: float = 11.0,
) -> bool:
    """The paper's binary failure rule: attenuation exceeds the margin."""
    if fade_margin_db <= 0:
        raise ValueError("fade margin must be positive")
    return path_attenuation_db(hop_km, rain_mm_h, frequency_ghz) > fade_margin_db
