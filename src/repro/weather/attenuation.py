"""Rain attenuation per ITU-R P.838 (paper §6.1).

The paper computes microwave signal attenuation from precipitation with
the "standard equations in MW engineering" — the ITU-R P.838 power law:

    gamma = k * R^alpha   [dB/km]

where R is the rain rate (mm/h) and (k, alpha) are frequency- and
polarization-dependent coefficients.  Path attenuation applies gamma
over an *effective* path length shorter than the physical hop (rain
cells are finite; ITU-R P.530's distance factor).

A link is treated as failed, in the paper's binary model, when its path
attenuation exceeds the link's fade margin.
"""

from __future__ import annotations

import numpy as np

#: ITU-R P.838-3 horizontal-polarization coefficients (k_H, alpha_H),
#: a subset of the published table bracketing the paper's 6-18 GHz band.
_COEFFS_H: list[tuple[float, float, float]] = [
    # (frequency GHz, k_H, alpha_H)
    (4.0, 0.0001071, 1.6009),
    (6.0, 0.0017500, 1.3080),
    (7.0, 0.0030100, 1.3320),
    (8.0, 0.0045400, 1.3270),
    (10.0, 0.0121700, 1.2571),
    (12.0, 0.0238600, 1.1825),
    (15.0, 0.0448100, 1.1233),
    (20.0, 0.0916400, 1.0568),
    (25.0, 0.1571000, 0.9991),
    (30.0, 0.2403000, 0.9485),
]


def rain_coefficients(frequency_ghz: float) -> tuple[float, float]:
    """(k, alpha) at ``frequency_ghz``, log-interpolated from the table."""
    freqs = np.array([f for f, _, _ in _COEFFS_H])
    ks = np.array([k for _, k, _ in _COEFFS_H])
    alphas = np.array([a for _, _, a in _COEFFS_H])
    if not freqs[0] <= frequency_ghz <= freqs[-1]:
        raise ValueError(
            f"frequency {frequency_ghz} GHz outside table range "
            f"[{freqs[0]}, {freqs[-1]}]"
        )
    log_f = np.log(frequency_ghz)
    k = float(np.exp(np.interp(log_f, np.log(freqs), np.log(ks))))
    alpha = float(np.interp(log_f, np.log(freqs), alphas))
    return k, alpha


def specific_attenuation_db_per_km(rain_mm_h, frequency_ghz: float = 11.0):
    """gamma = k R^alpha, dB/km.  Accepts scalar or array rain rates."""
    k, alpha = rain_coefficients(frequency_ghz)
    rain = np.asarray(rain_mm_h, dtype=float)
    if np.any(rain < 0):
        raise ValueError("rain rate must be non-negative")
    result = k * np.power(rain, alpha, where=rain > 0, out=np.zeros_like(rain))
    if np.ndim(rain_mm_h) == 0:
        return float(result)
    return result


def effective_path_km(hop_km: float, rain_mm_h: float) -> float:
    """ITU-R P.530 effective path length through rain.

    d_eff = d / (1 + d/d0),  d0 = 35 exp(-0.015 R)  (R capped at 100).
    """
    if hop_km < 0:
        raise ValueError("hop length must be non-negative")
    r = min(max(rain_mm_h, 0.0), 100.0)
    d0 = 35.0 * np.exp(-0.015 * r)
    return float(hop_km / (1.0 + hop_km / d0))


def path_attenuation_db(
    hop_km: float, rain_mm_h: float, frequency_ghz: float = 11.0
) -> float:
    """Total rain attenuation over a hop, dB."""
    gamma = specific_attenuation_db_per_km(rain_mm_h, frequency_ghz)
    return float(gamma * effective_path_km(hop_km, rain_mm_h))


def hop_fails(
    hop_km: float,
    rain_mm_h: float,
    fade_margin_db: float = 35.0,
    frequency_ghz: float = 11.0,
) -> bool:
    """The paper's binary failure rule: attenuation exceeds the margin."""
    if fade_margin_db <= 0:
        raise ValueError("fade margin must be positive")
    return path_attenuation_db(hop_km, rain_mm_h, frequency_ghz) > fade_margin_db
