"""Synthetic precipitation fields (NASA TRMM/GPM archive substitute).

The paper samples a year of NASA precipitation data (July 2015 - June
2016), one random 30-minute interval per day, to find which MW hops fail
when.  The archive is unavailable offline, so we synthesize a year of
storm fields with the properties the failure analysis consumes:

* storms are spatially coherent cells (tens to hundreds of km), so
  nearby hops fail together while the rest of the network stays dry;
* intensity is heavy-tailed: most rain is light (a few mm/h, harmless
  at 11 GHz) with occasional convective cores (>40 mm/h) that take
  links down;
* seasonality and geography: more storms in summer, wetter in the
  (US) southeast — so yearly statistics are not uniform.

Everything is deterministic per (seed, day).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The synthetic year is exactly 365 days (no leap day): the paper's
#: July 2015 - June 2016 window is sampled as days 1..365, and every
#: consumer — the interval sampler, the storm-field generator, the
#: failure analyses — shares this one contract.
DAYS_PER_YEAR = 365


@dataclass(frozen=True)
class StormCell:
    """One rain cell: Gaussian intensity profile around a center."""

    lat: float
    lon: float
    radius_km: float
    peak_mm_h: float


@dataclass(frozen=True)
class RegionClimate:
    """Climate knobs for a geography.

    Attributes:
        lat_range / lon_range: bounding box for storm centers.
        storms_per_day: mean daily storm-cell count (annual average).
        seasonal_amplitude: relative summer/winter modulation (0-1).
        summer_peak_day: day-of-year of maximum storm activity.
        wet_bias_lat / wet_bias_lon: center of the wetter sub-region
            (e.g., the US southeast); None disables the bias.
    """

    lat_range: tuple[float, float]
    lon_range: tuple[float, float]
    storms_per_day: float = 18.0
    seasonal_amplitude: float = 0.6
    summer_peak_day: int = 200
    wet_bias_lat: float | None = None
    wet_bias_lon: float | None = None


US_CLIMATE = RegionClimate(
    lat_range=(24.0, 50.0),
    lon_range=(-125.0, -66.0),
    storms_per_day=22.0,
    wet_bias_lat=32.0,
    wet_bias_lon=-88.0,
)

EU_CLIMATE = RegionClimate(
    lat_range=(36.0, 60.0),
    lon_range=(-10.0, 30.0),
    storms_per_day=18.0,
    wet_bias_lat=46.0,
    wet_bias_lon=14.0,
)


class PrecipitationYear:
    """A deterministic year of daily storm fields."""

    def __init__(self, climate: RegionClimate = US_CLIMATE, seed: int = 2015):
        self.climate = climate
        self.seed = seed

    def _seasonal_factor(self, day_of_year: int) -> float:
        phase = 2.0 * np.pi * (day_of_year - self.climate.summer_peak_day) / 365.0
        return 1.0 + self.climate.seasonal_amplitude * np.cos(phase)

    def storms_for_day(self, day_of_year: int) -> list[StormCell]:
        """The storm cells active on ``day_of_year`` (1..365).

        The synthetic year has no leap day (:data:`DAYS_PER_YEAR`); day
        366 is rejected rather than silently generating a field the
        interval sampler can never draw.
        """
        if not 1 <= day_of_year <= DAYS_PER_YEAR:
            raise ValueError(
                f"day of year must be in 1..{DAYS_PER_YEAR} "
                "(the synthetic year has no leap day)"
            )
        rng = np.random.default_rng(self.seed * 1000 + day_of_year)
        clim = self.climate
        mean_storms = clim.storms_per_day * self._seasonal_factor(day_of_year)
        n = int(rng.poisson(mean_storms))
        cells = []
        for _ in range(n):
            lat = float(rng.uniform(*clim.lat_range))
            lon = float(rng.uniform(*clim.lon_range))
            # Wet-bias acceptance: cells near the wet center are kept
            # preferentially, making the biased region rainier.
            if clim.wet_bias_lat is not None:
                dist_deg = np.hypot(
                    lat - clim.wet_bias_lat, lon - clim.wet_bias_lon
                )
                accept = 0.45 + 0.55 * np.exp(-((dist_deg / 18.0) ** 2))
                if rng.random() > accept:
                    continue
            radius = float(rng.uniform(25.0, 220.0))
            # Heavy-tailed peak intensity: mostly light rain, rare
            # convective cores strong enough to fade an 11 GHz hop.
            peak = float(rng.lognormal(mean=1.7, sigma=1.25))
            cells.append(
                StormCell(lat=lat, lon=lon, radius_km=radius, peak_mm_h=min(peak, 150.0))
            )
        return cells

    def rain_rate_mm_h(self, day_of_year: int, lats, lons) -> np.ndarray:
        """Rain rate at the query points on the given day (vectorized).

        The rate at a point is the maximum over active cells of the
        cell's Gaussian profile.
        """
        lats = np.atleast_1d(np.asarray(lats, dtype=float))
        lons = np.atleast_1d(np.asarray(lons, dtype=float))
        rate = np.zeros(lats.shape)
        mean_lat = np.radians(np.mean(self.climate.lat_range))
        km_per_deg_lon = 111.19 * np.cos(mean_lat)
        for cell in self.storms_for_day(day_of_year):
            dx = (lons - cell.lon) * km_per_deg_lon
            dy = (lats - cell.lat) * 111.19
            dist = np.hypot(dx, dy)
            rate = np.maximum(
                rate, cell.peak_mm_h * np.exp(-((dist / cell.radius_km) ** 2))
            )
        return rate

    def rain_rate_mm_h_many(self, days, lats, lons) -> np.ndarray:
        """Rain rates at the query points across many days at once.

        Builds each distinct day's storm field exactly once, however
        many points are queried and however often a day repeats in
        ``days`` — the bulk entry point for the yearly analyses, which
        previously regenerated the field once per link per day.

        Args:
            days: sequence of days of year (1..365; repeats allowed).
            lats / lons: query point coordinates, one rate per point.

        Returns:
            Array of shape ``(len(days), n_points)``; row ``i`` is
            bit-identical to ``rain_rate_mm_h(days[i], lats, lons)``.
        """
        days = np.atleast_1d(np.asarray(days, dtype=int))
        lats = np.atleast_1d(np.asarray(lats, dtype=float))
        lons = np.atleast_1d(np.asarray(lons, dtype=float))
        unique_days, inverse = np.unique(days, return_inverse=True)
        per_day = np.empty((unique_days.size, lats.size))
        for i, day in enumerate(unique_days):
            per_day[i] = self.rain_rate_mm_h(int(day), lats, lons)
        return per_day[inverse]
