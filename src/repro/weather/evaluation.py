"""The shared yearly-weather evaluation engine (§6.1, Fig 7).

Every yearly analysis — the binary failure model, the graded
(modulation-downshift) refinement, and the orchestration layer's
weather stage — runs through one :class:`YearlyWeatherEvaluator`.
Three properties make the sampled-year loop scale:

* **one sampler** — :func:`sample_interval_days` is the only place the
  §6.1 interval days are drawn, so the binary and graded passes can
  never desynchronize their sampled days (they previously duplicated
  the RNG recipe);
* **vectorized failures** — the fade margin is inverted once per hop
  into :class:`~repro.weather.attenuation.CriticalRainRates`
  (:func:`~repro.weather.attenuation.critical_rain_rates`), so a
  day's failed-link set is one vectorized threshold comparison over
  all hops with no attenuation evaluation; storm fields are built once
  per day for all hops via
  :meth:`PrecipitationYear.rain_rate_mm_h_many`, never once per link;
* **failure-set reuse** — each interval's failed links are
  canonicalized to a frozenset and routed through a
  :class:`~repro.graph.FailureSetSolver`: repeated sets are memo hits,
  sets within ``delta_k`` links of a previously solved neighbor are
  derived compositionally (exact edge-insertion restorations plus an
  affected-source Dijkstra restart for the removals), and only
  genuinely new neighborhoods pay a full
  :meth:`~repro.graph.GraphView.distances_with_edges_removed` solve.
  Storm tracks — where one or two links flap between consecutive days —
  ride the delta route, which is what makes daily-resolution
  (365-interval) years affordable at continental scale.  Cached
  matrices and stretch rows live under an LRU byte budget
  (``cache_mb``), so long runs cannot exhaust memory.

With ``delta_k=0`` the evaluator reproduces the PR 5 memo-only path
bit-identically (CI-gated by ``benchmarks/bench_weather.py``); the
delta route is gated to <= 1e-9 against it by
``benchmarks/bench_storm_track.py``.  Route selection is deterministic,
so two identically configured evaluators fed the same query sequence
return bitwise-identical arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.topology import Topology
from ..graph import ByteBudgetLRU, FailureSetSolver
from ..links.builder import LinkCatalog
from ..towers.registry import TowerRegistry
from .attenuation import (
    CriticalRainRates,
    critical_rain_rates,
    path_attenuation_db_many,
)
from .precipitation import DAYS_PER_YEAR, PrecipitationYear


def sample_interval_days(seed: int, n_intervals: int) -> np.ndarray:
    """The §6.1 sampled days of year: one 30-minute interval per draw.

    Days are drawn uniformly from the 365-day synthetic year (without
    replacement while ``n_intervals`` fits in one year).  This is the
    *only* sampler: the binary analysis, the graded comparison, and the
    weather stage all consume it, so one seed always means one shared
    day sequence across passes.
    """
    if n_intervals <= 0:
        raise ValueError("need at least one interval")
    rng = np.random.default_rng(seed)
    return rng.choice(
        np.arange(1, DAYS_PER_YEAR + 1),
        size=n_intervals,
        replace=n_intervals > DAYS_PER_YEAR,
    )


def strided_interval_days(sample_interval_days: int) -> np.ndarray:
    """A deterministic day grid over the year: every Nth day, in order.

    ``sample_interval_days=1`` is the full daily-resolution year (365
    intervals) — the storm-track delta solver's home turf, since
    consecutive days differ by the few links a moving storm flips.
    Replaces :func:`sample_interval_days`'s random draw when an
    analysis asks for it (no seed involved).
    """
    step = int(sample_interval_days)
    if not (1 <= step <= DAYS_PER_YEAR):
        raise ValueError(
            f"sample_interval_days must be in [1, {DAYS_PER_YEAR}], got {step}"
        )
    return np.arange(1, DAYS_PER_YEAR + 1, step, dtype=int)


@dataclass(frozen=True)
class YearlyStretchResult:
    """Per-pair stretch statistics over a sampled year.

    All arrays are flattened over the site pairs (i < j) with finite
    geodesic separation.

    Attributes:
        best: fair-weather stretch per pair.
        p99: 99th-percentile stretch per pair across intervals.
        worst: worst stretch per pair.
        fiber: fiber-only stretch per pair.
        links_failed_per_interval: number of failed MW links per
            sampled interval.
    """

    best: np.ndarray
    p99: np.ndarray
    worst: np.ndarray
    fiber: np.ndarray
    links_failed_per_interval: np.ndarray


def link_hop_segments(
    topology: Topology, catalog: LinkCatalog, registry: TowerRegistry
) -> dict[tuple[int, int], list[tuple[float, float, float]]]:
    """Per built link: (mid_lat, mid_lon, hop_km) of each tower hop."""
    segments: dict[tuple[int, int], list[tuple[float, float, float]]] = {}
    for link in sorted(topology.mw_links):
        cand = catalog.link(*link)
        if cand is None:
            raise ValueError(f"link {link} missing from catalog")
        hops = []
        path = cand.tower_path
        for u, v in zip(path[:-1], path[1:]):
            a, b = registry[u], registry[v]
            hops.append(
                (
                    (a.lat + b.lat) / 2.0,
                    (a.lon + b.lon) / 2.0,
                    a.point.distance_km(b.point),
                )
            )
        segments[link] = hops
    return segments


@dataclass(frozen=True)
class LinkHopArrays:
    """The hop geometry of every built link, flattened to arrays.

    Hops appear in link order (links sorted ascending) and, within a
    link, tower-path order — the same order the per-link segment dict
    iterates, so rain queries over these arrays reproduce the scalar
    path bit-for-bit.

    Attributes:
        links: the built links, sorted ascending.
        lat / lon: hop midpoint coordinates, shape ``(n_hops,)``.
        hop_km: hop lengths, shape ``(n_hops,)``.
        link_index: for each hop, its link's index into ``links``.
    """

    links: tuple[tuple[int, int], ...]
    lat: np.ndarray
    lon: np.ndarray
    hop_km: np.ndarray
    link_index: np.ndarray


def link_hop_arrays(
    topology: Topology, catalog: LinkCatalog, registry: TowerRegistry
) -> LinkHopArrays:
    """Flatten :func:`link_hop_segments` into vectorization-ready arrays."""
    segments = link_hop_segments(topology, catalog, registry)
    lats: list[float] = []
    lons: list[float] = []
    lens: list[float] = []
    owner: list[int] = []
    for idx, hops in enumerate(segments.values()):
        for lat, lon, hop_km in hops:
            lats.append(lat)
            lons.append(lon)
            lens.append(hop_km)
            owner.append(idx)
    return LinkHopArrays(
        links=tuple(segments),
        lat=np.array(lats, dtype=float),
        lon=np.array(lons, dtype=float),
        hop_km=np.array(lens, dtype=float),
        link_index=np.array(owner, dtype=np.intp),
    )


def resolve_evaluator(
    topology: Topology,
    catalog: LinkCatalog,
    registry: TowerRegistry,
    precipitation: PrecipitationYear | None,
    frequency_ghz: float | None,
    evaluator: "YearlyWeatherEvaluator | None",
) -> "YearlyWeatherEvaluator":
    """Build — or validate — the evaluator behind an analysis call.

    Without ``evaluator``, a fresh one is built (``frequency_ghz``
    defaults to 11 GHz).  With one, its pinned context wins, and any
    explicitly passed ``precipitation``/``frequency_ghz``/``topology``
    that *contradicts* it is rejected instead of silently ignored —
    otherwise results would be attributed to physics that never ran.
    """
    if evaluator is None:
        return YearlyWeatherEvaluator(
            topology,
            catalog,
            registry,
            precipitation=precipitation,
            frequency_ghz=11.0 if frequency_ghz is None else frequency_ghz,
        )
    if evaluator.topology is not topology:
        raise ValueError("evaluator is pinned to a different topology")
    if precipitation is not None and precipitation is not evaluator.precipitation:
        raise ValueError(
            "evaluator is pinned to a different precipitation year; "
            "pass one or the other, not both"
        )
    if (
        frequency_ghz is not None
        and float(frequency_ghz) != evaluator.frequency_ghz
    ):
        raise ValueError(
            f"evaluator is pinned to {evaluator.frequency_ghz} GHz, "
            f"got frequency_ghz={frequency_ghz}"
        )
    return evaluator


class YearlyWeatherEvaluator:
    """Vectorized, memoized engine behind every yearly weather analysis.

    One evaluator pins one ``(topology, precipitation, frequency)``
    context; the binary and graded passes share its per-day storm
    fields and its failure-set solver, so e.g. the graded comparison's
    two passes pay each distinct failure set only once between them.

    Args:
        delta_k: the failure-set solver's neighbor radius — a query
            within ``delta_k`` links (symmetric difference) of a
            previously solved set is derived compositionally instead of
            fully solved.  ``0`` reproduces the PR 5 memo-only path
            bit-identically.
        restore_k: the solver's wider budget for cached *supersets* of
            a query (restoration-only deltas); also sizes the padded
            union solves.  See :class:`~repro.graph.FailureSetSolver`.
        cache_mb: LRU byte budget (MiB), applied separately to the
            solver's distance matrices and the per-set stretch rows.
    """

    def __init__(
        self,
        topology: Topology,
        catalog: LinkCatalog,
        registry: TowerRegistry,
        precipitation: PrecipitationYear | None = None,
        frequency_ghz: float = 11.0,
        delta_k: int = 2,
        restore_k: int = 12,
        cache_mb: float = 256.0,
    ) -> None:
        if cache_mb <= 0:
            raise ValueError("cache_mb must be positive")
        self.topology = topology
        self.precipitation = precipitation or PrecipitationYear()
        self.frequency_ghz = float(frequency_ghz)
        self.delta_k = int(delta_k)
        self.restore_k = int(restore_k)
        self.cache_mb = float(cache_mb)
        self.hops = link_hop_arrays(topology, catalog, registry)
        design = topology.design
        geo = design.geodesic_km
        self._iu = np.triu_indices(design.n_sites, k=1)
        self._valid = geo[self._iu] > 0
        self._geo_flat = geo[self._iu]
        self._fiber_km = design.fiber_km
        self._solver: FailureSetSolver | None = None
        self._stretch_cache: ByteBudgetLRU = ByteBudgetLRU(
            self.cache_mb * 2**20
        )
        self._stretch_cache.pin(frozenset())
        self._critical_cache: dict[float, CriticalRainRates] = {}
        self._rain_cache: dict[int, np.ndarray] = {}

    @property
    def solver(self) -> FailureSetSolver:
        """The failure-set solver (built on first use).

        A failed MW link reverts to its always-available direct fiber,
        so the solver's failed weight for link ``(a, b)`` is
        ``fiber_km[a, b]``.  The healthy entry is seeded from the
        topology's memoized distances without a solve.
        """
        if self._solver is None:
            fiber = self._fiber_km
            self._solver = FailureSetSolver(
                self.topology.graph_view(),
                fail_weight=lambda a, b: float(fiber[a, b]),
                delta_k=self.delta_k,
                restore_k=self.restore_k,
                cache_bytes=self.cache_mb * 2**20,
                base_distances=self.topology.effective_distance_matrix(),
            )
        return self._solver

    @property
    def solve_count(self) -> int:
        """Queries that required computation (full + delta routes).

        Union solves — supersets computed to serve a query — piggyback
        on their query's fallback and are not separate queries, so they
        are not double-counted here.
        """
        solver = self._solver
        if solver is None:
            return 0
        return (
            solver.full_solves + solver.delta_solves - solver.union_solves
        )

    @property
    def cache_hits(self) -> int:
        """Failure-set lookups served from the memo."""
        return 0 if self._solver is None else self._solver.memo_hits

    def solver_stats(self) -> dict:
        """The solver's route counters (zeros before the first query)."""
        if self._solver is None:
            return {
                "full_solves": 0,
                "delta_solves": 0,
                "memo_hits": 0,
                "union_solves": 0,
                "cached_sets": 0,
                "cache_bytes": 0,
                "evictions": 0,
            }
        return self._solver.stats()

    # -- per-day rain over all hops ------------------------------------

    def rain_for_days(self, days) -> np.ndarray:
        """Rain at every hop midpoint for each day, ``(n_days, n_hops)``.

        Each distinct day's storm field is built once per evaluator,
        however many passes ask for it.
        """
        days = np.atleast_1d(np.asarray(days, dtype=int))
        missing = sorted({int(d) for d in days} - self._rain_cache.keys())
        if missing:
            rows = self.precipitation.rain_rate_mm_h_many(
                missing, self.hops.lat, self.hops.lon
            )
            for day, row in zip(missing, rows):
                self._rain_cache[day] = row
        rows = [self._rain_cache[int(d)] for d in days]
        if not rows:
            return np.empty((0, self.hops.hop_km.size))
        return np.array(rows)

    # -- failure detection ---------------------------------------------

    def critical_rain(self, fade_margin_db: float) -> CriticalRainRates:
        """Per-hop inverted failure thresholds (cached per margin)."""
        key = float(fade_margin_db)
        if key not in self._critical_cache:
            self._critical_cache[key] = critical_rain_rates(
                self.hops.hop_km, key, self.frequency_ghz
            )
        return self._critical_cache[key]

    def _links_from_hop_mask(self, mask: np.ndarray) -> frozenset:
        if not mask.any():
            return frozenset()
        failed = np.unique(self.hops.link_index[mask])
        return frozenset(self.hops.links[i] for i in failed)

    def failed_links_for_day(
        self, rain_row: np.ndarray, fade_margin_db: float
    ) -> frozenset:
        """Links with a hop over the margin: one vectorized comparison."""
        return self._links_from_hop_mask(
            self.critical_rain(fade_margin_db).failed(rain_row)
        )

    # -- memoized solves ------------------------------------------------

    def distances_for(self, failed: frozenset) -> np.ndarray:
        """All-pairs distances with ``failed`` MW links down (read-only).

        Each failed link reverts to its always-available direct fiber.
        The query routes through the failure-set solver: repeats are
        bit-identical memo hits, near-repeats (within ``delta_k``
        links of a cached set) are derived compositionally, and only
        new neighborhoods pay a full batch solve.
        """
        return self.solver.distances_for(failed)

    def _stretches(self, dist: np.ndarray) -> np.ndarray:
        return (dist[self._iu] / self._geo_flat)[self._valid]

    def stretches_for(self, failed: frozenset) -> np.ndarray:
        """Per-pair stretch row under a failure set (memoized, LRU)."""
        key = frozenset(failed)
        cached = self._stretch_cache.get(key)
        if cached is None:
            cached = self._stretches(self.distances_for(key))
            self._stretch_cache.put(key, cached)
        return cached

    # -- the two passes -------------------------------------------------

    def binary_year(self, days, fade_margin_db: float = 30.0) -> YearlyStretchResult:
        """The paper's binary failure model over the given sampled days."""
        days = np.atleast_1d(np.asarray(days, dtype=int))
        rain = self.rain_for_days(days)
        critical = self.critical_rain(fade_margin_db)
        best = self.stretches_for(frozenset())
        fiber = self._stretches(self._fiber_km)
        per_interval = np.empty((days.size, int(self._valid.sum())))
        n_failed = np.zeros(days.size, dtype=int)
        for k in range(days.size):
            failed = self._links_from_hop_mask(critical.failed(rain[k]))
            n_failed[k] = len(failed)
            per_interval[k] = self.stretches_for(failed) if failed else best
        return YearlyStretchResult(
            best=best,
            p99=np.percentile(per_interval, 99, axis=0),
            worst=per_interval.max(axis=0),
            fiber=fiber,
            links_failed_per_interval=n_failed,
        )

    def graded_year(
        self,
        days,
        soft_margin_db: float = 18.0,
        hard_margin_db: float = 40.0,
    ) -> tuple[np.ndarray, float]:
        """The graded (modulation-downshift) model over the sampled days.

        Links degrade between the soft and hard margins (each 3 dB
        over soft halves throughput) and only drop above the hard
        margin, so the latency statistics are elementwise no worse
        than the binary model's.

        Returns:
            ``(per_interval, capacity_loss_fraction)``: the per-pair
            stretch rows (one per day) and the mean fraction of MW
            capacity lost to downshifts across all (day, link) samples.
        """
        if soft_margin_db <= 0 or hard_margin_db <= soft_margin_db:
            raise ValueError("need 0 < soft margin < hard margin")
        days = np.atleast_1d(np.asarray(days, dtype=int))
        rain = self.rain_for_days(days)
        attenuation = path_attenuation_db_many(
            self.hops.hop_km, rain, self.frequency_ghz
        )
        steps = (attenuation - soft_margin_db) / 3.0
        fractions = np.where(
            attenuation <= soft_margin_db,
            1.0,
            np.where(attenuation >= hard_margin_db, 0.0, 0.5**steps),
        )
        best = self.stretches_for(frozenset())
        per_interval = np.empty((days.size, int(self._valid.sum())))
        # A link's capacity is its weakest hop's; links without hops
        # (nothing to fade) are excluded from the capacity statistic,
        # matching the per-link scalar path.
        hop_of_link = self.hops.link_index
        if hop_of_link.size:
            starts = np.flatnonzero(np.r_[True, np.diff(hop_of_link) != 0])
            link_fractions = np.minimum.reduceat(fractions, starts, axis=1)
        else:
            link_fractions = np.empty((days.size, 0))
        for k in range(days.size):
            # A hop's fraction is 0 iff its attenuation reaches the
            # hard margin — the attenuation array is already in hand,
            # so the failure rule is applied to it directly.
            failed = self._links_from_hop_mask(
                attenuation[k] >= hard_margin_db
            )
            per_interval[k] = self.stretches_for(failed) if failed else best
        capacity_loss = (
            float(np.mean(1.0 - link_fractions))
            if link_fractions.size
            else float("nan")
        )
        return per_interval, capacity_loss
