"""Synthetic HFT microwave-relay loss trace (paper §2).

The paper analyzes 2,743 one-minute loss samples from an operational
Chicago-New Jersey relay spanning late October 2012 — a window that
includes Hurricane Sandy's four-day disruption.  Headline statistics:
mean loss 16.1% (dragged up by the hurricane), median loss 1.4%.

The provider data is proprietary, so we synthesize a trace with the
same structure — a lognormal fair-weather baseline plus a contiguous
hurricane segment with severe loss — and verify the headline statistics
hold on the synthetic trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Trading minutes in the paper's dataset.
PAPER_TRACE_MINUTES = 2743

#: Trading minutes per market day (9:30-16:00 ET).
MINUTES_PER_TRADING_DAY = 390


@dataclass(frozen=True)
class LossTrace:
    """A per-minute packet-loss-rate series."""

    loss_rates: np.ndarray

    @property
    def mean(self) -> float:
        return float(np.mean(self.loss_rates))

    @property
    def median(self) -> float:
        return float(np.median(self.loss_rates))

    def fraction_above(self, threshold: float) -> float:
        """Fraction of minutes with loss above ``threshold``."""
        return float(np.mean(self.loss_rates > threshold))


def synthesize_hft_trace(
    n_minutes: int = PAPER_TRACE_MINUTES,
    hurricane_days: int = 4,
    seed: int = 2012,
) -> LossTrace:
    """Generate the Sandy-period loss trace.

    Fair-weather minutes draw from a lognormal centered near the
    paper's 1.4% median; the hurricane segment (4 trading days) draws
    from a severe-loss distribution, lifting the mean toward 16%.
    """
    if n_minutes <= 0:
        raise ValueError("trace length must be positive")
    rng = np.random.default_rng(seed)
    hurricane_minutes = min(hurricane_days * MINUTES_PER_TRADING_DAY, n_minutes)
    fair_minutes = n_minutes - hurricane_minutes

    fair = rng.lognormal(mean=np.log(0.009), sigma=0.85, size=fair_minutes)
    fair = np.clip(fair, 0.0, 1.0)
    # Hurricane days mix lulls (link marginally operational, loss like a
    # bad fair-weather minute) with severe-outage stretches.
    lull_mask = rng.random(hurricane_minutes) < 0.4
    lulls = np.clip(
        rng.lognormal(mean=np.log(0.012), sigma=0.9, size=hurricane_minutes), 0.0, 1.0
    )
    severe = np.clip(rng.beta(a=1.6, b=1.8, size=hurricane_minutes), 0.0, 1.0)
    storm = np.where(lull_mask, lulls, severe)

    # Hurricane occupies a contiguous block near the end (Sandy hit at
    # the end of the 10/22-11/01 window).
    trace = np.concatenate([fair, storm])
    return LossTrace(loss_rates=trace)
