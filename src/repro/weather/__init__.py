"""Weather: precipitation fields, rain attenuation, failures, traces."""

from .attenuation import (
    effective_path_km,
    hop_fails,
    path_attenuation_db,
    rain_coefficients,
    specific_attenuation_db_per_km,
)
from .degradation import (
    GradedComparison,
    graded_capacity_fraction,
    graded_yearly_comparison,
    weather_stage_records,
)
from .failures import (
    YearlyStretchResult,
    distances_with_failures,
    failed_links,
    link_hop_segments,
    yearly_stretch_analysis,
)
from .loss_traces import (
    MINUTES_PER_TRADING_DAY,
    PAPER_TRACE_MINUTES,
    LossTrace,
    synthesize_hft_trace,
)
from .precipitation import (
    EU_CLIMATE,
    US_CLIMATE,
    PrecipitationYear,
    RegionClimate,
    StormCell,
)

__all__ = [
    "GradedComparison",
    "graded_capacity_fraction",
    "graded_yearly_comparison",
    "weather_stage_records",
    "effective_path_km",
    "hop_fails",
    "path_attenuation_db",
    "rain_coefficients",
    "specific_attenuation_db_per_km",
    "YearlyStretchResult",
    "distances_with_failures",
    "failed_links",
    "link_hop_segments",
    "yearly_stretch_analysis",
    "MINUTES_PER_TRADING_DAY",
    "PAPER_TRACE_MINUTES",
    "LossTrace",
    "synthesize_hft_trace",
    "EU_CLIMATE",
    "US_CLIMATE",
    "PrecipitationYear",
    "RegionClimate",
    "StormCell",
]
