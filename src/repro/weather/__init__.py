"""Weather: precipitation fields, rain attenuation, failures, traces."""

from .attenuation import (
    CriticalRainRates,
    critical_rain_rates,
    effective_path_km,
    hop_fails,
    path_attenuation_db,
    path_attenuation_db_many,
    rain_coefficients,
    specific_attenuation_db_per_km,
)
from .degradation import (
    GradedComparison,
    graded_capacity_fraction,
    graded_yearly_comparison,
    weather_stage_records,
)
from .evaluation import (
    LinkHopArrays,
    YearlyStretchResult,
    YearlyWeatherEvaluator,
    link_hop_arrays,
    link_hop_segments,
    resolve_evaluator,
    sample_interval_days,
    strided_interval_days,
)
from .failures import (
    distances_with_failures,
    failed_links,
    yearly_stretch_analysis,
)
from .loss_traces import (
    MINUTES_PER_TRADING_DAY,
    PAPER_TRACE_MINUTES,
    LossTrace,
    synthesize_hft_trace,
)
from .precipitation import (
    DAYS_PER_YEAR,
    EU_CLIMATE,
    US_CLIMATE,
    PrecipitationYear,
    RegionClimate,
    StormCell,
)

__all__ = [
    "GradedComparison",
    "graded_capacity_fraction",
    "graded_yearly_comparison",
    "weather_stage_records",
    "CriticalRainRates",
    "critical_rain_rates",
    "effective_path_km",
    "hop_fails",
    "path_attenuation_db",
    "path_attenuation_db_many",
    "rain_coefficients",
    "specific_attenuation_db_per_km",
    "LinkHopArrays",
    "YearlyStretchResult",
    "YearlyWeatherEvaluator",
    "link_hop_arrays",
    "resolve_evaluator",
    "sample_interval_days",
    "strided_interval_days",
    "distances_with_failures",
    "failed_links",
    "link_hop_segments",
    "yearly_stretch_analysis",
    "DAYS_PER_YEAR",
    "MINUTES_PER_TRADING_DAY",
    "PAPER_TRACE_MINUTES",
    "LossTrace",
    "synthesize_hft_trace",
    "EU_CLIMATE",
    "US_CLIMATE",
    "PrecipitationYear",
    "RegionClimate",
    "StormCell",
]
