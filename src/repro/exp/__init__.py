"""Experiment orchestration: spec DAG, artifact cache, sweep runner.

The composition layer behind every paper experiment: a declarative,
seed-pinned :class:`ExperimentSpec` runs through the stage graph
``substrate → design → {netsim, weather, apps, econ}`` with each stage
memoized in a content-addressed :class:`ArtifactStore`, and
:class:`SweepRunner` fans a spec out over axes across worker processes
into one tidy records table.
"""

from .runner import (
    ExperimentRun,
    SweepAxis,
    SweepResult,
    SweepRunner,
    run_experiment,
)
from .spec import (
    AppsSpec,
    DesignSpec,
    EconSpec,
    ExperimentSpec,
    NetsimSpec,
    ScenarioSpec,
    WeatherSpec,
    canonical_json,
)
from .stages import BASE_STAGES, STAGES, dependency_closure, stage_key
from .store import ArtifactStore, NullStore, artifact_key, default_store_root

__all__ = [
    "AppsSpec",
    "ArtifactStore",
    "BASE_STAGES",
    "DesignSpec",
    "EconSpec",
    "ExperimentRun",
    "ExperimentSpec",
    "NetsimSpec",
    "NullStore",
    "STAGES",
    "ScenarioSpec",
    "SweepAxis",
    "SweepResult",
    "SweepRunner",
    "WeatherSpec",
    "artifact_key",
    "canonical_json",
    "default_store_root",
    "dependency_closure",
    "run_experiment",
    "stage_key",
]
