"""Experiment orchestration: spec DAG, artifact cache, sweep runner.

The composition layer behind every paper experiment: a declarative,
seed-pinned :class:`ExperimentSpec` runs through the stage graph
``substrate → design → {netsim, weather, apps, econ}`` with each stage
memoized in a content-addressed :class:`ArtifactStore`, and
:class:`SweepRunner` fans a spec out over axes across worker processes
into one tidy records table.  :class:`SweepService` adds fault
tolerance on top: a durable :class:`WorkQueue` journal, bounded retry
with quarantine, worker heartbeats + watchdog restarts, crash resume,
and deterministic :class:`FaultPlan` injection for chaos testing.
"""

from .faults import (
    Fault,
    FaultInjected,
    FaultPlan,
    KILL_EXIT_CODE,
    corrupt_artifact,
)
from .queue import TaskRecord, WorkQueue
from .runner import (
    ExperimentRun,
    SweepAxis,
    SweepPointError,
    SweepResult,
    SweepRunner,
    expand_points,
    point_waves,
    run_experiment,
)
from .service import (
    PointFailure,
    RetryPolicy,
    ServiceResult,
    SweepService,
    sweep_fingerprint,
)
from .spec import (
    AppsSpec,
    DesignSpec,
    EconSpec,
    ExperimentSpec,
    NetsimSpec,
    ScenarioSpec,
    WeatherSpec,
    canonical_json,
)
from .stages import BASE_STAGES, STAGES, dependency_closure, stage_key
from .store import ArtifactStore, NullStore, artifact_key, default_store_root

__all__ = [
    "AppsSpec",
    "ArtifactStore",
    "BASE_STAGES",
    "DesignSpec",
    "EconSpec",
    "ExperimentRun",
    "ExperimentSpec",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "KILL_EXIT_CODE",
    "NetsimSpec",
    "NullStore",
    "PointFailure",
    "RetryPolicy",
    "STAGES",
    "ScenarioSpec",
    "ServiceResult",
    "SweepAxis",
    "SweepPointError",
    "SweepResult",
    "SweepRunner",
    "SweepService",
    "TaskRecord",
    "WeatherSpec",
    "WorkQueue",
    "artifact_key",
    "canonical_json",
    "corrupt_artifact",
    "default_store_root",
    "dependency_closure",
    "expand_points",
    "point_waves",
    "run_experiment",
    "stage_key",
    "sweep_fingerprint",
]
