"""Fault-tolerant, resumable sweep execution.

:class:`SweepService` turns a sweep into a checkpointed job: every
point is a durable task in a :class:`~repro.exp.queue.WorkQueue`
journal next to the artifact store, and a supervisor loop executes the
points with

* **bounded retry** with exponential backoff + deterministic jitter
  (:class:`RetryPolicy`) — a point that keeps failing is quarantined
  into the failure report while the rest of the sweep completes;
* **worker heartbeats** — each pool worker runs a daemon thread that
  atomically rewrites ``hb/worker-<pid>.json`` with its pid, current
  task, and a wall-clock stamp;
* a **watchdog** that SIGKILLs workers whose point exceeds the
  per-point timeout or whose heartbeat goes stale, and treats the
  resulting ``BrokenProcessPool`` (the same signal an OOM-killed worker
  produces) as a *restart*, not an abort: in-flight points are requeued
  with their attempt counted and a fresh pool is spawned;
* **crash resume** — ``SweepService(..., resume=True)`` re-executes
  only points without a ``done`` journal entry.  The journal records
  *metadata* (status, attempts, owners); the rows themselves re-derive
  from the content-addressed artifact store, where every completed
  stage of a done point is already cached — so collecting a resumed
  point is pure cache hits (a missing or corrupt artifact recomputes
  deterministically) and the resumed ``records_json()`` is
  byte-identical to an uninterrupted run.

Determinism contract: retries, pool restarts, and resume change *when*
a point executes, never *what* it computes — every stage is a pure
function of its seed-pinned spec slice, and the table is assembled in
point order.

``jobs=1`` executes points inline (no pool, no watchdog — matching
``SweepRunner`` overhead); ``jobs>=2`` runs the supervised pool.  A
seed-pinned :class:`~repro.exp.faults.FaultPlan` can be injected to
deterministically kill workers, delay points, or corrupt artifacts —
the chaos tests and ``bench_sweep_service.py`` are built on it.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import random
import signal
import threading
import time
import traceback
from collections import deque
from collections.abc import Mapping, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from .faults import FaultPlan
from .queue import DONE, FAILED, RUNNING, WorkQueue
from .runner import (
    ExperimentRun,
    SweepAxis,
    SweepResult,
    _axis_list,
    _worker_store,
    expand_points,
    point_waves,
    run_experiment,
)
from .spec import ExperimentSpec, canonical_json
from .store import ArtifactStore, CACHED, COMPUTED, NullStore

logger = logging.getLogger(__name__)


def sweep_fingerprint(
    base_spec: ExperimentSpec, axes: tuple[SweepAxis, ...]
) -> str:
    """Content hash identifying one sweep (spec + axes, order-sensitive)."""
    doc = {
        "spec": base_spec.to_dict(),
        "axes": [[axis.path, list(axis.values)] for axis in axes],
    }
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Attributes:
        max_attempts: total tries per point (1 = no retry) before the
            point is quarantined.
        backoff_base_s: delay before the 2nd attempt; doubles per retry.
        backoff_cap_s: upper bound on the backoff delay.
        jitter: fraction of the delay added as seeded pseudo-random
            jitter (de-synchronizes retry storms without wall-clock
            randomness — the same seed always jitters identically).
        seed: jitter seed.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 30.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    def delay_s(self, attempt: int, point: int) -> float:
        """Seconds to wait before running ``attempt`` (2-based) of ``point``."""
        if attempt <= 1 or self.backoff_base_s <= 0:
            return 0.0
        base = min(self.backoff_cap_s, self.backoff_base_s * 2 ** (attempt - 2))
        rng = random.Random(self.seed * 1_000_003 + point * 1_009 + attempt)
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class PointFailure:
    """One quarantined sweep point (retries exhausted)."""

    index: int
    assignment: dict
    attempts: int
    error: str

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "assignment": {
                path: list(v) if isinstance(v, tuple) else v
                for path, v in self.assignment.items()
            },
            "attempts": self.attempts,
            "error": self.error,
        }


@dataclass
class ServiceResult(SweepResult):
    """A :class:`SweepResult` plus fault-tolerance accounting.

    ``records`` / ``records_json()`` cover the *done* points only, in
    point order — for a sweep with no quarantined points this is
    byte-identical to :meth:`SweepRunner.run`'s result, whether the
    points ran in one shot or across crashes and resumes.

    Attributes:
        failures: quarantined points (index, assignment, attempts, last
            error), also persisted to ``failures.json`` in the journal.
        interrupted: the run stopped early (``request_stop`` / SIGINT);
            pending points remain journaled for ``resume=True``.
        resumed_points: points whose rows were loaded from the journal
            instead of executing.
        executed_points: points actually executed this session.
        pool_restarts: how many times the watchdog respawned the pool.
        journal_dir: where the journal (and failure report) lives.
    """

    failures: list[PointFailure] = field(default_factory=list)
    interrupted: bool = False
    resumed_points: int = 0
    executed_points: int = 0
    pool_restarts: int = 0
    journal_dir: Path | None = None
    session_stage_counts: dict[str, dict[str, int]] = field(default_factory=dict)

    def session_executed(self, stage: str) -> int:
        """Stage executions (not cache hits) *this session* only."""
        return self.session_stage_counts.get(stage, {}).get(COMPUTED, 0)


# --------------------------------------------------------------------------
# Worker side: heartbeat thread + point executor.
# --------------------------------------------------------------------------


class _Heartbeat(threading.Thread):
    """Daemon thread atomically rewriting this worker's heartbeat file."""

    def __init__(self, hb_dir: str, interval_s: float) -> None:
        super().__init__(daemon=True, name="repro-sweep-heartbeat")
        self.path = Path(hb_dir) / f"worker-{os.getpid()}.json"
        self.interval_s = interval_s
        self._lock = threading.Lock()
        self._task: int | None = None
        self._attempt: int | None = None
        self._since: float | None = None

    def set_task(self, index: int | None, attempt: int | None) -> None:
        with self._lock:
            self._task = index
            self._attempt = attempt
            self._since = time.time() if index is not None else None
        self.beat()

    def beat(self) -> None:
        with self._lock:
            doc = {
                "pid": os.getpid(),
                "task": self._task,
                "attempt": self._attempt,
                "since": self._since,
                "time": time.time(),
            }
        tmp = self.path.with_name(f"{self.path.name}.tmp")
        try:
            tmp.write_text(json.dumps(doc, sort_keys=True))
            os.replace(tmp, self.path)
        except OSError:  # pragma: no cover - journal dir vanished
            pass

    def run(self) -> None:  # pragma: no cover - timing-dependent loop
        while True:
            self.beat()
            time.sleep(self.interval_s)


_WORKER_HEARTBEAT: _Heartbeat | None = None


def _ensure_heartbeat(hb_dir: str, interval_s: float) -> _Heartbeat:
    global _WORKER_HEARTBEAT
    if _WORKER_HEARTBEAT is None:
        _WORKER_HEARTBEAT = _Heartbeat(hb_dir, interval_s)
        _WORKER_HEARTBEAT.start()
    return _WORKER_HEARTBEAT


def _service_worker(
    spec_dict: dict,
    store_root: str | None,
    index: int,
    attempt: int,
    hb_dir: str,
    hb_interval_s: float,
    fault_doc: dict | None,
) -> tuple:
    """Pool entry: run one point, reporting errors as data (never raising).

    A raised exception would poison only this future; returning
    ``("error", ...)`` keeps the supervisor's retry bookkeeping in one
    place and reserves exceptions for genuine pool breakage.
    """
    heartbeat = _ensure_heartbeat(hb_dir, hb_interval_s)
    heartbeat.set_task(index, attempt)
    try:
        plan = FaultPlan.from_dict(fault_doc) if fault_doc else None
        if plan is not None:
            plan.fire_before(index, attempt)
        spec = ExperimentSpec.from_dict(spec_dict)
        store = _worker_store(store_root)
        run = run_experiment(spec, store=store)
        if plan is not None:
            plan.fire_after(index, attempt, spec, store)
        return (index, "ok", run.records, run.stage_status, os.getpid())
    except Exception as exc:
        return (
            index,
            "error",
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(limit=20),
            os.getpid(),
        )
    finally:
        heartbeat.set_task(None, None)


# --------------------------------------------------------------------------
# Supervisor.
# --------------------------------------------------------------------------


class SweepService:
    """Checkpointed, crash-resumable sweep executor (see module docs).

    Args:
        base_spec: the spec every point starts from.
        axes: mapping of dotted spec path -> values (or ``SweepAxis``
            list), exactly as for :class:`~repro.exp.SweepRunner`.
        store: shared artifact cache.  The journal lives under
            ``<store root>/sweeps/<fingerprint>`` unless ``journal_dir``
            overrides it; a :class:`NullStore` needs an explicit
            ``journal_dir``.
        jobs: worker processes; 1 executes points inline.
        journal_dir: explicit journal location.
        resume: load the existing journal and execute only points
            without a ``done`` entry.
        retry: bounded-retry policy (attempts, backoff, jitter).
        point_timeout_s: wall-clock budget per point attempt; the
            watchdog kills the worker past it (pool mode only).
        heartbeat_interval_s: worker heartbeat period.
        stall_timeout_s: heartbeat age past which a worker counts as
            dead/frozen and is killed (pool mode only).
        poll_interval_s: supervisor wait tick (watchdog granularity).
        fault_plan: deterministic fault injection for chaos tests.
    """

    def __init__(
        self,
        base_spec: ExperimentSpec,
        axes: Mapping[str, Sequence] | Sequence[SweepAxis],
        store: ArtifactStore | None = None,
        jobs: int = 1,
        journal_dir: Path | str | None = None,
        resume: bool = False,
        retry: RetryPolicy | None = None,
        point_timeout_s: float | None = None,
        heartbeat_interval_s: float = 0.5,
        stall_timeout_s: float = 15.0,
        poll_interval_s: float = 0.25,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.base_spec = base_spec
        self.axes = _axis_list(axes)
        self.store = store if store is not None else ArtifactStore()
        self.jobs = jobs
        self.retry = retry if retry is not None else RetryPolicy()
        self.point_timeout_s = point_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.stall_timeout_s = stall_timeout_s
        self.poll_interval_s = poll_interval_s
        self.fault_plan = fault_plan
        # Fail fast on bad paths / disabled sections before any work runs.
        for axis in self.axes:
            base_spec.with_value(axis.path, axis.values[0])
        self.points = expand_points(base_spec, self.axes)
        self.fingerprint = sweep_fingerprint(base_spec, self.axes)
        if journal_dir is None:
            if isinstance(self.store, NullStore) or self.store.root is None:
                raise ValueError(
                    "a resumable sweep needs an on-disk artifact store or "
                    "an explicit journal_dir (got NullStore and no "
                    "journal_dir)"
                )
            journal_dir = (
                Path(self.store.root) / "sweeps" / self.fingerprint[:16]
            )
        self.queue = WorkQueue(
            journal_dir, self.fingerprint, len(self.points), resume=resume
        )
        self._stop = threading.Event()
        self._restarts = 0
        self._executed = 0
        self._kill_reasons: dict[int, str] = {}
        self._on_point: Callable[[int, list[dict]], None] | None = None

    # -- control ----------------------------------------------------------

    def request_stop(self) -> None:
        """Checkpoint and stop after the in-flight points settle.

        Safe to call from a signal handler; the journal is already
        durable, so stopping loses no completed work.
        """
        self._stop.set()

    # -- execution --------------------------------------------------------

    def run(
        self, on_point: Callable[[int, list[dict]], None] | None = None
    ) -> ServiceResult:
        """Execute (or resume) the sweep; see the class docs.

        ``on_point(index, rows)`` fires for points executed this
        session, in completion order (journal-resumed points are loaded,
        not re-announced).
        """
        self._on_point = on_point
        resumed = len(self.queue.done_indices())
        self._session_counts: dict[str, dict[str, int]] = {}
        self._session_records: dict[int, list[dict]] = {}
        pending = self.queue.pending_indices()
        if pending and not self._stop.is_set():
            if self.jobs == 1:
                self._run_inline(pending)
            else:
                self._run_pool(pending)
        return self._collect(resumed)

    # .. inline (jobs=1) ..................................................

    def _run_inline(self, pending: list[int]) -> None:
        owner = f"inline:{os.getpid()}"
        # No wave scheduling inline: one process never races itself, and
        # the store's memory layer already dedups shared stages — wave
        # key hashing would only add per-point overhead.
        for wave in (pending,):
            ready = deque(wave)
            retry_at: dict[int, float] = {}
            while (ready or retry_at) and not self._stop.is_set():
                if ready:
                    index = ready.popleft()
                else:  # everything left is backing off; sleep to the next
                    index, when = min(retry_at.items(), key=lambda kv: kv[1])
                    delay = when - time.monotonic()
                    if delay > 0:
                        self._stop.wait(delay)
                        if self._stop.is_set():
                            break
                    del retry_at[index]
                attempt = self.queue.record(index).attempts + 1
                self.queue.mark_running(index, owner=owner)
                try:
                    if self.fault_plan is not None:
                        self.fault_plan.fire_before(index, attempt)
                    run = run_experiment(
                        self.points[index][1], store=self.store
                    )
                    if self.fault_plan is not None:
                        self.fault_plan.fire_after(
                            index, attempt, self.points[index][1], self.store
                        )
                except Exception as exc:
                    when = self._note_failure(
                        index, attempt, f"{type(exc).__name__}: {exc}"
                    )
                    if when is not None:
                        retry_at[index] = when
                else:
                    self._finish_point(
                        index, attempt, run.records, run.stage_status, owner
                    )

    # .. pool (jobs>=2) ...................................................

    def _spawn_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.jobs)

    def _run_pool(self, pending: list[int]) -> None:
        self._clear_heartbeats()
        store_root = (
            None if isinstance(self.store, NullStore) else str(self.store.root)
        )
        fault_doc = (
            self.fault_plan.to_dict() if self.fault_plan is not None else None
        )
        pool = self._spawn_pool()
        futures: dict[Any, int] = {}
        try:
            for wave in point_waves(self.points, self.store, indices=pending):
                remaining = set(wave)
                retry_at: dict[int, float] = {}
                attempt_of: dict[int, int] = {}
                while (remaining or futures) and not self._stop.is_set():
                    now = time.monotonic()
                    in_flight = set(futures.values())
                    for index in sorted(remaining - in_flight):
                        if retry_at.get(index, 0.0) > now:
                            continue
                        attempt = self.queue.record(index).attempts + 1
                        attempt_of[index] = attempt
                        self.queue.mark_running(
                            index, owner=f"pool#{self._restarts}"
                        )
                        future = pool.submit(
                            _service_worker,
                            self.points[index][1].to_dict(),
                            store_root,
                            index,
                            attempt,
                            str(self.queue.heartbeat_dir),
                            self.heartbeat_interval_s,
                            fault_doc,
                        )
                        futures[future] = index
                    if not futures:
                        next_ready = min(
                            retry_at.get(i, 0.0) for i in remaining
                        )
                        self._stop.wait(
                            min(
                                self.poll_interval_s,
                                max(0.0, next_ready - now),
                            )
                        )
                        continue
                    done, _ = wait(
                        set(futures),
                        timeout=self.poll_interval_s,
                        return_when=FIRST_COMPLETED,
                    )
                    try:
                        for future in done:
                            # Pop only after result(): a BrokenProcessPool
                            # must leave the dead worker's point in
                            # ``futures`` so recovery requeues it too.
                            index = futures[future]
                            payload = future.result()
                            del futures[future]
                            self._absorb(
                                index,
                                attempt_of.get(index, 1),
                                payload,
                                retry_at,
                                remaining,
                            )
                    except BrokenProcessPool:
                        pool = self._recover_pool(
                            pool, futures, attempt_of, retry_at, remaining
                        )
                        futures = {}
                        continue
                    victims = self._watchdog_victims(set(futures.values()))
                    if victims:
                        self._kill_workers(victims)
                if self._stop.is_set():
                    break  # keep this wave's in-flight futures for requeue
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
            if self._stop.is_set():
                # Futures already handed to workers may still finish,
                # but their results are lost with this process — put
                # their journal state back to pending so resume re-runs
                # them (the started attempt stays counted).
                for index in sorted(set(futures.values())):
                    if self.queue.record(index).status == RUNNING:
                        self.queue.mark_requeued(
                            index, error="interrupted by stop request"
                        )

    def _absorb(
        self,
        index: int,
        attempt: int,
        payload: tuple,
        retry_at: dict[int, float],
        remaining: set[int],
    ) -> None:
        kind = payload[1]
        if kind == "ok":
            _, _, records, stage_status, pid = payload
            self._finish_point(
                index, attempt, records, stage_status, f"pid:{pid}"
            )
            remaining.discard(index)
        else:
            _, _, message, tb, _pid = payload
            logger.debug("sweep point %d attempt %d traceback:\n%s",
                         index, attempt, tb)
            when = self._note_failure(index, attempt, message)
            if when is None:
                remaining.discard(index)
            else:
                retry_at[index] = when

    def _finish_point(
        self,
        index: int,
        attempt: int,
        records: list[dict],
        stage_status: dict[str, str],
        owner: str,
    ) -> None:
        # Rows stay in memory for this session's _collect; the journal
        # gets only the completion summary.  Rows for points finished in
        # an *earlier* session re-derive from the artifact store.
        self._session_records[index] = records
        self.queue.mark_done(
            index,
            owner=owner,
            result={
                "stage_status": stage_status,
                "attempts": attempt,
                "owner": owner,
            },
        )
        self._executed += 1
        if self._on_point is not None:
            self._on_point(index, records)

    def _note_failure(self, index: int, attempt: int, message: str):
        """Quarantine (returns None) or requeue (returns retry time)."""
        if attempt >= self.retry.max_attempts:
            self.queue.mark_failed(index, message)
            logger.warning(
                "sweep point %d quarantined after %d attempt(s): %s",
                index,
                attempt,
                message,
            )
            return None
        self.queue.mark_requeued(index, error=message)
        delay = self.retry.delay_s(attempt + 1, index)
        logger.info(
            "sweep point %d attempt %d failed (%s); retrying in %.2fs",
            index,
            attempt,
            message,
            delay,
        )
        return time.monotonic() + delay

    # .. watchdog .........................................................

    def _read_heartbeats(self) -> list[dict]:
        beats = []
        try:
            entries = sorted(self.queue.heartbeat_dir.glob("worker-*.json"))
        except OSError:  # pragma: no cover - journal dir vanished
            return []
        for path in entries:
            try:
                beats.append(json.loads(path.read_text()))
            except (OSError, ValueError):
                continue  # mid-replace or torn; next tick will see it
        return beats

    def _clear_heartbeats(self) -> None:
        for path in self.queue.heartbeat_dir.glob("worker-*.json*"):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    def _watchdog_victims(self, in_flight: set[int]) -> dict[int, int]:
        """pid -> task index for workers that must die (timeout/stall)."""
        victims: dict[int, int] = {}
        now = time.time()
        for beat in self._read_heartbeats():
            pid, task = beat.get("pid"), beat.get("task")
            if pid is None or task is None or task not in in_flight:
                continue
            since = beat.get("since") or now
            stamp = beat.get("time") or now
            if (
                self.point_timeout_s is not None
                and now - since > self.point_timeout_s
            ):
                self._kill_reasons[task] = (
                    f"watchdog: point exceeded {self.point_timeout_s:.1f}s "
                    f"timeout (worker pid {pid} killed)"
                )
                victims[pid] = task
            elif (
                self.stall_timeout_s is not None
                and now - stamp > self.stall_timeout_s
            ):
                self._kill_reasons[task] = (
                    f"watchdog: worker pid {pid} heartbeat stale for "
                    f"{now - stamp:.1f}s (killed)"
                )
                victims[pid] = task
        return victims

    def _kill_workers(self, victims: dict[int, int]) -> None:
        for pid, task in victims.items():
            logger.warning(
                "watchdog killing worker pid %d (point %d): %s",
                pid,
                task,
                self._kill_reasons.get(task, "stalled"),
            )
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
        # The broken pool surfaces as BrokenProcessPool on the next wait.

    def _recover_pool(
        self,
        pool: ProcessPoolExecutor,
        futures: dict[Any, int],
        attempt_of: dict[int, int],
        retry_at: dict[int, float],
        remaining: set[int],
    ) -> ProcessPoolExecutor:
        """Respawn after worker death: requeue in-flight points, new pool."""
        interrupted = sorted(set(futures.values()))
        logger.warning(
            "worker pool broke with %d point(s) in flight (%s); respawning",
            len(interrupted),
            interrupted,
        )
        for index in interrupted:
            reason = self._kill_reasons.pop(
                index, "worker process died (pool broken)"
            )
            when = self._note_failure(
                index,
                attempt_of.get(index, self.queue.record(index).attempts),
                reason,
            )
            if when is None:
                remaining.discard(index)
            else:
                retry_at[index] = when
        # Reap any survivors of the broken pool (e.g. a stalled worker
        # whose sibling died) so they cannot double-write artifacts.
        for beat in self._read_heartbeats():
            pid = beat.get("pid")
            if pid is not None and pid != os.getpid():
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
        pool.shutdown(wait=False, cancel_futures=True)
        self._clear_heartbeats()
        self._kill_reasons.clear()
        self._restarts += 1
        return self._spawn_pool()

    # -- assembly ---------------------------------------------------------

    def _collect(self, resumed: int) -> ServiceResult:
        table: list[dict] = []
        runs: list[ExperimentRun] = []
        counts: dict[str, dict[str, int]] = {}
        failures: list[PointFailure] = []
        unfinished = 0
        for index, (assignment, spec) in enumerate(self.points):
            rec = self.queue.record(index)
            records: list[dict] = []
            stage_status: dict[str, str] = {}
            if rec.status == DONE:
                payload = self.queue.load_result(index)
                if payload is None:  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"journal says point {index} is done but its result "
                        f"payload is unreadable ({self.queue.journal_path})"
                    )
                records = self._session_records.get(index)
                this_session = records is not None
                if records is None:
                    # Finished in an earlier session: re-derive the rows
                    # from the artifact store.  Every stage of a done
                    # point is cached, so this is pure lookups; a lost
                    # or corrupt artifact recomputes deterministically.
                    records = run_experiment(spec, store=self.store).records
                stage_status = payload["stage_status"]
                for stage_name, outcome in stage_status.items():
                    bucket = counts.setdefault(
                        stage_name, {COMPUTED: 0, CACHED: 0}
                    )
                    bucket[outcome] = bucket.get(outcome, 0) + 1
                    if this_session:
                        bucket = self._session_counts.setdefault(
                            stage_name, {COMPUTED: 0, CACHED: 0}
                        )
                        bucket[outcome] = bucket.get(outcome, 0) + 1
                for row in records:
                    table.append({"point": index, **assignment, **row})
            elif rec.status == FAILED:
                failures.append(
                    PointFailure(
                        index=index,
                        assignment=dict(assignment),
                        attempts=rec.attempts,
                        error=rec.error or "unknown error",
                    )
                )
            else:
                unfinished += 1
            runs.append(
                ExperimentRun(
                    spec=spec,
                    records=records,
                    stage_status=stage_status,
                    artifacts={},
                )
            )
        self.queue.write_failure_report([f.to_dict() for f in failures])
        return ServiceResult(
            axes=self.axes,
            records=table,
            points=runs,
            stage_counts=counts,
            failures=failures,
            interrupted=unfinished > 0,
            resumed_points=resumed,
            executed_points=self._executed,
            pool_restarts=self._restarts,
            journal_dir=self.queue.journal_dir,
            session_stage_counts=self._session_counts,
        )
