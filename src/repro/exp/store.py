"""Content-addressed on-disk artifact cache.

Every pipeline stage's output is stored under a key derived from the
canonical JSON of (stage name, code-version tags, the spec slice the
stage consumes).  The key says *exactly* what produced an artifact, so:

* repeated sweeps — in one process, across worker processes, or across
  sessions — reuse substrates and designs instead of rebuilding them;
* editing any spec field that a stage (or one of its upstream stages)
  consumes changes the key and transparently invalidates the artifact;
* bumping a stage's ``version`` tag (or a solver's ``version``) retires
  every artifact the old code produced.

Writes are atomic (temp file + ``os.replace``), so concurrent sweep
workers racing to publish the same artifact are safe: both compute the
same bytes and the last rename wins.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
from pathlib import Path
from typing import Any, Callable

from .spec import canonical_json

logger = logging.getLogger(__name__)

#: Environment variable overriding the default store location.
STORE_ENV_VAR = "REPRO_ARTIFACT_DIR"

#: Result tags for :meth:`ArtifactStore.memoize`.
COMPUTED = "computed"
CACHED = "cached"


def artifact_key(stage: str, versions: dict[str, str], payload: dict) -> str:
    """The content address for one stage execution.

    Args:
        stage: stage name ("substrate", "design", ...).
        versions: code-version tag of the stage *and every upstream
            stage* (a change anywhere in the producing chain must move
            the key).
        payload: the canonical spec slice the stage chain consumes.
    """
    doc = {"stage": stage, "versions": versions, "payload": payload}
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def default_store_root() -> Path:
    """``$REPRO_ARTIFACT_DIR``, or ``~/.cache/repro/artifacts``."""
    env = os.environ.get(STORE_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "artifacts"


class ArtifactStore:
    """Pickle-backed content-addressed store rooted at one directory.

    A per-process memory layer sits above the disk entries: an artifact
    fetched (or published) once is handed back as the same object for
    the rest of the process, so an in-process sweep deserializes each
    substrate/design exactly once no matter how many points share it.
    Content addressing makes this safe — a key's value never changes —
    but artifacts must be treated as immutable by consumers.
    """

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self._memory: dict[str, Any] = {}

    # -- raw key/value ----------------------------------------------------

    def path_for(self, key: str) -> Path:
        """On-disk location of a key (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str) -> tuple[bool, Any]:
        """(found, artifact); unreadable/corrupt entries count as misses.

        A corrupt entry (torn write, stale class, truncation) is
        quarantined: renamed to ``<name>.corrupt`` so the recompute's
        ``put`` starts from an empty slot and the damaged bytes stay
        available for post-mortem.
        """
        if key in self._memory:
            return True, self._memory[key]
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                artifact = pickle.load(fh)
        except FileNotFoundError:
            return False, None
        except (pickle.UnpicklingError, EOFError, OSError, AttributeError,
                ImportError, IndexError, TypeError, ValueError) as exc:
            self._quarantine(key, path, exc)
            return False, None
        self._memory[key] = artifact
        return True, artifact

    def _quarantine(self, key: str, path: Path, exc: Exception) -> None:
        logger.warning(
            "corrupt artifact for key %s (%s: %s); treating as a cache "
            "miss and quarantining the file to %s",
            key,
            type(exc).__name__,
            exc,
            f"{path.name}.corrupt",
        )
        try:
            os.replace(path, path.with_name(f"{path.name}.corrupt"))
        except OSError:  # pragma: no cover - raced with a concurrent writer
            pass

    def put(self, key: str, artifact: Any) -> Path:
        """Atomically publish an artifact under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(artifact, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self._memory[key] = artifact
        return path

    # -- stage memoization ------------------------------------------------

    def memoize(
        self,
        stage: str,
        versions: dict[str, str],
        payload: dict,
        compute: Callable[[], Any],
    ) -> tuple[Any, str]:
        """Fetch the stage artifact, computing and publishing on miss.

        Returns ``(artifact, status)`` with status ``"cached"`` or
        ``"computed"``.
        """
        key = artifact_key(stage, versions, payload)
        found, artifact = self.get(key)
        if found:
            return artifact, CACHED
        artifact = compute()
        self.put(key, artifact)
        return artifact, COMPUTED


class NullStore(ArtifactStore):
    """A store that never caches (``--no-cache``): every stage computes."""

    def __init__(self) -> None:  # noqa: D107 - no root directory at all
        self.root = None  # type: ignore[assignment]

    def path_for(self, key: str) -> Path:  # pragma: no cover - never hit
        raise RuntimeError("NullStore has no on-disk paths")

    def contains(self, key: str) -> bool:
        return False

    def get(self, key: str) -> tuple[bool, Any]:
        return False, None

    def put(self, key: str, artifact: Any) -> Path | None:
        return None
