"""Durable, crash-consistent work queue for resumable sweeps.

A :class:`WorkQueue` journals every sweep point as a task record —
status (``pending`` / ``running`` / ``done`` / ``failed``), attempt
count, owner, timestamps, last error — in a directory next to the
artifact store:

.. code-block:: text

    <journal_dir>/
        meta.json       # sweep fingerprint + task count (atomic write)
        journal.jsonl   # append-only event log (one JSON object/line)
        hb/worker-<pid>.json  # worker heartbeats (atomic replace)
        failures.json   # quarantine report of retry-exhausted points

State mutation is append-only: each transition is one JSON line, and
every *completion* transition (done / failed / requeued) is flushed, so
a process killed at any instruction leaves a journal whose replay is
consistent — at worst the tail is a buffered ``start`` or a torn line,
both of which replay as "point still pending" and the point re-runs.
The ``done`` event carries the point's completion summary (stage
status, attempts, owner) in the same line, so a ``done`` that survived
the crash always implies a readable summary, and checkpointing a
finished point costs exactly one write + flush.  The rows themselves
live in the content-addressed artifact store, not the journal.
``meta.json`` is written via temp-file + ``os.replace`` (atomic).

On resume, tasks left ``running`` by a crash are normalized back to
``pending`` (their interrupted attempt stays counted), and ``done``
tasks whose summary payload is missing or unreadable are demoted to
``pending`` — the journal never claims work it cannot account for.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

try:  # pragma: no cover - exercised implicitly wherever orjson exists
    import orjson as _fastjson
except ImportError:  # pragma: no cover - stdlib fallback
    _fastjson = None

logger = logging.getLogger(__name__)


def _encode_event(event: dict) -> bytes:
    """Serialize one journal event to a compact JSON line (no newline).

    The journal is an internal format replayed with ``json.loads``, so
    the faster encoder is safe to use when present.  Tuples (sweep axis
    values ride inside result payloads) encode as JSON arrays either
    way, matching what ``json.loads`` hands back on replay.
    """
    if _fastjson is not None:
        return _fastjson.dumps(event, default=list)
    return json.dumps(event, separators=(",", ":")).encode("utf-8")

#: Task lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
STATUSES = (PENDING, RUNNING, DONE, FAILED)

#: Journal event tags (one per state transition).
EV_START = "start"
EV_DONE = "done"
EV_FAIL = "fail"
EV_REQUEUE = "requeue"

#: ``meta.json`` schema version.
JOURNAL_VERSION = 1


@dataclass
class TaskRecord:
    """One sweep point's durable execution state."""

    index: int
    status: str = PENDING
    attempts: int = 0
    owner: str | None = None
    enqueued_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    interrupted: bool = False

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "status": self.status,
            "attempts": self.attempts,
            "owner": self.owner,
            "enqueued_at": self.enqueued_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "interrupted": self.interrupted,
        }


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


class WorkQueue:
    """The persistent task journal backing one sweep.

    Args:
        journal_dir: directory holding this sweep's journal (one sweep
            fingerprint per directory).
        fingerprint: content hash of (base spec, axes); a resume against
            a journal recorded for a different sweep is rejected.
        n_tasks: number of sweep points; must match on resume.
        resume: load the existing journal instead of starting fresh.
            ``resume=True`` with no journal on disk starts fresh (so
            ``--resume`` is safe to pass unconditionally);
            ``resume=False`` over an existing journal discards it —
            artifacts stay cached in the store, so a restart recomputes
            cheaply.
    """

    def __init__(
        self,
        journal_dir: Path | str,
        fingerprint: str,
        n_tasks: int,
        resume: bool = False,
    ) -> None:
        if n_tasks < 1:
            raise ValueError("a sweep journal needs at least one task")
        self.journal_dir = Path(journal_dir)
        self.fingerprint = fingerprint
        self.n_tasks = n_tasks
        self.meta_path = self.journal_dir / "meta.json"
        self.journal_path = self.journal_dir / "journal.jsonl"
        self.heartbeat_dir = self.journal_dir / "hb"
        self.failure_report_path = self.journal_dir / "failures.json"

        self.tasks: dict[int, TaskRecord] = {
            i: TaskRecord(index=i, enqueued_at=time.time())
            for i in range(n_tasks)
        }
        self._results: dict[int, dict] = {}
        existing = self.meta_path.exists()
        if resume and existing:
            self._load_meta()
            self._replay()
            self._normalize_after_load()
        else:
            if existing:
                self._discard_existing()
            self.journal_dir.mkdir(parents=True, exist_ok=True)
            self.heartbeat_dir.mkdir(exist_ok=True)
            _atomic_write_text(
                self.meta_path,
                json.dumps(
                    {
                        "version": JOURNAL_VERSION,
                        "fingerprint": fingerprint,
                        "n_tasks": n_tasks,
                        "created_at": time.time(),
                    },
                    sort_keys=True,
                    indent=2,
                )
                + "\n",
            )
        self.heartbeat_dir.mkdir(exist_ok=True)
        # Raw O_APPEND fd: one syscall per flushed transition, with
        # unflushed lines staged in ``_pending`` (see ``_append``).
        self._journal_fd: int | None = os.open(
            str(self.journal_path),
            os.O_WRONLY | os.O_APPEND | os.O_CREAT,
            0o644,
        )
        self._pending = bytearray()

    # -- loading ----------------------------------------------------------

    def _discard_existing(self) -> None:
        """Drop a previous sweep's journal files (fresh, non-resume open)."""
        for path in (
            self.meta_path,
            self.journal_path,
            self.failure_report_path,
        ):
            try:
                path.unlink()
            except OSError:
                pass
        if self.heartbeat_dir.is_dir():
            for beat in self.heartbeat_dir.glob("worker-*.json*"):
                try:
                    beat.unlink()
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
        else:
            shutil.rmtree(self.journal_dir, ignore_errors=True)

    def _load_meta(self) -> None:
        meta = json.loads(self.meta_path.read_text())
        if meta.get("fingerprint") != self.fingerprint:
            raise ValueError(
                f"journal at {self.journal_dir} records a different sweep "
                f"(fingerprint {meta.get('fingerprint')!r} != "
                f"{self.fingerprint!r}); refusing to resume"
            )
        if meta.get("n_tasks") != self.n_tasks:
            raise ValueError(
                f"journal at {self.journal_dir} records {meta.get('n_tasks')} "
                f"tasks, this sweep has {self.n_tasks}; refusing to resume"
            )

    def _replay(self) -> None:
        for event in self._read_jsonl(self.journal_path):
            self._apply(event)

    def _read_jsonl(self, path: Path) -> list[dict]:
        try:
            raw = path.read_text(encoding="utf-8", errors="replace")
        except FileNotFoundError:
            return []
        docs: list[dict] = []
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                docs.append(json.loads(line))
            except ValueError:
                # A torn tail from a killed process; later lines cannot
                # exist (appends are ordered), so skipping is safe.
                logger.warning("skipping torn journal line in %s", path)
        return docs

    def _apply(self, event: dict) -> None:
        index = event.get("i")
        if not isinstance(index, int) or index not in self.tasks:
            return
        rec = self.tasks[index]
        kind = event.get("e")
        stamp = event.get("t")
        if kind == EV_START:
            rec.status = RUNNING
            rec.attempts += 1
            rec.owner = event.get("o")
            rec.started_at = stamp
        elif kind == EV_DONE:
            rec.status = DONE
            rec.owner = event.get("o", rec.owner)
            rec.finished_at = stamp
            rec.error = None
            if event.get("r") is not None:
                self._results[index] = event["r"]
        elif kind == EV_FAIL:
            rec.status = FAILED
            rec.finished_at = stamp
            rec.error = event.get("err")
        elif kind == EV_REQUEUE:
            rec.status = PENDING
            rec.owner = None
            rec.error = event.get("err", rec.error)

    def _normalize_after_load(self) -> None:
        for rec in self.tasks.values():
            if rec.status == RUNNING:
                # The owning process died mid-point; the started attempt
                # stays counted and the point re-runs.
                rec.status = PENDING
                rec.interrupted = True
                rec.owner = None
            elif rec.status == DONE and self.load_result(rec.index) is None:
                logger.warning(
                    "journal task %d is done but its result payload is "
                    "missing/unreadable; re-running the point",
                    rec.index,
                )
                rec.status = PENDING
                rec.interrupted = True

    # -- transitions ------------------------------------------------------

    def _append(self, event: dict, flush: bool = True) -> None:
        line = _encode_event(event) + b"\n"
        if not flush:
            self._pending += line
            return
        if self._pending:
            line = bytes(self._pending) + line
            self._pending.clear()
        os.write(self._journal_fd, line)

    def mark_running(self, index: int, owner: str | None = None) -> None:
        rec = self.tasks[index]
        rec.status = RUNNING
        rec.attempts += 1
        rec.owner = owner
        rec.started_at = time.time()
        # Buffered, not flushed: appends to one handle stay ordered, so
        # any later flushed completion event carries this line out with
        # it.  A crash before that flush loses at most the start record
        # — replay then sees the point pending and simply re-runs it.
        self._append(
            {"e": EV_START, "i": index, "t": rec.started_at, "o": owner},
            flush=False,
        )

    def mark_done(
        self,
        index: int,
        owner: str | None = None,
        result: dict | None = None,
    ) -> None:
        """Complete a task, durably checkpointing its result summary.

        The payload rides in the ``done`` journal line itself, so the
        event and its summary are atomic: a crash either preserves both
        or (torn tail) neither, and the point simply re-runs.
        """
        rec = self.tasks[index]
        rec.status = DONE
        rec.owner = owner or rec.owner
        rec.finished_at = time.time()
        rec.error = None
        if result is not None:
            self._results[index] = result
        self._append(
            {
                "e": EV_DONE,
                "i": index,
                "t": rec.finished_at,
                "o": rec.owner,
                "r": result,
            }
        )

    def mark_failed(self, index: int, error: str) -> None:
        """Terminal failure: the point is quarantined, not retried."""
        rec = self.tasks[index]
        rec.status = FAILED
        rec.finished_at = time.time()
        rec.error = error
        self._append(
            {"e": EV_FAIL, "i": index, "t": rec.finished_at, "err": error}
        )

    def mark_requeued(self, index: int, error: str | None = None) -> None:
        """A retryable failure or interruption: back to pending."""
        rec = self.tasks[index]
        rec.status = PENDING
        rec.owner = None
        if error is not None:
            rec.error = error
        self._append(
            {"e": EV_REQUEUE, "i": index, "t": time.time(), "err": error}
        )

    # -- queries ----------------------------------------------------------

    def record(self, index: int) -> TaskRecord:
        return self.tasks[index]

    def indices_with_status(self, status: str) -> list[int]:
        return [i for i in range(self.n_tasks) if self.tasks[i].status == status]

    def pending_indices(self) -> list[int]:
        return self.indices_with_status(PENDING)

    def done_indices(self) -> list[int]:
        return self.indices_with_status(DONE)

    def failed_indices(self) -> list[int]:
        return self.indices_with_status(FAILED)

    def counts(self) -> dict[str, int]:
        out = {status: 0 for status in STATUSES}
        for rec in self.tasks.values():
            out[rec.status] += 1
        return out

    # -- result payloads --------------------------------------------------

    def load_result(self, index: int) -> dict | None:
        """The ``done`` payload for a task (None if never completed)."""
        return self._results.get(index)

    # -- reporting --------------------------------------------------------

    def write_failure_report(self, failures: list[dict]) -> Path:
        """Persist the quarantine report.

        An empty report is only written when a stale one is on disk
        (e.g. a resumed sweep whose failures all retried to success) —
        a clean sweep does not pay for an all-zeros file.
        """
        if not failures and not self.failure_report_path.exists():
            return self.failure_report_path
        _atomic_write_text(
            self.failure_report_path,
            json.dumps(
                {
                    "generated_at": time.time(),
                    "fingerprint": self.fingerprint,
                    "counts": self.counts(),
                    "failures": failures,
                },
                sort_keys=True,
                indent=2,
            )
            + "\n",
        )
        return self.failure_report_path

    def close(self) -> None:
        if self._journal_fd is None:
            return
        try:
            if self._pending:
                os.write(self._journal_fd, bytes(self._pending))
                self._pending.clear()
            os.close(self._journal_fd)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        finally:
            self._journal_fd = None

    def __enter__(self) -> "WorkQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
