"""The experiment stage graph: ``substrate → design → {netsim, weather, apps, econ}``.

Each :class:`Stage` declares

* which spec slice it consumes (``payload`` — the only thing, together
  with the version tags, that enters its cache key);
* which upstream artifacts it needs (``deps`` — a function of the spec,
  because e.g. the econ stage only needs the design when the network's
  own cost is requested);
* how to compute its artifact (``run``) and how to flatten the artifact
  into tidy records rows (``records``).

A stage's cache key covers its *whole producing chain*: the payloads
and version tags of the stage and every transitive dependency.  Change
the tower-synthesis seed and the substrate key moves — and with it the
design key and every evaluation key downstream; change only the budget
and the substrate artifact stays shared while designs re-key.

Bump a stage's ``version`` when its code changes semantics; solver
implementations carry their own ``version`` tag (see
``repro.core.design.solver_version``) which the design payload embeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .spec import ExperimentSpec
from .store import artifact_key


@dataclass(frozen=True)
class Stage:
    """One node of the experiment DAG.

    Attributes:
        name: stage name (also the records' ``stage`` column value).
        version: code-version tag; bumping it invalidates cached
            artifacts of this stage and everything downstream.
        deps: spec -> upstream stage names whose artifacts ``run`` needs.
        payload: spec -> the canonical slice this stage consumes (must
            be JSON-scalar only; every field that can change the output
            belongs here).
        run: (spec, {dep name: artifact}) -> artifact.  Must be
            deterministic given the payload chain.
        records: (spec, artifact) -> tidy rows for the records table.
    """

    name: str
    version: str
    deps: Callable[[ExperimentSpec], tuple[str, ...]]
    payload: Callable[[ExperimentSpec], dict]
    run: Callable[[ExperimentSpec, dict[str, Any]], Any]
    records: Callable[[ExperimentSpec, Any], list[dict]]


def _no_deps(spec: ExperimentSpec) -> tuple[str, ...]:
    return ()


def _design_deps(spec: ExperimentSpec) -> tuple[str, ...]:
    return ("substrate",)


# --------------------------------------------------------------------------
# substrate: sites + terrain + towers + hop enumeration + fiber.
# --------------------------------------------------------------------------


def _substrate_payload(spec: ExperimentSpec) -> dict:
    sc = spec.scenario
    return {
        "name": sc.name,
        "sites": sc.sites,
        "max_range_km": float(sc.max_range_km),
        "usable_height_fraction": float(sc.usable_height_fraction),
        "seed": sc.resolved_seed(),
    }


def _run_substrate(spec: ExperimentSpec, inputs: dict[str, Any]):
    from ..scenarios import get_scenario

    sc = spec.scenario
    # Pass the *resolved* seed: the cache key hashes it, so execution
    # must use the identical value (never a builder-side default).
    return get_scenario(
        sc.name,
        sites=sc.sites,
        max_range_km=sc.max_range_km,
        usable_height_fraction=sc.usable_height_fraction,
        seed=sc.resolved_seed(),
    )


def _substrate_records(spec: ExperimentSpec, scenario) -> list[dict]:
    import numpy as np

    iu = np.triu_indices(scenario.n_sites, k=1)
    return [
        {
            "stage": "substrate",
            "scenario": scenario.name,
            "sites": int(scenario.n_sites),
            "candidate_links": int(np.isfinite(scenario.catalog.mw_km[iu]).sum()),
        }
    ]


# --------------------------------------------------------------------------
# design: topology solve + capacity augmentation + costing.
# --------------------------------------------------------------------------


def _design_payload(spec: ExperimentSpec) -> dict:
    from ..core.design import solver_version
    from ..graph import graph_kernel_version

    d = spec.design
    return {
        "budget_towers": float(d.budget_towers),
        "solver": d.solver,
        "solver_version": solver_version(d.solver),
        # Every design (and every evaluation downstream of one) flows
        # through the shared graph kernel; bumping KERNEL_VERSION when
        # its semantics change retires the affected artifacts, exactly
        # like a solver version bump.
        "graph_kernel": graph_kernel_version(),
        "aggregate_gbps": None if d.aggregate_gbps is None else float(d.aggregate_gbps),
        "solver_opts": {str(k): v for k, v in d.solver_opts},
    }


def _run_design(spec: ExperimentSpec, inputs: dict[str, Any]):
    from ..core import design_network

    scenario = inputs["substrate"]
    d = spec.design
    return design_network(
        scenario.design_input(),
        budget_towers=d.budget_towers,
        aggregate_gbps=d.aggregate_gbps,
        catalog=scenario.catalog,
        registry=scenario.registry,
        solver=d.solver,
        **d.opts_dict(),
    )


def _design_records(spec: ExperimentSpec, result) -> list[dict]:
    row = {
        "stage": "design",
        "scenario": spec.scenario.name,
        "solver": result.backend,
        "budget_towers": float(spec.design.budget_towers),
        "towers_used": float(result.towers_used),
        "mw_links": int(result.mw_link_count),
        "mean_stretch": float(result.mean_stretch),
        "fiber_mean_stretch": float(result.fiber_mean_stretch),
    }
    if result.cost_per_gb_usd is not None:
        row["cost_per_gb_usd"] = float(result.cost_per_gb_usd)
    return [row]


# --------------------------------------------------------------------------
# netsim: the Fig 5 load curve over the designed topology.
# --------------------------------------------------------------------------


def _netsim_payload(spec: ExperimentSpec) -> dict:
    ns = spec.netsim
    assert ns is not None
    return {
        "loads": list(ns.loads),
        "engine": ns.engine,
        "duration_s": float(ns.duration_s),
        "seed": int(ns.seed),
        "capacity_mode": ns.capacity_mode,
        "demand_model": ns.demand_model,
        "demand_hour_utc": float(ns.demand_hour_utc),
        "demand_seed": int(ns.demand_seed),
        "users_millions": (
            None if ns.users_millions is None else float(ns.users_millions)
        ),
        "transport": ns.transport,
        "workload": ns.workload,
        "profile": bool(ns.profile),
    }


def _run_netsim(spec: ExperimentSpec, inputs: dict[str, Any]):
    from ..netsim.experiments import run_load_curve

    ns = spec.netsim
    assert ns is not None
    design = inputs["design"]
    aggregate = spec.design.aggregate_gbps
    if aggregate is None:
        raise ValueError(
            "the netsim stage needs design.aggregate_gbps (link capacities "
            "derive from routing the design traffic)"
        )
    return run_load_curve(
        design.topology,
        aggregate,
        ns.loads,
        engine=ns.engine,
        duration_s=ns.duration_s,
        seed=ns.seed,
        capacity_mode=ns.capacity_mode,
        demand_model=ns.demand_model,
        demand_hour_utc=ns.demand_hour_utc,
        demand_seed=ns.demand_seed,
        users_millions=ns.users_millions,
        transport=ns.transport,
        workload=ns.workload,
        profile=ns.profile,
    )


def _rows_passthrough(spec: ExperimentSpec, artifact) -> list[dict]:
    # Copy the rows: callers may annotate records in place, and the
    # artifact list is shared via the store's per-process memory layer.
    return [dict(row) for row in artifact]


# --------------------------------------------------------------------------
# weather: the Fig 7 yearly analysis (binary, optionally graded).
# --------------------------------------------------------------------------


def _weather_payload(spec: ExperimentSpec) -> dict:
    w = spec.weather
    assert w is not None
    return {
        "n_intervals": int(w.n_intervals),
        "fade_margin_db": float(w.fade_margin_db),
        "seed": int(w.seed),
        "graded": bool(w.graded),
        "frequency_ghz": float(w.frequency_ghz),
        "sample_interval_days": (
            None
            if w.sample_interval_days is None
            else int(w.sample_interval_days)
        ),
        "delta_k": int(w.delta_k),
        "cache_mb": float(w.cache_mb),
    }


def _weather_deps(spec: ExperimentSpec) -> tuple[str, ...]:
    return ("substrate", "design")


def _run_weather(spec: ExperimentSpec, inputs: dict[str, Any]):
    from ..weather.degradation import weather_stage_records

    w = spec.weather
    assert w is not None
    scenario = inputs["substrate"]
    design = inputs["design"]
    return weather_stage_records(
        design.topology,
        scenario.catalog,
        scenario.registry,
        n_intervals=w.n_intervals,
        fade_margin_db=w.fade_margin_db,
        seed=w.seed,
        graded=w.graded,
        frequency_ghz=w.frequency_ghz,
        sample_interval_days=w.sample_interval_days,
        delta_k=w.delta_k,
        cache_mb=w.cache_mb,
    )


# --------------------------------------------------------------------------
# apps: §6.6 fast-path planning over the deployed capacity.
# --------------------------------------------------------------------------


def _apps_capacity(spec: ExperimentSpec) -> float | None:
    """The effective fast-path capacity: explicit, else the design target.

    Both the cache payload and the stage execution resolve through this
    one helper so the key always describes what was computed.
    """
    assert spec.apps is not None
    if spec.apps.capacity_gbps is not None:
        return float(spec.apps.capacity_gbps)
    if spec.design.aggregate_gbps is not None:
        return float(spec.design.aggregate_gbps)
    return None


def _apps_payload(spec: ExperimentSpec) -> dict:
    a = spec.apps
    assert a is not None
    # Resolving the capacity default *here* keeps the cache key on the
    # effective capacity only — not the whole design closure (the stage
    # never reads the design artifact).
    return {
        "capacity_gbps": _apps_capacity(spec),
        "min_value_per_gb": float(a.min_value_per_gb),
    }


def _apps_deps(spec: ExperimentSpec) -> tuple[str, ...]:
    return ()


def _run_apps(spec: ExperimentSpec, inputs: dict[str, Any]):
    from ..apps.integration import plan_fast_path

    a = spec.apps
    assert a is not None
    capacity = _apps_capacity(spec)
    if capacity is None:
        raise ValueError(
            "the apps stage needs apps.capacity_gbps or design.aggregate_gbps"
        )
    return plan_fast_path(capacity, min_value_per_gb=a.min_value_per_gb)


def _apps_records(spec: ExperimentSpec, plan) -> list[dict]:
    from ..apps.integration import plan_records

    return plan_records(plan)


# --------------------------------------------------------------------------
# econ: the §8 value-per-GB table against the network's cost.
# --------------------------------------------------------------------------


def _econ_payload(spec: ExperimentSpec) -> dict:
    e = spec.econ
    assert e is not None
    return {
        "cost_per_gb": None if e.cost_per_gb is None else float(e.cost_per_gb),
    }


def _econ_deps(spec: ExperimentSpec) -> tuple[str, ...]:
    assert spec.econ is not None
    return () if spec.econ.cost_per_gb is not None else ("design",)


def _run_econ(spec: ExperimentSpec, inputs: dict[str, Any]):
    from ..apps.econ import econ_records

    e = spec.econ
    assert e is not None
    cost = e.cost_per_gb
    if cost is None:
        design = inputs["design"]
        cost = design.cost_per_gb_usd
        if cost is None:
            raise ValueError(
                "the econ stage needs econ.cost_per_gb or a provisioned "
                "design (design.aggregate_gbps) to take the cost from"
            )
    return econ_records(float(cost))


# --------------------------------------------------------------------------
# The registry and key derivation.
# --------------------------------------------------------------------------

STAGES: dict[str, Stage] = {
    "substrate": Stage(
        name="substrate",
        version="1",
        deps=_no_deps,
        payload=_substrate_payload,
        run=_run_substrate,
        records=_substrate_records,
    ),
    "design": Stage(
        name="design",
        version="1",
        deps=_design_deps,
        payload=_design_payload,
        run=_run_design,
        records=_design_records,
    ),
    "netsim": Stage(
        name="netsim",
        # v2: vectorized commodity-aggregate fluid solver (rate-identical
        # up to float noise, but duplicate parallel links now aggregate
        # instead of overwriting), record rows grew transport/demand_model,
        # and the payload grew the demand-model and transport knobs.
        # v3: array-native flow tables — the payload grew the workload
        # (object/table) and profile knobs, load-curve invariants are
        # hoisted out of the per-load loop (values unchanged), and
        # profile=True rows carry setup/fill/freeze timing counters.
        version="3",
        deps=lambda spec: ("design",),
        payload=_netsim_payload,
        run=_run_netsim,
        records=_rows_passthrough,
    ),
    "weather": Stage(
        name="weather",
        # v2: shared sampler/evaluator (vectorized failures, failure-set
        # memoized solves); binary series are bit-identical to v1, but
        # the graded capacity-loss mean is now vectorized (float-level
        # change) and the payload grew ``frequency_ghz``.
        # v3: failure-set queries route through the delta-reuse solver
        # (near-identical sets derived compositionally — <= 1e-9 vs a
        # full solve, not bitwise), records gained a ``series="solver"``
        # counters row, and the payload grew ``sample_interval_days``
        # (daily-resolution grid), ``delta_k``, and ``cache_mb``.
        version="3",
        deps=_weather_deps,
        payload=_weather_payload,
        run=_run_weather,
        records=_rows_passthrough,
    ),
    "apps": Stage(
        name="apps",
        version="1",
        deps=_apps_deps,
        payload=_apps_payload,
        run=_run_apps,
        records=_apps_records,
    ),
    "econ": Stage(
        name="econ",
        version="1",
        deps=_econ_deps,
        payload=_econ_payload,
        run=_run_econ,
        records=_rows_passthrough,
    ),
}

#: Stages every experiment materializes, in order.
BASE_STAGES = ("substrate", "design")


def stage_code_targets() -> dict[str, dict]:
    """The versioned code surface the stage-version lockfile pins.

    Maps every lock entry to its hand-bumped version tag plus the code
    it governs: ``functions`` are hashed with their transitive
    repo-local callees, ``packages`` hash every definition under the
    module prefix (and become opaque boundaries in *other* entries'
    closures — see :mod:`repro.analysis.callgraph`).

    For stages, the hashed surface is ``payload`` + ``run`` — exactly
    the code whose semantics the cache key's version tag stands in
    for.  ``records`` functions are excluded on purpose: rows re-derive
    from stored artifacts at read time, so a records change can never
    poison the store.  ``deps`` functions need no pinning either — the
    key closure re-derives from them at runtime.
    """
    from ..core.design import get_solver, solver_names, solver_version

    targets: dict[str, dict] = {}
    for name in sorted(STAGES):
        stage = STAGES[name]
        targets[f"stage:{name}"] = {
            "version": stage.version,
            "functions": (stage.payload, stage.run),
        }
    for name in solver_names():
        targets[f"solver:{name}"] = {
            "version": solver_version(name),
            "functions": (type(get_solver(name)).solve,),
        }
    from ..graph import graph_kernel_version

    targets["graph:kernel"] = {
        "version": graph_kernel_version(),
        "packages": ("repro.graph",),
    }
    return targets


def dependency_closure(spec: ExperimentSpec, name: str) -> tuple[str, ...]:
    """The stage and its transitive dependencies, dependencies first."""
    seen: list[str] = []

    def visit(n: str) -> None:
        if n in seen:
            return
        for dep in STAGES[n].deps(spec):
            visit(dep)
        seen.append(n)

    visit(name)
    return tuple(seen)


def stage_key(spec: ExperimentSpec, name: str) -> str:
    """The content address of one stage's artifact for one spec.

    Covers the payload and version of the stage and of every transitive
    dependency — the full producing chain.
    """
    closure = dependency_closure(spec, name)
    versions = {n: STAGES[n].version for n in closure}
    payload = {n: STAGES[n].payload(spec) for n in closure}
    return artifact_key(name, versions, payload)
