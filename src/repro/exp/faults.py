"""Deterministic, seed-pinned fault injection for sweep chaos testing.

A :class:`FaultPlan` is a declarative list of faults keyed by
``(point index, attempt number)`` — no wall-clock randomness, so a
chaos run is exactly reproducible: the same plan against the same sweep
kills the same workers at the same points every time.

Actions:

* ``kill``    — the worker process exits immediately via ``os._exit``
  (models an OOM kill / SIGKILL; in an inline ``jobs=1`` run this kills
  the *parent*, which is the crash-resume scenario).
* ``fail``    — raise :class:`FaultInjected` (a deterministic point
  failure, exercising retry and quarantine paths).
* ``delay``   — sleep ``seconds`` before the point executes (models a
  stalled stage; with a long delay it trips the service watchdog).
* ``corrupt`` — after the point completes, overwrite its cached
  ``stage`` artifact with garbage bytes (models a torn artifact write;
  exercises the store's quarantine-on-read path).

Plans round-trip through JSON (``to_dict`` / ``from_dict``) so the
service can ship them to pool workers, and ``repro run --fault-plan
plan.json`` injects them from the CLI for end-to-end chaos tests.
"""

from __future__ import annotations

import json
import logging
import os
import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .spec import ExperimentSpec
    from .store import ArtifactStore

logger = logging.getLogger(__name__)

#: Fault actions.
KILL = "kill"
FAIL = "fail"
DELAY = "delay"
CORRUPT = "corrupt"
ACTIONS = (KILL, FAIL, DELAY, CORRUPT)

#: Exit status used by ``kill`` faults (the conventional SIGKILL code).
KILL_EXIT_CODE = 137


class FaultInjected(RuntimeError):
    """The error raised by a ``fail`` fault (and by nothing else)."""


@dataclass(frozen=True)
class Fault:
    """One injected fault, firing when ``point`` runs its ``attempt``-th try.

    Attributes:
        point: sweep-order point index the fault targets.
        action: one of ``kill`` / ``fail`` / ``delay`` / ``corrupt``.
        attempt: 1-based attempt number the fault fires on (so a fault
            at ``attempt=1`` lets the retry succeed deterministically).
        seconds: sleep length for ``delay``.
        stage: which cached stage artifact ``corrupt`` targets.
    """

    point: int
    action: str
    attempt: int = 1
    seconds: float = 0.0
    stage: str = "netsim"

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} "
                f"(choose from {', '.join(ACTIONS)})"
            )
        if self.point < 0:
            raise ValueError("fault point index must be >= 0")
        if self.attempt < 1:
            raise ValueError("fault attempt numbers are 1-based")
        if self.seconds < 0:
            raise ValueError("fault delay must be non-negative")

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "action": self.action,
            "attempt": self.attempt,
            "seconds": self.seconds,
            "stage": self.stage,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Fault":
        known = {"point", "action", "attempt", "seconds", "stage"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of faults for one sweep."""

    faults: tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def for_point(self, point: int, attempt: int) -> list[Fault]:
        return [
            f for f in self.faults if f.point == point and f.attempt == attempt
        ]

    def fire_before(self, point: int, attempt: int) -> None:
        """Inject pre-execution faults (kill / fail / delay)."""
        for fault in self.for_point(point, attempt):
            if fault.action == DELAY:
                time.sleep(fault.seconds)
            elif fault.action == KILL:
                # Bypass every finally/atexit, exactly like SIGKILL.
                os._exit(KILL_EXIT_CODE)
            elif fault.action == FAIL:
                raise FaultInjected(
                    f"injected failure at point {point} attempt {attempt}"
                )

    def fire_after(
        self,
        point: int,
        attempt: int,
        spec: "ExperimentSpec",
        store: "ArtifactStore",
    ) -> None:
        """Inject post-execution faults (corrupt the point's artifacts)."""
        from .stages import stage_key
        from .store import NullStore

        for fault in self.for_point(point, attempt):
            if fault.action != CORRUPT:
                continue
            if isinstance(store, NullStore):
                continue  # nothing on disk to corrupt
            try:
                corrupt_artifact(store, stage_key(spec, fault.stage))
            except FileNotFoundError:
                logger.warning(
                    "corrupt fault at point %d: no %r artifact on disk",
                    point,
                    fault.stage,
                )

    def to_dict(self) -> dict:
        return {"faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        unknown = set(data) - {"faults"}
        if unknown:
            raise ValueError(
                f"unknown fault plan field(s): {', '.join(sorted(unknown))}"
            )
        raw = data.get("faults", [])
        if not isinstance(raw, Iterable) or isinstance(raw, (str, bytes)):
            raise ValueError("'faults' must be a list of fault objects")
        return cls(faults=tuple(Fault.from_dict(dict(f)) for f in raw))

    @classmethod
    def from_json_file(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    @classmethod
    def seeded_kills(
        cls,
        n_points: int,
        seed: int = 0,
        rate: float = 0.1,
        attempt: int = 1,
    ) -> "FaultPlan":
        """Kill a deterministic ``rate`` fraction of first attempts.

        The victim set is a pure function of ``(n_points, seed, rate)``,
        so a chaos benchmark replays the same worker deaths every run.
        """
        if not 0 <= rate <= 1:
            raise ValueError("kill rate must be in [0, 1]")
        n_kills = int(round(n_points * rate))
        victims = random.Random(seed).sample(range(n_points), n_kills)
        return cls(
            faults=tuple(
                Fault(point=p, action=KILL, attempt=attempt)
                for p in sorted(victims)
            )
        )


def corrupt_artifact(
    store: "ArtifactStore", key: str, mode: str = "garbage"
) -> None:
    """Deterministically damage one on-disk store entry.

    ``garbage`` overwrites the pickle with non-pickle bytes; ``truncate``
    keeps only the first third (a torn write).  Either way the next
    :meth:`~repro.exp.store.ArtifactStore.get` must treat the entry as a
    miss and quarantine the file.
    """
    path = store.path_for(key)
    if not path.exists():
        raise FileNotFoundError(f"no artifact on disk for key {key}")
    if mode == "garbage":
        path.write_bytes(b"\x00repro-fault-injected-garbage\x00")
    elif mode == "truncate":
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 3)])
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
