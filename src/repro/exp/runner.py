"""Experiment execution: single runs and parallel sweeps.

:func:`run_experiment` walks the stage DAG for one
:class:`~repro.exp.spec.ExperimentSpec` in topological order, fetching
each stage artifact from the :class:`~repro.exp.store.ArtifactStore`
(status ``"cached"``) or computing and publishing it (``"computed"``).

:class:`SweepRunner` expands a base spec over declared axes (the
cartesian product), executes the points with ``concurrent.futures``
process workers, and streams each finished point's rows into one tidy
records table.  Determinism contract: every stage is a pure function of
its seed-pinned spec slice, and rows are emitted in point order — so a
``jobs=4`` run is byte-identical to ``jobs=1``, and a warm-cache rerun
is byte-identical to the cold run while skipping every substrate/design
execution.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable

from .spec import ExperimentSpec, canonical_json
from .stages import BASE_STAGES, STAGES, stage_key
from .store import CACHED, COMPUTED, ArtifactStore, NullStore


@dataclass
class ExperimentRun:
    """One executed spec: artifacts, tidy rows, and per-stage status.

    Attributes:
        spec: the spec that ran.
        records: tidy rows (each carries a ``stage`` column).
        stage_status: stage name -> "cached" | "computed".
        artifacts: stage name -> artifact (substrate Scenario, design
            DesignResult, evaluation record lists).
    """

    spec: ExperimentSpec
    records: list[dict]
    stage_status: dict[str, str]
    artifacts: dict[str, Any]

    def records_json(self) -> str:
        """Canonical JSON of the rows (byte-comparable across runs)."""
        return canonical_json(self.records)


def run_experiment(
    spec: ExperimentSpec,
    store: ArtifactStore | None = None,
    stages: Sequence[str] | None = None,
) -> ExperimentRun:
    """Execute one spec through the stage DAG.

    Args:
        spec: the experiment to run.
        store: artifact cache; defaults to the on-disk store at
            ``$REPRO_ARTIFACT_DIR`` (or ``~/.cache/repro/artifacts``).
            Pass :class:`~repro.exp.store.NullStore` to disable caching.
        stages: stages to materialize.  The default — substrate, design,
            and every evaluation section the spec enables — always
            includes substrate/design (from cache when warm).  An
            explicit tuple materializes exactly those stages, pulling in
            dependencies only on cache misses (so e.g. ``("econ",)``
            with a pinned cost never touches the design).
    """
    store = store if store is not None else ArtifactStore()
    if stages is not None:
        requested = tuple(stages)
    else:
        requested = (*BASE_STAGES, *spec.eval_stages())
    unknown = [s for s in requested if s not in STAGES]
    if unknown:
        raise ValueError(f"unknown stage(s): {', '.join(unknown)}")
    for name in requested:
        if name not in BASE_STAGES and getattr(spec, name, None) is None:
            raise ValueError(
                f"stage {name!r} requested but the spec's {name!r} section "
                "is not enabled"
            )

    artifacts: dict[str, Any] = {}
    status: dict[str, str] = {}

    def materialize(name: str) -> Any:
        if name in artifacts:
            return artifacts[name]
        stage = STAGES[name]
        # Check this stage's cache *before* touching its dependencies: a
        # cached evaluation never loads the (much larger) substrate or
        # design artifacts it was computed from.
        key = stage_key(spec, name)
        found, artifact = store.get(key)
        if found:
            stage_status = CACHED
        else:
            inputs = {dep: materialize(dep) for dep in stage.deps(spec)}
            artifact = stage.run(spec, inputs)
            store.put(key, artifact)
            stage_status = COMPUTED
        artifacts[name] = artifact
        status[name] = stage_status
        return artifact

    for name in requested:
        materialize(name)

    # Records cover exactly the requested stages, in requested order:
    # dependencies pulled in by a cache miss must not change the output
    # (cold and warm runs of the same call stay byte-identical).
    records: list[dict] = []
    emitted: set[str] = set()
    for name in requested:
        if name in emitted:
            continue
        emitted.add(name)
        for row in STAGES[name].records(spec, artifacts[name]):
            if "stage" not in row:
                row = {"stage": name, **row}
            records.append(row)
    return ExperimentRun(
        spec=spec, records=records, stage_status=status, artifacts=artifacts
    )


# --------------------------------------------------------------------------
# Sweeps.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepAxis:
    """One sweep dimension: a dotted spec path and its values.

    ``path`` addresses a field of an enabled spec section, e.g.
    ``"design.budget_towers"`` or ``"netsim.loads"``.
    """

    path: str
    values: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.path!r} needs at least one value")


@dataclass
class SweepResult:
    """A finished sweep: the tidy table plus execution accounting.

    Attributes:
        records: one row per (point, stage row), in point order; every
            row carries ``point`` plus one column per axis path.
        points: the per-point :class:`ExperimentRun` summaries
            (records + stage status), in point order.
        stage_counts: stage -> {"computed": n, "cached": n} aggregated
            over all points.
    """

    axes: tuple[SweepAxis, ...]
    records: list[dict]
    points: list[ExperimentRun]
    stage_counts: dict[str, dict[str, int]]

    def records_json(self) -> str:
        """Canonical JSON of the table (byte-comparable across runs)."""
        return canonical_json(self.records)

    def executed(self, stage: str) -> int:
        """How many points actually *computed* this stage (vs cache hits)."""
        return self.stage_counts.get(stage, {}).get(COMPUTED, 0)


def _axis_list(
    axes: Mapping[str, Sequence] | Sequence[SweepAxis],
) -> tuple[SweepAxis, ...]:
    if isinstance(axes, Mapping):
        return tuple(SweepAxis(path, tuple(values)) for path, values in axes.items())
    return tuple(
        a if isinstance(a, SweepAxis) else SweepAxis(a[0], tuple(a[1])) for a in axes
    )


def expand_points(
    base_spec: ExperimentSpec, axes: tuple[SweepAxis, ...]
) -> list[tuple[dict, ExperimentSpec]]:
    """(axis-assignment, spec) for every sweep point, in sweep order.

    The cartesian product of the axis values, first axis outermost —
    the single source of point indexing for :class:`SweepRunner` and
    the resumable :class:`~repro.exp.service.SweepService` (a journal
    written by one must mean the same points to the other).
    """
    combos = itertools.product(*(axis.values for axis in axes))
    points = []
    for combo in combos:
        spec = base_spec
        assignment: dict[str, Any] = {}
        for axis, value in zip(axes, combo):
            spec = spec.with_value(axis.path, value)
            assignment[axis.path] = value
        points.append((assignment, spec))
    return points


def point_waves(
    points: list[tuple[dict, ExperimentSpec]],
    store: ArtifactStore,
    indices: Sequence[int] | None = None,
) -> list[list[int]]:
    """Schedule points so shared expensive stages compute once.

    Cold points sharing a substrate or design key would otherwise
    race: every worker misses the store at the same time and
    redundantly rebuilds the same artifact.  Each wave runs one
    representative point per distinct stage key (substrate first,
    then design) so later waves find the shared artifacts published;
    on a warm store the extra barriers cost microseconds.  With a
    NullStore nothing is shareable, so there is one wave.

    ``indices`` restricts scheduling to a subset of the points (the
    resume path only schedules points without a journal entry).
    """
    order = list(range(len(points))) if indices is None else list(indices)
    if isinstance(store, NullStore):
        return [order] if order else []
    remaining = order
    waves: list[list[int]] = []
    for stage_name in BASE_STAGES:
        reps: list[int] = []
        rest: list[int] = []
        seen: set[str] = set()
        for index in remaining:
            key = stage_key(points[index][1], stage_name)
            if key in seen:
                rest.append(index)
            else:
                seen.add(key)
                reps.append(index)
        if rest:  # sharing exists at this level: barrier after reps
            waves.append(reps)
            remaining = rest
    if remaining:
        waves.append(remaining)
    return waves


class SweepPointError(RuntimeError):
    """One sweep point failed; every completed point's rows survive.

    Raised by :meth:`SweepRunner.run` instead of letting the raw worker
    exception propagate (which would discard all finished points and
    leave the failing point anonymous).

    Attributes:
        index: the sweep-order index of the failing point.
        assignment: the failing point's axis assignment
            (``{"design.budget_towers": 400.0, ...}``).
        completed: sorted indices of the points that finished before
            the failure surfaced.
        partial_records: the finished points' table rows (``point`` +
            axis columns + stage rows), exactly as the full
            :class:`SweepResult` would have carried them.
    """

    def __init__(
        self,
        index: int,
        assignment: Mapping[str, Any],
        cause: BaseException,
        partial_records: list[dict],
        completed: list[int],
    ) -> None:
        self.index = index
        self.assignment = dict(assignment)
        self.partial_records = partial_records
        self.completed = completed
        super().__init__(
            f"sweep point {index} (assignment "
            f"{canonical_json(_scalar_assignment(self.assignment))}) failed: "
            f"{type(cause).__name__}: {cause} "
            f"[{len(completed)} completed point(s) preserved on "
            ".partial_records]"
        )


def _scalar_assignment(assignment: Mapping[str, Any]) -> dict:
    """Axis values as JSON-clean scalars (tuples become lists)."""
    return {
        path: list(value) if isinstance(value, tuple) else value
        for path, value in assignment.items()
    }


def _partial_table(
    points: list[tuple[dict, ExperimentSpec]],
    results: Mapping[int, tuple[list[dict], dict[str, str]]],
) -> list[dict]:
    rows: list[dict] = []
    for index in sorted(results):
        assignment = points[index][0]
        records, _status = results[index]
        for row in records:
            rows.append({"point": index, **assignment, **row})
    return rows


#: One store per (worker process, root): keeps the store's per-process
#: memory layer effective across the several points a worker executes.
_WORKER_STORES: dict[str | None, ArtifactStore] = {}


def _worker_store(store_root: str | None) -> ArtifactStore:
    if store_root not in _WORKER_STORES:
        _WORKER_STORES[store_root] = (
            ArtifactStore(store_root) if store_root is not None else NullStore()
        )
    return _WORKER_STORES[store_root]


def _sweep_point_worker(
    spec_dict: dict, store_root: str | None, index: int
) -> tuple[int, list[dict], dict[str, str]]:
    """Process-pool entry: run one point against the shared disk store."""
    spec = ExperimentSpec.from_dict(spec_dict)
    run = run_experiment(spec, store=_worker_store(store_root))
    return index, run.records, run.stage_status


class SweepRunner:
    """Expand a spec over axes and execute the points, possibly in parallel.

    Args:
        base_spec: the spec every point starts from.
        axes: mapping of dotted path -> values (or ``SweepAxis`` list);
            the sweep is the cartesian product, first axis outermost.
        store: shared artifact cache (must be an on-disk store for
            cross-process reuse; ``NullStore`` disables caching).
        jobs: worker processes; 1 executes inline in this process.

    Example::

        runner = SweepRunner(
            spec,
            axes={"design.budget_towers": [500, 1000, 1500],
                  "netsim.loads": [(0.3,), (0.9,)]},
            jobs=4,
        )
        result = runner.run()
    """

    def __init__(
        self,
        base_spec: ExperimentSpec,
        axes: Mapping[str, Sequence] | Sequence[SweepAxis],
        store: ArtifactStore | None = None,
        jobs: int = 1,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.base_spec = base_spec
        self.axes = _axis_list(axes)
        self.store = store if store is not None else ArtifactStore()
        self.jobs = jobs
        # Fail fast on bad paths / disabled sections before any work runs.
        for axis in self.axes:
            base_spec.with_value(axis.path, axis.values[0])

    def point_specs(self) -> list[tuple[dict, ExperimentSpec]]:
        """(axis-assignment, spec) for every sweep point, in sweep order."""
        return expand_points(self.base_spec, self.axes)

    def _point_waves(
        self, points: list[tuple[dict, ExperimentSpec]]
    ) -> list[list[int]]:
        return point_waves(points, self.store)

    def run(
        self, on_point: Callable[[int, list[dict]], None] | None = None
    ) -> SweepResult:
        """Execute every point; rows stream via ``on_point`` as they finish.

        ``on_point(index, rows)`` fires in completion order; the returned
        table is always in point order regardless of ``jobs``.

        A worker exception surfaces as :class:`SweepPointError`, which
        names the failing point's index and axis assignment and carries
        every completed point's rows — a thousand finished points are
        never thrown away because the thousand-and-first died.  (For a
        sweep that *survives* failures — retries, quarantine, crash
        resume — use :class:`~repro.exp.service.SweepService`.)
        """
        points = self.point_specs()
        results: dict[int, tuple[list[dict], dict[str, str]]] = {}
        if self.jobs == 1 or len(points) <= 1:
            for index, (assignment, spec) in enumerate(points):
                try:
                    run = run_experiment(spec, store=self.store)
                except Exception as exc:
                    raise SweepPointError(
                        index,
                        assignment,
                        exc,
                        _partial_table(points, results),
                        sorted(results),
                    ) from exc
                results[index] = (run.records, run.stage_status)
                if on_point is not None:
                    on_point(index, run.records)
        else:
            store_root = (
                None if isinstance(self.store, NullStore) else str(self.store.root)
            )
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                for wave in self._point_waves(points):
                    pending = {
                        pool.submit(
                            _sweep_point_worker,
                            points[index][1].to_dict(),
                            store_root,
                            index,
                        ): index
                        for index in wave
                    }
                    not_done = set(pending)
                    while not_done:
                        done, not_done = wait(
                            not_done, return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            failed_index = pending[future]
                            try:
                                index, records, stage_status = future.result()
                            except Exception as exc:
                                for other in not_done:
                                    other.cancel()
                                raise SweepPointError(
                                    failed_index,
                                    points[failed_index][0],
                                    exc,
                                    _partial_table(points, results),
                                    sorted(results),
                                ) from exc
                            results[index] = (records, stage_status)
                            if on_point is not None:
                                on_point(index, records)

        table: list[dict] = []
        runs: list[ExperimentRun] = []
        counts: dict[str, dict[str, int]] = {}
        for index, (assignment, spec) in enumerate(points):
            records, stage_status = results[index]
            for stage_name, outcome in stage_status.items():
                bucket = counts.setdefault(stage_name, {COMPUTED: 0, CACHED: 0})
                bucket[outcome] = bucket.get(outcome, 0) + 1
            for row in records:
                table.append({"point": index, **assignment, **row})
            runs.append(
                ExperimentRun(
                    spec=spec,
                    records=records,
                    stage_status=stage_status,
                    artifacts={},
                )
            )
        return SweepResult(
            axes=self.axes, records=table, points=runs, stage_counts=counts
        )
