"""Declarative, seed-pinned experiment specifications.

An :class:`ExperimentSpec` names everything a composed experiment
consumes — the scenario substrate, the topology design, and the
evaluations (netsim load curve, weather year, fast-path planning,
cost-benefit) — with every random seed explicit, so the same spec
always produces the same artifacts and records.

Specs have one *canonical* dict/JSON form (:meth:`ExperimentSpec.to_dict`
/ :func:`canonical_json`): nested plain dicts with sorted keys and only
JSON scalars.  The orchestration layer hashes slices of that form to
content-address cached artifacts, so canonicalization — not object
identity — is what makes caching correct across processes and sessions.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

#: Scenario names the substrate stage can build (see
#: :func:`repro.scenarios.get_scenario`).
SCENARIO_NAMES = ("us", "europe", "interdc", "city_dc")

#: Per-scenario default tower-synthesis seeds (match the historical
#: defaults of the ``us_scenario``/``europe_scenario``/... builders).
SCENARIO_DEFAULT_SEEDS = {"us": 42, "europe": 43, "interdc": 44, "city_dc": 45}

#: Scenarios whose site list is fixed (``sites`` must stay None).
FIXED_SITE_SCENARIOS = ("europe", "interdc")

#: Scenarios that take no line-of-sight overrides.
FIXED_LOS_SCENARIOS = ("interdc", "city_dc")

#: Netsim engines (single source; the netsim package and CLI import it).
ENGINES = ("packet", "fluid")

#: How the offered traffic matrix is built: "design" scales the design
#: matrix by a load fraction; "users" builds it bottom-up from per-city
#: populations (diurnal + heavy-tail million-user demand layer).
DEMAND_MODELS = ("design", "users")

#: Transport macro-models: "udp" offers demand open-loop; "tcp" caps
#: each flow at its Mathis-model rate (fluid engine only).
TRANSPORTS = ("udp", "tcp")

#: How the fluid workload is materialized: "object" builds the
#: reference per-flow ``FluidFlow`` list; "table" keeps flows in
#: struct-of-arrays tables end to end (fluid engine only, bit-identical
#: results, million-flow-capable setup).
WORKLOADS = ("object", "table")


def canonical_json(obj: Any) -> str:
    """The canonical JSON text of a plain dict/list/scalar tree.

    Sorted keys, no whitespace, NaN/Infinity rejected — two equal trees
    always serialize to the same bytes, in any process.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def _scalar(value: Any) -> Any:
    """Coerce numpy scalars and tuples to JSON-clean plain values."""
    if isinstance(value, (list, tuple)):
        return [_scalar(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _scalar(v) for k, v in sorted(value.items())}
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def _asdict(spec: Any) -> dict:
    """A dataclass's canonical dict: plain scalars, tuples as lists."""
    out = {}
    for f in fields(spec):
        out[f.name] = _scalar(getattr(spec, f.name))
    return out


def _fromdict(cls, data: Mapping[str, Any], section: str):
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown {section} spec field(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    kwargs = dict(data)
    # Tuples survive the JSON round trip as lists.
    for f in fields(cls):
        if f.name in kwargs and isinstance(kwargs[f.name], list):
            kwargs[f.name] = tuple(kwargs[f.name])
    return cls(**kwargs)


@dataclass(frozen=True)
class ScenarioSpec:
    """The substrate half of a spec: which geography, which seeds.

    Attributes:
        name: scenario family ("us", "europe", "interdc", "city_dc").
        sites: site-list size for scenarios that take one (``us``,
            ``city_dc``); must stay None for fixed-site scenarios
            (``europe``, ``interdc``) — passing it there is an error,
            never silently ignored.
        max_range_km: maximum MW hop length (§6.5 sweeps 60-100 km).
        usable_height_fraction: antenna mounting-height restriction.
        seed: tower-synthesis seed; None pins the scenario's historical
            default (42/43/44/45) so default specs equal explicit ones.
    """

    name: str = "us"
    sites: int | None = None
    max_range_km: float = 100.0
    usable_height_fraction: float = 1.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.name not in SCENARIO_NAMES:
            raise ValueError(
                f"unknown scenario {self.name!r} (choose from {', '.join(SCENARIO_NAMES)})"
            )
        if self.name in FIXED_SITE_SCENARIOS and self.sites is not None:
            raise ValueError(
                f"scenario {self.name!r} has a fixed site list; "
                f"'sites' is not supported (got {self.sites})"
            )
        if self.name in FIXED_LOS_SCENARIOS and (
            self.max_range_km != 100.0 or self.usable_height_fraction != 1.0
        ):
            raise ValueError(
                f"scenario {self.name!r} does not take LoS overrides "
                "(max_range_km / usable_height_fraction)"
            )
        if self.sites is not None and self.sites < 2:
            raise ValueError("need at least 2 sites")

    def resolved_seed(self) -> int:
        """The tower-synthesis seed with the scenario default applied."""
        return SCENARIO_DEFAULT_SEEDS[self.name] if self.seed is None else self.seed


@dataclass(frozen=True)
class DesignSpec:
    """The topology-design half: budget, solver, provisioning target.

    Attributes:
        budget_towers: the tower budget B.
        solver: registry backend name (see ``repro.core.solver_names``).
        aggregate_gbps: Step-3 provisioning target; None skips capacity
            augmentation and costing.
        solver_opts: backend-specific options, stored as a sorted tuple
            of (key, value) pairs so the spec stays hashable and its
            canonical form is order-independent.
    """

    budget_towers: float = 1000.0
    solver: str = "heuristic"
    aggregate_gbps: float | None = None
    solver_opts: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.budget_towers < 0:
            raise ValueError("budget must be non-negative")
        opts = self.solver_opts
        if isinstance(opts, Mapping):
            opts = tuple(sorted(opts.items()))
        else:
            opts = tuple(sorted((str(k), v) for k, v in opts))
        object.__setattr__(self, "solver_opts", opts)

    def opts_dict(self) -> dict[str, Any]:
        return dict(self.solver_opts)


@dataclass(frozen=True)
class NetsimSpec:
    """Load-curve evaluation (§5 / Fig 5 methodology).

    Attributes:
        loads: offered-load fractions of the design aggregate (or of the
            user-model aggregate under ``demand_model="users"``).
        engine: "packet" or "fluid".
        duration_s: simulated seconds per load point (packet engine).
        seed: Poisson-arrival seed (packet engine).
        capacity_mode: "k2" (Step-3 provisioning) or "tight".
        demand_model: "design" (scale the design matrix) or "users"
            (bottom-up per-city million-user demand).
        demand_hour_utc: UTC hour evaluated by the diurnal profile
            (users model only).
        demand_seed: heavy-tail per-city multiplier seed (users model).
        users_millions: rescale the user model to this many million
            active users network-wide; None keeps population-derived
            counts (users model only).
        transport: "udp" (open-loop offers) or "tcp" (Mathis macro-model
            caps; requires ``engine="fluid"``).
        workload: "object" (reference per-flow ``FluidFlow`` list) or
            "table" (array-native flow tables; requires
            ``engine="fluid"``; bit-identical results).
        profile: include the fluid engine's per-phase wall-clock
            timings (setup/fill/freeze) in each record row.  Off by
            default: timings are nondeterministic, and default records
            must stay byte-identical across runs.
    """

    loads: tuple[float, ...] = (0.3, 0.6, 0.9)
    engine: str = "packet"
    duration_s: float = 0.5
    seed: int = 0
    capacity_mode: str = "k2"
    demand_model: str = "design"
    demand_hour_utc: float = 20.0
    demand_seed: int = 0
    users_millions: float | None = None
    transport: str = "udp"
    workload: str = "object"
    profile: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.loads, (tuple, list)):
            raise ValueError(
                f"loads must be a list of load fractions (got {self.loads!r})"
            )
        object.__setattr__(self, "loads", tuple(float(x) for x in self.loads))
        if not self.loads:
            raise ValueError("need at least one load fraction")
        if any(not 0 < load <= 1.5 for load in self.loads):
            raise ValueError("load fractions must be in (0, 1.5]")
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r} (choose from {', '.join(ENGINES)})"
            )
        if self.demand_model not in DEMAND_MODELS:
            raise ValueError(
                f"unknown demand model {self.demand_model!r} "
                f"(choose from {', '.join(DEMAND_MODELS)})"
            )
        if not 0 <= self.demand_hour_utc < 24:
            raise ValueError("demand hour must be in [0, 24)")
        if self.users_millions is not None and self.users_millions <= 0:
            raise ValueError("users_millions must be positive")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r} "
                f"(choose from {', '.join(TRANSPORTS)})"
            )
        if self.transport == "tcp" and self.engine != "fluid":
            raise ValueError(
                "transport='tcp' is a fluid-engine macro-model; "
                "use engine='fluid' (the packet engine has TcpFlow)"
            )
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r} "
                f"(choose from {', '.join(WORKLOADS)})"
            )
        if self.workload == "table" and self.engine != "fluid":
            raise ValueError(
                "workload='table' is the fluid engine's array-native "
                "fast path; use engine='fluid'"
            )
        if not isinstance(self.profile, bool):
            raise ValueError("profile must be a boolean")


@dataclass(frozen=True)
class WeatherSpec:
    """Yearly weather analysis (Fig 7), optionally with the graded model.

    Attributes:
        n_intervals: sampled days of the year.
        fade_margin_db: binary failure threshold.
        seed: day-sampling seed.
        graded: also run the graded (modulation-downshift) comparison.
        frequency_ghz: MW carrier frequency for the rain attenuation
            physics — threaded through *both* the binary and the graded
            pass, so the two models always evaluate the same physics.
        sample_interval_days: when set, evaluate every Nth day of the
            365-day year deterministically (``1`` = full daily
            resolution) instead of sampling ``n_intervals`` random
            days; ``n_intervals`` and ``seed`` are then ignored.
        delta_k: the failure-set solver's neighbor radius — queries
            within ``delta_k`` links of a previously solved set take
            the compositional delta route (``0`` = memo-only).
        cache_mb: LRU byte budget (MiB) for the solver's cached
            distance matrices and the per-set stretch rows.
    """

    n_intervals: int = 120
    fade_margin_db: float = 30.0
    seed: int = 7
    graded: bool = False
    frequency_ghz: float = 11.0
    sample_interval_days: int | None = None
    delta_k: int = 2
    cache_mb: float = 256.0

    def __post_init__(self) -> None:
        if self.n_intervals <= 0:
            raise ValueError("need at least one interval")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.sample_interval_days is not None and not (
            1 <= self.sample_interval_days <= 365
        ):
            raise ValueError("sample_interval_days must be in [1, 365]")
        if self.delta_k < 0:
            raise ValueError("delta_k must be >= 0")
        if self.cache_mb <= 0:
            raise ValueError("cache_mb must be positive")


@dataclass(frozen=True)
class AppsSpec:
    """Fast-path planning (§6.6): fill cISP capacity in value order.

    Attributes:
        capacity_gbps: fast-path capacity; None uses the design's
            provisioning target (``design.aggregate_gbps``).
        min_value_per_gb: admission floor.
    """

    capacity_gbps: float | None = None
    min_value_per_gb: float = 0.0


@dataclass(frozen=True)
class EconSpec:
    """Cost-benefit table (§8).

    Attributes:
        cost_per_gb: network cost to compare value estimates against;
            None uses the designed network's amortized $/GB (which then
            requires ``design.aggregate_gbps``).
    """

    cost_per_gb: float | None = None


#: Evaluation sections, in canonical execution order.
EVAL_SECTIONS = ("netsim", "weather", "apps", "econ")

_SECTION_TYPES: dict[str, type] = {
    "scenario": ScenarioSpec,
    "design": DesignSpec,
    "netsim": NetsimSpec,
    "weather": WeatherSpec,
    "apps": AppsSpec,
    "econ": EconSpec,
}


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully pinned composed experiment.

    ``scenario`` and ``design`` are always present; each evaluation
    section is optional — a None section means that stage is not part
    of this experiment.  ``label`` is cosmetic (it never enters cache
    keys).
    """

    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    design: DesignSpec = field(default_factory=DesignSpec)
    netsim: NetsimSpec | None = None
    weather: WeatherSpec | None = None
    apps: AppsSpec | None = None
    econ: EconSpec | None = None
    label: str | None = None

    # -- canonical form ---------------------------------------------------

    def to_dict(self) -> dict:
        """The canonical nested-dict form (JSON scalars only)."""
        out: dict[str, Any] = {
            "scenario": _asdict(self.scenario),
            "design": _asdict(self.design),
        }
        for section in EVAL_SECTIONS:
            value = getattr(self, section)
            if value is not None:
                out[section] = _asdict(value)
        if self.label is not None:
            out["label"] = self.label
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        unknown = set(data) - set(_SECTION_TYPES) - {"label"}
        if unknown:
            raise ValueError(
                f"unknown experiment spec section(s): {', '.join(sorted(unknown))}"
            )
        kwargs: dict[str, Any] = {}
        for section, section_cls in _SECTION_TYPES.items():
            if section in data and data[section] is not None:
                raw = data[section]
                if not isinstance(raw, Mapping):
                    raise ValueError(f"spec section {section!r} must be an object")
                kwargs[section] = _fromdict(section_cls, raw, section)
        if "label" in data and data["label"] is not None:
            kwargs["label"] = str(data["label"])
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    # -- structure --------------------------------------------------------

    def eval_stages(self) -> tuple[str, ...]:
        """The evaluation stages this spec requests, in canonical order."""
        return tuple(s for s in EVAL_SECTIONS if getattr(self, s) is not None)

    def with_value(self, path: str, value: Any) -> "ExperimentSpec":
        """A copy with one dotted field replaced (``"design.budget_towers"``).

        Sweep axes address spec fields this way.  The section must be
        enabled (non-None) — sweeping a disabled evaluation is an error,
        not an implicit opt-in.
        """
        section, _, field_name = path.partition(".")
        if not field_name or section not in _SECTION_TYPES:
            raise ValueError(
                f"bad spec path {path!r} (want '<section>.<field>' with "
                f"section in {', '.join(_SECTION_TYPES)})"
            )
        current = getattr(self, section)
        if current is None:
            raise ValueError(
                f"cannot set {path!r}: section {section!r} is not enabled "
                "in the base spec"
            )
        if field_name not in {f.name for f in fields(current)}:
            raise ValueError(f"{section} spec has no field {field_name!r}")
        updated = dataclasses.replace(current, **{field_name: value})
        return dataclasses.replace(self, **{section: updated})
