"""Network assembly: nodes + bidirectional links from an edge list."""

from __future__ import annotations

from dataclasses import dataclass

from .engine import Simulator
from .links import DEFAULT_QUEUE_PACKETS, Link
from .nodes import Node


@dataclass(frozen=True)
class EdgeSpec:
    """A bidirectional edge specification.

    Attributes:
        a / b: endpoint node names.
        rate_bps: line rate of each direction.
        delay_s: one-way propagation delay.
        queue_capacity: drop-tail queue size, packets.
    """

    a: str
    b: str
    rate_bps: float
    delay_s: float
    queue_capacity: int = DEFAULT_QUEUE_PACKETS


class Network:
    """A simulated network: named nodes plus directional links."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.nodes: dict[str, Node] = {}
        self.links: dict[tuple[str, str], Link] = {}

    def add_node(self, name: str) -> Node:
        if name in self.nodes:
            raise ValueError(f"duplicate node {name}")
        node = Node(name)
        self.nodes[name] = node
        return node

    def add_edge(self, spec: EdgeSpec) -> None:
        """Create both directions of a bidirectional edge."""
        for u, v in ((spec.a, spec.b), (spec.b, spec.a)):
            if (u, v) in self.links:
                raise ValueError(f"duplicate edge {u}->{v}")
            link = Link(
                self.sim,
                name=f"{u}->{v}",
                rate_bps=spec.rate_bps,
                delay_s=spec.delay_s,
                queue_capacity=spec.queue_capacity,
            )
            link.attach(self.nodes[v])
            self.nodes[u].connect(link, v)
            self.links[(u, v)] = link

    @classmethod
    def from_edges(cls, sim: Simulator, edges: list[EdgeSpec]) -> "Network":
        """Build a network from edge specs, creating nodes on demand."""
        net = cls(sim)
        for e in edges:
            for name in (e.a, e.b):
                if name not in net.nodes:
                    net.add_node(name)
        for e in edges:
            net.add_edge(e)
        return net

    def link(self, u: str, v: str) -> Link:
        return self.links[(u, v)]
