"""Fluid-approximation engine: max-min fair flow rates (fast path).

For sweeps where per-packet fidelity is unnecessary (Fig 11/13-scale
load scans), solving the steady-state fluid allocation is orders of
magnitude cheaper than simulating every packet.  Flows are modelled as
fluids on their fixed paths; link bandwidth is shared max-min fairly
(progressive filling, Bertsekas & Gallager §6.5): all unfrozen flows
ramp together until a link saturates or a flow hits its offered rate,
the constrained flows freeze, and filling continues with the rest.

Two solvers implement the same allocation:

* ``max_min_rates`` — the scalar reference: explicit per-round Python
  loops over a residual-capacity dict.  Exact and readable; O(rounds x
  (flows + links)) interpreter work, so it is the small-workload
  reference, not the scale path.
* ``max_min_rates_vectorized`` — the commodity-aggregate solver behind
  ``solve_fluid``: flows sharing a path collapse into one demand row,
  path->link incidence is a scipy sparse matrix, and every progressive-
  filling round is whole-array numpy work.  Because all unfrozen flows
  always sit at one *global* fill level, a flow's final rate is
  ``min(demand, theta_P)`` where ``theta_P`` is the fill level at which
  its path's first link saturated — so the solve only tracks per-
  commodity freeze levels plus a single globally demand-sorted flow
  array, and demand-limited flows freeze in bulk per round.  This is
  what makes million-flow commodity aggregates tractable (see
  ``benchmarks/bench_fluid_engine.py``).

The engine consumes the same :class:`~repro.netsim.network.EdgeSpec`
capacities and node paths as the packet engine, so an experiment can
switch between ``engine="packet"`` and ``engine="fluid"`` behind one
API (see :func:`repro.netsim.experiments.run_udp_experiment`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from time import perf_counter

import numpy as np
from scipy import sparse

from .flowtable import CommodityTable, FlowTable
from .network import EdgeSpec

#: Rate slack treated as saturation (absolute, bits/second).
_EPS_BPS = 1e-9

#: Relative capacity slack treated as saturation (scales the absolute
#: epsilon up for multi-gigabit links, where float64 resolution alone
#: exceeds 1e-9 bps).
_EPS_REL = 1e-12

#: Allocations may exceed capacity by at most this relative slack; more
#: is a solver bug and fails loudly (never clamped away in reporting).
CAPACITY_SLACK_REL = 1e-9


@dataclass(frozen=True)
class FluidFlow:
    """One fluid demand.

    Attributes:
        flow_id: unique id.
        path: node names from source to destination.  The path must be
            edge-simple (no directed link twice): allocation treats a
            path as a *set* of links, so a repeated edge would receive
            half the load the latency/utilization accounting charges it.
        offered_bps: the flow's offered (maximum) rate.
    """

    flow_id: int
    path: tuple[str, ...]
    offered_bps: float

    def __post_init__(self) -> None:
        if self.offered_bps <= 0:
            raise ValueError("offered rate must be positive")
        if len(self.path) < 2:
            raise ValueError("path needs at least two nodes")
        if not _path_is_edge_simple(self.path):
            raise ValueError(
                f"flow {self.flow_id} path repeats a directed link; "
                "fluid paths must be edge-simple"
            )


@lru_cache(maxsize=65536)
def _path_is_edge_simple(path: tuple[str, ...]) -> bool:
    """Whether a path repeats no directed link (cached by path value).

    Workloads routinely hand the same path tuple to thousands of flows;
    caching by value means the O(len) set-build runs once per distinct
    path instead of once per flow.
    """
    edges = list(zip(path[:-1], path[1:]))
    return len(set(edges)) == len(edges)


@dataclass(frozen=True)
class FluidResult:
    """Steady-state max-min allocation for one workload.

    Attributes:
        rates_bps: allocated rate per flow id.
        offered_bps: offered rate per flow id.
        latencies_s: static per-flow path latency (propagation plus one
            packet serialization per hop; queueing is not modelled).
        link_utilization: per directed link, allocated load / capacity —
            the *true* ratio.  The solver guarantees it never exceeds
            ``1 + CAPACITY_SLACK_REL``; an over-allocation is a bug and
            raises rather than being clamped out of sight.
        timings_s: wall-clock seconds per solve phase (``setup_s`` —
            problem construction, ``fill_s`` — progressive filling,
            ``freeze_s`` — result accounting), or None when the result
            was assembled outside :func:`solve_fluid`.  Excluded from
            equality: two solves of the same workload are the same
            result however long they took.
    """

    rates_bps: dict[int, float]
    offered_bps: dict[int, float]
    latencies_s: dict[int, float]
    link_utilization: dict[tuple[str, str], float]
    timings_s: dict[str, float] | None = field(default=None, compare=False)

    @property
    def total_offered_bps(self) -> float:
        return sum(self.offered_bps.values())

    @property
    def total_rate_bps(self) -> float:
        return sum(self.rates_bps.values())

    @property
    def loss_rate(self) -> float:
        """Offered load the allocation could not carry, as a fraction."""
        offered = self.total_offered_bps
        if offered <= 0:
            return 0.0
        return max(0.0, 1.0 - self.total_rate_bps / offered)

    @property
    def mean_rate_bps(self) -> float:
        if not self.rates_bps:
            return 0.0
        return self.total_rate_bps / len(self.rates_bps)

    @property
    def max_link_utilization(self) -> float:
        return max(self.link_utilization.values(), default=0.0)

    def mean_latency_s(self) -> float:
        """Throughput-weighted mean path latency."""
        total = self.total_rate_bps
        if total <= 0:
            return 0.0
        return (
            sum(
                self.latencies_s[fid] * rate
                for fid, rate in self.rates_bps.items()
            )
            / total
        )


@dataclass(frozen=True)
class FluidTableResult:
    """Array-native max-min allocation result (the table fast path).

    The same accounting as :class:`FluidResult` with aligned arrays in
    place of per-flow dicts: entry ``i`` of ``rates_bps`` /
    ``offered_bps`` / ``latencies_s`` belongs to ``flow_ids[i]``.
    Aggregate properties (``loss_rate``, ``mean_latency_s`` ...) are
    computed with the same sequential summation order as the dict
    result, so an experiment row built from either form is bit-identical.

    Attributes:
        flow_ids: caller-visible flow ids.
        rates_bps: allocated rate per flow.
        offered_bps: offered rate per flow.
        latencies_s: static path latency per flow.
        link_utilization: per directed link, allocated load / capacity.
        timings_s: wall-clock seconds per phase (``setup_s`` /
            ``fill_s`` / ``freeze_s``); excluded from equality.
    """

    flow_ids: np.ndarray
    rates_bps: np.ndarray
    offered_bps: np.ndarray
    latencies_s: np.ndarray
    link_utilization: dict[tuple[str, str], float]
    timings_s: dict[str, float] | None = field(default=None, compare=False)

    @property
    def n_flows(self) -> int:
        return len(self.flow_ids)

    @property
    def total_offered_bps(self) -> float:
        return float(sum(self.offered_bps.tolist()))

    @property
    def total_rate_bps(self) -> float:
        return float(sum(self.rates_bps.tolist()))

    @property
    def loss_rate(self) -> float:
        """Offered load the allocation could not carry, as a fraction."""
        offered = self.total_offered_bps
        if offered <= 0:
            return 0.0
        return max(0.0, 1.0 - self.total_rate_bps / offered)

    @property
    def mean_rate_bps(self) -> float:
        if self.n_flows == 0:
            return 0.0
        return self.total_rate_bps / self.n_flows

    @property
    def max_link_utilization(self) -> float:
        return max(self.link_utilization.values(), default=0.0)

    def mean_latency_s(self) -> float:
        """Throughput-weighted mean path latency."""
        total = self.total_rate_bps
        if total <= 0:
            return 0.0
        return float(sum((self.latencies_s * self.rates_bps).tolist())) / total

    def rates_by_flow(self) -> dict[int, float]:
        """The dict form of the rates (parity checks, small workloads)."""
        return dict(zip(self.flow_ids.tolist(), self.rates_bps.tolist()))


def flows_from_table(
    table: FlowTable | CommodityTable,
) -> list[FluidFlow]:
    """Expand a table workload into the reference ``FluidFlow`` list.

    The bridge from the array-native front-end to the scalar reference
    solver (and to parity tests): flows come out in table order with
    their table flow ids and one shared path tuple per commodity.
    """
    if isinstance(table, FlowTable):
        table = table.to_commodities()
    paths = [table.pool.path_names(int(p)) for p in table.commodity_path]
    return [
        FluidFlow(flow_id=int(fid), path=paths[int(c)], offered_bps=float(d))
        for fid, c, d in zip(
            table.flow_ids, table.flow_commodity, table.demand_bps
        )
    ]


def _check_flows(
    capacities_bps: dict[tuple[str, str], float],
    flows: list[FluidFlow],
) -> None:
    # Flows sharing a path object share its validity; checking each
    # distinct path once (by identity) keeps shared-path workloads from
    # re-walking the same links per flow.
    seen: set[int] = set()
    for flow in flows:
        path = flow.path
        if id(path) in seen:
            continue
        seen.add(id(path))
        for u, v in zip(path[:-1], path[1:]):
            if (u, v) not in capacities_bps:
                raise KeyError(f"flow {flow.flow_id} uses unknown link {u}->{v}")


def max_min_rates(
    capacities_bps: dict[tuple[str, str], float],
    flows: list[FluidFlow],
) -> dict[int, float]:
    """Max-min fair rates via progressive filling (scalar reference).

    Args:
        capacities_bps: directed link capacities keyed by (u, v).
        flows: the demands; a flow freezes early when its allocation
            reaches ``offered_bps`` (demand-limited flows don't hog
            their bottleneck share).

    Each round freezes at least one flow (bottlenecked or satisfied),
    so the loop runs at most ``len(flows)`` times over the link set.
    Bottleneck detection is two-pass: the first pass finds the minimum
    fair share over all loaded links, the realized step is the minimum
    of that and the demand step, and only then are links within epsilon
    of the realized step collected as bottlenecks — a link whose share
    falls just *below* the demand step can never be filled past its
    residual (the historical epsilon-asymmetric bug).
    """
    _check_flows(capacities_bps, flows)

    alloc = {flow.flow_id: 0.0 for flow in flows}
    remaining = {flow.flow_id: flow.offered_bps for flow in flows}
    residual = dict(capacities_bps)
    on_link: dict[tuple[str, str], set[int]] = {}
    for flow in flows:
        for u, v in zip(flow.path[:-1], flow.path[1:]):
            on_link.setdefault((u, v), set()).add(flow.flow_id)
    active = set(alloc)

    while active:
        # The largest uniform increment every active flow can take.
        demand_step = min(remaining[fid] for fid in active)
        # Pass 1: the minimum fair share over all loaded links.
        min_share = float("inf")
        for link, users in on_link.items():
            if not users:
                continue
            share = residual[link] / len(users)
            if share < min_share:
                min_share = share
        step = max(min(demand_step, min_share), 0.0)
        # Pass 2: every link within epsilon of the realized step is a
        # bottleneck (epsilon-symmetric: the step itself never exceeds
        # any link's share, so no residual is driven below zero).
        bottlenecks = [
            link
            for link, users in on_link.items()
            if users and residual[link] / len(users) <= step + _EPS_BPS
        ]
        for fid in active:
            alloc[fid] += step
            remaining[fid] -= step
        for link, users in on_link.items():
            if users:
                residual[link] -= step * len(users)

        frozen = {fid for fid in active if remaining[fid] <= _EPS_BPS}
        for link in bottlenecks:
            frozen |= on_link[link]
        if not frozen:  # numerical safety: freeze everything and stop
            frozen = set(active)
        for fid in frozen:
            for link, users in on_link.items():
                users.discard(fid)
        active -= frozen
    return alloc


class _CommodityProblem:
    """Flows collapsed into path commodities over an indexed link set.

    Built once per solve: flows sharing a path become one incidence row
    (their demands stay individually visible to the filling loop via
    one globally demand-sorted array), links become dense capacity /
    delay arrays, and path->link membership becomes a CSR matrix
    ``incidence`` of shape (n_commodities, n_links).
    """

    def __init__(
        self,
        capacities_bps: dict[tuple[str, str], float],
        flows: list[FluidFlow],
    ) -> None:
        self.link_keys = list(capacities_bps)
        link_index = {key: i for i, key in enumerate(self.link_keys)}
        self.capacities = np.array(
            [capacities_bps[key] for key in self.link_keys], dtype=float
        )

        # Collapse flows sharing a path into one commodity row, building
        # the CSR incidence (row c = link indices of path c) in the same
        # pass; unknown links surface here, exactly once per path.
        commodity_of_path: dict[tuple[str, ...], int] = {}
        self.paths: list[tuple[str, ...]] = []
        flow_commodity = np.empty(len(flows), dtype=np.int64)
        indices: list[int] = []
        indptr = [0]
        index_of = link_index.get
        append_link = indices.append
        for i, flow in enumerate(flows):
            path = flow.path
            c = commodity_of_path.get(path)
            if c is None:
                c = len(self.paths)
                commodity_of_path[path] = c
                self.paths.append(path)
                prev = path[0]
                for node in path[1:]:
                    li = index_of((prev, node))
                    if li is None:
                        raise KeyError(
                            f"flow {flow.flow_id} uses unknown link "
                            f"{prev}->{node}"
                        )
                    append_link(li)
                    prev = node
                indptr.append(len(indices))
            flow_commodity[i] = c

        self.flow_ids = np.array([f.flow_id for f in flows], dtype=np.int64)
        self.demands = np.array([f.offered_bps for f in flows], dtype=float)
        self.flow_commodity = flow_commodity
        self.incidence = sparse.csr_matrix(
            (
                np.ones(len(indices), dtype=float),
                np.array(indices, dtype=np.int64),
                np.array(indptr, dtype=np.int64),
            ),
            shape=(len(self.paths), len(self.link_keys)),
        )
        self.n_commodities = len(self.paths)

    @classmethod
    def from_table(
        cls,
        capacities_bps: dict[tuple[str, str], float],
        table: CommodityTable,
    ) -> "_CommodityProblem":
        """The same problem, built from a :class:`CommodityTable`.

        All-array construction: path edges come from the pool in one
        gather, the link lookup is a searchsorted over integer edge
        codes, and the CSR incidence lands with columns in traversal
        order and rows in first-seen commodity order — byte-identical
        to what ``__init__`` builds from the equivalent ``FluidFlow``
        list, just without the million-object detour.
        """
        self = cls.__new__(cls)
        self.link_keys = list(capacities_bps)
        self.capacities = np.array(
            [capacities_bps[key] for key in self.link_keys], dtype=float
        )
        pool = table.pool
        n_names = len(pool.node_names)
        name_id = {name: i for i, name in enumerate(pool.node_names)}
        # Integer code u_id * n + v_id per capacity link; links naming
        # nodes outside the pool get unique negative codes (no pool
        # path can ever reference them, they just keep the table total).
        link_codes = np.empty(len(self.link_keys), dtype=np.int64)
        for i, (u, v) in enumerate(self.link_keys):
            ui = name_id.get(u)
            vi = name_id.get(v)
            link_codes[i] = (
                ui * n_names + vi if ui is not None and vi is not None else -(i + 1)
            )
        code_order = np.argsort(link_codes, kind="stable")
        sorted_codes = link_codes[code_order]

        edge_u, edge_v, edge_indptr = pool.gather_edges(table.commodity_path)
        codes = edge_u * n_names + edge_v
        pos = np.searchsorted(sorted_codes, codes)
        pos = np.minimum(pos, max(len(sorted_codes) - 1, 0))
        if len(sorted_codes):
            bad = sorted_codes[pos] != codes
        else:
            bad = np.ones(len(codes), dtype=bool)
        if bad.any():
            # First offense in (commodity, traversal) order — the same
            # edge the object path trips over first.
            first = int(np.argmax(bad))
            commodity = int(np.searchsorted(edge_indptr, first, side="right")) - 1
            fid = int(table.first_flow_ids()[commodity])
            u = pool.node_names[int(edge_u[first])]
            v = pool.node_names[int(edge_v[first])]
            raise KeyError(f"flow {fid} uses unknown link {u}->{v}")
        indices = code_order[pos].astype(np.int64)
        self.paths = None  # table-built problems carry no name tuples
        self.flow_ids = table.flow_ids
        self.demands = table.demand_bps
        self.flow_commodity = table.flow_commodity
        self.incidence = sparse.csr_matrix(
            (
                np.ones(len(indices), dtype=float),
                indices,
                edge_indptr.astype(np.int64),
            ),
            shape=(len(table.commodity_path), len(self.link_keys)),
        )
        self.n_commodities = len(table.commodity_path)
        return self

    def commodity_flow_counts(self) -> np.ndarray:
        counts = np.zeros(self.n_commodities, dtype=np.int64)
        np.add.at(counts, self.flow_commodity, 1)
        return counts

    def path_costs(self, per_link: np.ndarray) -> np.ndarray:
        """Per-commodity sum of a per-link quantity (one sparse matvec)."""
        return self.incidence @ per_link

    def link_loads(self, flow_rates: np.ndarray) -> np.ndarray:
        """Per-link load implied by per-flow rates (one sparse matvec)."""
        commodity_rates = np.zeros(self.n_commodities, dtype=float)
        np.add.at(commodity_rates, self.flow_commodity, flow_rates)
        return self.incidence.T @ commodity_rates


def _progressive_fill(problem: _CommodityProblem) -> np.ndarray:
    """Vectorized progressive filling; returns per-flow rates.

    Every unfrozen flow sits at the single global fill level, so the
    state is: the level, per-commodity active-flow counts ``k`` (flows
    whose demand the level has not yet passed), per-link residual
    capacity, and a pointer into the globally demand-sorted flow array.
    Each round advances the level by the minimum link fair share; flows
    whose demands fall inside the advance freeze in bulk (an O(crossed)
    scatter-add, amortized O(n_flows) over the whole solve), and links
    whose residual reaches zero freeze every commodity crossing them at
    the current level.  A flow's final rate is ``min(demand, theta)``
    of its commodity's freeze level.
    """
    order = np.argsort(problem.demands, kind="stable")
    sorted_demands = problem.demands[order]
    sorted_commodity = problem.flow_commodity[order]

    n_c = problem.n_commodities
    # Rows of the incidence matrix are compacted as commodities freeze;
    # col_map tracks each current row's original commodity index.
    inc = problem.incidence
    # The two per-round matvecs go through the transpose; cache it as
    # CSR (refreshed only at compaction) instead of reconstructing a
    # transposed view a thousand times.
    inc_t = inc.T.tocsr()
    k = problem.commodity_flow_counts().astype(float)
    col_map = np.arange(n_c, dtype=np.int64)
    orig_to_cur = np.arange(n_c, dtype=np.int64)

    theta = np.full(n_c, np.inf)
    residual = problem.capacities.astype(float).copy()
    eps_link = _EPS_BPS + _EPS_REL * problem.capacities
    link_done = np.zeros(len(problem.capacities), dtype=bool)

    level = 0.0
    ptr = 0
    while k.any():
        counts = inc_t @ k
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(counts > 0, residual / np.maximum(counts, 1.0), np.inf)
        delta = max(float(share.min(initial=np.inf)), 0.0)
        if not np.isfinite(delta):  # no loaded link left (defensive)
            break
        new_level = level + delta

        # Bulk demand freezes: every flow whose demand lies in
        # (level, new_level] stops growing at its own demand.
        new_ptr = int(
            np.searchsorted(sorted_demands, new_level, side="right")
        )
        increment = k * delta
        crossed = 0
        if new_ptr > ptr:
            cz_orig = sorted_commodity[ptr:new_ptr]
            cz_cur = orig_to_cur[cz_orig]
            live = cz_cur >= 0
            cz_cur = cz_cur[live]
            crossed = len(cz_cur)
            if crossed:
                overshoot = new_level - sorted_demands[ptr:new_ptr][live]
                np.subtract.at(increment, cz_cur, overshoot)
                np.subtract.at(k, cz_cur, 1.0)
        residual -= inc_t @ increment
        level = new_level
        ptr = new_ptr

        # Freeze every commodity crossing a newly saturated link.
        saturated = (residual <= eps_link) & ~link_done
        froze_any = False
        if saturated.any():
            link_done |= saturated
            touched = inc @ saturated.astype(float)
            newly = (touched > 0) & (k > 0)
            if newly.any():
                froze_any = True
                frozen_orig = col_map[newly]
                theta[frozen_orig] = level
                k[newly] = 0.0
                # A frozen commodity's still-unmet demands must not be
                # processed when the global pointer passes them later.
                orig_to_cur[frozen_orig] = -1
        if delta <= 0.0 and crossed == 0 and not froze_any:
            # Numerical safety valve (mirrors the scalar solver): no
            # progress is possible, freeze everything at the level.
            remaining = k > 0
            theta[col_map[remaining]] = level
            k[remaining] = 0.0
            break

        # Compact away frozen/exhausted commodities once they are the
        # majority, keeping the per-round matvecs proportional to the
        # surviving active set.
        active = k > 0
        n_active = int(active.sum())
        if n_active and n_active * 2 <= len(k):
            inc = inc[active]
            inc_t = inc.T.tocsr()
            k = k[active]
            col_map = col_map[active]
            orig_to_cur = np.full(n_c, -1, dtype=np.int64)
            orig_to_cur[col_map] = np.arange(len(col_map), dtype=np.int64)

    return np.minimum(problem.demands, theta[problem.flow_commodity])


def max_min_rates_vectorized(
    capacities_bps: dict[tuple[str, str], float],
    flows: list[FluidFlow],
) -> dict[int, float]:
    """Max-min fair rates via the vectorized commodity-aggregate solver.

    Allocation-identical to :func:`max_min_rates` (up to floating-point
    noise; see the parity gate in ``benchmarks/bench_fluid_engine.py``)
    but runs progressive filling as whole-array numpy/scipy operations
    over path commodities, so million-flow workloads solve in well under
    a second instead of minutes.
    """
    if not flows:
        return {}
    problem = _CommodityProblem(capacities_bps, flows)
    rates = _progressive_fill(problem)
    return dict(zip(problem.flow_ids.tolist(), rates.tolist()))


#: Named rate solvers behind :func:`solve_fluid`.
SOLVERS = ("vectorized", "scalar")


def aggregate_capacities(
    specs: list[EdgeSpec],
) -> tuple[dict[tuple[str, str], float], dict[tuple[str, str], float]]:
    """Directed (capacity, delay) maps with parallel links aggregated.

    Two specs covering the same directed link add their bandwidth and
    keep the smallest delay — the packet path's "aggregate the bandwidth
    of parallel links" semantics — instead of the last spec silently
    overwriting the first.
    """
    capacities: dict[tuple[str, str], float] = {}
    delays: dict[tuple[str, str], float] = {}
    for spec in specs:
        for u, v in ((spec.a, spec.b), (spec.b, spec.a)):
            if (u, v) in capacities:
                capacities[(u, v)] += spec.rate_bps
                delays[(u, v)] = min(delays[(u, v)], spec.delay_s)
            else:
                capacities[(u, v)] = spec.rate_bps
                delays[(u, v)] = spec.delay_s
    return capacities, delays


def _assert_capacity_invariant(
    loads: np.ndarray, capacities: np.ndarray
) -> None:
    """Fail loudly if any link is allocated beyond its capacity."""
    slack = capacities * CAPACITY_SLACK_REL + _EPS_BPS
    overfilled = loads > capacities + slack
    if overfilled.any():
        worst = int(np.argmax(loads / np.maximum(capacities, _EPS_BPS)))
        raise AssertionError(
            "max-min solver over-allocated a link: load "
            f"{loads[worst]:.6g} bps on capacity {capacities[worst]:.6g} "
            "bps (solver bug — utilizations are never clamped)"
        )


def max_min_rates_table(
    capacities_bps: dict[tuple[str, str], float],
    table: FlowTable | CommodityTable,
) -> np.ndarray:
    """Max-min fair rates for a table workload, as a per-flow array.

    The array-native counterpart of :func:`max_min_rates_vectorized`:
    same solver, same allocation, but the workload never leaves numpy.
    Entry ``i`` of the result belongs to ``table.flow_ids[i]``.
    """
    if isinstance(table, FlowTable):
        table = table.to_commodities()
    if table.n_flows == 0:
        return np.empty(0, dtype=float)
    problem = _CommodityProblem.from_table(capacities_bps, table)
    return _progressive_fill(problem)


def _assemble_accounting(
    problem: _CommodityProblem,
    delays: dict[tuple[str, str], float],
    rates: np.ndarray,
    packet_bytes: int,
) -> tuple[np.ndarray, dict[tuple[str, str], float]]:
    """Per-flow latencies and the link-utilization dict for a solve."""
    packet_bits = packet_bytes * 8
    delay_arr = np.array([delays[key] for key in problem.link_keys])
    per_link_latency = delay_arr + packet_bits / problem.capacities
    commodity_latency = problem.path_costs(per_link_latency)
    latencies = commodity_latency[problem.flow_commodity]

    loads = problem.link_loads(rates)
    _assert_capacity_invariant(loads, problem.capacities)
    used = loads > 0
    utilization = {
        problem.link_keys[i]: float(loads[i] / problem.capacities[i])
        for i in np.flatnonzero(used)
    }
    return latencies, utilization


def _solve_fluid_table(
    specs: list[EdgeSpec],
    table: FlowTable | CommodityTable,
    packet_bytes: int,
    solver: str,
) -> FluidTableResult:
    """The array-native solve: table in, aligned result arrays out."""
    t0 = perf_counter()
    if isinstance(table, FlowTable):
        table = table.to_commodities()
    capacities, delays = aggregate_capacities(specs)
    problem = _CommodityProblem.from_table(capacities, table)
    t1 = perf_counter()
    if solver == "vectorized":
        rates = _progressive_fill(problem)
    else:
        # The scalar reference needs per-flow objects; expanding here
        # keeps solver="scalar" meaning "the reference allocation" for
        # tables too (at the reference's object cost).
        rate_map = max_min_rates(capacities, flows_from_table(table))
        rates = np.array(
            [rate_map[int(fid)] for fid in problem.flow_ids], dtype=float
        )
    t2 = perf_counter()
    latencies, utilization = _assemble_accounting(
        problem, delays, rates, packet_bytes
    )
    t3 = perf_counter()
    return FluidTableResult(
        flow_ids=problem.flow_ids,
        rates_bps=rates,
        offered_bps=problem.demands,
        latencies_s=latencies,
        link_utilization=utilization,
        timings_s={
            "setup_s": t1 - t0,
            "fill_s": t2 - t1,
            "freeze_s": t3 - t2,
        },
    )


def solve_fluid(
    specs: list[EdgeSpec],
    flows: list[FluidFlow] | FlowTable | CommodityTable,
    packet_bytes: int = 500,
    solver: str = "vectorized",
) -> FluidResult | FluidTableResult:
    """Allocate max-min rates over a network built from edge specs.

    ``packet_bytes`` only affects the static latency estimate (one
    serialization per hop), mirroring the packet engine's uniform UDP
    size.  ``solver`` selects the vectorized commodity-aggregate engine
    (default) or the scalar reference implementation.

    ``flows`` is either the reference ``FluidFlow`` list (returns a
    :class:`FluidResult`) or an array-native :class:`FlowTable` /
    :class:`CommodityTable` (returns a :class:`FluidTableResult` and
    never materializes per-flow objects).  Both forms produce
    bit-identical rates, latencies, and utilizations.
    """
    if solver not in SOLVERS:
        raise ValueError(f"unknown solver {solver!r} (choose from {SOLVERS})")
    if isinstance(flows, (FlowTable, CommodityTable)):
        return _solve_fluid_table(specs, flows, packet_bytes, solver)
    t0 = perf_counter()
    capacities, delays = aggregate_capacities(specs)
    problem = _CommodityProblem(capacities, flows)
    t1 = perf_counter()
    if solver == "vectorized":
        rates = _progressive_fill(problem)
    else:
        rate_map = max_min_rates(capacities, flows)
        rates = np.array(
            [rate_map[int(fid)] for fid in problem.flow_ids], dtype=float
        )
    t2 = perf_counter()
    # Vectorized accounting: per-commodity latency and per-link load via
    # the same incidence matrix the solver filled over.
    latencies, utilization = _assemble_accounting(
        problem, delays, rates, packet_bytes
    )
    flow_ids = problem.flow_ids.tolist()
    t3 = perf_counter()
    return FluidResult(
        rates_bps=dict(zip(flow_ids, rates.tolist())),
        offered_bps=dict(zip(flow_ids, problem.demands.tolist())),
        latencies_s=dict(zip(flow_ids, latencies.tolist())),
        link_utilization=utilization,
        timings_s={
            "setup_s": t1 - t0,
            "fill_s": t2 - t1,
            "freeze_s": t3 - t2,
        },
    )
