"""Fluid-approximation engine: max-min fair flow rates (fast path).

For sweeps where per-packet fidelity is unnecessary (Fig 11/13-scale
load scans), solving the steady-state fluid allocation is 1-2 orders of
magnitude cheaper than simulating every packet.  Flows are modelled as
fluids on their fixed paths; link bandwidth is shared max-min fairly
(progressive filling, Bertsekas & Gallager §6.5): all unfrozen flows
ramp together until a link saturates or a flow hits its offered rate,
the constrained flows freeze, and filling continues with the rest.

The engine consumes the same :class:`~repro.netsim.network.EdgeSpec`
capacities and node paths as the packet engine, so an experiment can
switch between ``engine="packet"`` and ``engine="fluid"`` behind one
API (see :func:`repro.netsim.experiments.run_udp_experiment`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .network import EdgeSpec

#: Rate slack treated as saturation (absolute, bits/second).
_EPS_BPS = 1e-9


@dataclass(frozen=True)
class FluidFlow:
    """One fluid demand.

    Attributes:
        flow_id: unique id.
        path: node names from source to destination.
        offered_bps: the flow's offered (maximum) rate.
    """

    flow_id: int
    path: tuple[str, ...]
    offered_bps: float

    def __post_init__(self) -> None:
        if self.offered_bps <= 0:
            raise ValueError("offered rate must be positive")
        if len(self.path) < 2:
            raise ValueError("path needs at least two nodes")


@dataclass(frozen=True)
class FluidResult:
    """Steady-state max-min allocation for one workload.

    Attributes:
        rates_bps: allocated rate per flow id.
        offered_bps: offered rate per flow id.
        latencies_s: static per-flow path latency (propagation plus one
            packet serialization per hop; queueing is not modelled).
        link_utilization: per directed link, allocated load / capacity.
    """

    rates_bps: dict[int, float]
    offered_bps: dict[int, float]
    latencies_s: dict[int, float]
    link_utilization: dict[tuple[str, str], float]

    @property
    def total_offered_bps(self) -> float:
        return sum(self.offered_bps.values())

    @property
    def total_rate_bps(self) -> float:
        return sum(self.rates_bps.values())

    @property
    def loss_rate(self) -> float:
        """Offered load the allocation could not carry, as a fraction."""
        offered = self.total_offered_bps
        if offered <= 0:
            return 0.0
        return max(0.0, 1.0 - self.total_rate_bps / offered)

    @property
    def mean_rate_bps(self) -> float:
        if not self.rates_bps:
            return 0.0
        return self.total_rate_bps / len(self.rates_bps)

    @property
    def max_link_utilization(self) -> float:
        return max(self.link_utilization.values(), default=0.0)

    def mean_latency_s(self) -> float:
        """Throughput-weighted mean path latency."""
        total = self.total_rate_bps
        if total <= 0:
            return 0.0
        return (
            sum(
                self.latencies_s[fid] * rate
                for fid, rate in self.rates_bps.items()
            )
            / total
        )


def max_min_rates(
    capacities_bps: dict[tuple[str, str], float],
    flows: list[FluidFlow],
) -> dict[int, float]:
    """Max-min fair rates via progressive filling.

    Args:
        capacities_bps: directed link capacities keyed by (u, v).
        flows: the demands; a flow freezes early when its allocation
            reaches ``offered_bps`` (demand-limited flows don't hog
            their bottleneck share).

    Each round freezes at least one flow (bottlenecked or satisfied),
    so the loop runs at most ``len(flows)`` times over the link set.
    """
    for flow in flows:
        for u, v in zip(flow.path[:-1], flow.path[1:]):
            if (u, v) not in capacities_bps:
                raise KeyError(f"flow {flow.flow_id} uses unknown link {u}->{v}")

    alloc = {flow.flow_id: 0.0 for flow in flows}
    remaining = {flow.flow_id: flow.offered_bps for flow in flows}
    residual = dict(capacities_bps)
    on_link: dict[tuple[str, str], set[int]] = {}
    for flow in flows:
        for u, v in zip(flow.path[:-1], flow.path[1:]):
            on_link.setdefault((u, v), set()).add(flow.flow_id)
    active = set(alloc)

    while active:
        # The largest uniform increment every active flow can take.
        step = min(remaining[fid] for fid in active)
        bottlenecks: list[tuple[str, str]] = []
        for link, users in on_link.items():
            if not users:
                continue
            share = residual[link] / len(users)
            if share < step - _EPS_BPS:
                step = share
                bottlenecks = [link]
            elif share <= step + _EPS_BPS:
                bottlenecks.append(link)
        step = max(step, 0.0)
        for fid in active:
            alloc[fid] += step
            remaining[fid] -= step
        for link, users in on_link.items():
            if users:
                residual[link] -= step * len(users)

        frozen = {fid for fid in active if remaining[fid] <= _EPS_BPS}
        for link in bottlenecks:
            frozen |= on_link[link]
        if not frozen:  # numerical safety: freeze everything and stop
            frozen = set(active)
        for fid in frozen:
            for link, users in on_link.items():
                users.discard(fid)
        active -= frozen
    return alloc


def solve_fluid(
    specs: list[EdgeSpec],
    flows: list[FluidFlow],
    packet_bytes: int = 500,
) -> FluidResult:
    """Allocate max-min rates over a network built from edge specs.

    ``packet_bytes`` only affects the static latency estimate (one
    serialization per hop), mirroring the packet engine's uniform UDP
    size.
    """
    capacities: dict[tuple[str, str], float] = {}
    delays: dict[tuple[str, str], float] = {}
    for spec in specs:
        for u, v in ((spec.a, spec.b), (spec.b, spec.a)):
            capacities[(u, v)] = spec.rate_bps
            delays[(u, v)] = spec.delay_s
    rates = max_min_rates(capacities, flows)

    latencies: dict[int, float] = {}
    load: dict[tuple[str, str], float] = {}
    packet_bits = packet_bytes * 8
    for flow in flows:
        latency = 0.0
        for u, v in zip(flow.path[:-1], flow.path[1:]):
            latency += delays[(u, v)] + packet_bits / capacities[(u, v)]
            load[(u, v)] = load.get((u, v), 0.0) + rates[flow.flow_id]
        latencies[flow.flow_id] = latency
    utilization = {
        link: min(used / capacities[link], 1.0) for link, used in load.items()
    }
    return FluidResult(
        rates_bps=rates,
        offered_bps={flow.flow_id: flow.offered_bps for flow in flows},
        latencies_s=latencies,
        link_utilization=utilization,
    )
