"""Nodes: source-routed forwarding and local delivery."""

from __future__ import annotations

from typing import Callable

from .links import Link
from .packets import Packet


class Node:
    """A router/host that forwards source-routed packets.

    Packets carry their full node path; the node looks up the link to
    the next hop and hands the packet over.  Locally destined packets go
    to the registered delivery handler (flow monitor, TCP endpoint...).
    """

    __slots__ = (
        "name",
        "_links",
        "_handlers",
        "_flow_handlers",
        "forwarded",
        "delivered",
    )

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("node name must be non-empty")
        self.name = name
        self._links: dict[str, Link] = {}
        self._handlers: list[Callable[[Packet], None]] = []
        self._flow_handlers: dict[int, list[Callable[[Packet], None]]] = {}
        self.forwarded = 0
        self.delivered = 0

    def connect(self, link: Link, neighbor: str) -> None:
        """Register the outgoing link toward ``neighbor``."""
        self._links[neighbor] = link

    def link_to(self, neighbor: str) -> Link:
        """The outgoing link toward ``neighbor`` (raises if absent)."""
        try:
            return self._links[neighbor]
        except KeyError:
            raise KeyError(f"{self.name} has no link to {neighbor}") from None

    def on_deliver(self, handler: Callable[[Packet], None]) -> None:
        """Register a handler for every locally delivered packet."""
        self._handlers.append(handler)

    def on_deliver_flow(self, flow_id: int, handler: Callable[[Packet], None]) -> None:
        """Register a handler for one flow's locally delivered packets.

        Dispatch is keyed by flow id, so many flows terminating at the
        same node stay O(1) per packet.
        """
        self._flow_handlers.setdefault(flow_id, []).append(handler)

    def receive(self, packet: Packet) -> None:
        """Accept a packet from an incoming link."""
        path = packet.path
        index = packet.hop_index + 1
        if path[index] != self.name:
            raise RuntimeError(
                f"mis-routed packet at {self.name}: path {packet.path}"
            )
        packet.hop_index = index
        if index == len(path) - 1:
            self.delivered += 1
            for handler in self._handlers:
                handler(packet)
            flow_handlers = self._flow_handlers.get(packet.flow_id)
            if flow_handlers is not None:
                for handler in flow_handlers:
                    handler(packet)
        else:
            self.forward(packet)

    def forward(self, packet: Packet) -> None:
        """Send a transiting (or originating) packet to its next hop."""
        path = packet.path
        index = packet.hop_index + 1
        if index >= len(path):
            raise RuntimeError("packet already at destination")
        self.forwarded += 1
        try:
            link = self._links[path[index]]
        except KeyError:
            raise KeyError(f"{self.name} has no link to {path[index]}") from None
        link.send(packet)

    def inject(self, packet: Packet) -> None:
        """Originate a packet at this node (hop_index must be 0)."""
        if packet.path[0] != self.name:
            raise ValueError("packet does not originate here")
        self.link_to(packet.path[1]).send(packet)
