"""Packet-level experiments over designed cISP topologies (§5, §6.4).

Bridges the design core and the packet simulator: a designed
:class:`~repro.core.topology.Topology` becomes a site-level network
(MW links with their real propagation delays, fiber edges with 1.5x
latency), demands become Poisson UDP flows, and the simulator measures
mean delay and loss as offered load sweeps from 10% to 100% of the
design capacity — the Fig 5 / Fig 11 methodology.

As in the paper, parallel tower hops are aggregated into one site-level
link ("we aggregate the bandwidth of parallel links and remove the
individual tower hops").  We additionally scale all rates down by a
constant factor so packet counts stay laptop-sized; utilizations, and
hence queueing behavior, are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..core.augmentation import route_link_demands, series_needed
from ..core.topology import Topology
from ..geo.coords import SPEED_OF_LIGHT_KM_S
from ..traffic.matrices import user_demand_matrix
from .engine import Simulator
from .fluid import FluidFlow, solve_fluid
from .flows import DEFAULT_UDP_PACKET_BYTES, UdpFlow
from .flowtable import FlowTable, PathPool
from .monitor import FlowMonitor
from .network import EdgeSpec, Network
from .routing import RoutingCache
from .tcpmodel import solve_fluid_tcp

# The engine/demand-model/transport/workload lists are owned by the
# (dependency-light) spec module so the spec layer, this package, and
# the CLI validate against one copy.
from ..exp.spec import (  # noqa: E402 - re-exported for callers
    DEMAND_MODELS,
    ENGINES,
    TRANSPORTS,
    WORKLOADS,
)


@dataclass(frozen=True)
class FailureRerouteResult:
    """Outcome of a link-failure + centralized-reroute experiment (§6.1).

    Attributes:
        loss_before: loss rate before the failure.
        loss_during_outage: loss rate between failure and reroute (the
            affected flows black-hole into the dead link).
        loss_after_reroute: loss rate once traffic is recomputed around
            the failure.
        flows_rerouted: how many flows crossed the failed link.
    """

    loss_before: float
    loss_during_outage: float
    loss_after_reroute: float
    flows_rerouted: int


@dataclass(frozen=True)
class UdpExperimentResult:
    """Aggregate outcome of one load point.

    Attributes:
        input_rate_fraction: offered load relative to design capacity.
        mean_delay_ms: mean end-to-end packet delay.
        loss_rate: network-wide packet loss fraction.
        max_link_utilization: highest per-link utilization observed.
        timings_s: fluid-engine phase timings (``setup_s`` / ``fill_s``
            / ``freeze_s``) when the fluid engine produced this point;
            None for the packet engine.  Excluded from equality.
    """

    input_rate_fraction: float
    mean_delay_ms: float
    loss_rate: float
    max_link_utilization: float
    timings_s: dict[str, float] | None = field(default=None, compare=False)


def build_edge_specs(
    topology: Topology,
    aggregate_gbps: float,
    rate_scale: float = 1e-4,
    queue_packets: int = 200,
    capacity_mode: str = "k2",
) -> list[EdgeSpec]:
    """Site-level edges for a provisioned topology.

    MW links get capacity k^2 Gbps where k covers their routed demand
    (``capacity_mode="k2"``, Step 3's provisioning), or their demand
    rounded up to whole-Gbps series (``"tight"`` — the leaner
    provisioning whose loss onset under load Fig 5 probes); fiber edges
    that the design's routing actually uses appear with generous
    capacity (fiber bandwidth is plentiful in the paper's model).
    ``rate_scale`` uniformly shrinks rates (and thus absolute packet
    counts); utilization at a given offered-load fraction is invariant
    to it.
    """
    if rate_scale <= 0:
        raise ValueError("rate scale must be positive")
    if capacity_mode not in ("k2", "tight"):
        raise ValueError("capacity_mode must be 'k2' or 'tight'")
    design = topology.design
    demands = route_link_demands(topology, aggregate_gbps)
    routes = topology.routed_paths()
    specs: dict[tuple[int, int], EdgeSpec] = {}
    for link, demand in demands.items():
        a, b = link
        if capacity_mode == "k2":
            k = series_needed(demand)
            capacity_gbps = max(k * k, 1)
        else:
            capacity_gbps = max(float(np.ceil(demand)), 1.0)
        capacity_bps = capacity_gbps * 1e9 * rate_scale
        delay_s = design.mw_km[a, b] / SPEED_OF_LIGHT_KM_S
        specs[link] = EdgeSpec(
            a=str(a),
            b=str(b),
            rate_bps=capacity_bps,
            delay_s=delay_s,
            queue_capacity=queue_packets,
        )
    # Fiber edges used by any route.
    mw = set(demands)
    for path in routes.values():
        for u, v in zip(path[:-1], path[1:]):
            edge = (min(u, v), max(u, v))
            if edge in mw or edge in specs:
                continue
            delay_s = design.fiber_km[edge] / SPEED_OF_LIGHT_KM_S
            specs[edge] = EdgeSpec(
                a=str(edge[0]),
                b=str(edge[1]),
                rate_bps=100e9 * rate_scale,
                delay_s=delay_s,
                queue_capacity=queue_packets,
            )
    return list(specs.values())


def kept_flow_shares(
    routes: dict[tuple[int, int], list[int]],
    traffic: np.ndarray,
    node_names: set[str],
    min_flow_rate_fraction: float,
) -> tuple[list[tuple[tuple[int, int], tuple[str, ...], float]], float]:
    """Commodities worth simulating, as (pair, node path, demand share).

    Drops the long tail of tiny flows (they dominate event count but
    not load) and any route leaving the simulated node set; the second
    return value is the kept demand mass, for renormalizing rates so
    the full offered aggregate is still injected.
    """
    total_h = np.triu(traffic, k=1).sum()
    kept: list[tuple[tuple[int, int], tuple[str, ...], float]] = []
    kept_mass = 0.0
    for (s, t), path in routes.items():
        h = traffic[s, t] / total_h
        if h < min_flow_rate_fraction:
            continue
        node_path = tuple(str(v) for v in path)
        if any(name not in node_names for name in node_path):
            continue
        kept.append(((s, t), node_path, h))
        kept_mass += h
    return kept, kept_mass


def kept_flow_table(
    routes: dict[tuple[int, int], list[int]],
    traffic: np.ndarray,
    node_names: set[str],
    min_flow_rate_fraction: float,
) -> tuple[PathPool, np.ndarray, np.ndarray, float]:
    """Array-native :func:`kept_flow_shares`: no per-flow tuples.

    Returns ``(pool, path_ids, shares, kept_mass)``: the route pool,
    the kept pairs' pool rows (in route-dict order, the same order
    ``kept_flow_shares`` emits), their demand shares, and the kept
    demand mass.  The shares and the mass are computed with the exact
    scalar expressions of the object path, so downstream demands — and
    therefore rates — are bit-identical between the two front-ends.
    """
    total_h = np.triu(traffic, k=1).sum()
    pool = PathPool.from_routes(routes, n_sites=traffic.shape[0])
    if pool.n_paths == 0:
        return pool, np.empty(0, np.int64), np.empty(0, float), 0.0
    pairs = np.fromiter(
        (v for pair in routes for v in pair),
        dtype=np.int64,
        count=2 * len(routes),
    ).reshape(-1, 2)
    h = traffic[pairs[:, 0], pairs[:, 1]] / total_h
    allowed = np.fromiter(
        (name in node_names for name in pool.node_names),
        dtype=bool,
        count=len(pool.node_names),
    )
    keep = ~(h < min_flow_rate_fraction) & pool.within_mask(allowed)
    # Sequential sum in kept order — the same accumulation (and the
    # same float) as the object path's ``kept_mass += h`` loop.
    kept_mass = float(sum(h[keep].tolist()))
    return pool, np.flatnonzero(keep).astype(np.int64), h[keep], kept_mass


@dataclass(frozen=True)
class _ExperimentSetup:
    """Per-load-point invariants of a load sweep, computed once.

    Everything here depends only on the topology, the demand model, and
    the provisioning knobs — not on the load fraction — so a load curve
    derives capacities, routes the demand matrix, and filters the kept
    flows exactly once instead of once per load point.
    """

    specs: list[EdgeSpec]
    node_names: set[str]
    routes: dict[tuple[int, int], list[int]]
    offered_aggregate_gbps: float
    rate_scale: float
    kept_mass: float
    # Object workload: (pair, node path, share) triples.
    kept: list[tuple[tuple[int, int], tuple[str, ...], float]] | None
    # Table workload: route pool + kept pool rows + shares.
    pool: PathPool | None
    path_ids: np.ndarray | None
    shares: np.ndarray | None

    def offered_bps(self, input_rate_fraction: float) -> float:
        return (
            self.offered_aggregate_gbps
            * 1e9
            * self.rate_scale
            * input_rate_fraction
        )


def _validate_experiment_params(
    input_rate_fraction: float,
    engine: str,
    demand_model: str,
    transport: str,
    workload: str,
) -> None:
    """The shared argument checks, in their historical order."""
    if not 0 < input_rate_fraction <= 1.5:
        raise ValueError("input rate fraction out of range")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (choose from {ENGINES})")
    if demand_model not in DEMAND_MODELS:
        raise ValueError(
            f"unknown demand model {demand_model!r} "
            f"(choose from {DEMAND_MODELS})"
        )
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r} (choose from {TRANSPORTS})"
        )
    if transport == "tcp" and engine != "fluid":
        raise ValueError(
            "transport='tcp' is a fluid-engine macro-model; the packet "
            "engine simulates TCP per-packet via TcpFlow instead"
        )
    if workload not in WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r} (choose from {WORKLOADS})"
        )
    if workload == "table" and engine != "fluid":
        raise ValueError(
            "workload='table' is the fluid engine's array-native fast "
            "path; use engine='fluid'"
        )


def _prepare_experiment(
    topology: Topology,
    design_aggregate_gbps: float,
    offered_traffic: np.ndarray | None,
    rate_scale: float,
    min_flow_rate_fraction: float,
    capacity_mode: str,
    demand_model: str,
    demand_hour_utc: float,
    demand_seed: int,
    users_millions: float | None,
    workload: str,
) -> _ExperimentSetup:
    """Build the load-invariant half of an experiment."""
    design = topology.design
    if demand_model == "users":
        if offered_traffic is not None:
            raise ValueError(
                "demand_model='users' builds its own traffic matrix; "
                "it conflicts with an explicit offered_traffic"
            )
        traffic, user_aggregate_gbps = user_demand_matrix(
            list(design.sites),
            hour_utc=demand_hour_utc,
            seed=demand_seed,
            users_millions=users_millions,
        )
        offered_aggregate_gbps = user_aggregate_gbps
    else:
        traffic = (
            offered_traffic if offered_traffic is not None else design.traffic
        )
        offered_aggregate_gbps = design_aggregate_gbps
    specs = build_edge_specs(
        topology,
        design_aggregate_gbps,
        rate_scale=rate_scale,
        capacity_mode=capacity_mode,
    )
    node_names = {spec.a for spec in specs} | {spec.b for spec in specs}
    routes = topology.routed_paths()
    if workload == "table":
        pool, path_ids, shares, kept_mass = kept_flow_table(
            routes, traffic, node_names, min_flow_rate_fraction
        )
        kept = None
    else:
        kept, kept_mass = kept_flow_shares(
            routes, traffic, node_names, min_flow_rate_fraction
        )
        pool = path_ids = shares = None
    if kept_mass <= 0:
        raise ValueError("no flows above the rate cutoff")
    return _ExperimentSetup(
        specs=specs,
        node_names=node_names,
        routes=routes,
        offered_aggregate_gbps=offered_aggregate_gbps,
        rate_scale=rate_scale,
        kept_mass=kept_mass,
        kept=kept,
        pool=pool,
        path_ids=path_ids,
        shares=shares,
    )


def run_udp_experiment(
    topology: Topology,
    design_aggregate_gbps: float,
    input_rate_fraction: float,
    offered_traffic: np.ndarray | None = None,
    duration_s: float = 1.0,
    rate_scale: float = 1e-4,
    min_flow_rate_fraction: float = 2e-4,
    capacity_mode: str = "k2",
    seed: int = 0,
    engine: str = "packet",
    demand_model: str = "design",
    demand_hour_utc: float = 20.0,
    demand_seed: int = 0,
    users_millions: float | None = None,
    transport: str = "udp",
    workload: str = "object",
    _setup: _ExperimentSetup | None = None,
) -> UdpExperimentResult:
    """One Fig 5 / Fig 11 load point.

    Args:
        topology: the designed (and implicitly provisioned) network.
        design_aggregate_gbps: the capacity the network was designed
            for; link capacities derive from routing *design* traffic.
        input_rate_fraction: offered aggregate load as a fraction of
            ``design_aggregate_gbps`` (the x-axis of Fig 5) — or of the
            user-model aggregate under ``demand_model="users"``.
        offered_traffic: traffic matrix actually offered (defaults to
            the design matrix; perturbed/mixed matrices reproduce the
            deviation experiments).  Mutually exclusive with
            ``demand_model="users"``, which builds its own matrix.
        duration_s: simulated seconds (packet engine only).
        rate_scale: uniform rate shrink factor (see module docstring).
        min_flow_rate_fraction: demands below this fraction of the
            total are dropped (they contribute negligible load but
            dominate event count).
        seed: RNG seed for Poisson arrivals (packet engine only).
        engine: ``"packet"`` simulates every packet; ``"fluid"`` solves
            the steady-state max-min rate allocation instead — 1-2
            orders of magnitude faster, no queueing/jitter modelling.
        demand_model: ``"design"`` offers the design (or explicit)
            matrix; ``"users"`` builds offered traffic bottom-up from
            per-city populations (diurnal x heavy-tail, the
            million-user layer in :mod:`repro.traffic.matrices`).
        demand_hour_utc: UTC hour for the diurnal profile (users model).
        demand_seed: heavy-tail multiplier seed (users model).
        users_millions: rescale the user model to this many million
            active users network-wide (users model; None keeps
            population-derived counts).
        transport: ``"udp"`` offers demand open-loop; ``"tcp"`` caps
            each flow at its Mathis macro-model rate and iterates loss
            to a fixed point (fluid engine only).
        workload: ``"object"`` builds the reference ``FluidFlow`` list;
            ``"table"`` keeps the workload in arrays end to end (fluid
            engine only) — bit-identical results, no per-flow objects.
    """
    _validate_experiment_params(
        input_rate_fraction, engine, demand_model, transport, workload
    )
    setup = (
        _setup
        if _setup is not None
        else _prepare_experiment(
            topology,
            design_aggregate_gbps,
            offered_traffic,
            rate_scale,
            min_flow_rate_fraction,
            capacity_mode,
            demand_model,
            demand_hour_utc,
            demand_seed,
            users_millions,
            workload,
        )
    )
    specs = setup.specs
    kept_mass = setup.kept_mass
    offered_bps = setup.offered_bps(input_rate_fraction)

    if engine == "fluid":
        if workload == "table":
            # Array fast path: per-flow demands, positivity filter, and
            # flow ids (positions in the kept list, exactly like the
            # object path's enumerate) all stay in numpy.
            demands = offered_bps * setup.shares / kept_mass
            positive = demands > 0
            flow_table = FlowTable(
                pool=setup.pool,
                path_id=setup.path_ids[positive],
                demand_bps=demands[positive],
                flow_ids=np.flatnonzero(positive).astype(np.int64),
            )
            flows = flow_table.to_commodities()
        else:
            flows = [
                FluidFlow(
                    flow_id=flow_id,
                    path=node_path,
                    offered_bps=offered_bps * h / kept_mass,
                )
                for flow_id, (_pair, node_path, h) in enumerate(setup.kept)
                if offered_bps * h / kept_mass > 0
            ]
        if transport == "tcp":
            result = solve_fluid_tcp(
                specs, flows, packet_bytes=DEFAULT_UDP_PACKET_BYTES
            )
        else:
            result = solve_fluid(
                specs, flows, packet_bytes=DEFAULT_UDP_PACKET_BYTES
            )
        return UdpExperimentResult(
            input_rate_fraction=input_rate_fraction,
            mean_delay_ms=result.mean_latency_s() * 1000.0,
            loss_rate=result.loss_rate,
            max_link_utilization=result.max_link_utilization,
            timings_s=result.timings_s,
        )

    kept = setup.kept
    sim = Simulator()
    net = Network.from_edges(sim, specs)
    monitor = FlowMonitor(sim)
    for link in net.links.values():
        monitor.watch_link(link)
    flow_id = 0
    for _pair, node_path, h in kept:
        rate = offered_bps * h / kept_mass
        if rate <= 0:
            continue
        flow = UdpFlow(
            sim,
            net,
            monitor,
            flow_id,
            node_path,
            rate_bps=rate,
            seed=seed * 100_003 + flow_id,
        )
        flow.start()
        flow_id += 1
    sim.run(until=duration_s)
    max_util = max(
        (link.utilization(duration_s) for link in net.links.values()), default=0.0
    )
    return UdpExperimentResult(
        input_rate_fraction=input_rate_fraction,
        mean_delay_ms=monitor.mean_delay_s() * 1000.0,
        loss_rate=monitor.overall_loss_rate(),
        max_link_utilization=max_util,
    )


def run_load_curve(
    topology: Topology,
    design_aggregate_gbps: float,
    loads: tuple[float, ...] | list[float],
    engine: str = "packet",
    duration_s: float = 0.5,
    seed: int = 0,
    capacity_mode: str = "k2",
    offered_traffic: np.ndarray | None = None,
    demand_model: str = "design",
    demand_hour_utc: float = 20.0,
    demand_seed: int = 0,
    users_millions: float | None = None,
    transport: str = "udp",
    workload: str = "object",
    profile: bool = False,
) -> list[dict]:
    """The full Fig 5 load curve as tidy records (the netsim stage).

    One :func:`run_udp_experiment` per load fraction, flattened to
    plain-scalar rows so the orchestration layer can cache, merge, and
    serialize them deterministically.  The load-invariant work — link
    capacities, the routed path pool, the kept-flow filter — is hoisted
    out of the loop and computed once for the whole curve.

    ``profile=True`` adds the fluid engine's per-phase wall-clock
    timings (``setup_s`` / ``fill_s`` / ``freeze_s``) to each row.
    Off by default: timings are nondeterministic, and default records
    must stay byte-identical across runs and processes.
    """
    rows: list[dict] = []
    setup: _ExperimentSetup | None = None
    for load in loads:
        if setup is None:
            # Validate with the first load point (preserving the
            # historical error order), then hoist the invariants.
            _validate_experiment_params(
                float(load), engine, demand_model, transport, workload
            )
            setup = _prepare_experiment(
                topology,
                design_aggregate_gbps,
                offered_traffic,
                1e-4,
                2e-4,
                capacity_mode,
                demand_model,
                demand_hour_utc,
                demand_seed,
                users_millions,
                workload,
            )
        res = run_udp_experiment(
            topology,
            design_aggregate_gbps,
            float(load),
            offered_traffic=offered_traffic,
            duration_s=duration_s,
            capacity_mode=capacity_mode,
            seed=seed,
            engine=engine,
            demand_model=demand_model,
            demand_hour_utc=demand_hour_utc,
            demand_seed=demand_seed,
            users_millions=users_millions,
            transport=transport,
            workload=workload,
            _setup=setup,
        )
        row = {
            "stage": "netsim",
            "engine": engine,
            "transport": transport,
            "demand_model": demand_model,
            "load": float(load),
            "mean_delay_ms": float(res.mean_delay_ms),
            "loss_rate": float(res.loss_rate),
            "max_link_utilization": float(res.max_link_utilization),
        }
        if profile and res.timings_s is not None:
            row.update(
                {key: float(value) for key, value in res.timings_s.items()}
            )
        rows.append(row)
    return rows


def hybrid_routing_graph(topology: Topology) -> nx.Graph:
    """The site-level hybrid graph the experiments route over.

    A thin export of :meth:`Topology.graph_view` — weights come from
    the same :meth:`Topology.hybrid_weight_matrix` behind the design
    objective, so routing here and the design-side routed paths share
    one hybrid model (and one graph kernel).
    """
    return topology.graph_view().to_networkx(weight="latency")


def run_failure_reroute_experiment(
    topology: Topology,
    design_aggregate_gbps: float,
    failed_link: tuple[int, int],
    fail_at_s: float = 0.3,
    reroute_delay_s: float = 0.3,
    duration_s: float = 1.2,
    input_rate_fraction: float = 0.5,
    rate_scale: float = 1e-3,
    min_flow_rate_fraction: float = 2e-4,
    seed: int = 0,
) -> FailureRerouteResult:
    """Fail one MW link mid-run, then reroute around it (§6.1).

    The paper argues weather failures are predictable minutes ahead, so
    "even slow, centralized management would suffice to anticipate
    failures and reroute".  This experiment quantifies the difference:
    packets black-hole between ``fail_at_s`` and the reroute, then flow
    loss returns to its pre-failure level on the recomputed paths.

    Rerouting goes through a :class:`RoutingCache` over the hybrid site
    graph: failing the link invalidates only the commodities routed
    across it, and replacement paths are computed per affected
    commodity — not via a fresh all-pairs recompute.
    """
    failed_link = (min(failed_link), max(failed_link))
    if failed_link not in topology.mw_links:
        raise ValueError(f"{failed_link} is not a built MW link")
    if not 0 < fail_at_s < fail_at_s + reroute_delay_s < duration_s:
        raise ValueError("need 0 < fail_at < fail_at + reroute_delay < duration")
    design = topology.design
    specs = build_edge_specs(topology, design_aggregate_gbps, rate_scale=rate_scale)

    routes = topology.routed_paths()
    offered_bps = (
        design_aggregate_gbps * 1e9 * rate_scale * input_rate_fraction
    )
    node_names = {s.a for s in specs} | {s.b for s in specs}
    kept, kept_mass = kept_flow_shares(
        routes, design.traffic, node_names, min_flow_rate_fraction
    )

    def crosses_failed(path: list[int]) -> bool:
        a, b = failed_link
        return any(
            (min(u, v), max(u, v)) == (a, b) for u, v in zip(path[:-1], path[1:])
        )

    # Post-failure routes must avoid the failed *site pair* entirely: in
    # the simulated network the MW link and the (hypothetical) direct
    # fiber between the same pair share one edge, and that edge is down.
    cache = RoutingCache(topology.graph_view(), weight="latency")
    cache.fail_link(*failed_link)
    new_routes: dict[tuple[int, int], list[int]] = {}
    for (s, t), _node_path, _h in kept:
        if not crosses_failed(routes[(s, t)]):
            continue
        try:
            new_routes[(s, t)] = cache.shortest_path(s, t)
        except nx.NetworkXNoPath:
            continue
    # The post-failure routing may use fiber edges the original routing
    # did not; add specs for any edge its paths traverse.
    seen = {(s.a, s.b) for s in specs} | {(s.b, s.a) for s in specs}
    for path in new_routes.values():
        for u, v in zip(path[:-1], path[1:]):
            key = (str(min(u, v)), str(max(u, v)))
            if key in seen:
                continue
            edge = (min(u, v), max(u, v))
            specs.append(
                EdgeSpec(
                    a=key[0],
                    b=key[1],
                    rate_bps=100e9 * rate_scale,
                    delay_s=design.fiber_km[edge] / SPEED_OF_LIGHT_KM_S,
                    queue_capacity=200,
                )
            )
            seen.add(key)
            seen.add((key[1], key[0]))
    sim = Simulator()
    net = Network.from_edges(sim, specs)
    monitor = FlowMonitor(sim)
    for link in net.links.values():
        monitor.watch_link(link)

    flows: dict[int, UdpFlow] = {}
    affected: list[tuple[int, tuple[int, int], float]] = []
    flow_id = 0
    for (s, t), node_path, h in kept:
        flow = UdpFlow(
            sim, net, monitor, flow_id, node_path,
            rate_bps=offered_bps * h / kept_mass,
            seed=seed * 7919 + flow_id,
        )
        flow.start()
        flows[flow_id] = flow
        if crosses_failed(routes[(s, t)]):
            affected.append((flow_id, (s, t), h))
        flow_id += 1

    # Window loss accounting via snapshots of monitor totals.
    snapshots: dict[str, tuple[int, int]] = {}

    def snap(label: str) -> None:
        snapshots[label] = (monitor.total_sent, monitor.total_dropped)

    def fail() -> None:
        snap("fail")
        for u, v in ((failed_link[0], failed_link[1]), (failed_link[1], failed_link[0])):
            key = (str(u), str(v))
            if key in net.links:
                net.links[key].set_down()

    next_flow_id = [flow_id]

    def reroute() -> None:
        snap("reroute")
        for fid, (s, t), h in affected:
            flows[fid].stop()
            if (s, t) not in new_routes:
                continue
            path = tuple(str(v) for v in new_routes[(s, t)])
            replacement = UdpFlow(
                sim, net, monitor, next_flow_id[0], path,
                rate_bps=offered_bps * h / kept_mass,
                seed=seed * 104729 + next_flow_id[0],
            )
            replacement.start(at=sim.now)
            next_flow_id[0] += 1

    sim.schedule_at(fail_at_s, fail)
    sim.schedule_at(fail_at_s + reroute_delay_s, reroute)
    sim.run(until=duration_s)
    snap("end")

    def window_loss(a: str, b: str) -> float:
        sent = snapshots[b][0] - snapshots[a][0]
        dropped = snapshots[b][1] - snapshots[a][1]
        return dropped / sent if sent > 0 else 0.0

    snapshots["start"] = (0, 0)
    return FailureRerouteResult(
        loss_before=window_loss("start", "fail"),
        loss_during_outage=window_loss("fail", "reroute"),
        loss_after_reroute=window_loss("reroute", "end"),
        flows_rerouted=len(affected),
    )
