"""Packet-level experiments over designed cISP topologies (§5, §6.4).

Bridges the design core and the packet simulator: a designed
:class:`~repro.core.topology.Topology` becomes a site-level network
(MW links with their real propagation delays, fiber edges with 1.5x
latency), demands become Poisson UDP flows, and the simulator measures
mean delay and loss as offered load sweeps from 10% to 100% of the
design capacity — the Fig 5 / Fig 11 methodology.

As in the paper, parallel tower hops are aggregated into one site-level
link ("we aggregate the bandwidth of parallel links and remove the
individual tower hops").  We additionally scale all rates down by a
constant factor so packet counts stay laptop-sized; utilizations, and
hence queueing behavior, are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.augmentation import route_link_demands, series_needed
from ..core.topology import Topology
from ..geo.coords import SPEED_OF_LIGHT_KM_S
from .engine import Simulator
from .flows import UdpFlow
from .monitor import FlowMonitor
from .network import EdgeSpec, Network


@dataclass(frozen=True)
class FailureRerouteResult:
    """Outcome of a link-failure + centralized-reroute experiment (§6.1).

    Attributes:
        loss_before: loss rate before the failure.
        loss_during_outage: loss rate between failure and reroute (the
            affected flows black-hole into the dead link).
        loss_after_reroute: loss rate once traffic is recomputed around
            the failure.
        flows_rerouted: how many flows crossed the failed link.
    """

    loss_before: float
    loss_during_outage: float
    loss_after_reroute: float
    flows_rerouted: int


@dataclass(frozen=True)
class UdpExperimentResult:
    """Aggregate outcome of one load point.

    Attributes:
        input_rate_fraction: offered load relative to design capacity.
        mean_delay_ms: mean end-to-end packet delay.
        loss_rate: network-wide packet loss fraction.
        max_link_utilization: highest per-link utilization observed.
    """

    input_rate_fraction: float
    mean_delay_ms: float
    loss_rate: float
    max_link_utilization: float


def build_edge_specs(
    topology: Topology,
    aggregate_gbps: float,
    rate_scale: float = 1e-4,
    queue_packets: int = 200,
    capacity_mode: str = "k2",
) -> list[EdgeSpec]:
    """Site-level edges for a provisioned topology.

    MW links get capacity k^2 Gbps where k covers their routed demand
    (``capacity_mode="k2"``, Step 3's provisioning), or their demand
    rounded up to whole-Gbps series (``"tight"`` — the leaner
    provisioning whose loss onset under load Fig 5 probes); fiber edges
    that the design's routing actually uses appear with generous
    capacity (fiber bandwidth is plentiful in the paper's model).
    ``rate_scale`` uniformly shrinks rates (and thus absolute packet
    counts); utilization at a given offered-load fraction is invariant
    to it.
    """
    if rate_scale <= 0:
        raise ValueError("rate scale must be positive")
    if capacity_mode not in ("k2", "tight"):
        raise ValueError("capacity_mode must be 'k2' or 'tight'")
    design = topology.design
    demands = route_link_demands(topology, aggregate_gbps)
    routes = topology.routed_paths()
    specs: dict[tuple[int, int], EdgeSpec] = {}
    for link, demand in demands.items():
        a, b = link
        if capacity_mode == "k2":
            k = series_needed(demand)
            capacity_gbps = max(k * k, 1)
        else:
            capacity_gbps = max(float(np.ceil(demand)), 1.0)
        capacity_bps = capacity_gbps * 1e9 * rate_scale
        delay_s = design.mw_km[a, b] / SPEED_OF_LIGHT_KM_S
        specs[link] = EdgeSpec(
            a=str(a),
            b=str(b),
            rate_bps=capacity_bps,
            delay_s=delay_s,
            queue_capacity=queue_packets,
        )
    # Fiber edges used by any route.
    mw = set(demands)
    for path in routes.values():
        for u, v in zip(path[:-1], path[1:]):
            edge = (min(u, v), max(u, v))
            if edge in mw or edge in specs:
                continue
            delay_s = design.fiber_km[edge] / SPEED_OF_LIGHT_KM_S
            specs[edge] = EdgeSpec(
                a=str(edge[0]),
                b=str(edge[1]),
                rate_bps=100e9 * rate_scale,
                delay_s=delay_s,
                queue_capacity=queue_packets,
            )
    return list(specs.values())


def run_udp_experiment(
    topology: Topology,
    design_aggregate_gbps: float,
    input_rate_fraction: float,
    offered_traffic: np.ndarray | None = None,
    duration_s: float = 1.0,
    rate_scale: float = 1e-4,
    min_flow_rate_fraction: float = 2e-4,
    capacity_mode: str = "k2",
    seed: int = 0,
) -> UdpExperimentResult:
    """One Fig 5 / Fig 11 load point.

    Args:
        topology: the designed (and implicitly provisioned) network.
        design_aggregate_gbps: the capacity the network was designed
            for; link capacities derive from routing *design* traffic.
        input_rate_fraction: offered aggregate load as a fraction of
            ``design_aggregate_gbps`` (the x-axis of Fig 5).
        offered_traffic: traffic matrix actually offered (defaults to
            the design matrix; perturbed/mixed matrices reproduce the
            deviation experiments).
        duration_s: simulated seconds.
        rate_scale: uniform rate shrink factor (see module docstring).
        min_flow_rate_fraction: demands below this fraction of the
            total are dropped (they contribute negligible load but
            dominate event count).
        seed: RNG seed for Poisson arrivals.
    """
    if not 0 < input_rate_fraction <= 1.5:
        raise ValueError("input rate fraction out of range")
    design = topology.design
    traffic = offered_traffic if offered_traffic is not None else design.traffic
    specs = build_edge_specs(
        topology,
        design_aggregate_gbps,
        rate_scale=rate_scale,
        capacity_mode=capacity_mode,
    )
    sim = Simulator()
    net = Network.from_edges(sim, specs)
    monitor = FlowMonitor(sim)
    for link in net.links.values():
        monitor.watch_link(link)

    routes = topology.routed_paths()
    total_h = np.triu(traffic, k=1).sum()
    offered_bps = (
        design_aggregate_gbps * 1e9 * rate_scale * input_rate_fraction
    )
    # Drop the long tail of tiny flows (they dominate event count but
    # not load), then renormalize the kept flows so the full offered
    # aggregate is actually injected.
    kept: list[tuple[tuple[int, int], tuple[str, ...], float]] = []
    kept_mass = 0.0
    for (s, t), path in routes.items():
        h = traffic[s, t] / total_h
        if h < min_flow_rate_fraction:
            continue
        node_path = tuple(str(v) for v in path)
        if any(name not in net.nodes for name in node_path):
            continue
        kept.append(((s, t), node_path, h))
        kept_mass += h
    if kept_mass <= 0:
        raise ValueError("no flows above the rate cutoff")
    flow_id = 0
    for (s, t), node_path, h in kept:
        rate = offered_bps * h / kept_mass
        if rate <= 0:
            continue
        flow = UdpFlow(
            sim,
            net,
            monitor,
            flow_id,
            node_path,
            rate_bps=rate,
            seed=seed * 100_003 + flow_id,
        )
        flow.start()
        flow_id += 1
    sim.run(until=duration_s)
    max_util = max(
        (link.utilization(duration_s) for link in net.links.values()), default=0.0
    )
    return UdpExperimentResult(
        input_rate_fraction=input_rate_fraction,
        mean_delay_ms=monitor.mean_delay_s() * 1000.0,
        loss_rate=monitor.overall_loss_rate(),
        max_link_utilization=max_util,
    )


def _routes_avoiding_pair(
    topology: Topology, banned: tuple[int, int]
) -> dict[tuple[int, int], list[int]]:
    """Shortest hybrid routes that never traverse the banned site pair."""
    from scipy.sparse.csgraph import shortest_path as _sp

    design = topology.design
    w = design.fiber_km.copy()
    for a, b in topology.mw_links:
        m = design.mw_km[a, b]
        if m < w[a, b]:
            w[a, b] = w[b, a] = m
    w[banned[0], banned[1]] = w[banned[1], banned[0]] = np.inf
    np.fill_diagonal(w, 0.0)
    _, predecessors = _sp(w, method="FW", directed=False, return_predecessors=True)
    n = design.n_sites
    out: dict[tuple[int, int], list[int]] = {}
    for s in range(n):
        for t in range(s + 1, n):
            if design.traffic[s, t] <= 0:
                continue
            path = [t]
            node = t
            ok = True
            while node != s:
                node = int(predecessors[s, node])
                if node < 0:
                    ok = False
                    break
                path.append(node)
            if ok:
                path.reverse()
                out[(s, t)] = path
    return out


def run_failure_reroute_experiment(
    topology: Topology,
    design_aggregate_gbps: float,
    failed_link: tuple[int, int],
    fail_at_s: float = 0.3,
    reroute_delay_s: float = 0.3,
    duration_s: float = 1.2,
    input_rate_fraction: float = 0.5,
    rate_scale: float = 1e-3,
    min_flow_rate_fraction: float = 2e-4,
    seed: int = 0,
) -> FailureRerouteResult:
    """Fail one MW link mid-run, then reroute around it (§6.1).

    The paper argues weather failures are predictable minutes ahead, so
    "even slow, centralized management would suffice to anticipate
    failures and reroute".  This experiment quantifies the difference:
    packets black-hole between ``fail_at_s`` and the reroute, then flow
    loss returns to its pre-failure level on the recomputed paths.
    """
    failed_link = (min(failed_link), max(failed_link))
    if failed_link not in topology.mw_links:
        raise ValueError(f"{failed_link} is not a built MW link")
    if not 0 < fail_at_s < fail_at_s + reroute_delay_s < duration_s:
        raise ValueError("need 0 < fail_at < fail_at + reroute_delay < duration")
    design = topology.design
    specs = build_edge_specs(topology, design_aggregate_gbps, rate_scale=rate_scale)
    reduced = Topology(
        design=design, mw_links=topology.mw_links - {failed_link}
    )
    # The post-failure routing may use fiber edges the original routing
    # did not; add specs for any edge its paths traverse.
    pre_routes = _routes_avoiding_pair(reduced, failed_link)
    seen = {(s.a, s.b) for s in specs} | {(s.b, s.a) for s in specs}
    for path in pre_routes.values():
        for u, v in zip(path[:-1], path[1:]):
            key = (str(min(u, v)), str(max(u, v)))
            if key in seen:
                continue
            edge = (min(u, v), max(u, v))
            specs.append(
                EdgeSpec(
                    a=key[0],
                    b=key[1],
                    rate_bps=100e9 * rate_scale,
                    delay_s=design.fiber_km[edge] / SPEED_OF_LIGHT_KM_S,
                    queue_capacity=200,
                )
            )
            seen.add(key)
            seen.add((key[1], key[0]))
    sim = Simulator()
    net = Network.from_edges(sim, specs)
    monitor = FlowMonitor(sim)
    for link in net.links.values():
        monitor.watch_link(link)

    routes = topology.routed_paths()
    # Post-failure routes must avoid the failed *site pair* entirely: in
    # the simulated network the MW link and the (hypothetical) direct
    # fiber between the same pair share one edge, and that edge is down.
    new_routes = pre_routes
    total_h = np.triu(design.traffic, k=1).sum()
    offered_bps = (
        design_aggregate_gbps * 1e9 * rate_scale * input_rate_fraction
    )
    kept: list[tuple[tuple[int, int], float]] = []
    kept_mass = 0.0
    for (s, t), _path in routes.items():
        h = design.traffic[s, t] / total_h
        if h >= min_flow_rate_fraction:
            kept.append(((s, t), h))
            kept_mass += h

    def crosses_failed(path: list[int]) -> bool:
        a, b = failed_link
        return any(
            (min(u, v), max(u, v)) == (a, b) for u, v in zip(path[:-1], path[1:])
        )

    flows: dict[int, UdpFlow] = {}
    affected: list[tuple[int, tuple[int, int], float]] = []
    flow_id = 0
    for (s, t), h in kept:
        path = tuple(str(v) for v in routes[(s, t)])
        flow = UdpFlow(
            sim, net, monitor, flow_id, path,
            rate_bps=offered_bps * h / kept_mass,
            seed=seed * 7919 + flow_id,
        )
        flow.start()
        flows[flow_id] = flow
        if crosses_failed(routes[(s, t)]):
            affected.append((flow_id, (s, t), h))
        flow_id += 1

    # Window loss accounting via snapshots of monitor totals.
    snapshots: dict[str, tuple[int, int]] = {}

    def snap(label: str) -> None:
        snapshots[label] = (monitor.total_sent, monitor.total_dropped)

    def fail() -> None:
        snap("fail")
        for u, v in ((failed_link[0], failed_link[1]), (failed_link[1], failed_link[0])):
            key = (str(u), str(v))
            if key in net.links:
                net.links[key].set_down()

    next_flow_id = [flow_id]

    def reroute() -> None:
        snap("reroute")
        for fid, (s, t), h in affected:
            flows[fid].stop()
            if (s, t) not in new_routes:
                continue
            path = tuple(str(v) for v in new_routes[(s, t)])
            replacement = UdpFlow(
                sim, net, monitor, next_flow_id[0], path,
                rate_bps=offered_bps * h / kept_mass,
                seed=seed * 104729 + next_flow_id[0],
            )
            replacement.start(at=sim.now)
            next_flow_id[0] += 1

    sim.schedule_at(fail_at_s, fail)
    sim.schedule_at(fail_at_s + reroute_delay_s, reroute)
    sim.run(until=duration_s)
    snap("end")

    def window_loss(a: str, b: str) -> float:
        sent = snapshots[b][0] - snapshots[a][0]
        dropped = snapshots[b][1] - snapshots[a][1]
        return dropped / sent if sent > 0 else 0.0

    snapshots["start"] = (0, 0)
    return FailureRerouteResult(
        loss_before=window_loss("start", "fail"),
        loss_during_outage=window_loss("fail", "reroute"),
        loss_after_reroute=window_loss("reroute", "end"),
        flows_rerouted=len(affected),
    )
