"""TCP macro-model for the fluid engine (Mathis square-root law).

The packet engine simulates TCP window dynamics per packet; at
million-flow scale the fluid path needs a closed-form stand-in.  The
Mathis et al. (1997) macroscopic model gives a long-lived TCP flow's
throughput from its loss rate and RTT::

    rate = C * MSS * 8 / (RTT * sqrt(p)),   C = sqrt(3/2)

:func:`solve_fluid_tcp` couples that law to the max-min fluid
allocation with a damped fixed point: each flow offers
``min(application_demand, mathis_rate(RTT, p))``, the fluid solver
allocates, and the unserved fraction of the offer feeds back as the
next iterate's loss estimate (floored at ``loss_floor``, the ambient
loss a real path always shows).  At the fixed point, uncongested flows
run at the Mathis rate for ambient loss (or their application demand,
whichever is smaller) and congested flows back off until their offer
matches what their bottleneck can carry.

RTTs are static: twice the fluid engine's one-way path latency
(propagation plus one serialization per hop); queueing delay is not
modelled, consistent with the rest of the fluid abstraction.
"""

from __future__ import annotations

import math

import numpy as np

from .fluid import FluidFlow, FluidResult, FluidTableResult, solve_fluid
from .flowtable import CommodityTable, FlowTable
from .network import EdgeSpec
from .tcp import DEFAULT_MSS_BYTES

#: The Mathis constant sqrt(3/2) (periodic-loss model, delayed ACKs off).
MATHIS_C = math.sqrt(1.5)

#: Ambient loss rate assumed on uncongested paths.  Also the floor the
#: fixed point can never drop below (p -> 0 would send the Mathis rate
#: to infinity).
DEFAULT_LOSS_FLOOR = 1e-4


def mathis_rate_bps(
    rtt_s: float,
    loss_rate: float,
    mss_bytes: int = DEFAULT_MSS_BYTES,
) -> float:
    """Mathis model throughput (bits/second) for one long-lived flow.

    Args:
        rtt_s: round-trip time, seconds (must be positive).
        loss_rate: packet loss probability in (0, 1].
        mss_bytes: maximum segment size.
    """
    if rtt_s <= 0:
        raise ValueError("RTT must be positive")
    if not 0 < loss_rate <= 1:
        raise ValueError("loss rate must be in (0, 1]")
    return MATHIS_C * mss_bytes * 8 / (rtt_s * math.sqrt(loss_rate))


def _solve_fluid_tcp_table(
    specs: list[EdgeSpec],
    table: CommodityTable,
    loss_floor: float,
    iterations: int,
    damping: float,
    tolerance: float,
    mss_bytes: int,
    packet_bytes: int,
    solver: str,
) -> FluidTableResult:
    """The Mathis fixed point over an array-native workload.

    Elementwise-identical to the ``FluidFlow``-list loop — same offer
    cap, same damped loss update, same convergence test — but each
    iterate re-demands the fixed :class:`CommodityTable` instead of
    materializing a fresh million-object flow list.
    """
    # One solve at the application demands fixes the (static) RTTs.
    base = solve_fluid(specs, table, packet_bytes=packet_bytes, solver=solver)
    rtt = 2.0 * base.latencies_s
    if np.any(rtt <= 0):
        raise ValueError("RTT must be positive")

    demand = table.demand_bps
    p = np.full(len(demand), loss_floor, dtype=float)
    mathis_num = MATHIS_C * mss_bytes * 8
    result = base
    for _ in range(iterations):
        offers = np.minimum(demand, mathis_num / (rtt * np.sqrt(p)))
        result = solve_fluid(
            specs,
            table.with_demands(offers),
            packet_bytes=packet_bytes,
            solver=solver,
        )
        offered = result.offered_bps
        with np.errstate(divide="ignore", invalid="ignore"):
            dropped = np.where(
                offered > 0, 1.0 - result.rates_bps / offered, 0.0
            )
        target = np.maximum(loss_floor, dropped)
        move = damping * (target - p)
        p += move
        if float(np.abs(move).max(initial=0.0)) < tolerance:
            break
    return result


def solve_fluid_tcp(
    specs: list[EdgeSpec],
    flows: list[FluidFlow] | FlowTable | CommodityTable,
    loss_floor: float = DEFAULT_LOSS_FLOOR,
    iterations: int = 25,
    damping: float = 0.5,
    tolerance: float = 1e-6,
    mss_bytes: int = DEFAULT_MSS_BYTES,
    packet_bytes: int = 500,
    solver: str = "vectorized",
) -> FluidResult | FluidTableResult:
    """Fluid allocation under the Mathis TCP macro-model.

    ``flows`` carry the *application* demand (an upper bound on what
    each flow would send); the realized offer is capped by the Mathis
    rate at the flow's current loss estimate, and the loss estimate
    relaxes toward the unserved fraction of the offer under ``damping``
    until it moves less than ``tolerance`` (or ``iterations`` runs out).

    ``flows`` may also be an array-native :class:`FlowTable` /
    :class:`CommodityTable` (returns a :class:`FluidTableResult`); the
    fixed point then iterates entirely in arrays and produces
    bit-identical rates to the object path.

    Returns the final result; its ``offered_bps`` are the converged TCP
    offers, so ``loss_rate`` reports the unserved share of what TCP
    actually attempted, not of the application demand.
    """
    if isinstance(flows, (FlowTable, CommodityTable)):
        if isinstance(flows, FlowTable):
            flows = flows.to_commodities()
        if flows.n_flows == 0:
            return solve_fluid(
                specs, flows, packet_bytes=packet_bytes, solver=solver
            )
        if not 0 < loss_floor < 1:
            raise ValueError("loss floor must be in (0, 1)")
        if not 0 < damping <= 1:
            raise ValueError("damping must be in (0, 1]")
        return _solve_fluid_tcp_table(
            specs,
            flows,
            loss_floor,
            iterations,
            damping,
            tolerance,
            mss_bytes,
            packet_bytes,
            solver,
        )
    if not flows:
        return solve_fluid(specs, flows, packet_bytes=packet_bytes, solver=solver)
    if not 0 < loss_floor < 1:
        raise ValueError("loss floor must be in (0, 1)")
    if not 0 < damping <= 1:
        raise ValueError("damping must be in (0, 1]")

    # One solve at the application demands fixes the (static) RTTs.
    base = solve_fluid(specs, flows, packet_bytes=packet_bytes, solver=solver)
    rtt = {fid: 2.0 * lat for fid, lat in base.latencies_s.items()}

    demand = {f.flow_id: f.offered_bps for f in flows}
    paths = {f.flow_id: f.path for f in flows}
    p = {fid: loss_floor for fid in demand}
    result = base
    for _ in range(iterations):
        tcp_flows = [
            FluidFlow(
                flow_id=fid,
                path=paths[fid],
                offered_bps=min(
                    demand[fid], mathis_rate_bps(rtt[fid], p[fid], mss_bytes)
                ),
            )
            for fid in demand
        ]
        result = solve_fluid(
            specs, tcp_flows, packet_bytes=packet_bytes, solver=solver
        )
        worst_move = 0.0
        for fid, offered in result.offered_bps.items():
            rate = result.rates_bps[fid]
            dropped = 1.0 - rate / offered if offered > 0 else 0.0
            target = max(loss_floor, dropped)
            move = damping * (target - p[fid])
            p[fid] += move
            worst_move = max(worst_move, abs(move))
        if worst_move < tolerance:
            break
    return result
