"""Event-driven packet-level network simulator (ns-3 substitute)."""

from .engine import Event, Simulator
from .experiments import (
    ENGINES,
    FailureRerouteResult,
    UdpExperimentResult,
    hybrid_routing_graph,
    run_failure_reroute_experiment,
    run_load_curve,
    build_edge_specs,
    run_udp_experiment,
)
from .fluid import FluidFlow, FluidResult, max_min_rates, solve_fluid
from .flows import DEFAULT_UDP_PACKET_BYTES, UdpFlow
from .links import DEFAULT_QUEUE_PACKETS, Link
from .monitor import FlowMonitor, FlowStats, QueueSampler
from .network import EdgeSpec, Network
from .nodes import Node
from .packets import Packet
from .routing import (
    RoutingCache,
    k_shortest_paths,
    mean_route_latency,
    min_max_utilization_routing,
    shortest_path_routing,
    throughput_optimal_routing,
)
from .tcp import DEFAULT_MSS_BYTES, TcpFlow, TcpStats

__all__ = [
    "ENGINES",
    "Event",
    "FluidFlow",
    "FluidResult",
    "RoutingCache",
    "Simulator",
    "hybrid_routing_graph",
    "max_min_rates",
    "solve_fluid",
    "FailureRerouteResult",
    "UdpExperimentResult",
    "run_failure_reroute_experiment",
    "run_load_curve",
    "build_edge_specs",
    "run_udp_experiment",
    "DEFAULT_UDP_PACKET_BYTES",
    "UdpFlow",
    "DEFAULT_QUEUE_PACKETS",
    "Link",
    "FlowMonitor",
    "FlowStats",
    "QueueSampler",
    "EdgeSpec",
    "Network",
    "Node",
    "Packet",
    "k_shortest_paths",
    "mean_route_latency",
    "min_max_utilization_routing",
    "shortest_path_routing",
    "throughput_optimal_routing",
    "DEFAULT_MSS_BYTES",
    "TcpFlow",
    "TcpStats",
]
