"""Event-driven packet-level network simulator (ns-3 substitute)."""

from .engine import Event, Simulator
from .experiments import (
    DEMAND_MODELS,
    ENGINES,
    TRANSPORTS,
    WORKLOADS,
    FailureRerouteResult,
    UdpExperimentResult,
    hybrid_routing_graph,
    kept_flow_table,
    run_failure_reroute_experiment,
    run_load_curve,
    build_edge_specs,
    run_udp_experiment,
)
from .fluid import (
    SOLVERS,
    FluidFlow,
    FluidResult,
    FluidTableResult,
    aggregate_capacities,
    flows_from_table,
    max_min_rates,
    max_min_rates_table,
    max_min_rates_vectorized,
    solve_fluid,
)
from .flowtable import CommodityTable, FlowTable, PathPool
from .tcpmodel import MATHIS_C, mathis_rate_bps, solve_fluid_tcp
from .flows import DEFAULT_UDP_PACKET_BYTES, UdpFlow
from .links import DEFAULT_QUEUE_PACKETS, Link
from .monitor import FlowMonitor, FlowStats, QueueSampler
from .network import EdgeSpec, Network
from .nodes import Node
from .packets import Packet
from .routing import (
    RoutingCache,
    k_shortest_paths,
    mean_route_latency,
    min_max_utilization_routing,
    shortest_path_routing,
    throughput_optimal_routing,
)
from .tcp import DEFAULT_MSS_BYTES, TcpFlow, TcpStats

__all__ = [
    "DEMAND_MODELS",
    "ENGINES",
    "MATHIS_C",
    "SOLVERS",
    "TRANSPORTS",
    "WORKLOADS",
    "CommodityTable",
    "Event",
    "FlowTable",
    "FluidFlow",
    "FluidResult",
    "FluidTableResult",
    "PathPool",
    "RoutingCache",
    "Simulator",
    "aggregate_capacities",
    "flows_from_table",
    "hybrid_routing_graph",
    "kept_flow_table",
    "mathis_rate_bps",
    "max_min_rates",
    "max_min_rates_table",
    "max_min_rates_vectorized",
    "solve_fluid",
    "solve_fluid_tcp",
    "FailureRerouteResult",
    "UdpExperimentResult",
    "run_failure_reroute_experiment",
    "run_load_curve",
    "build_edge_specs",
    "run_udp_experiment",
    "DEFAULT_UDP_PACKET_BYTES",
    "UdpFlow",
    "DEFAULT_QUEUE_PACKETS",
    "Link",
    "FlowMonitor",
    "FlowStats",
    "QueueSampler",
    "EdgeSpec",
    "Network",
    "Node",
    "Packet",
    "k_shortest_paths",
    "mean_route_latency",
    "min_max_utilization_routing",
    "shortest_path_routing",
    "throughput_optimal_routing",
    "DEFAULT_MSS_BYTES",
    "TcpFlow",
    "TcpStats",
]
