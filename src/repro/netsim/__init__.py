"""Event-driven packet-level network simulator (ns-3 substitute)."""

from .engine import Simulator
from .experiments import (
    FailureRerouteResult,
    UdpExperimentResult,
    run_failure_reroute_experiment,
    build_edge_specs,
    run_udp_experiment,
)
from .flows import DEFAULT_UDP_PACKET_BYTES, UdpFlow
from .links import DEFAULT_QUEUE_PACKETS, Link
from .monitor import FlowMonitor, FlowStats, QueueSampler
from .network import EdgeSpec, Network
from .nodes import Node
from .packets import Packet
from .routing import (
    k_shortest_paths,
    mean_route_latency,
    min_max_utilization_routing,
    shortest_path_routing,
    throughput_optimal_routing,
)
from .tcp import DEFAULT_MSS_BYTES, TcpFlow, TcpStats

__all__ = [
    "Simulator",
    "FailureRerouteResult",
    "UdpExperimentResult",
    "run_failure_reroute_experiment",
    "build_edge_specs",
    "run_udp_experiment",
    "DEFAULT_UDP_PACKET_BYTES",
    "UdpFlow",
    "DEFAULT_QUEUE_PACKETS",
    "Link",
    "FlowMonitor",
    "FlowStats",
    "QueueSampler",
    "EdgeSpec",
    "Network",
    "Node",
    "Packet",
    "k_shortest_paths",
    "mean_route_latency",
    "min_max_utilization_routing",
    "shortest_path_routing",
    "throughput_optimal_routing",
    "DEFAULT_MSS_BYTES",
    "TcpFlow",
    "TcpStats",
]
