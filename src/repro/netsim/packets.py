"""Packet representation for the event-driven simulator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """A simulated packet.

    Slotted: millions of instances are created per run, so attribute
    storage and access go through ``__slots__`` rather than a dict.

    Attributes:
        flow_id: owning flow identifier.
        src / dst: endpoint node names.
        size_bytes: wire size.
        path: node-name sequence from src to dst (source routing).
        created_at: virtual time of creation.
        seq: per-flow sequence number (used by TCP).
        is_ack: True for TCP acknowledgment packets.
        ack_seq: cumulative ACK sequence (TCP).
        packet_id: globally unique id.
        hop_index: current position along ``path``.
    """

    flow_id: int
    src: str
    dst: str
    size_bytes: int
    path: tuple[str, ...]
    created_at: float
    seq: int = 0
    is_ack: bool = False
    ack_seq: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    hop_index: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("packet size must be positive")
        if len(self.path) < 2:
            raise ValueError("path needs at least src and dst")
        if self.path[0] != self.src or self.path[-1] != self.dst:
            raise ValueError("path endpoints must match src/dst")

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8

    def next_hop(self) -> str | None:
        """The node after the current one, or None at the destination."""
        if self.hop_index + 1 < len(self.path):
            return self.path[self.hop_index + 1]
        return None
