"""UDP traffic sources (paper §5: uniform 500-byte UDP packets)."""

from __future__ import annotations

import numpy as np

from .engine import Simulator
from .monitor import FlowMonitor
from .network import Network
from .packets import Packet

#: The paper's uniform UDP packet size.
DEFAULT_UDP_PACKET_BYTES = 500


class UdpFlow:
    """A Poisson (or CBR) packet source along a fixed path.

    Attributes:
        flow_id: unique id (used for monitor bookkeeping).
        path: node names from source to destination.
        rate_bps: mean offered load.
        packet_bytes: wire size per packet.
        poisson: exponential inter-arrivals if True, constant otherwise.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        monitor: FlowMonitor,
        flow_id: int,
        path: tuple[str, ...],
        rate_bps: float,
        packet_bytes: int = DEFAULT_UDP_PACKET_BYTES,
        poisson: bool = True,
        seed: int = 0,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if len(path) < 2:
            raise ValueError("path needs at least two nodes")
        self.sim = sim
        self.network = network
        self.monitor = monitor
        self.flow_id = flow_id
        self.path = tuple(path)
        self.rate_bps = rate_bps
        self.packet_bytes = packet_bytes
        self.poisson = poisson
        self._rng = np.random.default_rng(seed)
        self._interval = packet_bytes * 8 / rate_bps
        self._stopped = False
        network.nodes[self.path[-1]].on_deliver_flow(
            flow_id, monitor.record_delivered
        )

    def start(self, at: float = 0.0) -> None:
        """Begin generating packets at virtual time ``at``."""
        self.sim.schedule_at(at + self._next_gap(), self._emit)

    def stop(self) -> None:
        self._stopped = True

    def _next_gap(self) -> float:
        if self.poisson:
            return float(self._rng.exponential(self._interval))
        return self._interval

    def _emit(self) -> None:
        if self._stopped:
            return
        packet = Packet(
            flow_id=self.flow_id,
            src=self.path[0],
            dst=self.path[-1],
            size_bytes=self.packet_bytes,
            path=self.path,
            created_at=self.sim.now,
        )
        self.monitor.record_sent(packet)
        self.network.nodes[self.path[0]].inject(packet)
        self.sim.schedule(self._next_gap(), self._emit)
