"""UDP traffic sources (paper §5: uniform 500-byte UDP packets)."""

from __future__ import annotations

import numpy as np

from .engine import Simulator
from .monitor import FlowMonitor
from .network import Network
from .packets import Packet

#: The paper's uniform UDP packet size.
DEFAULT_UDP_PACKET_BYTES = 500

#: Inter-arrival gaps drawn per RNG round-trip (see ``_next_gap``).
GAP_CHUNK = 256


class UdpFlow:
    """A Poisson (or CBR) packet source along a fixed path.

    Attributes:
        flow_id: unique id (used for monitor bookkeeping).
        path: node names from source to destination.
        rate_bps: mean offered load.
        packet_bytes: wire size per packet.
        poisson: exponential inter-arrivals if True, constant otherwise.
    """

    __slots__ = (
        "sim",
        "network",
        "monitor",
        "flow_id",
        "path",
        "rate_bps",
        "packet_bytes",
        "poisson",
        "_rng",
        "_interval",
        "_stopped",
        "_gaps",
        "_gap_index",
        "_inject",
        "_stats",
    )

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        monitor: FlowMonitor,
        flow_id: int,
        path: tuple[str, ...],
        rate_bps: float,
        packet_bytes: int = DEFAULT_UDP_PACKET_BYTES,
        poisson: bool = True,
        seed: int = 0,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if len(path) < 2:
            raise ValueError("path needs at least two nodes")
        self.sim = sim
        self.network = network
        self.monitor = monitor
        self.flow_id = flow_id
        self.path = tuple(path)
        self.rate_bps = rate_bps
        self.packet_bytes = packet_bytes
        self.poisson = poisson
        self._rng = np.random.default_rng(seed)
        self._interval = packet_bytes * 8 / rate_bps
        self._stopped = False
        self._gaps: list[float] = []
        self._gap_index = 0
        self._inject = network.nodes[self.path[0]].inject
        self._stats = monitor.stats_for(flow_id)
        network.nodes[self.path[-1]].on_deliver_flow(
            flow_id, monitor.record_delivered
        )

    def start(self, at: float = 0.0) -> None:
        """Begin generating packets at virtual time ``at``."""
        self.sim.post_at(at + self._next_gap(), self._emit)

    def stop(self) -> None:
        self._stopped = True

    def _next_gap(self) -> float:
        if not self.poisson:
            return self._interval
        index = self._gap_index
        gaps = self._gaps
        if index >= len(gaps):
            # Chunked draws produce the identical variate stream as
            # one-at-a-time calls on the same Generator, without the
            # per-call numpy dispatch cost.
            gaps = self._gaps = self._rng.exponential(
                self._interval, GAP_CHUNK
            ).tolist()
            index = 0
        self._gap_index = index + 1
        return gaps[index]

    def _emit(self) -> None:
        if self._stopped:
            return
        path = self.path
        packet = Packet(
            self.flow_id, path[0], path[-1], self.packet_bytes, path,
            self.sim.now,
        )
        self._stats.sent += 1
        self._inject(packet)
        self.sim.post(self._next_gap(), self._emit)
