"""Per-flow and per-link measurement (FlowMonitor equivalent, §5).

The paper uses ns-3's FlowMonitor for delay and loss and adds a custom
module for link utilization.  :class:`FlowMonitor` aggregates per-flow
sent/received counts and delay statistics; :class:`QueueSampler` records
queue occupancy over time for percentile reporting (Fig 6a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .engine import Simulator
from .links import Link
from .packets import Packet


@dataclass(slots=True)
class FlowStats:
    """Counters for one flow."""

    sent: int = 0
    received: int = 0
    dropped: int = 0
    bytes_received: int = 0
    delays: list[float] = field(default_factory=list)

    @property
    def loss_rate(self) -> float:
        return self.dropped / self.sent if self.sent else 0.0

    @property
    def mean_delay_s(self) -> float:
        return float(np.mean(self.delays)) if self.delays else 0.0

    def throughput_bps(self, elapsed_s: float) -> float:
        """Delivered goodput over ``elapsed_s`` seconds."""
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        return self.bytes_received * 8 / elapsed_s


class FlowMonitor:
    """Network-wide delay/loss bookkeeping."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.flows: dict[int, FlowStats] = {}

    def stats_for(self, flow_id: int) -> FlowStats:
        """The (mutable) stats record for one flow, created on demand.

        Hot-path sources (UDP flows at millions of packets per run) may
        hold this record and bump its counters directly instead of
        calling :meth:`record_sent` per packet; the record is the same
        object either way.
        """
        stats = self.flows.get(flow_id)
        if stats is None:
            stats = self.flows[flow_id] = FlowStats()
        return stats

    # Backward-compatible internal alias.
    _stats = stats_for

    def record_sent(self, packet: Packet) -> None:
        self._stats(packet.flow_id).sent += 1

    def record_delivered(self, packet: Packet) -> None:
        stats = self._stats(packet.flow_id)
        stats.received += 1
        stats.bytes_received += packet.size_bytes
        stats.delays.append(self.sim.now - packet.created_at)

    def record_dropped(self, packet: Packet) -> None:
        self._stats(packet.flow_id).dropped += 1

    def watch_link(self, link: Link) -> None:
        """Count this link's drops against the owning flows."""
        link.on_drop(self.record_dropped)

    # -- aggregates ------------------------------------------------------
    @property
    def total_sent(self) -> int:
        return sum(s.sent for s in self.flows.values())

    @property
    def total_received(self) -> int:
        return sum(s.received for s in self.flows.values())

    @property
    def total_dropped(self) -> int:
        return sum(s.dropped for s in self.flows.values())

    def overall_loss_rate(self) -> float:
        sent = self.total_sent
        return self.total_dropped / sent if sent else 0.0

    def mean_delay_s(self) -> float:
        all_delays = [d for s in self.flows.values() for d in s.delays]
        return float(np.mean(all_delays)) if all_delays else 0.0

    def mean_flow_throughput_bps(self, elapsed_s: float) -> float:
        """Mean per-flow delivered goodput (the fluid-parity metric)."""
        if not self.flows:
            return 0.0
        return float(
            np.mean([s.throughput_bps(elapsed_s) for s in self.flows.values()])
        )

    def delay_percentile_s(self, q: float) -> float:
        all_delays = [d for s in self.flows.values() for d in s.delays]
        return float(np.percentile(all_delays, q)) if all_delays else 0.0


class QueueSampler:
    """Periodic queue-occupancy sampling for a link."""

    def __init__(self, sim: Simulator, link: Link, interval_s: float = 0.01) -> None:
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.link = link
        self.interval_s = interval_s
        self.samples: list[int] = []
        self._armed = False

    def start(self) -> None:
        if not self._armed:
            self._armed = True
            self.sim.post(0.0, self._tick)

    def _tick(self) -> None:
        self.samples.append(self.link.queue_length)
        self.sim.post(self.interval_s, self._tick)

    def percentile(self, q: float) -> float:
        if not self.samples:
            return 0.0
        return float(np.percentile(self.samples, q))

    def median(self) -> float:
        return self.percentile(50.0)
