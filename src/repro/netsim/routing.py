"""Routing schemes (paper §5).

Three schemes over a site-level hybrid topology:

* ``shortest_path`` — latency-minimal routes (the design target);
* ``min_max_utilization`` — the ISP-style scheme that spreads load to
  minimize the maximum link utilization [Kandula et al.];
* ``throughput_optimal`` — maximize the concurrent-flow scaling factor.

The LP-based schemes choose, per commodity, fractions over its k
shortest paths; flows are unsplittable at packet level, so each
commodity is pinned to its highest-fraction path (the paper's flows are
unsplittable too).  Both LPs are solved with HiGHS via scipy.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from scipy.optimize import linprog

from ..graph import GraphView


def k_shortest_paths(
    graph: nx.Graph, source, target, k: int, weight: str = "latency"
) -> list[list]:
    """Up to ``k`` loop-free shortest paths by Yen's algorithm."""
    gen = nx.shortest_simple_paths(graph, source, target, weight=weight)
    paths = []
    for path in gen:
        paths.append(path)
        if len(paths) >= k:
            break
    return paths


def shortest_path_routing(
    graph: nx.Graph, demands: dict[tuple, float], weight: str = "latency"
) -> dict[tuple, list]:
    """Latency-shortest route per commodity."""
    return {
        (s, t): nx.shortest_path(graph, s, t, weight=weight)
        for (s, t) in demands
    }


def _path_lp(
    graph: nx.Graph,
    demands: dict[tuple, float],
    k: int,
    objective: str,
    cache: "RoutingCache | None" = None,
) -> dict[tuple, list]:
    """Shared LP for min-max-utilization and throughput-optimal routing.

    Variables: per-commodity path fractions x_{k,p} plus one auxiliary
    (the max utilization u, minimized; or the concurrent-flow factor
    lambda, maximized).  Passing a :class:`RoutingCache` reuses
    k-shortest-path enumerations across repeated solves (sweeps,
    failure loops) — Yen's algorithm dominates LP setup cost.
    """
    commodities = sorted(demands)
    if cache is not None:
        if cache.graph is not graph:
            raise ValueError("cache must be built over the same graph object")
        paths: dict[tuple, list[list]] = {
            c: cache.k_shortest(c[0], c[1], k) for c in commodities
        }
    else:
        paths = {c: k_shortest_paths(graph, c[0], c[1], k) for c in commodities}
    edges = list(graph.edges())
    edge_index = {}
    for idx, (u, v) in enumerate(edges):
        edge_index[(u, v)] = idx
        edge_index[(v, u)] = idx
    n_edges = len(edges)
    capacities = np.array(
        [graph[u][v].get("capacity", np.inf) for u, v in edges], dtype=float
    )

    var_offsets: dict[tuple, int] = {}
    n_vars = 0
    for c in commodities:
        var_offsets[c] = n_vars
        n_vars += len(paths[c])
    aux = n_vars  # u (min-max) or lambda (throughput)
    n_vars += 1

    # Capacity rows: sum of demand-weighted fractions over paths using
    # the edge, minus capacity * u <= 0  (or <= capacity for lambda).
    rows, cols, vals = [], [], []
    for c in commodities:
        demand = demands[c]
        for p_idx, path in enumerate(paths[c]):
            var = var_offsets[c] + p_idx
            for u, v in zip(path[:-1], path[1:]):
                rows.append(edge_index[(u, v)])
                cols.append(var)
                vals.append(demand)
    a_ub = np.zeros((n_edges, n_vars))
    for r, cc, vv in zip(rows, cols, vals):
        a_ub[r, cc] += vv
    if objective == "min_max_util":
        a_ub[:, aux] = -capacities
        b_ub = np.zeros(n_edges)
        c_vec = np.zeros(n_vars)
        c_vec[aux] = 1.0  # minimize u
        # Fractions per commodity sum to exactly 1.
        lam_coupling = 1.0
    elif objective == "throughput":
        b_ub = capacities.copy()
        c_vec = np.zeros(n_vars)
        c_vec[aux] = -1.0  # maximize lambda
        lam_coupling = None
    else:
        raise ValueError(f"unknown objective {objective!r}")

    a_eq = np.zeros((len(commodities), n_vars))
    b_eq = np.ones(len(commodities))
    for row, c in enumerate(commodities):
        for p_idx in range(len(paths[c])):
            a_eq[row, var_offsets[c] + p_idx] = 1.0
        if lam_coupling is None:
            # Fractions sum to lambda instead of 1.
            a_eq[row, aux] = -1.0
            b_eq[row] = 0.0

    bounds = [(0.0, None)] * n_vars
    result = linprog(
        c=c_vec, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if result.x is None:
        raise RuntimeError(f"routing LP failed: {result.message}")

    routing: dict[tuple, list] = {}
    for c in commodities:
        fractions = result.x[var_offsets[c] : var_offsets[c] + len(paths[c])]
        routing[c] = paths[c][int(np.argmax(fractions))]
    return routing


def min_max_utilization_routing(
    graph: nx.Graph,
    demands: dict[tuple, float],
    k: int = 4,
    cache: "RoutingCache | None" = None,
) -> dict[tuple, list]:
    """Route to minimize the maximum link utilization."""
    return _path_lp(graph, demands, k, "min_max_util", cache=cache)


def throughput_optimal_routing(
    graph: nx.Graph,
    demands: dict[tuple, float],
    k: int = 4,
    cache: "RoutingCache | None" = None,
) -> dict[tuple, list]:
    """Route to maximize the concurrent-flow scaling factor."""
    return _path_lp(graph, demands, k, "throughput", cache=cache)


class RoutingCache:
    """Memoized shortest-path / k-shortest-path queries over one graph.

    Entries are invalidated eagerly on mutation: a reverse index from
    edges to the cache keys whose paths traverse them lets
    :meth:`fail_link` drop *only* the commodities actually routed over
    the failed link — every other commodity stays warm.  Restoring a
    link can shorten any path, so :meth:`restore_link` flushes the
    whole cache.  :attr:`signature` exposes a monotonic version of the
    cached graph state so external consumers (sweep drivers, tests)
    can detect that mutations occurred.

    Mutations must go through :meth:`fail_link` / :meth:`restore_link`;
    editing ``graph`` directly bypasses invalidation and can leave
    stale paths being served.

    The cache can be built directly over a
    :class:`~repro.graph.GraphView` (the shared graph kernel's
    versioned handle): the view is exported once to the networkx form
    Yen's algorithm needs and kept on :attr:`view`, and
    :meth:`fail_link` / :meth:`restore_link` mirror their mutations
    into it — the view's weights and version always describe the
    cache's current graph state.
    """

    def __init__(self, graph: nx.Graph | GraphView, weight: str = "latency") -> None:
        if isinstance(graph, GraphView):
            self.view: GraphView | None = graph
            graph = graph.to_networkx(weight=weight)
        else:
            self.view = None
        self.graph = graph
        self.weight = weight
        self._version = 0
        self._cache: dict[tuple, list] = {}
        self._edge_keys: dict[tuple, set[tuple]] = {}
        self._key_edges: dict[tuple, set[tuple]] = {}
        self._saved_edges: dict[tuple, dict] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @property
    def signature(self) -> tuple[int, int, int]:
        """(version, n_nodes, n_edges) identifying the cached graph state."""
        return (
            self._version,
            self.graph.number_of_nodes(),
            self.graph.number_of_edges(),
        )

    @staticmethod
    def _edge_key(u, v) -> tuple:
        return (u, v) if not v < u else (v, u)

    def _index(self, key: tuple, path: list) -> None:
        key_edges = self._key_edges.setdefault(key, set())
        for u, v in zip(path[:-1], path[1:]):
            edge = self._edge_key(u, v)
            key_edges.add(edge)
            self._edge_keys.setdefault(edge, set()).add(key)

    def _drop(self, key: tuple) -> bool:
        """Remove one cache entry and fully unlink it from the index."""
        if self._cache.pop(key, None) is None:
            return False
        for edge in self._key_edges.pop(key, ()):
            keys = self._edge_keys.get(edge)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._edge_keys[edge]
        return True

    def shortest_path(self, source, target) -> list:
        """Cached latency-shortest path (raises ``NetworkXNoPath``)."""
        key = ("sp", source, target)
        path = self._cache.get(key)
        if path is not None:
            self.hits += 1
            return path
        self.misses += 1
        path = nx.shortest_path(self.graph, source, target, weight=self.weight)
        self._cache[key] = path
        self._index(key, path)
        return path

    def k_shortest(self, source, target, k: int) -> list[list]:
        """Cached Yen k-shortest loop-free paths."""
        key = ("ksp", source, target, k)
        paths = self._cache.get(key)
        if paths is not None:
            self.hits += 1
            return paths
        self.misses += 1
        paths = k_shortest_paths(self.graph, source, target, k, self.weight)
        self._cache[key] = paths
        for path in paths:
            self._index(key, path)
        return paths

    def fail_link(self, u, v) -> int:
        """Remove an edge; drop only the entries whose paths used it.

        Returns the number of cache entries invalidated.  The edge's
        attributes are saved for :meth:`restore_link`.
        """
        if not self.graph.has_edge(u, v):
            raise KeyError(f"no edge {u!r}-{v!r} in the routing graph")
        edge = self._edge_key(u, v)
        self._saved_edges[edge] = dict(self.graph[u][v])
        self.graph.remove_edge(u, v)
        if self.view is not None:
            self.view.remove_edge(u, v)
        self._version += 1
        dropped = 0
        for key in list(self._edge_keys.get(edge, ())):
            if self._drop(key):
                dropped += 1
        self._edge_keys.pop(edge, None)
        self.invalidations += dropped
        return dropped

    def restore_link(self, u, v, **attrs) -> None:
        """Re-add a failed edge; any path may improve, so flush all.

        The edge's attributes come from the ``fail_link`` snapshot,
        overlaid with ``attrs``.  Restoring an edge that was never
        failed (and giving no attributes) would silently add a
        weightless edge — networkx treats a missing weight as 1 — so
        that is an error instead.
        """
        saved = self._saved_edges.pop(self._edge_key(u, v), None)
        if saved is None and not attrs:
            raise ValueError(
                f"edge ({u}, {v}) has no saved attributes to restore "
                "(not failed via fail_link?); pass explicit attributes"
            )
        saved = dict(saved or {})
        saved.update(attrs)
        self.graph.add_edge(u, v, **saved)
        if self.view is not None and self.weight in saved:
            self.view.set_edge(u, v, float(saved[self.weight]))
        self._version += 1
        self.invalidations += len(self._cache)
        self._cache.clear()
        self._edge_keys.clear()
        self._key_edges.clear()


def mean_route_latency(
    graph: nx.Graph,
    routing: dict[tuple, list],
    demands: dict[tuple, float],
    weight: str = "latency",
) -> float:
    """Demand-weighted mean route latency of a routing."""
    total_d = sum(demands.values())
    if total_d <= 0:
        raise ValueError("no demand")
    acc = 0.0
    for c, path in routing.items():
        lat = sum(graph[u][v][weight] for u, v in zip(path[:-1], path[1:]))
        acc += demands[c] * lat
    return acc / total_d
