"""A simplified TCP with optional pacing (paper §5, "speed mismatch").

Models what Fig 6 needs and no more: window-limited transfer of a fixed
number of bytes with slow start, congestion avoidance, triple-duplicate
fast retransmit, a coarse retransmission timeout — and, crucially, the
choice between *burst* transmission (a window opens and every eligible
packet is shoved onto the first link back-to-back) and *paced*
transmission (packets are clocked out at cwnd per smoothed RTT).  The
paper shows pacing eliminates the persistent queue buildup that a 10G
edge feeding a 100M core otherwise causes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .engine import Event, Simulator
from .monitor import FlowMonitor
from .network import Network
from .packets import Packet

#: Sender MSS, bytes (standard Ethernet payload as in §5's 1500 B frames).
DEFAULT_MSS_BYTES = 1500

#: ACK wire size, bytes.
ACK_BYTES = 40


@dataclass
class TcpStats:
    """Completion metrics for one TCP flow."""

    flow_id: int
    start_time: float
    completion_time: float | None = None
    retransmits: int = 0
    timeouts: int = 0

    @property
    def fct_s(self) -> float | None:
        """Flow completion time, seconds (None while running)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.start_time


class TcpFlow:
    """One fixed-size TCP transfer along a fixed forward/reverse path."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        monitor: FlowMonitor,
        flow_id: int,
        path: tuple[str, ...],
        total_bytes: int,
        mss_bytes: int = DEFAULT_MSS_BYTES,
        initial_cwnd: int = 10,
        rwnd_packets: int = 42,
        pacing: bool = False,
        min_rto_s: float = 0.2,
    ) -> None:
        if total_bytes <= 0:
            raise ValueError("transfer size must be positive")
        if len(path) < 2:
            raise ValueError("path needs at least two nodes")
        self.sim = sim
        self.network = network
        self.monitor = monitor
        self.flow_id = flow_id
        self.path = tuple(path)
        self.reverse_path = tuple(reversed(path))
        self.mss = mss_bytes
        self.n_packets = max(1, -(-total_bytes // mss_bytes))
        self.pacing = pacing
        self.min_rto_s = min_rto_s

        self.cwnd = float(initial_cwnd)
        self.rwnd = max(int(rwnd_packets), 1)
        self.ssthresh = float("inf")
        self.next_seq = 0  # next new sequence to send
        self.highest_acked = -1  # cumulative
        self.dup_acks = 0
        self.srtt: float | None = None
        self.stats = TcpStats(flow_id=flow_id, start_time=0.0)
        self._send_times: dict[int, float] = {}
        self._retransmitted: set[int] = set()
        self._last_rtt: float | None = None
        self._done = False
        self._pacing_timer_armed = False
        self._rto_event: Event | None = None
        self._rcv_seen: set[int] = set()
        self._rcv_next = 0

        # Receive ACKs at the source; generate ACKs at the destination.
        # Both are keyed by flow id so shared endpoints stay O(1).
        network.nodes[self.path[0]].on_deliver_flow(flow_id, self._on_packet_at_src)
        network.nodes[self.path[-1]].on_deliver_flow(flow_id, self._on_packet_at_dst)

    # -- sending ---------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        def _go() -> None:
            self.stats.start_time = self.sim.now
            self._try_send()
            self._arm_rto()

        self.sim.post_at(at, _go)

    @property
    def inflight(self) -> int:
        return self.next_seq - (self.highest_acked + 1)

    @property
    def effective_window(self) -> int:
        """Sender window: congestion window capped by the receive window."""
        return min(int(self.cwnd), self.rwnd)

    def _try_send(self) -> None:
        if self._done:
            return
        if self.pacing:
            if not self._pacing_timer_armed:
                self._pace_tick()
        else:
            while (
                self.inflight < self.effective_window
                and self.next_seq < self.n_packets
            ):
                self._send_seq(self.next_seq)
                self.next_seq += 1

    def _pace_tick(self) -> None:
        if self._done:
            self._pacing_timer_armed = False
            return
        if self.inflight < self.effective_window and self.next_seq < self.n_packets:
            self._send_seq(self.next_seq)
            self.next_seq += 1
        if self.next_seq < self.n_packets or self.inflight > 0:
            self._pacing_timer_armed = True
            # Pace against the *latest* RTT sample: queueing feedback
            # reaches the pacer within one round trip, which is what
            # keeps the standing queue near zero.
            candidates = [r for r in (self.srtt, self._last_rtt) if r is not None]
            rtt = max(candidates) if candidates else 0.02
            interval = rtt / max(self.effective_window, 1.0)
            self.sim.post(interval, self._pace_tick)
        else:
            self._pacing_timer_armed = False

    def _send_seq(self, seq: int, retransmit: bool = False) -> None:
        packet = Packet(
            flow_id=self.flow_id,
            src=self.path[0],
            dst=self.path[-1],
            size_bytes=self.mss,
            path=self.path,
            created_at=self.sim.now,
            seq=seq,
        )
        if retransmit:
            self.stats.retransmits += 1
            self._retransmitted.add(seq)
        elif seq not in self._send_times:
            self._send_times[seq] = self.sim.now
        self.monitor.record_sent(packet)
        self.network.nodes[self.path[0]].inject(packet)

    # -- receiving -------------------------------------------------------
    def _on_packet_at_dst(self, packet: Packet) -> None:
        if packet.flow_id != self.flow_id or packet.is_ack:
            return
        self.monitor.record_delivered(packet)
        # Cumulative ACK semantics via receiver state.
        self._rcv_seen.add(packet.seq)
        while self._rcv_next in self._rcv_seen:
            self._rcv_next += 1
        ack = Packet(
            flow_id=self.flow_id,
            src=self.path[-1],
            dst=self.path[0],
            size_bytes=ACK_BYTES,
            path=self.reverse_path,
            created_at=self.sim.now,
            is_ack=True,
            ack_seq=self._rcv_next - 1,
        )
        self.network.nodes[self.path[-1]].inject(ack)

    def _on_packet_at_src(self, packet: Packet) -> None:
        if packet.flow_id != self.flow_id or not packet.is_ack or self._done:
            return
        # Karn's rule: sample RTT only from never-retransmitted segments,
        # measured send-to-ACK (queueing included, so pacing adapts).
        acked_seq = packet.ack_seq
        sent_at = self._send_times.get(acked_seq)
        if sent_at is not None and acked_seq not in self._retransmitted:
            rtt = self.sim.now - sent_at
            self.srtt = (
                rtt if self.srtt is None else 0.875 * self.srtt + 0.125 * rtt
            )
            self._last_rtt = rtt

        if packet.ack_seq > self.highest_acked:
            newly = packet.ack_seq - self.highest_acked
            self.highest_acked = packet.ack_seq
            self.dup_acks = 0
            if self.cwnd < self.ssthresh:
                self.cwnd += float(newly)  # slow start
            else:
                self.cwnd += float(newly) / self.cwnd  # congestion avoidance
            self._arm_rto()
            if self.highest_acked >= self.n_packets - 1:
                self._complete()
                return
            self._try_send()
        else:
            self.dup_acks += 1
            if self.dup_acks == 3:
                # Fast retransmit + multiplicative decrease.
                self.ssthresh = max(self.cwnd / 2.0, 2.0)
                self.cwnd = self.ssthresh
                self._send_seq(self.highest_acked + 1, retransmit=True)
                self._arm_rto()

    # -- timers ----------------------------------------------------------
    def _arm_rto(self) -> None:
        # Re-arming cancels the outstanding timer: exactly one live RTO
        # event exists per flow, instead of one ghost event per ACK.
        if self._rto_event is not None:
            self._rto_event.cancel()
        rto = max(self.min_rto_s, 4.0 * (self.srtt or 0.05))
        self._rto_event = self.sim.schedule(rto, self._fire_rto)

    def _fire_rto(self) -> None:
        self._rto_event = None
        if self._done:
            return
        if self.inflight > 0 or self.next_seq < self.n_packets:
            self.stats.timeouts += 1
            self.ssthresh = max(self.cwnd / 2.0, 2.0)
            self.cwnd = 2.0
            self._send_seq(self.highest_acked + 1, retransmit=True)
            self._arm_rto()

    def _complete(self) -> None:
        self._done = True
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        self.stats.completion_time = self.sim.now
