"""Discrete-event simulation core (ns-3 substitute, paper §5).

A minimal but real event-driven kernel: a time-ordered heap of slotted
event entries.  Everything in :mod:`repro.netsim` (links, queues, flows,
TCP) schedules work through one :class:`Simulator` instance, so event
ordering, determinism, and virtual time are centralized here.

Events are (time, sequence) ordered; ties break in scheduling order,
making runs fully deterministic.  Heap entries are plain
``(time, seq, fn, args)`` tuples, so ordering comparisons stay on
C-level floats and dispatch is a single call.  Two scheduling APIs sit
on top:

* :meth:`Simulator.post` / :meth:`Simulator.post_at` — the hot path.
  No handle is returned; the event will fire.  Links and flows use
  this for the millions of deliveries and emissions per run.
* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` — returns
  an :class:`Event` cancellation token.  Callers that re-arm timers
  (TCP RTO) cancel the stale event instead of letting a ghost event
  fire and be filtered by hand.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class Event:
    """A cancellable scheduled callback (slotted record + token).

    Attributes:
        sim: owning simulator.
        time: absolute virtual time the event fires at.
        fn / args: the callback and its positional arguments (``None``
            after cancellation, so cancelled events pinned deep in the
            heap don't keep packets or flows alive).
        cancelled: True once :meth:`cancel` has been called.
    """

    __slots__ = ("sim", "time", "fn", "args", "cancelled")

    def __init__(
        self,
        sim: "Simulator",
        time: float,
        fn: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.sim = sim
        self.time = time
        self.fn: Callable[..., None] | None = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Revoke the event; the kernel discards it instead of firing.

        Cancelling an event that already fired (or was already
        cancelled) is a harmless no-op.
        """
        if not self.cancelled:
            self.cancelled = True
            self.fn = None
            self.args = ()
            self.sim._n_cancelled += 1

    def _fire(self) -> None:
        if self.cancelled:
            # Cancelled entry leaving the heap.
            self.sim._n_cancelled -= 1
            return
        # Mark consumed so a late cancel() stays a no-op.
        self.cancelled = True
        fn, args = self.fn, self.args
        self.fn = None
        self.args = ()
        fn(*args)


class Simulator:
    """An event-driven simulator with a virtual clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = 0
        self._running = False
        self._n_cancelled = 0

    @property
    def now(self) -> float:
        """Current virtual time, seconds."""
        return self._now

    def post(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` seconds (no handle)."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(
            self._queue, (self._now + delay, self._seq, callback, args)
        )
        self._seq += 1

    def post_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute ``time`` (no handle)."""
        if time < self._now:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (time, self._seq, callback, args))
        self._seq += 1

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Like :meth:`post`, returning a cancellation token."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        time = self._now + delay
        event = Event(self, time, callback, args)
        heapq.heappush(self._queue, (time, self._seq, event._fire, ()))
        self._seq += 1
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Like :meth:`post_at`, returning a cancellation token."""
        if time < self._now:
            raise ValueError("cannot schedule into the past")
        event = Event(self, time, callback, args)
        heapq.heappush(self._queue, (time, self._seq, event._fire, ()))
        self._seq += 1
        return event

    def run(self, until: float | None = None) -> None:
        """Process events until the queue drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` at exit even if the queue drained earlier.
        """
        self._running = True
        queue = self._queue
        pop = heapq.heappop
        while queue and self._running:
            t = queue[0][0]
            if until is not None and t > until:
                break
            _, _, fn, args = pop(queue)
            self._now = t
            fn(*args)
        if until is not None and self._now < until:
            self._now = until
        self._running = False

    def stop(self) -> None:
        """Halt the event loop (from inside a callback)."""
        self._running = False

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events still in the heap."""
        return len(self._queue) - self._n_cancelled
