"""Discrete-event simulation core (ns-3 substitute, paper §5).

A minimal but real event-driven kernel: a time-ordered heap of
callbacks.  Everything in :mod:`repro.netsim` (links, queues, flows,
TCP) schedules work through one :class:`Simulator` instance, so event
ordering, determinism, and virtual time are centralized here.
"""

from __future__ import annotations

import heapq
from typing import Callable


class Simulator:
    """An event-driven simulator with a virtual clock.

    Events are (time, sequence) ordered; ties break in scheduling order,
    making runs fully deterministic.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time, seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (self._now + delay, self._seq, callback))
        self._seq += 1

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual ``time``."""
        if time < self._now:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def run(self, until: float | None = None) -> None:
        """Process events until the queue drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` at exit even if the queue drained earlier.
        """
        self._running = True
        while self._queue and self._running:
            t, _, callback = self._queue[0]
            if until is not None and t > until:
                break
            heapq.heappop(self._queue)
            self._now = t
            callback()
        if until is not None and self._now < until:
            self._now = until
        self._running = False

    def stop(self) -> None:
        """Halt the event loop (from inside a callback)."""
        self._running = False

    @property
    def pending_events(self) -> int:
        return len(self._queue)
