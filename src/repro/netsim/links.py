"""Links and drop-tail queues.

A :class:`Link` is unidirectional: it serializes packets at its line
rate out of a FIFO drop-tail queue, then delivers them after the
propagation delay.  Utilization and queue-occupancy accounting is built
in (the paper adds a link-utilization module to ns-3's FlowMonitor; here
it is native).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from .engine import Simulator
from .packets import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .nodes import Node

#: Default queue capacity, packets.
DEFAULT_QUEUE_PACKETS = 100


class Link:
    """A unidirectional link with a drop-tail FIFO.

    Attributes:
        name: label for diagnostics ("A->B").
        rate_bps: line rate, bits/second.
        delay_s: propagation delay, seconds.
        queue_capacity: maximum queued packets (excluding the one in
            transmission); arrivals beyond it are dropped.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        delay_s: float,
        queue_capacity: int = DEFAULT_QUEUE_PACKETS,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        if queue_capacity < 0:
            raise ValueError("queue capacity must be non-negative")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.queue_capacity = queue_capacity
        self.peer: "Node | None" = None
        self._queue: deque[Packet] = deque()
        self._busy = False
        self.tx_packets = 0
        self.tx_bits = 0
        self.dropped_packets = 0
        self.busy_time_s = 0.0
        self._up = True
        self._on_drop: Callable[[Packet], None] | None = None

    def attach(self, peer: "Node") -> None:
        """Set the receiving node."""
        self.peer = peer

    def on_drop(self, callback: Callable[[Packet], None]) -> None:
        """Register a drop observer (used by the flow monitor)."""
        self._on_drop = callback

    @property
    def queue_length(self) -> int:
        """Packets currently waiting (excluding the one in service)."""
        return len(self._queue)

    @property
    def is_up(self) -> bool:
        return self._up

    def set_down(self) -> None:
        """Fail the link: queued and future packets are dropped until
        :meth:`set_up` (models a weather outage, §6.1)."""
        self._up = False
        for packet in self._queue:
            self.dropped_packets += 1
            if self._on_drop is not None:
                self._on_drop(packet)
        self._queue.clear()

    def set_up(self) -> None:
        """Restore a failed link."""
        self._up = True

    def send(self, packet: Packet) -> None:
        """Enqueue a packet for transmission, dropping if full or down."""
        if self.peer is None:
            raise RuntimeError(f"link {self.name} has no peer attached")
        if not self._up:
            self.dropped_packets += 1
            if self._on_drop is not None:
                self._on_drop(packet)
            return
        if self._busy:
            if self.queue_capacity and len(self._queue) >= self.queue_capacity:
                self.dropped_packets += 1
                if self._on_drop is not None:
                    self._on_drop(packet)
                return
            self._queue.append(packet)
        else:
            self._transmit(packet)

    def _transmit(self, packet: Packet) -> None:
        self._busy = True
        tx_time = packet.size_bits / self.rate_bps
        self.busy_time_s += tx_time
        self.tx_packets += 1
        self.tx_bits += packet.size_bits
        self.sim.schedule(tx_time, lambda: self._finish(packet))

    def _finish(self, packet: Packet) -> None:
        # Propagation, then delivery at the peer.
        peer = self.peer
        self.sim.schedule(self.delay_s, lambda: peer.receive(packet))
        if self._queue:
            self._transmit(self._queue.popleft())
        else:
            self._busy = False

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` spent transmitting."""
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        return min(self.busy_time_s / elapsed_s, 1.0)
