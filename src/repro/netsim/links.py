"""Links and drop-tail queues.

A :class:`Link` is unidirectional: it serializes packets at its line
rate out of a FIFO drop-tail queue, then delivers them after the
propagation delay.  Utilization and queue-occupancy accounting is built
in (the paper adds a link-utilization module to ns-3's FlowMonitor; here
it is native).

Serialization is *committed on arrival*: an accepted packet's service
start is ``max(now, previous finish)``, so its finish time is known the
moment it is enqueued — the floats accumulate in exactly the same order
as packet-at-a-time serialization, keeping results bit-identical for
any workload free of exact event-time ties (Poisson arrivals are
tie-free almost surely).  The drop-tail decision recovers the exact
queue occupancy an arrival would have seen by binary-searching the
committed finish times (packets whose finish lies in the future, minus
the one in service, are the waiting queue).  When an arrival lands at
*exactly* a finish time — possible with rationally related CBR rates —
this kernel uses a fixed finish-before-arrival convention (the packet
that completes at ``now`` has left the queue); the classic kernel's
behavior at such ties depended on event scheduling order and was not
itself well-defined across workload changes.  Deliveries ride a lazily
armed per-link chain: at most one delivery event per link lives in the
kernel heap at a time, and each delivery re-arms the next — one kernel
event per packet instead of the classic finish-plus-delivery pair, and
a heap whose size is independent of queue depth.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Callable

from .engine import Simulator
from .packets import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .nodes import Node

#: Default queue capacity, packets.
DEFAULT_QUEUE_PACKETS = 100

#: Delivered-prefix length that triggers compaction of the committed lists.
_PRUNE_THRESHOLD = 512


class Link:
    """A unidirectional link with a drop-tail FIFO.

    Attributes:
        name: label for diagnostics ("A->B").
        rate_bps: line rate, bits/second.
        delay_s: propagation delay, seconds.
        queue_capacity: maximum queued packets (excluding the one in
            transmission); arrivals beyond it are dropped.
    """

    __slots__ = (
        "sim",
        "name",
        "rate_bps",
        "delay_s",
        "queue_capacity",
        "peer",
        "_finish",
        "_packets",
        "_delivered",
        "_armed",
        "tx_packets",
        "tx_bits",
        "dropped_packets",
        "busy_time_s",
        "_up",
        "_on_drop",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        delay_s: float,
        queue_capacity: int = DEFAULT_QUEUE_PACKETS,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        if queue_capacity < 0:
            raise ValueError("queue capacity must be non-negative")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.queue_capacity = queue_capacity
        self.peer: "Node | None" = None
        # Committed transmissions in service order: absolute finish
        # times (monotonic) and the packets.  ``_delivered`` counts the
        # handed-over prefix; ``_armed`` is True while a delivery event
        # for ``_packets[_delivered]`` sits in the kernel heap.
        self._finish: list[float] = []
        self._packets: list[Packet] = []
        self._delivered = 0
        self._armed = False
        self.tx_packets = 0
        self.tx_bits = 0
        self.dropped_packets = 0
        self.busy_time_s = 0.0
        self._up = True
        self._on_drop: Callable[[Packet], None] | None = None

    def attach(self, peer: "Node") -> None:
        """Set the receiving node."""
        self.peer = peer

    def on_drop(self, callback: Callable[[Packet], None]) -> None:
        """Register a drop observer (used by the flow monitor)."""
        self._on_drop = callback

    @property
    def queue_length(self) -> int:
        """Packets currently waiting (excluding the one in service)."""
        finishes = self._finish
        now = self.sim.now
        if not finishes or finishes[-1] <= now:
            return 0
        waiting = len(finishes) - bisect_right(finishes, now) - 1
        return waiting if waiting > 0 else 0

    @property
    def is_up(self) -> bool:
        return self._up

    def set_down(self) -> None:
        """Fail the link: queued and future packets are dropped until
        :meth:`set_up` (models a weather outage, §6.1).

        The packet in service completes (its bits are on the air), but
        committed packets still waiting are dropped and their
        transmission accounting rolled back — they never entered
        service.  The armed delivery always belongs to a packet at or
        before the one in service, so no kernel event needs cancelling.
        """
        self._up = False
        finishes = self._finish
        now = self.sim.now
        if not finishes or finishes[-1] <= now:
            return
        # Keep the served prefix plus the packet in service.
        keep = bisect_right(finishes, now) + 1
        if keep >= len(finishes):
            return
        on_drop = self._on_drop
        rate = self.rate_bps
        for packet in self._packets[keep:]:
            bits = packet.size_bits
            self.tx_packets -= 1
            self.tx_bits -= bits
            self.busy_time_s -= bits / rate
            self.dropped_packets += 1
            if on_drop is not None:
                on_drop(packet)
        del finishes[keep:]
        del self._packets[keep:]

    def set_up(self) -> None:
        """Restore a failed link."""
        self._up = True

    def send(self, packet: Packet) -> None:
        """Enqueue a packet for transmission, dropping if full or down."""
        peer = self.peer
        if peer is None:
            raise RuntimeError(f"link {self.name} has no peer attached")
        if not self._up:
            self.dropped_packets += 1
            if self._on_drop is not None:
                self._on_drop(packet)
            return
        sim = self.sim
        now = sim.now
        finishes = self._finish
        delivered = self._delivered
        if delivered >= _PRUNE_THRESHOLD:
            del finishes[:delivered]
            del self._packets[:delivered]
            self._delivered = delivered = 0
        if finishes and finishes[-1] > now:
            # Busy: everything behind the packet in service occupies a
            # queue slot.
            capacity = self.queue_capacity
            if (
                capacity
                and len(finishes) - bisect_right(finishes, now) - 1 >= capacity
            ):
                self.dropped_packets += 1
                if self._on_drop is not None:
                    self._on_drop(packet)
                return
            start = finishes[-1]
        else:
            start = now
        bits = packet.size_bits
        tx_time = bits / self.rate_bps
        finish = start + tx_time
        self.busy_time_s += tx_time
        self.tx_packets += 1
        self.tx_bits += bits
        finishes.append(finish)
        self._packets.append(packet)
        if not self._armed:
            self._armed = True
            sim.post_at(finish + self.delay_s, self._deliver)

    def _deliver(self) -> None:
        """Hand the next packet to the peer and re-arm the chain."""
        index = self._delivered
        packet = self._packets[index]
        self._delivered = index + 1
        if index + 1 < len(self._finish):
            self.sim.post_at(
                self._finish[index + 1] + self.delay_s, self._deliver
            )
        else:
            self._armed = False
        self.peer.receive(packet)

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` spent transmitting.

        ``busy_time_s`` is charged at commit time, so mid-run the
        committed-but-waiting tail (packets that have not entered
        service yet) is excluded here to preserve the classic
        charge-at-service-start semantics.
        """
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        busy = self.busy_time_s
        finishes = self._finish
        now = self.sim.now
        if finishes and finishes[-1] > now:
            in_service = bisect_right(finishes, now)
            busy -= finishes[-1] - finishes[in_service]
        return min(busy / elapsed_s, 1.0)
