"""Array-native flow workloads: struct-of-arrays tables for the fluid engine.

The fluid solver itself has been vectorized since the commodity-
aggregate rewrite, but its *inputs* were still per-flow Python objects:
a million :class:`~repro.netsim.fluid.FluidFlow` instances cost more to
build and validate than the progressive fill costs to solve.  This
module keeps the workload in numpy arrays from demand generation to the
solver:

* :class:`PathPool` — a pool of node paths as one flat node-index array
  plus an ``indptr`` (CSR-style), with the node-id -> name mapping.
  Paths come straight from ``Topology.routed_paths`` or any array
  source; validation (edge-simple) and path->link edge extraction are
  whole-array operations.
* :class:`FlowTable` — per-flow ``path_id`` / ``demand_bps`` /
  ``flow_ids`` columns over a pool.  Construction validates the whole
  table vectorized (positive demand, used paths >= 2 nodes and
  edge-simple) with the same error messages as ``FluidFlow``.
* :class:`CommodityTable` — flows collapsed by path *value* into
  commodities in first-seen flow order, exactly mirroring the object
  path's ``_CommodityProblem`` collapse, so the two front-ends feed the
  solver bit-identical problems.

``solve_fluid`` / ``solve_fluid_tcp`` accept these tables directly (see
:mod:`repro.netsim.fluid`); the ``FluidFlow``-list path remains the
reference and produces bit-identical rates.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np


def _as_int64(values, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    return arr


def _as_float(values, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    return arr


@dataclass(frozen=True)
class PathPool:
    """A pool of node paths in struct-of-arrays (CSR) form.

    Attributes:
        node_names: name of node index ``i`` — paths store integer node
            ids; link capacities and results speak node names.
        nodes: every path's node ids, concatenated.
        indptr: path ``p`` occupies ``nodes[indptr[p]:indptr[p + 1]]``.
    """

    node_names: tuple[str, ...]
    nodes: np.ndarray
    indptr: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "node_names", tuple(self.node_names))
        object.__setattr__(self, "nodes", _as_int64(self.nodes, "nodes"))
        object.__setattr__(self, "indptr", _as_int64(self.indptr, "indptr"))
        if len(self.indptr) == 0 or self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if self.indptr[-1] != len(self.nodes) or np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be nondecreasing and end at len(nodes)")
        if len(self.nodes) and (
            self.nodes.min() < 0 or self.nodes.max() >= len(self.node_names)
        ):
            raise ValueError("path node id outside the pool's name table")

    @property
    def n_paths(self) -> int:
        return len(self.indptr) - 1

    def lengths(self) -> np.ndarray:
        """Node count per path."""
        return self.indptr[1:] - self.indptr[:-1]

    @classmethod
    def from_paths(
        cls,
        paths,
        node_names: tuple[str, ...] | None = None,
    ) -> "PathPool":
        """A pool from an iterable of node-name paths.

        ``node_names`` fixes the id table; when omitted it is built from
        the paths in first-appearance order.
        """
        paths = [tuple(p) for p in paths]
        if node_names is None:
            seen: dict[str, int] = {}
            for path in paths:
                for name in path:
                    if name not in seen:
                        seen[name] = len(seen)
            node_names = tuple(seen)
        index = {name: i for i, name in enumerate(node_names)}
        try:
            nodes = np.fromiter(
                (index[name] for path in paths for name in path),
                dtype=np.int64,
                count=sum(len(p) for p in paths),
            )
        except KeyError as exc:
            raise ValueError(f"path node {exc.args[0]!r} not in node_names") from None
        counts = np.fromiter(
            (len(p) for p in paths), dtype=np.int64, count=len(paths)
        )
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return cls(node_names=node_names, nodes=nodes, indptr=indptr)

    @classmethod
    def from_routes(
        cls, routes: dict[tuple[int, int], list[int]], n_sites: int
    ) -> "PathPool":
        """A pool from ``Topology.routed_paths()`` (site-index paths).

        Node names follow the experiments' convention ``str(site_index)``
        so the pool plugs straight into edge-spec capacity maps.  Path
        ``p`` is the route of the ``p``-th pair in dict order.
        """
        values = list(routes.values())
        counts = np.fromiter(
            (len(p) for p in values), dtype=np.int64, count=len(values)
        )
        nodes = np.fromiter(
            (v for path in values for v in path),
            dtype=np.int64,
            count=int(counts.sum()),
        )
        indptr = np.concatenate(([0], np.cumsum(counts)))
        names = tuple(str(i) for i in range(n_sites))
        return cls(node_names=names, nodes=nodes, indptr=indptr)

    def path_nodes(self, path_id: int) -> np.ndarray:
        return self.nodes[self.indptr[path_id] : self.indptr[path_id + 1]]

    def path_names(self, path_id: int) -> tuple[str, ...]:
        return tuple(self.node_names[i] for i in self.path_nodes(path_id))

    def gather_edges(
        self, path_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Directed edges of the selected paths, in traversal order.

        Returns ``(edge_u, edge_v, edge_indptr)``: row ``r`` of
        ``path_ids`` owns edges ``edge_indptr[r]:edge_indptr[r + 1]``,
        each ``(edge_u[j], edge_v[j])`` a node-id pair.  Paths with
        fewer than two nodes contribute no edges.
        """
        path_ids = _as_int64(path_ids, "path_ids")
        starts = self.indptr[path_ids]
        lengths = self.indptr[path_ids + 1] - starts
        counts = np.maximum(lengths - 1, 0)
        edge_indptr = np.concatenate(([0], np.cumsum(counts)))
        total = int(edge_indptr[-1])
        rep = np.repeat(np.arange(len(path_ids), dtype=np.int64), counts)
        offsets = np.arange(total, dtype=np.int64) - edge_indptr[:-1][rep]
        pos = starts[rep] + offsets
        return self.nodes[pos], self.nodes[pos + 1], edge_indptr

    def edge_simple_mask(self, path_ids: np.ndarray) -> np.ndarray:
        """True per selected path iff no directed edge repeats."""
        path_ids = _as_int64(path_ids, "path_ids")
        edge_u, edge_v, edge_indptr = self.gather_edges(path_ids)
        ok = np.ones(len(path_ids), dtype=bool)
        if len(edge_u) == 0:
            return ok
        counts = edge_indptr[1:] - edge_indptr[:-1]
        rows = np.repeat(np.arange(len(path_ids), dtype=np.int64), counts)
        codes = edge_u * len(self.node_names) + edge_v
        order = np.lexsort((codes, rows))
        dup = (rows[order][1:] == rows[order][:-1]) & (
            codes[order][1:] == codes[order][:-1]
        )
        ok[rows[order][1:][dup]] = False
        return ok

    def within_mask(self, node_ok: np.ndarray) -> np.ndarray:
        """True per pool path iff every node satisfies ``node_ok``.

        ``node_ok`` is a boolean array indexed by node id (e.g. "this
        node exists in the simulated link set").
        """
        node_ok = np.ascontiguousarray(node_ok, dtype=bool)
        if node_ok.shape != (len(self.node_names),):
            raise ValueError("node_ok must have one entry per pool node")
        good = np.concatenate(
            ([0], np.cumsum(node_ok[self.nodes].astype(np.int64)))
        )
        per_path = good[self.indptr[1:]] - good[self.indptr[:-1]]
        return per_path == self.lengths()

    def padded_rows(self, path_ids: np.ndarray) -> np.ndarray:
        """Selected paths as a dense (k, max_len) matrix, -1 padded.

        The fixed-width form lets callers compare paths by *value*
        (``np.unique(..., axis=0)``) without per-row Python objects.
        """
        path_ids = _as_int64(path_ids, "path_ids")
        starts = self.indptr[path_ids]
        lengths = self.indptr[path_ids + 1] - starts
        max_len = int(lengths.max(initial=0))
        out = np.full((len(path_ids), max_len), -1, dtype=np.int64)
        if max_len == 0:
            return out
        mask = np.arange(max_len, dtype=np.int64) < lengths[:, None]
        rep = np.repeat(np.arange(len(path_ids), dtype=np.int64), lengths)
        row_start = np.concatenate(([0], np.cumsum(lengths)))
        offsets = np.arange(int(row_start[-1]), dtype=np.int64) - row_start[:-1][rep]
        out[mask] = self.nodes[starts[rep] + offsets]
        return out


def _used_rows(
    path_id: np.ndarray, n_paths: int
) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(path_id, return_inverse=True)`` without the sort.

    Pool rows form a bounded integer domain, so a presence mask plus a
    cumulative-sum rank reproduces the sorted-unique contract in O(n)
    instead of O(n log n) — at 10^6 flows the sort is the single
    largest front-end cost.
    """
    mask = np.zeros(n_paths, dtype=bool)
    mask[path_id] = True
    rank = np.cumsum(mask) - 1
    return np.flatnonzero(mask), rank[path_id]


def _check_used_paths(
    pool: PathPool, path_id: np.ndarray, flow_ids: np.ndarray
) -> None:
    """Vectorized mirror of ``FluidFlow.__post_init__`` path checks."""
    if len(path_id) == 0:
        return
    if path_id.min() < 0 or path_id.max() >= pool.n_paths:
        raise ValueError("path_id outside the pool")
    used = _used_rows(path_id, pool.n_paths)[0]
    lengths = pool.indptr[used + 1] - pool.indptr[used]
    short = lengths < 2
    if short.any():
        raise ValueError("path needs at least two nodes")
    bad_used = ~pool.edge_simple_mask(used)
    if bad_used.any():
        bad = np.zeros(pool.n_paths, dtype=bool)
        bad[used[bad_used]] = True
        first = int(np.argmax(bad[path_id]))
        raise ValueError(
            f"flow {int(flow_ids[first])} path repeats a directed link; "
            "fluid paths must be edge-simple"
        )


@dataclass(frozen=True)
class FlowTable:
    """Per-flow columns over a :class:`PathPool` — zero per-flow objects.

    Attributes:
        pool: the shared path pool.
        path_id: pool row per flow.
        demand_bps: offered (maximum) rate per flow; must be positive.
        flow_ids: caller-visible flow ids (results key off these).
    """

    pool: PathPool
    path_id: np.ndarray
    demand_bps: np.ndarray
    flow_ids: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "path_id", _as_int64(self.path_id, "path_id"))
        object.__setattr__(
            self, "demand_bps", _as_float(self.demand_bps, "demand_bps")
        )
        object.__setattr__(self, "flow_ids", _as_int64(self.flow_ids, "flow_ids"))
        n = len(self.path_id)
        if len(self.demand_bps) != n or len(self.flow_ids) != n:
            raise ValueError("flow columns must have equal length")
        if n and self.demand_bps.min() <= 0:
            raise ValueError("offered rate must be positive")
        _check_used_paths(self.pool, self.path_id, self.flow_ids)

    @property
    def n_flows(self) -> int:
        return len(self.path_id)

    @property
    def src(self) -> np.ndarray:
        """Source node id per flow."""
        return self.pool.nodes[self.pool.indptr[self.path_id]]

    @property
    def dst(self) -> np.ndarray:
        """Destination node id per flow."""
        return self.pool.nodes[self.pool.indptr[self.path_id + 1] - 1]

    def to_commodities(self) -> "CommodityTable":
        """Collapse flows sharing a path *value* into commodities.

        Commodity rows appear in first-seen flow order and two pool rows
        with identical node sequences collapse into one commodity —
        exactly the object path's ``_CommodityProblem`` semantics, so
        both front-ends hand the solver the same problem bit for bit.
        """
        n = self.n_flows
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return CommodityTable(
                pool=self.pool,
                commodity_path=empty,
                flow_commodity=empty,
                demand_bps=self.demand_bps,
                flow_ids=self.flow_ids,
            )
        used, inverse = _used_rows(self.path_id, self.pool.n_paths)
        rows = self.pool.padded_rows(used)
        _, group_of_used = np.unique(rows, axis=0, return_inverse=True)
        group = group_of_used.reshape(-1)[inverse]
        n_groups = int(group.max()) + 1
        first = np.full(n_groups, n, dtype=np.int64)
        np.minimum.at(first, group, np.arange(n, dtype=np.int64))
        order = np.argsort(first, kind="stable")
        rank = np.empty(n_groups, dtype=np.int64)
        rank[order] = np.arange(n_groups, dtype=np.int64)
        return CommodityTable(
            pool=self.pool,
            commodity_path=self.path_id[first[order]],
            flow_commodity=rank[group],
            demand_bps=self.demand_bps,
            flow_ids=self.flow_ids,
        )


@dataclass(frozen=True)
class CommodityTable:
    """Flows collapsed into path commodities, still in array form.

    The direct input to ``_CommodityProblem.from_table``: ``commodity_path``
    holds one pool row per commodity in first-seen flow order, and each
    flow points at its commodity.  Build one via
    :meth:`FlowTable.to_commodities` (which also dedupes by path value).

    Attributes:
        pool: the shared path pool.
        commodity_path: pool row per commodity.
        flow_commodity: commodity index per flow.
        demand_bps: offered rate per flow; must be positive.
        flow_ids: caller-visible flow ids.
    """

    pool: PathPool
    commodity_path: np.ndarray
    flow_commodity: np.ndarray
    demand_bps: np.ndarray
    flow_ids: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "commodity_path", _as_int64(self.commodity_path, "commodity_path")
        )
        object.__setattr__(
            self, "flow_commodity", _as_int64(self.flow_commodity, "flow_commodity")
        )
        object.__setattr__(
            self, "demand_bps", _as_float(self.demand_bps, "demand_bps")
        )
        object.__setattr__(self, "flow_ids", _as_int64(self.flow_ids, "flow_ids"))
        n = len(self.flow_commodity)
        if len(self.demand_bps) != n or len(self.flow_ids) != n:
            raise ValueError("flow columns must have equal length")
        if n and self.demand_bps.min() <= 0:
            raise ValueError("offered rate must be positive")
        if n and (
            self.flow_commodity.min() < 0
            or self.flow_commodity.max() >= len(self.commodity_path)
        ):
            raise ValueError("flow_commodity outside the commodity table")
        _check_used_paths(
            self.pool, self.commodity_path, self.first_flow_ids()
        )

    @property
    def n_flows(self) -> int:
        return len(self.flow_commodity)

    @property
    def n_commodities(self) -> int:
        return len(self.commodity_path)

    def first_flow_ids(self) -> np.ndarray:
        """The id of the first flow of each commodity (for error text)."""
        if self.n_flows == 0:
            return np.empty(0, dtype=np.int64)
        first = np.full(self.n_commodities, self.n_flows, dtype=np.int64)
        np.minimum.at(
            first, self.flow_commodity, np.arange(self.n_flows, dtype=np.int64)
        )
        first = np.minimum(first, self.n_flows - 1)  # unreferenced commodities
        return self.flow_ids[first]

    def with_demands(self, demand_bps: np.ndarray) -> "CommodityTable":
        """The same commodity structure with new per-flow demands.

        The TCP macro-model iterates offers against a fixed path set;
        this re-demand avoids rebuilding (and re-validating) paths.
        """
        return dataclasses.replace(
            self, demand_bps=_as_float(demand_bps, "demand_bps")
        )


__all__ = ["PathPool", "FlowTable", "CommodityTable"]
