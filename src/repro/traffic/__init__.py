"""Traffic matrices: population product, DC models, mixes, perturbations,
and the bottom-up million-user demand layer."""

from .matrices import (
    DEFAULT_PER_USER_KBPS,
    DEFAULT_USERS_PER_CAPITA,
    PEAK_LOCAL_HOUR,
    active_users,
    city_to_dc_matrix,
    dc_to_dc_matrix,
    demands_gbps,
    diurnal_factor,
    heavy_tail_multipliers,
    mixed_matrix,
    perturbed_population_matrix,
    population_product_matrix,
    user_demand_gbps,
    user_demand_matrix,
)

__all__ = [
    "DEFAULT_PER_USER_KBPS",
    "DEFAULT_USERS_PER_CAPITA",
    "PEAK_LOCAL_HOUR",
    "active_users",
    "city_to_dc_matrix",
    "dc_to_dc_matrix",
    "demands_gbps",
    "diurnal_factor",
    "heavy_tail_multipliers",
    "mixed_matrix",
    "perturbed_population_matrix",
    "population_product_matrix",
    "user_demand_gbps",
    "user_demand_matrix",
]
