"""Traffic matrices: population product, DC models, mixes, perturbations."""

from .matrices import (
    city_to_dc_matrix,
    dc_to_dc_matrix,
    demands_gbps,
    mixed_matrix,
    perturbed_population_matrix,
    population_product_matrix,
)

__all__ = [
    "city_to_dc_matrix",
    "dc_to_dc_matrix",
    "demands_gbps",
    "mixed_matrix",
    "perturbed_population_matrix",
    "population_product_matrix",
]
