"""Traffic matrices (paper §4, §6.3, §6.4).

The paper's primary model sets h_ij proportional to the product of the
populations of cities i and j.  Two alternative deployment models are
studied: uniform traffic between data centers (DC-DC), and traffic from
each city to its nearest data center, proportional to city population
(city-DC).  Section 6.4 mixes the three in ratios like 4:3:3 and §5
perturbs populations by a factor drawn from U[1-gamma, 1+gamma].

A traffic matrix here is a dense symmetric (n, n) numpy array with a
zero diagonal.  Matrices are normalized so entries sum to 1 over the
upper triangle; scaling to an aggregate demand in Gbps happens at the
point of use (capacity augmentation, packet simulation).
"""

from __future__ import annotations

import numpy as np

from ..datasets.sites import Site
from ..geo.coords import haversine_km


def _normalize(matrix: np.ndarray) -> np.ndarray:
    """Scale a symmetric demand matrix so the upper triangle sums to 1."""
    upper = np.triu(matrix, k=1)
    total = upper.sum()
    if total <= 0:
        raise ValueError("traffic matrix has no demand")
    result = matrix / total
    np.fill_diagonal(result, 0.0)
    return result


def population_product_matrix(sites: list[Site]) -> np.ndarray:
    """h_ij ~ population_i * population_j (the paper's city-city model)."""
    pops = np.array([float(s.population) for s in sites])
    if np.all(pops == 0):
        raise ValueError("all sites have zero population")
    h = np.outer(pops, pops)
    np.fill_diagonal(h, 0.0)
    return _normalize(h)


def perturbed_population_matrix(
    sites: list[Site], gamma: float, seed: int = 0
) -> np.ndarray:
    """Population-product matrix with per-city perturbation (§5).

    Each city's population is re-weighted by a factor drawn from
    U[1 - gamma, 1 + gamma].
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must be in [0, 1]")
    rng = np.random.default_rng(seed)
    pops = np.array([float(s.population) for s in sites])
    weights = rng.uniform(1.0 - gamma, 1.0 + gamma, size=len(sites))
    h = np.outer(pops * weights, pops * weights)
    np.fill_diagonal(h, 0.0)
    return _normalize(h)


def dc_to_dc_matrix(sites: list[Site], dc_indices: list[int]) -> np.ndarray:
    """Equal demand between every data-center pair (§6.3).

    ``dc_indices`` index into ``sites``; all other sites get no demand.
    """
    if len(dc_indices) < 2:
        raise ValueError("need at least two data centers")
    n = len(sites)
    h = np.zeros((n, n))
    for i in dc_indices:
        for j in dc_indices:
            if i != j:
                h[i, j] = 1.0
    return _normalize(h)


def city_to_dc_matrix(sites: list[Site], dc_indices: list[int]) -> np.ndarray:
    """Each city sends to its nearest DC, proportional to population (§6.3)."""
    if not dc_indices:
        raise ValueError("need at least one data center")
    n = len(sites)
    dc_set = set(dc_indices)
    h = np.zeros((n, n))
    for i, site in enumerate(sites):
        if i in dc_set or site.population <= 0:
            continue
        nearest = min(
            dc_indices,
            key=lambda d: haversine_km(site.lat, site.lon, sites[d].lat, sites[d].lon),
        )
        h[i, nearest] += float(site.population)
        h[nearest, i] += float(site.population)
    return _normalize(h)


def mixed_matrix(
    components: list[tuple[np.ndarray, float]],
) -> np.ndarray:
    """Convex mix of normalized traffic matrices (§6.4).

    Args:
        components: (matrix, weight) pairs; weights need not sum to 1
            (e.g., the paper's 4:3:3 city-city : city-DC : DC-DC mix).
    """
    if not components:
        raise ValueError("need at least one component")
    total_w = sum(w for _, w in components)
    if total_w <= 0:
        raise ValueError("weights must be positive")
    n = components[0][0].shape[0]
    h = np.zeros((n, n))
    for matrix, weight in components:
        if matrix.shape != (n, n):
            raise ValueError("component shapes differ")
        h += _normalize(matrix) * (weight / total_w)
    return _normalize(h)


def demand_pairs(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """A matrix's positive demands as ``(pairs, shares)`` arrays.

    The array-native front-end for flow-table workloads: ``pairs`` is an
    (m, 2) int64 array of site pairs (i, j) with i < j, ``shares`` the
    matching demands normalized to sum to 1 over the upper triangle —
    no per-pair Python iteration between the matrix and the solver.
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError("traffic matrix must be square")
    iu, ju = np.triu_indices(m.shape[0], k=1)
    values = m[iu, ju]
    total = values.sum()
    if total <= 0:
        raise ValueError("traffic matrix has no demand")
    positive = values > 0
    pairs = np.stack([iu[positive], ju[positive]], axis=1).astype(np.int64)
    return pairs, values[positive] / total


def demands_gbps(matrix: np.ndarray, aggregate_gbps: float) -> np.ndarray:
    """Scale a normalized matrix to an aggregate demand (sum of all
    site-site demands) in Gbps.  Returns a symmetric matrix whose upper
    triangle sums to ``aggregate_gbps``."""
    if aggregate_gbps <= 0:
        raise ValueError("aggregate demand must be positive")
    return _normalize(matrix) * aggregate_gbps


# --------------------------------------------------------------------------
# Million-user demand layer: per-city offered traffic built bottom-up from
# populations (diurnal activity x heavy-tail per-city intensity) instead of
# top-down from a design aggregate.  Feeds the fluid engine's
# ``demand_model="users"`` path.

#: Fraction of a city's population active online at the diurnal peak.
DEFAULT_USERS_PER_CAPITA = 0.35

#: Mean busy-hour demand per active user, kbit/s (video-dominated mix).
DEFAULT_PER_USER_KBPS = 600.0

#: Local hour of peak activity (evening video prime time).
PEAK_LOCAL_HOUR = 20.0


def diurnal_factor(
    lon_deg: float, hour_utc: float, trough_fraction: float = 0.25
) -> float:
    """Activity multiplier in [trough_fraction, 1] for a site's longitude.

    Local (solar) time is approximated as UTC + longitude / 15°; activity
    follows a cosine over the day peaking at :data:`PEAK_LOCAL_HOUR` and
    bottoming out at ``trough_fraction`` of the peak.
    """
    if not 0.0 < trough_fraction <= 1.0:
        raise ValueError("trough fraction must be in (0, 1]")
    local_hour = (hour_utc + lon_deg / 15.0) % 24.0
    phase = 2.0 * np.pi * (local_hour - PEAK_LOCAL_HOUR) / 24.0
    shape = 0.5 * (1.0 + np.cos(phase))  # 1 at peak, 0 twelve hours away
    return float(trough_fraction + (1.0 - trough_fraction) * shape)


def heavy_tail_multipliers(
    n: int, seed: int = 0, alpha: float = 1.8
) -> np.ndarray:
    """Per-city demand-intensity multipliers, Pareto-tailed, mean 1.

    Real per-city demand is burstier than population alone predicts
    (events, content launches, regional platforms); a normalized Pareto
    draw supplies that heavy tail deterministically per seed.
    """
    if n <= 0:
        raise ValueError("need at least one site")
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1 (finite mean)")
    rng = np.random.default_rng(seed)
    draws = rng.pareto(alpha, size=n) + 1.0
    return draws / draws.mean()


def active_users(
    sites: list[Site],
    hour_utc: float = PEAK_LOCAL_HOUR,
    users_per_capita: float = DEFAULT_USERS_PER_CAPITA,
    users_millions: float | None = None,
    trough_fraction: float = 0.25,
) -> np.ndarray:
    """Active user count per site at a UTC hour.

    Per site: population x ``users_per_capita`` x the site's diurnal
    factor.  If ``users_millions`` is given, counts are rescaled so the
    network-wide total is exactly that many million users — the scale
    knob for "millions of users" experiments.
    """
    pops = np.array([float(s.population) for s in sites])
    if np.all(pops == 0):
        raise ValueError("all sites have zero population")
    if users_per_capita <= 0:
        raise ValueError("users per capita must be positive")
    diurnal = np.array(
        [diurnal_factor(s.lon, hour_utc, trough_fraction) for s in sites]
    )
    users = pops * users_per_capita * diurnal
    if users_millions is not None:
        if users_millions <= 0:
            raise ValueError("users_millions must be positive")
        users *= users_millions * 1e6 / users.sum()
    return users


def user_demand_gbps(
    sites: list[Site],
    hour_utc: float = PEAK_LOCAL_HOUR,
    seed: int = 0,
    users_per_capita: float = DEFAULT_USERS_PER_CAPITA,
    users_millions: float | None = None,
    per_user_kbps: float = DEFAULT_PER_USER_KBPS,
    trough_fraction: float = 0.25,
) -> np.ndarray:
    """Offered demand per site in Gbps, users x per-user rate x tail."""
    if per_user_kbps <= 0:
        raise ValueError("per-user rate must be positive")
    users = active_users(
        sites, hour_utc, users_per_capita, users_millions, trough_fraction
    )
    tail = heavy_tail_multipliers(len(sites), seed=seed)
    return users * tail * per_user_kbps * 1e3 / 1e9


def user_demand_matrix(
    sites: list[Site],
    hour_utc: float = PEAK_LOCAL_HOUR,
    seed: int = 0,
    users_per_capita: float = DEFAULT_USERS_PER_CAPITA,
    users_millions: float | None = None,
    per_user_kbps: float = DEFAULT_PER_USER_KBPS,
    trough_fraction: float = 0.25,
) -> tuple[np.ndarray, float]:
    """Bottom-up traffic matrix and its offered aggregate in Gbps.

    Pairs sites gravity-style on their *current* offered demand (so both
    diurnal phase and the heavy tail shape the matrix, unlike the static
    population product) and returns ``(normalized_matrix,
    aggregate_gbps)`` where the aggregate is the network-wide sum of
    per-site offered demand — ready to hand to the fluid engine as the
    offered load.
    """
    demand = user_demand_gbps(
        sites,
        hour_utc=hour_utc,
        seed=seed,
        users_per_capita=users_per_capita,
        users_millions=users_millions,
        per_user_kbps=per_user_kbps,
        trough_fraction=trough_fraction,
    )
    h = np.outer(demand, demand)
    np.fill_diagonal(h, 0.0)
    return _normalize(h), float(demand.sum())


def user_demand_pairs(
    sites: list[Site],
    hour_utc: float = PEAK_LOCAL_HOUR,
    seed: int = 0,
    users_per_capita: float = DEFAULT_USERS_PER_CAPITA,
    users_millions: float | None = None,
    per_user_kbps: float = DEFAULT_PER_USER_KBPS,
    trough_fraction: float = 0.25,
) -> tuple[np.ndarray, np.ndarray, float]:
    """The million-user demand layer in array form.

    Returns ``(pairs, demands_gbps, aggregate_gbps)`` where ``pairs`` /
    ``demands_gbps`` are the positive site pairs and their absolute
    offered demands (``shares * aggregate``) — the direct input for an
    array-native (``workload="table"``) fluid evaluation.
    """
    matrix, aggregate_gbps = user_demand_matrix(
        sites,
        hour_utc=hour_utc,
        seed=seed,
        users_per_capita=users_per_capita,
        users_millions=users_millions,
        per_user_kbps=per_user_kbps,
        trough_fraction=trough_fraction,
    )
    pairs, shares = demand_pairs(matrix)
    return pairs, shares * aggregate_gbps, aggregate_gbps
