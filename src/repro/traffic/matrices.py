"""Traffic matrices (paper §4, §6.3, §6.4).

The paper's primary model sets h_ij proportional to the product of the
populations of cities i and j.  Two alternative deployment models are
studied: uniform traffic between data centers (DC-DC), and traffic from
each city to its nearest data center, proportional to city population
(city-DC).  Section 6.4 mixes the three in ratios like 4:3:3 and §5
perturbs populations by a factor drawn from U[1-gamma, 1+gamma].

A traffic matrix here is a dense symmetric (n, n) numpy array with a
zero diagonal.  Matrices are normalized so entries sum to 1 over the
upper triangle; scaling to an aggregate demand in Gbps happens at the
point of use (capacity augmentation, packet simulation).
"""

from __future__ import annotations

import numpy as np

from ..datasets.sites import Site
from ..geo.coords import haversine_km


def _normalize(matrix: np.ndarray) -> np.ndarray:
    """Scale a symmetric demand matrix so the upper triangle sums to 1."""
    upper = np.triu(matrix, k=1)
    total = upper.sum()
    if total <= 0:
        raise ValueError("traffic matrix has no demand")
    result = matrix / total
    np.fill_diagonal(result, 0.0)
    return result


def population_product_matrix(sites: list[Site]) -> np.ndarray:
    """h_ij ~ population_i * population_j (the paper's city-city model)."""
    pops = np.array([float(s.population) for s in sites])
    if np.all(pops == 0):
        raise ValueError("all sites have zero population")
    h = np.outer(pops, pops)
    np.fill_diagonal(h, 0.0)
    return _normalize(h)


def perturbed_population_matrix(
    sites: list[Site], gamma: float, seed: int = 0
) -> np.ndarray:
    """Population-product matrix with per-city perturbation (§5).

    Each city's population is re-weighted by a factor drawn from
    U[1 - gamma, 1 + gamma].
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must be in [0, 1]")
    rng = np.random.default_rng(seed)
    pops = np.array([float(s.population) for s in sites])
    weights = rng.uniform(1.0 - gamma, 1.0 + gamma, size=len(sites))
    h = np.outer(pops * weights, pops * weights)
    np.fill_diagonal(h, 0.0)
    return _normalize(h)


def dc_to_dc_matrix(sites: list[Site], dc_indices: list[int]) -> np.ndarray:
    """Equal demand between every data-center pair (§6.3).

    ``dc_indices`` index into ``sites``; all other sites get no demand.
    """
    if len(dc_indices) < 2:
        raise ValueError("need at least two data centers")
    n = len(sites)
    h = np.zeros((n, n))
    for i in dc_indices:
        for j in dc_indices:
            if i != j:
                h[i, j] = 1.0
    return _normalize(h)


def city_to_dc_matrix(sites: list[Site], dc_indices: list[int]) -> np.ndarray:
    """Each city sends to its nearest DC, proportional to population (§6.3)."""
    if not dc_indices:
        raise ValueError("need at least one data center")
    n = len(sites)
    dc_set = set(dc_indices)
    h = np.zeros((n, n))
    for i, site in enumerate(sites):
        if i in dc_set or site.population <= 0:
            continue
        nearest = min(
            dc_indices,
            key=lambda d: haversine_km(site.lat, site.lon, sites[d].lat, sites[d].lon),
        )
        h[i, nearest] += float(site.population)
        h[nearest, i] += float(site.population)
    return _normalize(h)


def mixed_matrix(
    components: list[tuple[np.ndarray, float]],
) -> np.ndarray:
    """Convex mix of normalized traffic matrices (§6.4).

    Args:
        components: (matrix, weight) pairs; weights need not sum to 1
            (e.g., the paper's 4:3:3 city-city : city-DC : DC-DC mix).
    """
    if not components:
        raise ValueError("need at least one component")
    total_w = sum(w for _, w in components)
    if total_w <= 0:
        raise ValueError("weights must be positive")
    n = components[0][0].shape[0]
    h = np.zeros((n, n))
    for matrix, weight in components:
        if matrix.shape != (n, n):
            raise ValueError("component shapes differ")
        h += _normalize(matrix) * (weight / total_w)
    return _normalize(h)


def demands_gbps(matrix: np.ndarray, aggregate_gbps: float) -> np.ndarray:
    """Scale a normalized matrix to an aggregate demand (sum of all
    site-site demands) in Gbps.  Returns a symmetric matrix whose upper
    triangle sums to ``aggregate_gbps``."""
    if aggregate_gbps <= 0:
        raise ValueError("aggregate demand must be positive")
    return _normalize(matrix) * aggregate_gbps
