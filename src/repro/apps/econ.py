"""Cost-benefit analysis (paper §8).

Lower-bound value-per-GB estimates for three application areas, computed
from the paper's cited industry figures, for comparison against cISP's
~$0.81/GB amortized cost:

* Web search:  $1.84 ($3.74) per GB for a 200 ms (400 ms) speedup;
* E-commerce:  $3.26-$22.82 per GB at a 200 ms speedup with <10% of
  bytes carried on cISP;
* Gaming:      >= $3.7 per GB, from accelerated-VPN price points.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Seconds per year.
_SECONDS_PER_YEAR = 365.25 * 86_400


def _gb_per_year(traffic_gbps: float) -> float:
    if traffic_gbps <= 0:
        raise ValueError("traffic must be positive")
    return traffic_gbps / 8.0 * _SECONDS_PER_YEAR


@dataclass(frozen=True)
class ValueEstimate:
    """A value-per-GB estimate with its inputs.

    Attributes:
        label: scenario name.
        low_usd_per_gb / high_usd_per_gb: the estimate range.
    """

    label: str
    low_usd_per_gb: float
    high_usd_per_gb: float

    def exceeds_cost(self, cost_per_gb: float) -> bool:
        """Does even the low estimate beat the network's cost?"""
        return self.low_usd_per_gb > cost_per_gb


def web_search_value(
    yearly_profit_gain_200ms_usd: float = 87e6,
    yearly_profit_gain_400ms_usd: float = 177e6,
    search_traffic_gbps: float = 12.0,
) -> ValueEstimate:
    """Google search speedup value (paper: $1.84-$3.74 per GB).

    The paper combines Google's 400 ms -> -0.7% searches sensitivity,
    US search revenue, search volume, and data per search into added
    yearly profit for speeding up 12 Gbps of US search traffic.
    """
    gb = _gb_per_year(search_traffic_gbps)
    return ValueEstimate(
        label="web-search",
        low_usd_per_gb=yearly_profit_gain_200ms_usd / gb,
        high_usd_per_gb=yearly_profit_gain_400ms_usd / gb,
    )


def ecommerce_value(
    yearly_profit_usd: float = 7.9e9,
    conversion_sensitivity_per_100ms: tuple[float, float] = (0.01, 0.07),
    speedup_ms: float = 200.0,
    yearly_traffic_pb: float = 483.0,
    cisp_byte_fraction: float = 0.10,
) -> ValueEstimate:
    """Amazon-style e-commerce value (paper: $3.26-$22.82 per GB).

    Profit gain = profits x sensitivity x (speedup / 100 ms); value per
    *cISP* GB divides by only the fraction of bytes cISP must carry
    (§7.2: a 200 ms PLT saving needs <10% of page bytes on cISP).
    """
    if not 0 < cisp_byte_fraction <= 1:
        raise ValueError("byte fraction must be in (0, 1]")
    lo_sens, hi_sens = conversion_sensitivity_per_100ms
    factor = speedup_ms / 100.0
    gb_on_cisp = yearly_traffic_pb * 1e6 * cisp_byte_fraction
    return ValueEstimate(
        label="e-commerce",
        low_usd_per_gb=yearly_profit_usd * lo_sens * factor / gb_on_cisp,
        high_usd_per_gb=yearly_profit_usd * hi_sens * factor / gb_on_cisp,
    )


def gaming_value(
    vpn_price_usd_per_month: float = 4.0,
    hours_per_day: float = 8.0,
    rate_kbps: float = 10.0,
) -> ValueEstimate:
    """Accelerated-VPN-anchored gaming value (paper: >= $3.7 per GB).

    A full-time gamer at ``rate_kbps`` moves ~1.08 GB/month; dividing a
    cheap VPN subscription by that volume lower-bounds the per-GB value.
    The upper bound uses the paper's $10/month VPN price point.
    """
    if hours_per_day <= 0 or hours_per_day > 24:
        raise ValueError("hours per day must be in (0, 24]")
    gb_per_month = rate_kbps * 1000 / 8 * hours_per_day * 3600 * 30.44 / 1e9
    return ValueEstimate(
        label="gaming",
        low_usd_per_gb=vpn_price_usd_per_month / gb_per_month,
        high_usd_per_gb=10.0 / gb_per_month,
    )


def all_estimates() -> list[ValueEstimate]:
    """The paper's three §8 scenarios with default inputs."""
    return [web_search_value(), ecommerce_value(), gaming_value()]


def econ_records(cost_per_gb: float = 0.81) -> list[dict]:
    """The §8 table as tidy records (the econ stage): one row per scenario."""
    return [
        {
            "stage": "econ",
            "scenario": est.label,
            "cost_per_gb": float(cost_per_gb),
            "low_usd_per_gb": float(est.low_usd_per_gb),
            "high_usd_per_gb": float(est.high_usd_per_gb),
            "justifies": bool(est.exceeds_cost(cost_per_gb)),
        }
        for est in all_estimates()
    ]


def value_summary(cost_per_gb: float = 0.81) -> dict[str, dict[str, float | bool]]:
    """§8's bottom line: every scenario's value exceeds the cost."""
    summary = {}
    for est in all_estimates():
        summary[est.label] = {
            "low_usd_per_gb": est.low_usd_per_gb,
            "high_usd_per_gb": est.high_usd_per_gb,
            "exceeds_cost": est.exceeds_cost(cost_per_gb),
        }
    return summary
