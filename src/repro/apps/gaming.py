"""Online-gaming latency models (paper §7.1, Fig 12).

Two client models:

* *fat client* — gameplay traffic is tiny (a few Kbps) and entirely
  latency-bound; routing it over cISP cuts latency by the network's
  stretch advantage (3-4x against today's Internet).
* *thin client* — the server streams frames; the paper evaluates a
  speculative-execution scheme (after Outatime): the server pre-sends
  frames for all four possible moves over cheap fiber, and a tiny
  "which scenario happened" message travels over the low-latency
  network.  Frame time then tracks the *fast* path's RTT, not fiber's.

The tick simulator below plays a toy multi-player Pacman variant, as in
the paper, and measures frame time (input -> observed output) as
conventional latency grows, with and without the low-latency
augmentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The four speculated movement directions of the paper's Pacman toy.
DIRECTIONS = ("up", "down", "left", "right")

#: The low-latency path's latency relative to conventional (paper: 1/3).
DEFAULT_FAST_FRACTION = 1.0 / 3.0


def fast_fraction_from_topology(topology) -> float:
    """The fast path's latency fraction implied by a designed network.

    The thin/fat-client models express the low-latency path as a
    fraction of the conventional (fiber Internet) path's latency.  For
    a designed cISP that fraction is the ratio of its traffic-weighted
    mean stretch to the all-fiber baseline — the design stretch comes
    from the topology's memoized graph kernel, and the baseline
    directly from the fiber metric closure, so chaining this after a
    design costs no extra all-pairs solve.  The paper's default of 1/3
    corresponds to its 3x stretch advantage; a real design plugs in
    its own number here.
    """
    from ..core.topology import mean_stretch_from_distances

    # fiber_km is a metric closure (an already-solved all-pairs
    # answer), so the baseline needs no shortest-path solve.
    fiber_stretch = mean_stretch_from_distances(
        topology.design, topology.design.fiber_km
    )
    if fiber_stretch <= 0:
        raise ValueError("fiber baseline stretch must be positive")
    return min(1.0, topology.mean_stretch() / fiber_stretch)


@dataclass(frozen=True)
class FrameTimeStats:
    """Frame-time measurement for one configuration.

    Attributes:
        conventional_latency_ms: one-way latency of the conventional
            (fiber Internet) path.
        mean_frame_time_ms / p95_frame_time_ms: observed frame times.
        speculation_hit_rate: fraction of inputs whose next frame was
            already speculatively delivered.
    """

    conventional_latency_ms: float
    mean_frame_time_ms: float
    p95_frame_time_ms: float
    speculation_hit_rate: float


@dataclass
class PacmanState:
    """Toy multi-player Pacman: a grid walk with collectible pellets."""

    width: int = 20
    height: int = 20
    x: int = 10
    y: int = 10
    score: int = 0

    def apply(self, direction: str) -> "PacmanState":
        """The next state after moving in ``direction`` (toroidal grid)."""
        dx, dy = {
            "up": (0, -1),
            "down": (0, 1),
            "left": (-1, 0),
            "right": (1, 0),
        }[direction]
        nx = (self.x + dx) % self.width
        ny = (self.y + dy) % self.height
        # A pellet sits on every third cell; deterministic scoring keeps
        # speculated and authoritative states comparable.
        gained = 1 if (nx + ny) % 3 == 0 else 0
        return PacmanState(
            width=self.width, height=self.height, x=nx, y=ny, score=self.score + gained
        )


def simulate_thin_client(
    conventional_latency_ms: float,
    fast_fraction: float = DEFAULT_FAST_FRACTION,
    use_augmentation: bool = True,
    n_inputs: int = 500,
    processing_ms: float = 25.0,
    render_ms: float = 8.0,
    seed: int = 0,
) -> FrameTimeStats:
    """Tick-simulate the speculative thin client.

    Without augmentation the frame time is a full conventional RTT plus
    processing/render.  With augmentation the server pre-computes the
    four possible next frames and ships them over fiber *ahead of the
    input*; the input and the scenario-selection message ride the fast
    path, so the observed frame time is a fast-path RTT plus render —
    unless speculation missed (the frame data hasn't arrived yet), which
    falls back to the conventional path.
    """
    if conventional_latency_ms < 0:
        raise ValueError("latency must be non-negative")
    if not 0 < fast_fraction <= 1:
        raise ValueError("fast fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    state = PacmanState()
    fast_latency = conventional_latency_ms * fast_fraction
    frame_times = []
    hits = 0
    # The server speculates far enough ahead (one conventional RTT of
    # ticks) that frame data for every possible input is already
    # buffered at the client; only occasional state divergences
    # (multi-player interactions the per-direction speculation cannot
    # cover) force a conventional-path resync.
    miss_probability = 0.04
    for _ in range(n_inputs):
        direction = DIRECTIONS[int(rng.integers(4))]
        next_state = state.apply(direction)
        if use_augmentation:
            if rng.random() >= miss_probability:
                # Input up (fast) + scenario id down (fast) + render.
                frame_time = 2 * fast_latency + render_ms
                hits += 1
            else:
                # Miss: resync over the conventional path.
                frame_time = 2 * fast_latency + conventional_latency_ms + render_ms
        else:
            frame_time = (
                2 * conventional_latency_ms + processing_ms + render_ms
            )
        # Server-side processing jitter.
        frame_time += float(rng.uniform(0.0, 4.0))
        frame_times.append(frame_time)
        state = next_state
    ft = np.array(frame_times)
    return FrameTimeStats(
        conventional_latency_ms=conventional_latency_ms,
        mean_frame_time_ms=float(ft.mean()),
        p95_frame_time_ms=float(np.percentile(ft, 95)),
        speculation_hit_rate=hits / n_inputs if use_augmentation else 0.0,
    )


def frame_time_curve(
    latencies_ms,
    use_augmentation: bool,
    fast_fraction: float = DEFAULT_FAST_FRACTION,
    seed: int = 0,
) -> list[FrameTimeStats]:
    """Fig 12: frame time vs conventional latency, one point per value."""
    return [
        simulate_thin_client(
            float(lat),
            fast_fraction=fast_fraction,
            use_augmentation=use_augmentation,
            seed=seed,
        )
        for lat in latencies_ms
    ]


def fat_client_latency_ms(
    conventional_rtt_ms: float, fast_fraction: float = DEFAULT_FAST_FRACTION
) -> float:
    """Fat-client action latency over cISP: the full RTT shrinks to the
    fast path's (all gameplay bytes fit in the low-latency network)."""
    if conventional_rtt_ms < 0:
        raise ValueError("RTT must be non-negative")
    return conventional_rtt_ms * fast_fraction
