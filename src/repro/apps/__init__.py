"""Application-level models: gaming, web browsing, cost-benefit."""

from .econ import (
    ValueEstimate,
    all_estimates,
    ecommerce_value,
    econ_records,
    gaming_value,
    value_summary,
    web_search_value,
)
from .integration import (
    DEFAULT_CLASSES,
    Allocation,
    FastPathPlan,
    TrafficClass,
    breakeven_capacity_gbps,
    plan_fast_path,
    plan_records,
)
from .gaming import (
    DIRECTIONS,
    FrameTimeStats,
    PacmanState,
    fat_client_latency_ms,
    frame_time_curve,
    simulate_thin_client,
)
from .web import (
    CorpusComparison,
    LoadResult,
    WebObject,
    WebPage,
    compare_corpus,
    load_page,
    synthesize_page,
    synthesize_pages,
)

__all__ = [
    "DEFAULT_CLASSES",
    "Allocation",
    "FastPathPlan",
    "TrafficClass",
    "breakeven_capacity_gbps",
    "plan_fast_path",
    "plan_records",
    "ValueEstimate",
    "all_estimates",
    "ecommerce_value",
    "econ_records",
    "gaming_value",
    "value_summary",
    "web_search_value",
    "DIRECTIONS",
    "FrameTimeStats",
    "PacmanState",
    "fat_client_latency_ms",
    "frame_time_curve",
    "simulate_thin_client",
    "CorpusComparison",
    "LoadResult",
    "WebObject",
    "WebPage",
    "compare_corpus",
    "load_page",
    "synthesize_page",
    "synthesize_pages",
]
