"""Internet-integration planning (paper §6.6).

A cISP is bandwidth-scarce: an adopting ISP or content provider must
decide *which* traffic rides the fast path.  The paper sketches the
deployment modes (CDN back-office, content-provider WANs, gaming
networks, access-ISP fast-path SLAs) and notes ISPs "may use heuristics
to classify latency-sensitive traffic and transit it using cISP".

This module makes that concrete: traffic classes with volumes and
latency-value densities, and a planner that fills the cISP's capacity
in value order (the fractional-knapsack optimum for divisible traffic).
Default classes follow the paper's §7/§8 numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TrafficClass:
    """One class of candidate fast-path traffic.

    Attributes:
        name: label ("gaming", "web-requests", ...).
        volume_gbps: how much of it there is.
        value_per_gb: dollar value per GB of moving it to the fast path
            (from latency sensitivity, per §8's methodology).
        latency_sensitive: classes that gain nothing stay off the fast
            path no matter how much capacity is spare.
    """

    name: str
    volume_gbps: float
    value_per_gb: float
    latency_sensitive: bool = True

    def __post_init__(self) -> None:
        if self.volume_gbps < 0:
            raise ValueError("volume must be non-negative")
        if self.value_per_gb < 0:
            raise ValueError("value must be non-negative")


@dataclass(frozen=True)
class Allocation:
    """A class's share of the fast path."""

    traffic_class: TrafficClass
    admitted_gbps: float

    @property
    def fraction_admitted(self) -> float:
        if self.traffic_class.volume_gbps == 0:
            return 0.0
        return self.admitted_gbps / self.traffic_class.volume_gbps


@dataclass(frozen=True)
class FastPathPlan:
    """The planner's output.

    Attributes:
        allocations: per-class admitted volumes, in admission order.
        capacity_gbps: the fast path's capacity.
        value_per_year_usd: total yearly value of the admitted traffic.
    """

    allocations: tuple[Allocation, ...]
    capacity_gbps: float
    value_per_year_usd: float

    def admitted_gbps(self) -> float:
        return sum(a.admitted_gbps for a in self.allocations)


#: §7/§8-derived default classes for a US-scale deployment.
DEFAULT_CLASSES: tuple[TrafficClass, ...] = (
    TrafficClass("gaming", volume_gbps=27.0, value_per_gb=3.7),
    TrafficClass("web-requests", volume_gbps=40.0, value_per_gb=3.26),
    TrafficClass("search", volume_gbps=12.0, value_per_gb=1.84),
    TrafficClass("rtb-and-finance", volume_gbps=5.0, value_per_gb=8.0),
    TrafficClass("video-streaming", volume_gbps=400.0, value_per_gb=0.02,
                 latency_sensitive=False),
    TrafficClass("bulk-transfer", volume_gbps=300.0, value_per_gb=0.0,
                 latency_sensitive=False),
)

_SECONDS_PER_YEAR = 365.25 * 86_400


def plan_fast_path(
    capacity_gbps: float,
    classes: tuple[TrafficClass, ...] = DEFAULT_CLASSES,
    min_value_per_gb: float = 0.0,
) -> FastPathPlan:
    """Fill the fast path in value order (fractional knapsack).

    Args:
        capacity_gbps: cISP capacity available for this deployment.
        classes: candidate traffic classes.
        min_value_per_gb: admission floor — traffic worth less than this
            per GB is left on the regular Internet even if capacity
            remains (it should not crowd out future high-value traffic).
    """
    if capacity_gbps <= 0:
        raise ValueError("capacity must be positive")
    eligible = [
        c
        for c in classes
        if c.latency_sensitive and c.value_per_gb >= min_value_per_gb
    ]
    ranked = sorted(eligible, key=lambda c: -c.value_per_gb)
    remaining = capacity_gbps
    allocations = []
    yearly_value = 0.0
    for cls in ranked:
        admitted = min(cls.volume_gbps, remaining)
        if admitted <= 0:
            allocations.append(Allocation(traffic_class=cls, admitted_gbps=0.0))
            continue
        remaining -= admitted
        gb_per_year = admitted / 8.0 * _SECONDS_PER_YEAR
        yearly_value += gb_per_year * cls.value_per_gb
        allocations.append(Allocation(traffic_class=cls, admitted_gbps=admitted))
    return FastPathPlan(
        allocations=tuple(allocations),
        capacity_gbps=capacity_gbps,
        value_per_year_usd=yearly_value,
    )


def plan_records(plan: FastPathPlan) -> list[dict]:
    """A plan as tidy records (the apps stage): one row per class.

    A final ``total`` row carries the plan-wide admitted volume and
    yearly value.
    """
    rows = [
        {
            "stage": "apps",
            "class": alloc.traffic_class.name,
            "admitted_gbps": float(alloc.admitted_gbps),
            "fraction_admitted": float(alloc.fraction_admitted),
            "value_per_gb": float(alloc.traffic_class.value_per_gb),
        }
        for alloc in plan.allocations
    ]
    rows.append(
        {
            "stage": "apps",
            "class": "total",
            "admitted_gbps": float(plan.admitted_gbps()),
            "capacity_gbps": float(plan.capacity_gbps),
            "value_per_year_usd": float(plan.value_per_year_usd),
        }
    )
    return rows


def breakeven_capacity_gbps(
    network_cost_usd_per_gb: float,
    classes: tuple[TrafficClass, ...] = DEFAULT_CLASSES,
) -> float:
    """Largest capacity at which the *marginal* admitted GB still pays.

    Capacity beyond the total volume of classes whose value exceeds the
    network's cost per GB would carry traffic that loses money.
    """
    if network_cost_usd_per_gb < 0:
        raise ValueError("cost must be non-negative")
    return sum(
        c.volume_gbps
        for c in classes
        if c.latency_sensitive and c.value_per_gb > network_cost_usd_per_gb
    )
