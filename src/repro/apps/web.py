"""Web page-load emulation (paper §7.2, Fig 13; Mahimahi substitute).

The paper replays 80 recorded Alexa pages under Mahimahi with RTTs
scaled to 0.33x (and, selectively, only the client-to-server direction
scaled).  Recorded page archives are unavailable offline, so we
synthesize pages from heavy-tailed web statistics (object counts, sizes,
origins, dependency depth) and run them through a load-time engine that
models what RTT reduction actually touches:

* TCP handshake per new connection (subject to a per-origin limit);
* request upstream + server think + response downstream;
* slow-start rounds for objects larger than the initial window;
* dependency discovery (an object is requested only after its parent
  has loaded and been parsed).

Client-to-server and server-to-client latency scale independently, so
the paper's "cISP-selective" mode (only c2s over cISP, ~8.5% of bytes)
falls out naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: TCP maximum segment size used for slow-start round counting.
MSS_BYTES = 1460

#: Initial congestion window, segments.
INIT_CWND = 10

#: Per-origin parallel connection limit (browser default).
MAX_CONNECTIONS_PER_ORIGIN = 6


@dataclass(frozen=True)
class WebObject:
    """One fetchable resource.

    Attributes:
        obj_id: index within the page.
        origin: origin index (connection pools are per origin).
        size_bytes: response body size.
        request_bytes: request size (headers).
        parent: obj_id of the discovering resource (None for the root).
        parse_delay_ms: time between the parent finishing and this
            object's request being issued.
        server_think_ms: backend processing time.
    """

    obj_id: int
    origin: int
    size_bytes: int
    request_bytes: int
    parent: int | None
    parse_delay_ms: float
    server_think_ms: float


@dataclass(frozen=True)
class WebPage:
    """A synthetic page: objects plus per-origin baseline RTTs.

    Attributes:
        objects: the page's resources (object 0 is the root HTML).
        origin_rtts_ms: baseline RTT per origin.
        onload_compute_ms: client-side JS/layout/paint time between the
            last fetch and the onLoad event — pure compute that no RTT
            reduction can shrink (the reason the paper's PLT gain, 31%,
            is smaller than its 66% RTT reduction).
    """

    objects: tuple[WebObject, ...]
    origin_rtts_ms: tuple[float, ...]
    onload_compute_ms: float = 0.0

    @property
    def total_bytes(self) -> int:
        return sum(o.size_bytes + o.request_bytes for o in self.objects)

    @property
    def upstream_bytes(self) -> int:
        return sum(o.request_bytes for o in self.objects)


@dataclass(frozen=True)
class LoadResult:
    """Outcome of loading one page.

    Attributes:
        plt_ms: page load time (onLoad: last object finished).
        object_load_times_ms: per-object fetch durations, aligned with
            the page's object tuple.
    """

    plt_ms: float
    object_load_times_ms: tuple[float, ...]


def synthesize_page(seed: int) -> WebPage:
    """One page drawn from heavy-tailed web-content distributions."""
    rng = np.random.default_rng(seed)
    n_objects = int(np.clip(rng.lognormal(np.log(40), 0.7), 3, 220))
    n_origins = int(np.clip(rng.integers(1, 9), 1, n_objects))
    origin_rtts = tuple(
        float(np.clip(rng.lognormal(np.log(60), 0.5), 15.0, 400.0))
        for _ in range(n_origins)
    )
    objects = []
    for i in range(n_objects):
        if i == 0:
            parent = None
            origin = 0
            size = int(np.clip(rng.lognormal(np.log(25_000), 0.8), 2_000, 400_000))
        else:
            # Parents skew early (the HTML and top scripts discover most
            # resources).
            parent = int(rng.integers(0, max(1, min(i, 8))))
            origin = int(rng.integers(0, n_origins))
            if rng.random() < 0.35:
                size = int(rng.uniform(120, MSS_BYTES))  # small: beacons, icons
            else:
                size = int(np.clip(rng.lognormal(np.log(11_000), 1.2), 500, 2_000_000))
        # Small static objects (icons, beacons) are served fast; larger
        # dynamic responses carry real backend time.
        if size < MSS_BYTES:
            think = float(rng.uniform(2.0, 25.0))
        else:
            think = float(rng.uniform(15.0, 90.0))
        objects.append(
            WebObject(
                obj_id=i,
                origin=origin,
                size_bytes=size,
                # Cookies and headers make modern requests heavy; the
                # upstream share of page bytes lands near the paper's 8.5%.
                request_bytes=int(rng.uniform(500, 1800)),
                parent=parent,
                # Client-side compute (parse, JS, layout) does not shrink
                # with RTT; it bounds the PLT gain at the paper's ~31%.
                parse_delay_ms=float(rng.uniform(10.0, 110.0)),
                server_think_ms=think,
            )
        )
    return WebPage(
        objects=tuple(objects),
        origin_rtts_ms=origin_rtts,
        onload_compute_ms=float(np.clip(rng.lognormal(np.log(650), 0.35), 100, 3000)),
    )


def synthesize_pages(n_pages: int = 80, seed: int = 1) -> list[WebPage]:
    """The experiment corpus (the paper samples 80 Alexa pages)."""
    if n_pages <= 0:
        raise ValueError("need at least one page")
    return [synthesize_page(seed * 10_000 + k) for k in range(n_pages)]


def _slow_start_rounds(size_bytes: int) -> int:
    """Extra RTTs beyond the first response round, per TCP slow start."""
    segments = -(-size_bytes // MSS_BYTES)
    cwnd = INIT_CWND
    rounds = 0
    delivered = cwnd
    while delivered < segments:
        cwnd *= 2
        delivered += cwnd
        rounds += 1
    return rounds


def load_page(
    page: WebPage,
    c2s_scale: float = 1.0,
    s2c_scale: float = 1.0,
) -> LoadResult:
    """Compute the page's load schedule under scaled latencies.

    Args:
        page: the page to load.
        c2s_scale: multiplier on client-to-server one-way latency
            (0.33 when requests ride cISP).
        s2c_scale: multiplier on server-to-client latency.
    """
    if c2s_scale <= 0 or s2c_scale <= 0:
        raise ValueError("latency scales must be positive")
    # Per-origin connection pools: next-free times, lazily grown to the
    # connection limit; each new connection pays a handshake RTT.
    pools: dict[int, list[float]] = {}
    handshaken: dict[int, int] = {}

    def rtt_ms(origin: int) -> float:
        base = page.origin_rtts_ms[origin]
        return base * 0.5 * c2s_scale + base * 0.5 * s2c_scale

    finish: dict[int, float] = {}
    olt: dict[int, float] = {}
    # Objects are discoverable only after their parent; process in
    # topological (id) order — parents always have smaller ids.
    for obj in page.objects:
        ready = 0.0 if obj.parent is None else finish[obj.parent] + obj.parse_delay_ms
        pool = pools.setdefault(obj.origin, [])
        if len(pool) < MAX_CONNECTIONS_PER_ORIGIN:
            # Open a new connection: one handshake round trip.
            conn_free = ready + rtt_ms(obj.origin)
            pool.append(conn_free)
            idx = len(pool) - 1
            handshaken[obj.origin] = handshaken.get(obj.origin, 0) + 1
            start = conn_free
        else:
            idx = int(np.argmin(pool))
            start = max(ready, pool[idx])
        rounds = 1 + _slow_start_rounds(obj.size_bytes)
        duration = obj.server_think_ms + rounds * rtt_ms(obj.origin)
        end = start + duration
        pool[idx] = end
        finish[obj.obj_id] = end
        olt[obj.obj_id] = end - ready
    plt = max(finish.values()) + page.onload_compute_ms
    return LoadResult(
        plt_ms=float(plt),
        object_load_times_ms=tuple(olt[o.obj_id] for o in page.objects),
    )


@dataclass(frozen=True)
class CorpusComparison:
    """Fig 13 aggregates over a page corpus.

    Attributes:
        baseline_plts / cisp_plts / selective_plts: per-page PLTs, ms.
        baseline_olts / cisp_olts / selective_olts: pooled per-object
            load times, ms.
        small_object_mask: True where the pooled object is < 1460 B.
        upstream_byte_fraction: share of total bytes that ride cISP in
            selective mode.
    """

    baseline_plts: np.ndarray
    cisp_plts: np.ndarray
    selective_plts: np.ndarray
    baseline_olts: np.ndarray
    cisp_olts: np.ndarray
    selective_olts: np.ndarray
    small_object_mask: np.ndarray
    upstream_byte_fraction: float

    def median_plt_reduction(self, which: str = "cisp") -> float:
        """Relative reduction of the median PLT vs baseline."""
        target = self.cisp_plts if which == "cisp" else self.selective_plts
        base = float(np.median(self.baseline_plts))
        return (base - float(np.median(target))) / base

    def median_olt_reduction(self, small_only: bool = False) -> float:
        """Relative reduction of the median object load time."""
        mask = self.small_object_mask if small_only else np.ones_like(
            self.small_object_mask
        )
        base = float(np.median(self.baseline_olts[mask.astype(bool)]))
        cisp = float(np.median(self.cisp_olts[mask.astype(bool)]))
        return (base - cisp) / base


def compare_corpus(
    pages: list[WebPage], cisp_scale: float = 1.0 / 3.0
) -> CorpusComparison:
    """Load every page under baseline / cISP / cISP-selective latencies."""
    if not pages:
        raise ValueError("empty corpus")
    b_plt, c_plt, s_plt = [], [], []
    b_olt, c_olt, s_olt, small = [], [], [], []
    up_bytes = 0
    total_bytes = 0
    for page in pages:
        base = load_page(page)
        cisp = load_page(page, c2s_scale=cisp_scale, s2c_scale=cisp_scale)
        sel = load_page(page, c2s_scale=cisp_scale, s2c_scale=1.0)
        b_plt.append(base.plt_ms)
        c_plt.append(cisp.plt_ms)
        s_plt.append(sel.plt_ms)
        b_olt.extend(base.object_load_times_ms)
        c_olt.extend(cisp.object_load_times_ms)
        s_olt.extend(sel.object_load_times_ms)
        small.extend(o.size_bytes < MSS_BYTES for o in page.objects)
        up_bytes += page.upstream_bytes
        total_bytes += page.total_bytes
    return CorpusComparison(
        baseline_plts=np.array(b_plt),
        cisp_plts=np.array(c_plt),
        selective_plts=np.array(s_plt),
        baseline_olts=np.array(b_olt),
        cisp_olts=np.array(c_olt),
        selective_olts=np.array(s_olt),
        small_object_mask=np.array(small, dtype=bool),
        upstream_byte_fraction=up_bytes / total_bytes,
    )
