"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``design``  — design a cISP for a scenario and print the summary
  (optionally the ASCII map).  ``--solver`` picks any registered
  topology backend (heuristic, ilp, lp_rounding, exhaustive,
  evolution).
* ``solvers`` — list the registered topology-solver backends.
* ``sweep``   — budget sweep (the Fig 4a curve) for a scenario.
* ``netsim``  — simulate offered load on a designed network with the
  packet engine or the fluid fast path (the Fig 5 methodology).
* ``weather`` — yearly weather analysis for a designed network.
* ``econ``    — the §8 value-per-GB table.

Examples::

    python -m repro design --scenario us --sites 30 --budget 1000 --map
    python -m repro design --scenario us --sites 12 --solver ilp
    python -m repro sweep --scenario us --sites 40 --max-budget 3000
    python -m repro netsim --scenario us --sites 20 --engine fluid \\
        --loads 0.3,0.6,0.9
    python -m repro weather --sites 30 --budget 1000 --intervals 120
    python -m repro econ --cost-per-gb 0.81
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _get_scenario(name: str, sites: int):
    from .scenarios import europe_scenario, interdc_scenario, us_scenario

    if name == "us":
        return us_scenario(n_sites=sites)
    if name == "europe":
        return europe_scenario()
    if name == "interdc":
        return interdc_scenario()
    raise SystemExit(f"unknown scenario {name!r} (us, europe, interdc)")


def _cmd_design(args: argparse.Namespace) -> int:
    from .core import design_network
    from .viz import render_topology

    scenario = _get_scenario(args.scenario, args.sites)
    solver_kwargs = {}
    if args.solver == "heuristic":
        # The CLI favors speed; pass --refine to run the restricted ILP.
        solver_kwargs["ilp_refinement"] = args.refine
    result = design_network(
        scenario.design_input(),
        budget_towers=args.budget,
        aggregate_gbps=args.gbps,
        catalog=scenario.catalog,
        registry=scenario.registry,
        solver=args.solver,
        **solver_kwargs,
    )
    print(f"scenario:        {scenario.name} ({scenario.n_sites} sites)")
    print(f"solver:          {result.backend} "
          f"({result.solve_outcome.runtime_s:.2f}s)")
    print(f"budget:          {args.budget:.0f} towers "
          f"({result.towers_used:.0f} used)")
    print(f"MW links:        {result.mw_link_count}")
    print(f"mean stretch:    {result.mean_stretch:.4f} "
          f"(fiber: {result.fiber_mean_stretch:.3f})")
    if result.cost_per_gb_usd is not None:
        print(f"cost per GB:     ${result.cost_per_gb_usd:.2f} "
              f"at {args.gbps:.0f} Gbps")
    if args.map:
        print()
        print(render_topology(result.topology, result.augmentation))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .core import greedy_sequence

    scenario = _get_scenario(args.scenario, args.sites)
    steps = greedy_sequence(scenario.design_input(), args.max_budget)
    print("budget_towers  mean_stretch  links")
    n_points = max(args.points, 2)
    for budget in np.linspace(0, args.max_budget, n_points):
        prefix = [s for s in steps if s.cumulative_cost <= budget]
        if prefix:
            print(f"{budget:13.0f}  {prefix[-1].mean_stretch:12.4f}  {len(prefix):5d}")
    return 0


def _cmd_netsim(args: argparse.Namespace) -> int:
    import time

    from .core import solve_heuristic
    from .netsim import run_udp_experiment

    scenario = _get_scenario(args.scenario, args.sites)
    topology = solve_heuristic(
        scenario.design_input(), args.budget, ilp_refinement=False
    ).topology
    try:
        loads = [float(x) for x in args.loads.split(",") if x]
    except ValueError:
        raise SystemExit(f"bad --loads value {args.loads!r}")
    if not loads:
        raise SystemExit("--loads needs at least one load fraction")
    if any(not 0 < load <= 1.5 for load in loads):
        raise SystemExit("--loads fractions must be in (0, 1.5]")
    print(f"scenario:  {scenario.name} ({scenario.n_sites} sites, "
          f"budget {args.budget:.0f} towers)")
    print(f"engine:    {args.engine}")
    print("load  mean_delay_ms  loss_rate  max_link_util  runtime_s")
    for load in loads:
        t0 = time.perf_counter()
        res = run_udp_experiment(
            topology,
            args.gbps,
            load,
            duration_s=args.duration,
            seed=args.seed,
            engine=args.engine,
        )
        runtime = time.perf_counter() - t0
        print(f"{load:4.2f}  {res.mean_delay_ms:13.3f}  {res.loss_rate:9.4f}  "
              f"{res.max_link_utilization:13.3f}  {runtime:9.3f}")
    return 0


def _cmd_weather(args: argparse.Namespace) -> int:
    from .core import solve_heuristic
    from .scenarios import us_scenario
    from .weather import yearly_stretch_analysis

    scenario = us_scenario(n_sites=args.sites)
    topology = solve_heuristic(
        scenario.design_input(), args.budget, ilp_refinement=False
    ).topology
    result = yearly_stretch_analysis(
        topology, scenario.catalog, scenario.registry, n_intervals=args.intervals
    )
    print("series  median  p95")
    for label, values in (
        ("best", result.best),
        ("p99", result.p99),
        ("worst", result.worst),
        ("fiber", result.fiber),
    ):
        print(f"{label:6s}  {np.median(values):.3f}  "
              f"{np.percentile(values, 95):.3f}")
    return 0


def _cmd_econ(args: argparse.Namespace) -> int:
    from .apps import all_estimates

    print(f"network cost: ${args.cost_per_gb:.2f}/GB")
    print("scenario      low_$per_GB  high_$per_GB  justifies")
    for est in all_estimates():
        print(
            f"{est.label:12s}  {est.low_usd_per_gb:11.2f}  "
            f"{est.high_usd_per_gb:12.2f}  {est.exceeds_cost(args.cost_per_gb)}"
        )
    return 0


def _cmd_solvers(args: argparse.Namespace) -> int:
    from .core import get_solver, solver_names

    print("backend      description")
    for name in solver_names():
        solver = get_solver(name)
        doc_lines = (type(solver).__doc__ or "").strip().splitlines()
        print(f"{name:12s} {doc_lines[0] if doc_lines else '(no description)'}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from .core import solver_names

    parser = argparse.ArgumentParser(
        prog="repro",
        description="cISP (NSDI 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("design", help="design a cISP network")
    p.add_argument("--scenario", default="us")
    p.add_argument("--sites", type=int, default=30)
    p.add_argument("--budget", type=float, default=1000.0)
    p.add_argument("--gbps", type=float, default=100.0)
    p.add_argument(
        "--solver",
        default="heuristic",
        choices=solver_names(),
        help="topology-solver backend (see the 'solvers' command)",
    )
    p.add_argument(
        "--refine",
        action="store_true",
        help="heuristic only: run the restricted final ILP (slower)",
    )
    p.add_argument("--map", action="store_true", help="print the ASCII map")
    p.set_defaults(func=_cmd_design)

    p = sub.add_parser("solvers", help="list topology-solver backends")
    p.set_defaults(func=_cmd_solvers)

    p = sub.add_parser("sweep", help="budget sweep (Fig 4a)")
    p.add_argument("--scenario", default="us")
    p.add_argument("--sites", type=int, default=30)
    p.add_argument("--max-budget", type=float, default=3000.0)
    p.add_argument("--points", type=int, default=10)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "netsim", help="simulate load on a designed network (Fig 5)"
    )
    p.add_argument("--scenario", default="us")
    p.add_argument("--sites", type=int, default=20)
    p.add_argument("--budget", type=float, default=800.0)
    p.add_argument("--gbps", type=float, default=100.0,
                   help="design aggregate the network is provisioned for")
    p.add_argument(
        "--engine",
        default="packet",
        choices=("packet", "fluid"),
        help="packet: per-packet simulation; fluid: max-min fast path",
    )
    p.add_argument("--loads", default="0.3,0.6,0.9",
                   help="comma-separated offered-load fractions")
    p.add_argument("--duration", type=float, default=0.5,
                   help="simulated seconds per load point (packet engine)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_netsim)

    p = sub.add_parser("weather", help="yearly weather analysis (Fig 7)")
    p.add_argument("--sites", type=int, default=30)
    p.add_argument("--budget", type=float, default=1000.0)
    p.add_argument("--intervals", type=int, default=120)
    p.set_defaults(func=_cmd_weather)

    p = sub.add_parser("econ", help="cost-benefit table (§8)")
    p.add_argument("--cost-per-gb", type=float, default=0.81)
    p.set_defaults(func=_cmd_econ)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
