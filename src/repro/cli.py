"""Command-line interface: ``python -m repro <command>``.

Every command is a thin constructor over the experiment orchestration
layer (:mod:`repro.exp`): it builds a seed-pinned
:class:`~repro.exp.ExperimentSpec`, runs it through the stage DAG
``substrate → design → {netsim, weather, apps, econ}``, and prints the
resulting records.  Expensive stages (substrate build, topology solve)
are memoized in a content-addressed artifact store shared across
processes and sessions — rerunning a command, or sweeping around it,
reuses everything whose spec slice did not change.

Commands:

* ``design``  — design a cISP for a scenario and print the summary
  (optionally the ASCII map).  ``--solver`` picks any registered
  topology backend (heuristic, ilp, lp_rounding, exhaustive,
  evolution).
* ``solvers`` — list the registered topology-solver backends.
* ``sweep``   — budget sweep (the Fig 4a curve); ``--jobs N`` fans the
  points out over worker processes.
* ``netsim``  — simulate offered load on a designed network with the
  packet engine or the fluid fast path (the Fig 5 methodology).
* ``weather`` — yearly weather analysis for a designed network.
* ``econ``    — the §8 value-per-GB table.
* ``run``     — execute a spec file (single experiment or multi-axis
  sweep) and print/emit the tidy records table.

Examples::

    python -m repro design --scenario us --sites 30 --budget 1000 --map
    python -m repro design --scenario us --sites 12 --solver ilp
    python -m repro sweep --scenario us --sites 40 --max-budget 3000 --jobs 4
    python -m repro netsim --scenario us --sites 20 --engine fluid \\
        --loads 0.3,0.6,0.9
    python -m repro weather --sites 30 --budget 1000 --intervals 120
    python -m repro econ --cost-per-gb 0.81
    python -m repro run examples/specs/us_budget_load_sweep.json --jobs 4

Caching flags (on every experiment command): ``--cache-dir PATH``
points the artifact store somewhere explicit, ``--no-cache`` disables
it; the default location is ``$REPRO_ARTIFACT_DIR`` or
``~/.cache/repro/artifacts``.

Sweeps (``sweep`` and multi-axis ``run``) execute through the
fault-tolerant :class:`~repro.exp.SweepService` whenever a journal
location exists (an on-disk store or ``--journal-dir``): every point is
checkpointed, failing points retry up to ``--retries`` then quarantine
into ``failures.json`` (exit 1), and Ctrl-C checkpoints the journal and
prints the exact ``--resume`` command (exit 130) instead of discarding
completed work.  ``--fault-plan plan.json`` injects deterministic
worker kills / failures / delays / artifact corruption for chaos
testing.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Per-command default site counts for the sized scenarios (us/city_dc),
#: preserving the pre-orchestration CLI defaults.
_DEFAULT_SITES = {"design": 30, "sweep": 30, "netsim": 20, "weather": 30}


def _resolve_sites(args: argparse.Namespace, command: str) -> int | None:
    """CLI default sites for sized scenarios; None for fixed-site ones.

    An explicit ``--sites`` for a fixed-site scenario is passed through
    so the spec layer rejects it loudly (never silently ignored).
    """
    if args.sites is not None:
        return args.sites
    if args.scenario in ("us", "city_dc"):
        return _DEFAULT_SITES[command]
    return None


def _store_from_args(args: argparse.Namespace):
    from .exp import ArtifactStore, NullStore

    if getattr(args, "no_cache", False):
        return NullStore()
    if getattr(args, "cache_dir", None):
        return ArtifactStore(args.cache_dir)
    return ArtifactStore()


def _add_service_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume the sweep from its journal: execute only points "
        "without a recorded result (safe to pass on a fresh sweep)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=3,
        help="attempts per sweep point before it is quarantined "
        "(default: 3)",
    )
    p.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        help="wall-clock seconds per point attempt; the watchdog kills "
        "workers past it (pool mode only)",
    )
    p.add_argument(
        "--journal-dir",
        default=None,
        help="sweep journal directory (default: <store>/sweeps/<fingerprint>)",
    )
    p.add_argument(
        "--fault-plan",
        default=None,
        help="JSON fault-injection plan for chaos testing (see "
        "repro.exp.faults)",
    )


def _build_service(args: argparse.Namespace, spec, axes, store):
    """A SweepService for the CLI flags, or None to use plain SweepRunner.

    The plain runner only remains for ``--no-cache`` sweeps without a
    journal directory — there is nowhere durable to checkpoint them.
    """
    from .exp import FaultPlan, NullStore, RetryPolicy, SweepService

    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.from_json_file(args.fault_plan)
        except OSError as exc:
            raise SystemExit(f"cannot read fault plan: {exc}")
    journal_free = isinstance(store, NullStore) and args.journal_dir is None
    if journal_free:
        if args.resume:
            raise SystemExit(
                "--resume needs a journal: drop --no-cache or pass "
                "--journal-dir"
            )
        if fault_plan is not None:
            raise SystemExit(
                "--fault-plan needs a journaled sweep: drop --no-cache or "
                "pass --journal-dir"
            )
        return None
    if args.retries < 1:
        raise SystemExit("--retries must be >= 1")
    return SweepService(
        spec,
        axes=axes,
        store=store,
        jobs=args.jobs,
        journal_dir=args.journal_dir,
        resume=args.resume,
        retry=RetryPolicy(max_attempts=args.retries),
        point_timeout_s=args.point_timeout,
        fault_plan=fault_plan,
    )


def _checkpoint_on_sigint(service):
    """SIGINT checkpoints the journal instead of killing the sweep.

    Returns a zero-argument restore function for a ``finally`` block.
    """
    import signal

    def handler(signum, frame):
        print(
            "\ninterrupt: checkpointing sweep journal; in-flight points "
            "will be requeued for --resume",
            file=sys.stderr,
        )
        service.request_stop()

    previous = signal.signal(signal.SIGINT, handler)
    return lambda: signal.signal(signal.SIGINT, previous)


def _resume_command(args: argparse.Namespace) -> str:
    """The exact CLI invocation that resumes this sweep."""
    import shlex

    argv = list(getattr(args, "_argv", None) or [])
    if "--resume" not in argv:
        argv.append("--resume")
    return "python -m repro " + shlex.join(argv)


def _service_exit_status(args: argparse.Namespace, service, result) -> int:
    """Report interruption/quarantine to stderr; pick the exit code.

    0 = clean sweep, 1 = quarantined failures, 130 = interrupted (the
    conventional SIGINT code) with a copy-pasteable resume command.
    """
    counts = service.queue.counts()
    if result.interrupted:
        remaining = service.queue.n_tasks - counts["done"] - counts["failed"]
        print(
            f"\ninterrupted: {counts['done']}/{service.queue.n_tasks} "
            f"point(s) done, {remaining} remaining "
            f"(journal: {service.queue.journal_dir})",
            file=sys.stderr,
        )
        print(f"resume with: {_resume_command(args)}", file=sys.stderr)
        return 130
    if result.failures:
        print(
            f"\n{len(result.failures)} point(s) quarantined after retries "
            f"(report: {service.queue.failure_report_path}):",
            file=sys.stderr,
        )
        for failure in result.failures:
            assignment = json.dumps(
                failure.to_dict()["assignment"], sort_keys=True
            )
            print(
                f"  point {failure.index} {assignment}: {failure.error} "
                f"[{failure.attempts} attempt(s)]",
                file=sys.stderr,
            )
        return 1
    return 0


def _add_cache_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cache-dir",
        default=None,
        help="artifact-store directory (default: $REPRO_ARTIFACT_DIR or "
        "~/.cache/repro/artifacts)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="compute every stage fresh; cache nothing",
    )


def _scenario_spec(args: argparse.Namespace, command: str):
    from .exp import ScenarioSpec

    return ScenarioSpec(
        name=args.scenario,
        sites=_resolve_sites(args, command),
        max_range_km=getattr(args, "max_range_km", 100.0),
        usable_height_fraction=getattr(args, "usable_height", 1.0),
        seed=args.seed,
    )


def _cmd_design(args: argparse.Namespace) -> int:
    from .exp import DesignSpec, ExperimentSpec, run_experiment
    from .viz import render_topology

    solver_opts = {}
    if args.solver == "heuristic":
        # The CLI favors speed; pass --refine to run the restricted ILP.
        solver_opts["ilp_refinement"] = args.refine
    spec = ExperimentSpec(
        scenario=_scenario_spec(args, "design"),
        design=DesignSpec(
            budget_towers=args.budget,
            solver=args.solver,
            aggregate_gbps=args.gbps,
            solver_opts=solver_opts,
        ),
    )
    run = run_experiment(spec, store=_store_from_args(args))
    scenario = run.artifacts["substrate"]
    result = run.artifacts["design"]
    print(f"scenario:        {scenario.name} ({scenario.n_sites} sites)")
    print(f"solver:          {result.backend} "
          f"({result.solve_outcome.runtime_s:.2f}s"
          f"{', cached' if run.stage_status['design'] == 'cached' else ''})")
    print(f"budget:          {args.budget:.0f} towers "
          f"({result.towers_used:.0f} used)")
    print(f"MW links:        {result.mw_link_count}")
    print(f"mean stretch:    {result.mean_stretch:.4f} "
          f"(fiber: {result.fiber_mean_stretch:.3f})")
    if result.cost_per_gb_usd is not None:
        print(f"cost per GB:     ${result.cost_per_gb_usd:.2f} "
              f"at {args.gbps:.0f} Gbps")
    if args.map:
        print()
        print(render_topology(result.topology, result.augmentation))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import numpy as np

    from .exp import DesignSpec, ExperimentSpec, SweepRunner

    n_points = max(args.points, 2)
    budgets = [float(b) for b in np.linspace(0.0, args.max_budget, n_points)]
    spec = ExperimentSpec(
        scenario=_scenario_spec(args, "sweep"),
        design=DesignSpec(budget_towers=budgets[0], solver=args.solver),
    )
    axes = {"design.budget_towers": budgets}
    store = _store_from_args(args)
    service = _build_service(args, spec, axes, store)
    status = 0
    if service is not None:
        restore_sigint = _checkpoint_on_sigint(service)
        try:
            result = service.run()
        finally:
            restore_sigint()
        status = _service_exit_status(args, service, result)
    else:
        runner = SweepRunner(spec, axes=axes, store=store, jobs=args.jobs)
        result = runner.run()
    print("budget_towers  mean_stretch  links")
    for row in result.records:
        if row["stage"] != "design":
            continue
        print(f"{row['budget_towers']:13.0f}  {row['mean_stretch']:12.4f}  "
              f"{row['mw_links']:5d}")
    return status


def _cmd_netsim(args: argparse.Namespace) -> int:
    from .exp import DesignSpec, ExperimentSpec, NetsimSpec, run_experiment

    try:
        loads = tuple(float(x) for x in args.loads.split(",") if x)
    except ValueError:
        raise SystemExit(f"bad --loads value {args.loads!r}")
    # Range/emptiness rules live in NetsimSpec; its ValueError surfaces
    # as a clean exit via main().
    spec = ExperimentSpec(
        scenario=_scenario_spec(args, "netsim"),
        design=DesignSpec(
            budget_towers=args.budget,
            solver="heuristic",
            aggregate_gbps=args.gbps,
            solver_opts={"ilp_refinement": False},
        ),
        netsim=NetsimSpec(
            loads=loads,
            engine=args.engine,
            duration_s=args.duration,
            seed=args.flow_seed,
            demand_model=args.demand,
            demand_hour_utc=args.hour_utc,
            demand_seed=args.demand_seed,
            users_millions=args.users_millions,
            transport=args.transport,
            workload=args.workload,
            profile=args.profile,
        ),
    )
    run = run_experiment(spec, store=_store_from_args(args))
    scenario = run.artifacts["substrate"]
    print(f"scenario:  {scenario.name} ({scenario.n_sites} sites, "
          f"budget {args.budget:.0f} towers)")
    print(f"engine:    {args.engine} ({args.transport}, "
          f"{args.demand} demand)")
    header = "load  mean_delay_ms  loss_rate  max_link_util"
    if args.profile:
        header += "  setup_ms  fill_ms  freeze_ms"
    print(header)
    for row in run.records:
        if row["stage"] != "netsim":
            continue
        line = (f"{row['load']:4.2f}  {row['mean_delay_ms']:13.3f}  "
                f"{row['loss_rate']:9.4f}  {row['max_link_utilization']:13.3f}")
        if args.profile and "setup_s" in row:
            line += (f"  {row['setup_s'] * 1e3:8.2f}  "
                     f"{row['fill_s'] * 1e3:7.2f}  "
                     f"{row['freeze_s'] * 1e3:9.2f}")
        print(line)
    return 0


def _cmd_weather(args: argparse.Namespace) -> int:
    from .exp import DesignSpec, ExperimentSpec, WeatherSpec, run_experiment

    spec = ExperimentSpec(
        scenario=_scenario_spec(args, "weather"),
        design=DesignSpec(
            budget_towers=args.budget,
            solver="heuristic",
            solver_opts={"ilp_refinement": False},
        ),
        weather=WeatherSpec(
            n_intervals=args.intervals,
            graded=args.graded,
            frequency_ghz=args.frequency_ghz,
            sample_interval_days=args.interval_days,
            delta_k=args.delta_k,
            cache_mb=args.cache_mb,
        ),
    )
    run = run_experiment(spec, store=_store_from_args(args))
    solver_row = None
    print("series  median  p95")
    for row in run.records:
        if row["stage"] != "weather":
            continue
        if row["series"] == "solver":
            solver_row = row
            continue
        print(f"{row['series']:6s}  {row['median']:.3f}  {row['p95']:.3f}")
    if solver_row is not None:
        print(
            f"solver: {solver_row['intervals']} intervals -> "
            f"{solver_row['full_solves']} full / "
            f"{solver_row['delta_solves']} delta / "
            f"{solver_row['memo_hits']} memo; "
            f"{solver_row['cached_sets']} sets cached "
            f"({solver_row['cache_bytes'] / 2**20:.1f} MiB, "
            f"{solver_row['evictions']} evictions)"
        )
    return 0


def _cmd_econ(args: argparse.Namespace) -> int:
    from .exp import EconSpec, ExperimentSpec, run_experiment

    # An explicit cost makes the econ stage self-contained: no design
    # solve happens (and none is cached) just to print the table.
    spec = ExperimentSpec(econ=EconSpec(cost_per_gb=args.cost_per_gb))
    run = run_experiment(spec, store=_store_from_args(args), stages=("econ",))
    print(f"network cost: ${args.cost_per_gb:.2f}/GB")
    print("scenario      low_$per_GB  high_$per_GB  justifies")
    for row in run.records:
        if row["stage"] != "econ":
            continue
        print(f"{row['scenario']:12s}  {row['low_usd_per_gb']:11.2f}  "
              f"{row['high_usd_per_gb']:12.2f}  {row['justifies']}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .exp import ExperimentSpec, SweepRunner, run_experiment
    from .viz import render_records_table

    try:
        with open(args.spec) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise SystemExit(f"cannot read spec file: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"spec file is not valid JSON: {exc}")
    if not isinstance(doc, dict):
        raise SystemExit("spec file must hold a JSON object")
    axes = doc.pop("axes", None)
    spec_doc = doc.pop("spec", None)
    if spec_doc is None:
        spec_doc = doc  # bare ExperimentSpec document
    elif doc:
        raise SystemExit(
            f"unknown top-level key(s) next to 'spec': {', '.join(sorted(doc))}"
        )
    spec = ExperimentSpec.from_dict(spec_doc)
    store = _store_from_args(args)

    if axes:
        if not isinstance(axes, dict):
            raise SystemExit("'axes' must map spec paths to value lists")
        for path, values in axes.items():
            if not isinstance(values, list) or not values:
                raise SystemExit(
                    f"axis {path!r} must be a non-empty JSON list of values "
                    f"(got {values!r})"
                )
        axes = {
            path: [tuple(v) if isinstance(v, list) else v for v in values]
            for path, values in axes.items()
        }
        service = _build_service(args, spec, axes, store)
        if service is not None:
            restore_sigint = _checkpoint_on_sigint(service)
            try:
                result = service.run()
            finally:
                restore_sigint()
            status = _service_exit_status(args, service, result)
        else:
            runner = SweepRunner(spec, axes=axes, store=store, jobs=args.jobs)
            result = runner.run()
            status = 0
        records = result.records
        counts = result.stage_counts
    else:
        run = run_experiment(spec, store=store)
        records = run.records
        counts = {
            name: {outcome: 1} for name, outcome in run.stage_status.items()
        }
        status = 0
    if args.json:
        json.dump(records, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(render_records_table(records))
        executed = sum(c.get("computed", 0) for c in counts.values())
        cached = sum(c.get("cached", 0) for c in counts.values())
        print(f"\nstages: {executed} computed, {cached} cached "
              f"({len(records)} record rows)")
    return status


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        LintConfig,
        all_rules,
        default_lock_path,
        render_json,
        render_text,
        rule_names,
        run_lint,
        update_lock,
    )

    if args.list_rules:
        print("rule                          description")
        for rule in all_rules():
            print(f"{rule.name:28s}  {rule.description}")
        return 0
    lock_path = args.lock or None
    if args.update_lock:
        path, entries = update_lock(lock_path)
        print(f"wrote {path} ({len(entries)} entries)")
        return 0
    rules = None
    if args.rules:
        rules = [name.strip() for name in args.rules.split(",") if name.strip()]
        unknown = sorted(set(rules) - set(rule_names()))
        if unknown:
            raise SystemExit(
                f"unknown rule(s): {', '.join(unknown)}; "
                f"registered: {', '.join(rule_names())}"
            )
    paths = [str(p) for p in args.paths]
    if not paths:
        # Default to the committed layout around the lockfile: the
        # package sources plus the tests and benchmarks that ride on
        # its contracts (whichever of them exist here).
        root = default_lock_path().parent
        paths = [
            str(root / name)
            for name in ("src", "tests", "benchmarks")
            if (root / name).is_dir()
        ] or [str(root)]
    result = run_lint(
        paths, rules=rules, config=LintConfig(lock_path=lock_path)
    )
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    return 0 if result.ok else 1


def _cmd_solvers(args: argparse.Namespace) -> int:
    from .core import get_solver, solver_names

    print("backend      description")
    for name in solver_names():
        solver = get_solver(name)
        doc_lines = (type(solver).__doc__ or "").strip().splitlines()
        print(f"{name:12s} {doc_lines[0] if doc_lines else '(no description)'}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from .core import solver_names

    parser = argparse.ArgumentParser(
        prog="repro",
        description="cISP (NSDI 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from .exp.spec import SCENARIO_NAMES

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scenario", default="us", choices=SCENARIO_NAMES)
        p.add_argument(
            "--sites",
            type=int,
            default=None,
            help="site count (us/city_dc only; errors loudly for the "
            "fixed-site europe/interdc scenarios)",
        )
        p.add_argument(
            "--seed",
            type=int,
            default=None,
            help="tower-synthesis seed (default: the scenario's pinned seed)",
        )

    p = sub.add_parser("design", help="design a cISP network")
    add_scenario_args(p)
    p.add_argument("--budget", type=float, default=1000.0)
    p.add_argument("--gbps", type=float, default=100.0)
    p.add_argument(
        "--solver",
        default="heuristic",
        choices=solver_names(),
        help="topology-solver backend (see the 'solvers' command)",
    )
    p.add_argument(
        "--refine",
        action="store_true",
        help="heuristic only: run the restricted final ILP (slower)",
    )
    p.add_argument("--map", action="store_true", help="print the ASCII map")
    _add_cache_args(p)
    p.set_defaults(func=_cmd_design)

    p = sub.add_parser("solvers", help="list topology-solver backends")
    p.set_defaults(func=_cmd_solvers)

    p = sub.add_parser("sweep", help="budget sweep (Fig 4a)")
    add_scenario_args(p)
    p.add_argument("--max-budget", type=float, default=3000.0)
    p.add_argument("--points", type=int, default=10)
    p.add_argument(
        "--solver",
        default="evolution",
        choices=solver_names(),
        help="backend per budget point (evolution reproduces the "
        "incremental build-out of Fig 4a)",
    )
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the sweep points")
    _add_service_args(p)
    _add_cache_args(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "netsim", help="simulate load on a designed network (Fig 5)"
    )
    add_scenario_args(p)
    p.add_argument("--budget", type=float, default=800.0)
    p.add_argument("--gbps", type=float, default=100.0,
                   help="design aggregate the network is provisioned for")
    from .exp.spec import DEMAND_MODELS, ENGINES, TRANSPORTS, WORKLOADS

    p.add_argument(
        "--engine",
        default="packet",
        choices=ENGINES,
        help="packet: per-packet simulation; fluid: max-min fast path",
    )
    p.add_argument(
        "--workload",
        default="object",
        choices=WORKLOADS,
        help="object: reference per-flow FluidFlow list; table: "
             "array-native flow tables (fluid engine only, "
             "bit-identical results)",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="add fluid setup/fill/freeze wall-clock timings to each "
             "record row (timings are nondeterministic; default records "
             "stay byte-identical)",
    )
    p.add_argument("--loads", default="0.3,0.6,0.9",
                   help="comma-separated offered-load fractions")
    p.add_argument("--duration", type=float, default=0.5,
                   help="simulated seconds per load point (packet engine)")
    p.add_argument("--flow-seed", type=int, default=0,
                   help="Poisson-arrival seed (packet engine)")
    p.add_argument(
        "--transport",
        default="udp",
        choices=TRANSPORTS,
        help="udp: open-loop offers; tcp: Mathis macro-model "
             "(fluid engine only)",
    )
    p.add_argument(
        "--demand",
        default="design",
        choices=DEMAND_MODELS,
        help="design: scale the design matrix; users: bottom-up "
             "diurnal + heavy-tail per-city demand",
    )
    p.add_argument("--hour-utc", type=float, default=20.0,
                   help="UTC hour for the diurnal profile (users demand)")
    p.add_argument("--demand-seed", type=int, default=0,
                   help="heavy-tail multiplier seed (users demand)")
    p.add_argument("--users-millions", type=float, default=None,
                   help="rescale to this many million active users "
                        "(users demand)")
    _add_cache_args(p)
    p.set_defaults(func=_cmd_netsim)

    p = sub.add_parser("weather", help="yearly weather analysis (Fig 7)")
    add_scenario_args(p)
    p.add_argument("--budget", type=float, default=1000.0)
    p.add_argument("--intervals", type=int, default=120)
    p.add_argument("--graded", action="store_true",
                   help="also run the graded (modulation-downshift) model")
    p.add_argument("--frequency-ghz", type=float, default=11.0,
                   help="MW carrier frequency for the rain-fade physics "
                        "(shared by the binary and graded models)")
    p.add_argument("--interval-days", type=int, default=None,
                   help="evaluate every Nth day of the year "
                        "deterministically (1 = daily resolution) "
                        "instead of sampling --intervals random days")
    p.add_argument("--delta-k", type=int, default=2,
                   help="failure-set solver neighbor radius (0 = "
                        "memo-only, no delta reuse)")
    p.add_argument("--cache-mb", type=float, default=256.0,
                   help="LRU byte budget (MiB) for cached distance "
                        "matrices and stretch rows")
    _add_cache_args(p)
    p.set_defaults(func=_cmd_weather)

    p = sub.add_parser(
        "lint",
        help="static contract checks (determinism, cache versions, "
        "kernel bans)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the repo's src, "
        "tests, and benchmarks trees)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="finding output format (default: text)",
    )
    p.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule subset (default: every registered "
        "rule; see --list-rules)",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    p.add_argument(
        "--update-lock", action="store_true",
        help="recompute every code fingerprint and rewrite "
        "stage_versions.lock (run after bumping a version tag)",
    )
    p.add_argument(
        "--lock",
        default=None,
        help="stage_versions.lock location (default: the repo root)",
    )
    p.add_argument(
        "--show-suppressed", action="store_true",
        help="also print findings waived by inline "
        "'# repro: allow[rule] -- reason' comments",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("econ", help="cost-benefit table (§8)")
    p.add_argument("--cost-per-gb", type=float, default=0.81)
    _add_cache_args(p)
    p.set_defaults(func=_cmd_econ)

    p = sub.add_parser(
        "run",
        help="run an experiment spec file (optionally a multi-axis sweep)",
    )
    p.add_argument("spec", help="path to the spec JSON (an ExperimentSpec "
                   "document, or {'spec': ..., 'axes': {path: [values]}})")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for sweep points")
    p.add_argument("--json", action="store_true",
                   help="emit the records as JSON instead of a table")
    _add_service_args(p)
    _add_cache_args(p)
    p.set_defaults(func=_cmd_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Kept for reconstructing the exact --resume command after a SIGINT.
    args._argv = list(argv) if argv is not None else list(sys.argv[1:])
    try:
        return args.func(args)
    except ValueError as exc:
        # Spec/scenario validation errors surface as clean CLI failures.
        raise SystemExit(str(exc))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
