"""Text rendering of designed networks (the paper's Fig 3 / Fig 8 maps).

Renders a designed topology as an ASCII map: sites as ``o`` (capitals
``O`` for the most populous), microwave links as line characters whose
glyph encodes the augmentation level (the paper's blue/green/red color
coding), and fiber fallbacks as dots.  Useful for eyeballing designs in
a terminal and in the examples; no plotting dependencies required.
"""

from __future__ import annotations

import numpy as np

from .core.augmentation import AugmentationResult
from .core.topology import Topology

#: Glyph per augmentation level: existing towers only / 1 new series /
#: 2+ new series (Fig 3's blue, green, red).
LEVEL_GLYPHS = {0: "-", 1: "=", 2: "#"}


def _canvas_coords(lats, lons, width, height):
    lat_lo, lat_hi = float(np.min(lats)), float(np.max(lats))
    lon_lo, lon_hi = float(np.min(lons)), float(np.max(lons))
    lat_span = max(lat_hi - lat_lo, 1e-6)
    lon_span = max(lon_hi - lon_lo, 1e-6)

    def to_xy(lat, lon):
        x = int(round((lon - lon_lo) / lon_span * (width - 1)))
        y = int(round((lat_hi - lat) / lat_span * (height - 1)))
        return x, y

    return to_xy


def _draw_line(grid, x0, y0, x1, y1, glyph):
    """Bresenham; never overwrites site markers."""
    dx = abs(x1 - x0)
    dy = abs(y1 - y0)
    sx = 1 if x0 < x1 else -1
    sy = 1 if y0 < y1 else -1
    err = dx - dy
    x, y = x0, y0
    while True:
        if grid[y][x] not in ("o", "O"):
            grid[y][x] = glyph
        if x == x1 and y == y1:
            break
        e2 = 2 * err
        if e2 > -dy:
            err -= dy
            x += sx
        if e2 < dx:
            err += dx
            y += sy


def render_topology(
    topology: Topology,
    augmentation: AugmentationResult | None = None,
    width: int = 100,
    height: int = 30,
    n_labels: int = 8,
) -> str:
    """ASCII map of a designed network.

    Args:
        topology: the designed topology.
        augmentation: optional Step-3 result; when given, link glyphs
            encode how many parallel series each link needed
            (``-`` = 1, ``=`` = 2, ``#`` = 3+), mirroring Fig 3's
            color coding.
        width / height: canvas size in characters.
        n_labels: how many of the most populous sites to label.
    """
    if width < 10 or height < 5:
        raise ValueError("canvas too small")
    sites = topology.design.sites
    lats = np.array([s.lat for s in sites])
    lons = np.array([s.lon for s in sites])
    to_xy = _canvas_coords(lats, lons, width, height)
    grid = [[" "] * width for _ in range(height)]

    series = {}
    if augmentation is not None:
        series = {p.link: p.n_series for p in augmentation.provisions}

    for a, b in sorted(topology.mw_links):
        x0, y0 = to_xy(sites[a].lat, sites[a].lon)
        x1, y1 = to_xy(sites[b].lat, sites[b].lon)
        k = series.get((a, b), 1)
        glyph = LEVEL_GLYPHS[min(max(k - 1, 0), 2)]
        _draw_line(grid, x0, y0, x1, y1, glyph)

    big = sorted(range(len(sites)), key=lambda i: -sites[i].population)
    big_set = set(big[: max(n_labels, 1)])
    for i, site in enumerate(sites):
        x, y = to_xy(site.lat, site.lon)
        grid[y][x] = "O" if i in big_set else "o"

    lines = ["".join(row).rstrip() for row in grid]
    legend = [
        "",
        "O major site   o site   - MW link (existing towers)   "
        "= 2 series   # 3+ series",
    ]
    label_line = "labels: " + ", ".join(
        sites[i].name for i in big[: max(n_labels, 1)]
    )
    return "\n".join(lines + legend + [label_line])


def render_records_table(records: list[dict], max_float_digits: int = 4) -> str:
    """Format tidy records (the sweep/experiment output) as an ASCII table.

    Columns are the union of the rows' keys in first-seen order; missing
    cells render empty.  Floats are rounded for display only — the
    underlying records stay exact.
    """
    if not records:
        return "(no records)"
    columns: list[str] = []
    for row in records:
        for key in row:
            if key not in columns:
                columns.append(key)

    def cell(row: dict, col: str) -> str:
        if col not in row:
            return ""
        value = row[col]
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return f"{value:.{max_float_digits}f}"
        return str(value)

    body = [[cell(row, col) for col in columns] for row in records]
    widths = [
        max(len(col), *(len(r[i]) for r in body)) for i, col in enumerate(columns)
    ]
    lines = ["  ".join(col.ljust(w) for col, w in zip(columns, widths)).rstrip()]
    for r in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)).rstrip())
    return "\n".join(lines)
