"""Delta-reuse failure-set solver for storm-track what-if queries.

:class:`FailureSetSolver` answers a *stream* of failure-set distance
queries against one frozen base :class:`~repro.graph.view.GraphView`.
The weather layer's storm tracks produce long chains of near-identical
sets — one or two links flapping in and out between days — and whole-set
memoization (PR 5) still pays one full all-pairs solve per *distinct*
set.  The solver instead picks the cheapest route per query:

* **memo hit** — the exact set was solved before: return the cached
  matrix (bit-identical, zero work).
* **delta solve** — a previously solved *neighbor* set differs from the
  query by at most ``delta_k`` links (symmetric difference).  Links
  failed in the neighbor but healthy in the query are *restored* by the
  kernel's exact O(n^2) single-edge insertion rule
  (:func:`~repro.graph.kernel.edge_delta_distances` — a weight decrease
  is an edge insertion in parallel with the worse edge); links failed
  in the query but healthy in the neighbor are *removed* by the
  affected-source machinery behind
  :meth:`~repro.graph.view.GraphView.distances_with_edges_removed`:
  only sources with a tight shortest path through a removed link are
  restarted (batched Dijkstra on the query graph) and merged into the
  neighbor's matrix.  A cached *superset* of the query needs only
  restorations — no restart at all — so supersets are accepted up to
  the larger ``restore_k`` budget and preferred over any neighbor that
  needs removals.
* **full solve** — no cached neighbor is close enough: fall back to the
  view's batch what-if query, exactly as before.

Removal restarts are *cost-gated*: per-source Dijkstra only beats the
full solve while few sources are affected (on dense bases the full
solve is one C Floyd-Warshall, so the break-even is roughly ``n / 6``
sources; metric-closure bases concentrate tight paths, so a removed
link often touches half the sources).  When the affected-source count
exceeds the budget the solver *promotes the query to its union* with
the neighbor: one full solve of ``query | neighbor`` is cached and the
query itself is derived from it by pure restorations.  The union costs
no more than the full solve the query was headed for anyway, and it
seeds a superset that turns the surrounding storm-track queries into
restoration-only deltas — a sweeping storm pays one full solve per
*newly seen link*, not one per distinct failure set.

Nearest-neighbor lookup is O(|set|) via a per-link inverted index over
the cached sets.  Cached matrices live under an LRU byte budget
(:class:`ByteBudgetLRU`) so long daily-resolution runs cannot exhaust
memory; the healthy-base matrix is pinned.  Route counters
(``full_solves`` / ``delta_solves`` / ``memo_hits``, plus cache bytes
and evictions) surface in the weather stage records.

Accuracy contract: delta-derived matrices match the full solve to
<= 1e-9 relative.  The restoration rule is exact and removals restart
affected rows from scratch, so the only divergence from a full solve is
float association error, bounded by capping delta-chain depth
(``max_chain``); a removal-only delta taken directly from the base of a
*sparse* view is bit-identical to the full solve (same machinery).
Route selection is deterministic, so identical query sequences through
identically configured solvers return bitwise-identical results.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from .kernel import DENSE_DENSITY_THRESHOLD, GraphKernel
from .view import GraphView, affected_sources

#: Default LRU budget for cached distance matrices (bytes).
DEFAULT_CACHE_BYTES = 256 * 2**20


class ByteBudgetLRU:
    """An LRU mapping bounded by the total byte size of its values.

    Args:
        budget_bytes: evict least-recently-used entries once the held
            bytes exceed this (``None`` = unbounded).
        size_of: value -> size in bytes (default: ``value.nbytes``).
        on_evict: called as ``on_evict(key, value)`` for every evicted
            entry (not for replacements via :meth:`put`).

    Pinned keys (:meth:`pin`) and the most recently inserted entry are
    never evicted, so the cache can exceed its budget by at most one
    working entry plus the pinned ones — a cache that cannot hold the
    entry it was just asked to keep would thrash.
    """

    def __init__(
        self,
        budget_bytes: float | None = None,
        size_of: Callable | None = None,
        on_evict: Callable | None = None,
    ) -> None:
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0 (or None)")
        self._budget = None if budget_bytes is None else float(budget_bytes)
        self._size_of = size_of or (lambda value: int(value.nbytes))
        self._on_evict = on_evict
        self._data: dict = {}
        self._sizes: dict = {}
        self._pinned: set = set()
        self._bytes = 0
        self.evictions = 0

    @property
    def bytes_held(self) -> int:
        """Total byte size of all held values."""
        return self._bytes

    @property
    def budget_bytes(self) -> float | None:
        return self._budget

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def keys(self):
        """Keys in LRU -> MRU order."""
        return iter(list(self._data))

    def pin(self, key) -> None:
        """Exempt ``key`` from eviction (it need not be present yet)."""
        self._pinned.add(key)

    def peek(self, key, default=None):
        """Look up without touching recency."""
        return self._data.get(key, default)

    def get(self, key, default=None):
        """Look up and mark most-recently-used."""
        value = self._data.get(key, default)
        if key in self._data:
            # dicts preserve insertion order: re-inserting moves to MRU.
            self._data[key] = self._data.pop(key)
            self._sizes[key] = self._sizes.pop(key)
        return value

    def put(self, key, value) -> None:
        """Insert/replace ``key`` at MRU, then evict down to budget."""
        size = int(self._size_of(value))
        if key in self._data:
            del self._data[key]
            self._bytes -= self._sizes.pop(key)
        self._data[key] = value
        self._sizes[key] = size
        self._bytes += size
        if self._budget is None:
            return
        for victim in list(self._data):
            if self._bytes <= self._budget:
                break
            if victim == key or victim in self._pinned:
                continue
            evicted = self._data.pop(victim)
            self._bytes -= self._sizes.pop(victim)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(victim, evicted)


class _CacheEntry:
    """One cached failure-set solve: the matrix plus delta-chain depth."""

    __slots__ = ("dist", "depth", "seq")

    def __init__(self, dist: np.ndarray, depth: int, seq: int) -> None:
        self.dist = dist
        self.depth = depth
        self.seq = seq


class FailureSetSolver:
    """Memo / delta / full-solve router over failure-set queries.

    Args:
        view: the frozen base graph (healthy weights).  Mutating it
            after construction invalidates the solver — queries then
            raise.
        fail_weight: ``(a, b) -> weight`` of a *failed* link (its
            fallback path, e.g. direct fiber); ``None`` means failure
            removes the link outright (``inf``).  A failed weight below
            the healthy weight is rejected — failures only worsen.
        delta_k: maximum symmetric difference (in links) to a cached
            neighbor for the delta route; ``0`` disables deltas, giving
            PR 5's memo-only behavior.
        restore_k: maximum symmetric difference to a cached *superset*
            of the query (restoration-only: pure O(n^2) insertion
            rules, never a restart), accepted beyond ``delta_k``.
            Inert while ``delta_k`` is 0.
        cache_bytes: LRU byte budget for cached matrices (``None`` =
            unbounded; default 256 MiB).  The healthy base is pinned.
        base_distances: optional exact all-pairs matrix of ``view``'s
            weights to seed the healthy entry without a solve.
        max_chain: full-solve when every candidate neighbor already
            sits at this delta-chain depth, bounding float drift.
    """

    def __init__(
        self,
        view: GraphView,
        fail_weight: Callable | None = None,
        *,
        delta_k: int = 2,
        restore_k: int = 12,
        cache_bytes: float | None = DEFAULT_CACHE_BYTES,
        base_distances: np.ndarray | None = None,
        max_chain: int = 64,
    ) -> None:
        if delta_k < 0:
            raise ValueError("delta_k must be >= 0")
        if restore_k < 0:
            raise ValueError("restore_k must be >= 0")
        if max_chain < 1:
            raise ValueError("max_chain must be >= 1")
        self._view = view
        self._fail_weight = fail_weight
        self._base_version = view.version
        self._delta_k = int(delta_k)
        self._restore_k = max(int(restore_k), int(delta_k))
        self._max_chain = int(max_chain)
        # Per-source Dijkstra restarts stop paying off once too many
        # sources are affected; past the budget the delta route defers
        # to a (union) full solve.  Sparse bases restart per source in
        # the full solve too, so any strict subset of sources wins;
        # dense bases full-solve with C Floyd-Warshall, whose measured
        # break-even sits near n / 6 restarted sources.
        if view.kernel().density() >= DENSE_DENSITY_THRESHOLD:
            self._restart_budget = max(1, view.n // 6)
        else:
            self._restart_budget = max(1, view.n - 1)
        # Per-link healthy/failed weights, resolved once per link; links
        # whose failure changes nothing (absent, or equal weight) are
        # dropped from every query key.
        self._healthy: dict[tuple[int, int], float] = {}
        self._fail: dict[tuple[int, int], float] = {}
        self._noop: set[tuple[int, int]] = set()
        # Inverted index: link -> cached sets containing it; `_tiny`
        # additionally tracks cached sets small enough (< delta_k
        # links) to neighbor a query they share no link with.
        self._by_link: dict[tuple[int, int], set[frozenset]] = {}
        self._tiny: set[frozenset] = set()
        # Links seen in recent queries, oldest -> newest (a dict used
        # as an ordered set): full-solve fallbacks pad their solved set
        # with these, so one solve covers the active storm
        # neighborhood instead of a single transient combination.
        self._recent: dict[tuple[int, int], None] = {}
        self._csr_base: tuple | None = None
        # Scratch buffers for the restoration hot loop, allocated once:
        # fresh n x n temporaries per call would pay ~2 * n^2 * 8 bytes
        # of page-fault cost on every delta.
        self._buf: np.ndarray | None = None
        self._alt: np.ndarray | None = None
        self._seq = 0
        self.full_solves = 0
        self.delta_solves = 0
        self.memo_hits = 0
        self.union_solves = 0
        self._cache = ByteBudgetLRU(
            cache_bytes,
            size_of=lambda entry: int(entry.dist.nbytes),
            on_evict=self._forget,
        )
        base = (
            np.asarray(base_distances, dtype=float)
            if base_distances is not None
            else view.distances()
        )
        if base.shape != (view.n, view.n):
            raise ValueError(
                f"base_distances shape {base.shape} does not match n={view.n}"
            )
        self._cache.pin(frozenset())
        self._remember(frozenset(), base, depth=0)

    # -- public surface -------------------------------------------------

    @property
    def view(self) -> GraphView:
        return self._view

    @property
    def delta_k(self) -> int:
        return self._delta_k

    @property
    def cache_bytes_held(self) -> int:
        return self._cache.bytes_held

    @property
    def evictions(self) -> int:
        return self._cache.evictions

    def stats(self) -> dict:
        """Solve-route counters and cache occupancy as plain numbers."""
        return {
            "full_solves": self.full_solves,
            "delta_solves": self.delta_solves,
            "memo_hits": self.memo_hits,
            "union_solves": self.union_solves,
            "cached_sets": len(self._cache),
            "cache_bytes": self._cache.bytes_held,
            "evictions": self._cache.evictions,
        }

    def cached_failure_sets(self) -> tuple[frozenset, ...]:
        """Currently cached canonical keys, LRU -> MRU."""
        return tuple(self._cache.keys())

    def canonical_key(self, failed) -> frozenset:
        """Normalize a failure set: sorted endpoints, no-op links dropped.

        Resolves (and memoizes) each link's healthy and failed weight on
        first sight; a failed weight *below* the healthy weight raises —
        failures may only worsen a link.
        """
        n = self._view.n
        links = []
        for link in failed:
            a, b = link
            a, b = int(a), int(b)
            if not (0 <= a < n and 0 <= b < n) or a == b:
                raise ValueError(f"invalid link ({a}, {b}) for {n} nodes")
            if a > b:
                a, b = b, a
            key = (a, b)
            if key in self._noop:
                continue
            if key not in self._healthy:
                healthy = self._view.weight(a, b)
                fail = (
                    np.inf
                    if self._fail_weight is None
                    else float(self._fail_weight(a, b))
                )
                if fail < healthy:
                    raise ValueError(
                        f"link ({a}, {b}): failed weight {fail} improves on "
                        f"healthy {healthy}; failures only worsen"
                    )
                if not np.isfinite(healthy) or fail == healthy:
                    self._noop.add(key)
                    continue
                self._healthy[key] = float(healthy)
                self._fail[key] = fail
            links.append(key)
        return frozenset(links)

    def distances_for(self, failed) -> np.ndarray:
        """All-pairs distances with ``failed`` links down (read-only).

        Routes the query through the cheapest of memo hit, delta from
        the nearest cached neighbor, or full solve, and caches the
        result under the LRU byte budget.
        """
        if self._view.version != self._base_version:
            raise RuntimeError(
                "base GraphView mutated under the FailureSetSolver; "
                "build a new solver for the new graph state"
            )
        key = self.canonical_key(failed)
        self._touch_recent(key)
        entry = self._cache.get(key)
        if entry is not None:
            self.memo_hits += 1
            return entry.dist
        neighbor = self._nearest(key)
        derived = None
        if neighbor is not None:
            derived = self._delta_from(neighbor, key)
        if derived is None and self._delta_k > 0:
            # Full-solve fallback (no neighbor, or the removal restart
            # was cost-gated).  Promote the solve to a *superset*: the
            # query unioned with the neighbor and the recently active
            # links, capped so later queries can still restore down
            # within ``restore_k``.  One full solve then covers the
            # storm's whole active neighborhood — the query itself and
            # its surrounding combinations fall out by restorations.
            target = self._padded(key if neighbor is None else key | neighbor)
            if target != key:
                tentry = self._cache.peek(target)
                if tentry is None or tentry.depth >= self._max_chain:
                    tdist = self._full_solve(target)
                    self.full_solves += 1
                    self.union_solves += 1
                    self._remember(target, tdist, depth=0)
                derived = self._delta_from(target, key)
        if derived is not None:
            dist, depth = derived
            self.delta_solves += 1
        else:
            dist = self._full_solve(key)
            depth = 0
            self.full_solves += 1
        self._remember(key, dist, depth)
        return dist

    def _touch_recent(self, key: frozenset) -> None:
        """Mark the query's links as the most recently active."""
        for link in sorted(key):
            self._recent.pop(link, None)
            self._recent[link] = None
        cap = 4 * self._restore_k
        while len(self._recent) > cap:
            del self._recent[next(iter(self._recent))]

    def _padded(self, seed: frozenset) -> frozenset:
        """``seed`` plus recently active links, newest first.

        Capped at ``max(|seed|, restore_k)`` links so every future
        subset query can restore down within the ``restore_k``
        neighbor budget.
        """
        target = set(seed)
        limit = max(len(seed), self._restore_k)
        for link in reversed(self._recent):
            if len(target) >= limit:
                break
            target.add(link)
        return frozenset(target)

    # -- cache bookkeeping ----------------------------------------------

    def _remember(self, key: frozenset, dist: np.ndarray, depth: int) -> None:
        entry = _CacheEntry(dist, depth, self._seq)
        self._seq += 1
        for link in key:
            self._by_link.setdefault(link, set()).add(key)
        if 0 < len(key) < self._delta_k:
            self._tiny.add(key)
        self._cache.put(key, entry)

    def _forget(self, key: frozenset, entry: _CacheEntry) -> None:
        for link in key:
            bucket = self._by_link.get(link)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_link[link]
        self._tiny.discard(key)

    # -- route selection ------------------------------------------------

    def _nearest(self, key: frozenset) -> frozenset | None:
        """The best cached neighbor of the query, or None.

        Candidates come from the inverted index (sets sharing a link),
        the tiny sets (small enough to neighbor disjoint queries), and
        the pinned healthy base.  Eligible are sets within ``delta_k``
        links (symmetric difference), plus *supersets* of the query up
        to ``restore_k`` — a superset needs only restorations, each an
        exact O(n^2) insertion rule, so it stays cheap well past the
        radius where a removal restart would.  Ranking prefers
        restoration-only neighbors, then the smallest symmetric
        difference, then the shallowest delta chain, then the most
        recent solve — all deterministic, so identical query sequences
        pick identical routes.
        """
        if self._delta_k == 0 or not key:
            return None
        counts: dict[frozenset, int] = {}
        for link in key:
            for cand in self._by_link.get(link, ()):
                counts[cand] = counts.get(cand, 0) + 1
        candidates = set(counts)
        candidates.update(self._tiny)
        candidates.add(frozenset())
        best = None
        best_rank = None
        for cand in candidates:
            overlap = counts.get(cand, 0)
            symdiff = len(cand) + len(key) - 2 * overlap
            if symdiff == 0:
                continue
            removals = len(key) - overlap
            budget = self._restore_k if removals == 0 else self._delta_k
            if symdiff > budget:
                continue
            entry = self._cache.peek(cand)
            if entry is None or entry.depth >= self._max_chain:
                continue
            rank = (removals > 0, symdiff, entry.depth, -entry.seq)
            if best_rank is None or rank < best_rank:
                best_rank, best = rank, cand
        return best

    # -- the three routes ------------------------------------------------

    def _full_solve(self, key: frozenset) -> np.ndarray:
        edges = [(a, b, self._fail[(a, b)]) for a, b in sorted(key)]
        return self._view.distances_with_edges_removed(edges)

    def _delta_from(
        self, nkey: frozenset, key: frozenset
    ) -> tuple[np.ndarray, int] | None:
        """Derive the query matrix from cached neighbor ``nkey``.

        Restorations first (links failed in the neighbor, healthy in
        the query): each is an exact edge insertion, leaving an exact
        matrix of the intermediate graph.  Then removals (healthy in
        the neighbor, failed in the query): the affected-source test
        runs against that intermediate matrix, and the affected rows
        are recomputed by Dijkstra on the full query graph.  Returns
        None — no cached state touched — when the restart would exceed
        the cost budget (more affected sources than ``n // 6`` on a
        dense base); the caller falls back to a (union) full solve.
        """
        entry = self._cache.get(nkey)
        dist = np.array(entry.dist)
        restorations = sorted(nkey - key)
        if restorations:
            self._restore_edges(dist, restorations)
        removals = sorted(key - nkey)
        if removals:
            changes = [(a, b, self._healthy[(a, b)]) for a, b in removals]
            idx = np.flatnonzero(affected_sources(dist, changes))
            if idx.size > self._restart_budget:
                return None
            if idx.size:
                dist[idx, :] = self._restart_rows(key, idx)
        dist.setflags(write=False)
        return dist, entry.depth + 1

    def _restore_edges(self, dist: np.ndarray, edges) -> None:
        """Apply the exact insertion rule for each edge, in place.

        The same min-plus update as chaining
        :func:`~repro.graph.kernel.edge_delta_distances` — restoring
        edge ``(a, b)`` admits every path detouring through it — but
        tuned for the solver's hot loop: the edge weight is folded
        into an O(n) column vector (one fewer n x n pass per edge,
        with rounding differences far inside the 1e-9 contract) and
        two solver-owned scratch buffers replace the ~5 fresh n x n
        temporaries a generic expression would allocate per edge.
        """
        if self._buf is None:
            self._buf = np.empty_like(dist)
            self._alt = np.empty_like(dist)
        buf, alt = self._buf, self._alt
        for a, b in edges:
            weight = self._healthy[(a, b)]
            np.add((dist[:, a] + weight)[:, None], dist[b, :][None, :], out=buf)
            np.add((dist[:, b] + weight)[:, None], dist[a, :][None, :], out=alt)
            np.minimum(buf, alt, out=buf)
            np.minimum(dist, buf, out=dist)

    def _restart_rows(self, key: frozenset, idx: np.ndarray) -> np.ndarray:
        """Exact Dijkstra rows of the query graph for the given sources."""
        if all(np.isfinite(self._fail[link]) for link in key):
            graph = self._patched_csr(key)
            return dijkstra(
                graph, directed=False, indices=np.asarray(idx, dtype=np.intp)
            )
        # inf failures change the sparsity pattern: build the query
        # graph's kernel from scratch.
        weights = self._view.weights_copy()
        for a, b in sorted(key):
            weights[a, b] = weights[b, a] = self._fail[(a, b)]
        return GraphKernel(weights).distances_from(idx)

    def _patched_csr(self, key: frozenset) -> csr_matrix:
        """The query graph's CSR by patching the base CSR's data vector.

        Finite failed weights keep the base sparsity pattern, so the
        indices/indptr arrays are built once and only the few changed
        data slots are rewritten per query — no O(n^2) matrix rebuild,
        no coo -> csr conversion.  The canonical (row-major, sorted)
        layout matches :meth:`~repro.graph.kernel.GraphKernel.csr`, so
        the Dijkstra rows are bit-identical to the kernel's.
        """
        if self._csr_base is None:
            w = self._view.weights_copy()
            n = w.shape[0]
            finite = np.isfinite(w)
            np.fill_diagonal(finite, False)
            rows, cols = np.nonzero(finite)
            counts = np.bincount(rows, minlength=n)
            indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int32)
            self._csr_base = (cols.astype(np.int32), indptr, w[rows, cols], n)
        indices, indptr, base_data, n = self._csr_base
        data = base_data.copy()
        for a, b in sorted(key):
            w = self._fail[(a, b)]
            for u, v in ((a, b), (b, a)):
                lo, hi = int(indptr[u]), int(indptr[u + 1])
                data[lo + int(np.searchsorted(indices[lo:hi], v))] = w
        return csr_matrix((data, indices, indptr), shape=(n, n))
