"""The shared, incremental distance/routing engine (see ``kernel.py``).

Public surface:

* :class:`GraphKernel` — immutable all-pairs / per-source solver over
  one weight matrix (dense FW or batched sparse Dijkstra, chosen by
  density; the only module allowed to run dense Floyd-Warshall).
* :class:`GraphView` — versioned mutable handle: O(n^2) delta updates
  on edge improvement, exact fallback on removal, batch what-if
  removals (``distances_with_edges_removed``: affected-source Dijkstra
  restart, view untouched), networkx export for the netsim routing
  layer.
* :func:`edge_delta_distances` / :func:`edge_delta_with_carry` /
  :func:`closure_with_edges` — the vectorized single-edge insertion
  rule the design heuristics and the evolution backend share.
* :class:`FailureSetSolver` / :class:`ByteBudgetLRU` — the delta-reuse
  router over failure-set query streams (``whatif.py``): memo hit,
  compositional delta from the nearest cached neighbor set, or full
  solve, under an LRU byte budget.  The weather evaluator rides on it.
* :func:`graph_kernel_version` — cache-key ingredient for the
  experiment orchestration layer.
"""

from .kernel import (
    DENSE_DENSITY_THRESHOLD,
    KERNEL_VERSION,
    GraphKernel,
    closure_with_edges,
    edge_delta_distances,
    edge_delta_with_carry,
    graph_kernel_version,
)
from .view import GraphView
from .whatif import DEFAULT_CACHE_BYTES, ByteBudgetLRU, FailureSetSolver

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "DENSE_DENSITY_THRESHOLD",
    "KERNEL_VERSION",
    "ByteBudgetLRU",
    "FailureSetSolver",
    "GraphKernel",
    "GraphView",
    "closure_with_edges",
    "edge_delta_distances",
    "edge_delta_with_carry",
    "graph_kernel_version",
]
