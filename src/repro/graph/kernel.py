"""The shared graph kernel: one distance/routing engine for the repo.

Every layer of the pipeline — topology design (mean-stretch objective),
the packet/fluid simulators, weather rerouting, and the application
studies — asks the same two questions of the hybrid fiber/MW graph:
*how far* (all-pairs / per-source shortest distances) and *which way*
(the shortest route itself).  Before this module each layer answered
them with its own stack (dense Floyd-Warshall matrices, networkx
graphs, predecessor-row reconstruction); now they all go through one
kernel with three complementary query paths:

* **full solves** — :meth:`GraphKernel.distances` /
  :meth:`GraphKernel.predecessors` pick the fastest exact method for
  the graph's density: scipy's C Floyd-Warshall for dense inputs (the
  hybrid graph is a metric closure, so it is complete) and batched CSR
  Dijkstra for sparse ones.  This module is the *only* place a dense
  FW solve may appear (enforced by a test).
* **per-source queries** — :meth:`GraphKernel.distances_from` runs
  batched sparse Dijkstra for a handful of sources without paying for
  all pairs.
* **incremental deltas** — :func:`edge_delta_distances` applies the
  exact single-edge insertion rule

      d'(s, t) = min(d(s, t), d(s, a) + w_ab + d(b, t),
                              d(s, b) + w_ab + d(a, t))

  vectorized over all pairs, O(n^2) per edge instead of O(n^3) per
  solve.  The rule is exact for nonnegative weights because a shortest
  path crosses a newly inserted edge at most once.
  :func:`edge_delta_with_carry` additionally maintains an additive
  per-pair quantity along the rerouted paths (e.g. MW-km carried),
  which is what lets the evolution backend score every budget prefix
  without ever reconstructing routes.

The mutable, versioned handle over a kernel is
:class:`~repro.graph.view.GraphView`; see that module for edge
mutation semantics (delta on improvement, exact fallback on removal).
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra, shortest_path

#: Code-version tag of the kernel's semantics.  The experiment
#: orchestration layer embeds it in stage cache keys (like
#: ``solver_version``), so bumping it retires every cached artifact
#: whose values flowed through the kernel.
KERNEL_VERSION = "1"

#: Fraction of finite off-diagonal entries above which the dense
#: Floyd-Warshall path is used for full solves.  Hybrid fiber/MW
#: matrices are metric closures (complete graphs), where scipy's FW is
#: ~3x faster than CSR Dijkstra; genuinely sparse graphs go the other
#: way.
DENSE_DENSITY_THRESHOLD = 0.25


def graph_kernel_version() -> str:
    """The kernel's code-version tag (cache-key ingredient)."""
    return KERNEL_VERSION


def edge_delta_distances(
    dist: np.ndarray, a: int, b: int, weight: float
) -> np.ndarray:
    """All-pairs distances after inserting undirected edge (a, b, weight).

    Exact for nonnegative weights given that ``dist`` is an exact
    all-pairs matrix of the pre-insertion graph.  Returns a new array;
    ``dist`` is not modified.
    """
    via = np.minimum(
        dist[:, a][:, None] + dist[b, :][None, :],
        dist[:, b][:, None] + dist[a, :][None, :],
    )
    return np.minimum(dist, via + weight)


def edge_delta_with_carry(
    dist: np.ndarray,
    carry: np.ndarray,
    a: int,
    b: int,
    weight: float,
    edge_carry: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The delta rule, also tracking an additive per-pair path quantity.

    ``carry[s, t]`` is some additive quantity accumulated along the
    current canonical shortest route (MW-km, hop counts, ...).  Pairs
    whose distance *strictly* improves reroute through the new edge;
    their carried quantity becomes ``carry[s, a] + edge_carry +
    carry[b, t]`` (or the mirrored orientation, whichever won the
    minimum; ties prefer the ``a`` orientation, matching
    :func:`edge_delta_distances`'s ``np.minimum`` order).  Pairs whose
    distance ties or worsens keep their old route and carry.

    Args:
        dist: exact all-pairs distances before the insertion.
        carry: the per-pair carried quantity before the insertion.
        a / b: endpoints of the inserted undirected edge.
        weight: the edge's length.
        edge_carry: the edge's own contribution to the carried quantity
            (defaults to ``weight``).

    Returns ``(new_dist, new_carry)`` — new arrays, inputs unmodified.
    The distance result is bit-identical to
    :func:`edge_delta_distances` on the same inputs.
    """
    if edge_carry is None:
        edge_carry = weight
    via_a = dist[:, a][:, None] + dist[b, :][None, :]
    via_b = dist[:, b][:, None] + dist[a, :][None, :]
    via = np.minimum(via_a, via_b)
    new_dist = np.minimum(dist, via + weight)
    improved = new_dist < dist
    carry_via_a = carry[:, a][:, None] + edge_carry + carry[b, :][None, :]
    carry_via_b = carry[:, b][:, None] + edge_carry + carry[a, :][None, :]
    rerouted = np.where(via_a <= via_b, carry_via_a, carry_via_b)
    new_carry = np.where(improved, rerouted, carry)
    return new_dist, new_carry


def closure_with_edges(
    closure: np.ndarray, edges
) -> np.ndarray:
    """Distances after inserting ``edges`` into an already-solved closure.

    ``closure`` must be an exact all-pairs distance matrix (e.g. the
    fiber metric closure); ``edges`` is an iterable of ``(a, b, w)``.
    Each insertion is one O(n^2) delta — no full solve anywhere.
    """
    dist = np.array(closure, dtype=float)
    np.fill_diagonal(dist, 0.0)
    for a, b, w in edges:
        dist = edge_delta_distances(dist, a, b, w)
    return dist


class GraphKernel:
    """Immutable all-pairs/per-source engine over one weight matrix.

    Args:
        weights: dense (n, n) symmetric matrix of edge weights;
            ``inf`` marks absent edges, the diagonal is forced to 0.
            The kernel keeps a private read-only copy.
        method: ``"auto"`` (density-based, the default), ``"dense"``
            (Floyd-Warshall), or ``"sparse"`` (batched CSR Dijkstra)
            for full solves.  Per-source queries always use sparse
            Dijkstra.

    All cached results (distances, predecessors) are returned as
    read-only arrays shared across callers; copy before mutating.
    """

    __slots__ = ("_weights", "_method", "_csr", "_dist", "_pred")

    def __init__(self, weights: np.ndarray, method: str = "auto") -> None:
        if method not in ("auto", "dense", "sparse"):
            raise ValueError("method must be 'auto', 'dense', or 'sparse'")
        w = np.array(weights, dtype=float)
        if w.ndim != 2 or w.shape[0] != w.shape[1]:
            raise ValueError(f"weights must be square, got shape {w.shape}")
        np.fill_diagonal(w, 0.0)
        w.setflags(write=False)
        self._weights = w
        self._method = method
        self._csr: csr_matrix | None = None
        self._dist: np.ndarray | None = None
        self._pred: np.ndarray | None = None

    @property
    def n(self) -> int:
        return self._weights.shape[0]

    @property
    def weights(self) -> np.ndarray:
        """The (read-only) dense weight matrix."""
        return self._weights

    def edge_count(self) -> int:
        """Number of undirected edges (finite off-diagonal pairs)."""
        iu = np.triu_indices(self.n, k=1)
        return int(np.isfinite(self._weights[iu]).sum())

    def density(self) -> float:
        """Fraction of site pairs with a direct edge."""
        pairs = self.n * (self.n - 1) // 2
        return self.edge_count() / pairs if pairs else 0.0

    def csr(self) -> csr_matrix:
        """The sparse CSR adjacency (finite off-diagonal entries)."""
        if self._csr is None:
            iu, ju = np.triu_indices(self.n, k=1)
            vals = self._weights[iu, ju]
            finite = np.isfinite(vals)
            rows = np.concatenate([iu[finite], ju[finite]])
            cols = np.concatenate([ju[finite], iu[finite]])
            data = np.concatenate([vals[finite], vals[finite]])
            self._csr = csr_matrix(
                (data, (rows, cols)), shape=(self.n, self.n)
            )
        return self._csr

    def _use_dense(self) -> bool:
        if self._method == "dense":
            return True
        if self._method == "sparse":
            return False
        return self.density() >= DENSE_DENSITY_THRESHOLD

    def _solve(self, return_predecessors: bool):
        if self._use_dense():
            return shortest_path(
                np.array(self._weights),
                method="FW",
                directed=False,
                return_predecessors=return_predecessors,
            )
        return dijkstra(
            self.csr(), directed=False, return_predecessors=return_predecessors
        )

    def distances(self) -> np.ndarray:
        """All-pairs shortest distances (cached, read-only).

        Solved together with the predecessor matrix (same cost in the
        underlying solvers), so any order of ``distances()`` /
        ``predecessors()`` calls pays exactly one full solve.
        """
        if self._dist is None:
            self.predecessors()
        assert self._dist is not None
        return self._dist

    def predecessors(self) -> tuple[np.ndarray, np.ndarray]:
        """``(distances, predecessors)`` for path reconstruction (cached).

        ``predecessors[s, t]`` is the node before ``t`` on the shortest
        s -> t path, or a negative sentinel when unreachable.
        """
        if self._pred is None:
            dist, pred = self._solve(return_predecessors=True)
            dist.setflags(write=False)
            pred.setflags(write=False)
            self._dist = dist
            self._pred = pred
        assert self._dist is not None
        return self._dist, self._pred

    def distances_from(
        self, sources, return_predecessors: bool = False
    ):
        """Shortest distances from a few sources (batched sparse Dijkstra).

        Args:
            sources: int or sequence of ints; rows of the result follow
                their order.
            return_predecessors: also return the predecessor rows.
        """
        indices = np.atleast_1d(np.asarray(sources, dtype=np.intp))
        return dijkstra(
            self.csr(),
            directed=False,
            indices=indices,
            return_predecessors=return_predecessors,
        )

    def path(self, s: int, t: int) -> list[int] | None:
        """The shortest s -> t node sequence, or None when unreachable."""
        dist, pred = self.predecessors()
        if s == t:
            return [s]
        if not np.isfinite(dist[s, t]):
            return None
        path = [t]
        node = t
        while node != s:
            node = int(pred[s, node])
            if node < 0:  # defensive: finite distance implies a chain
                return None
            path.append(node)
        path.reverse()
        return path
