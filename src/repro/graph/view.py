"""GraphView: the versioned, mutable handle over the graph kernel.

A :class:`GraphView` owns a private copy of a weight matrix and serves
distance/path queries through a :class:`~repro.graph.kernel.GraphKernel`
snapshot.  Edge mutations go through :meth:`GraphView.set_edge`:

* **improvement** (the new weight is strictly smaller) — the cached
  all-pairs distances are updated in O(n^2) with the kernel's exact
  single-edge delta rule;
* **removal / worsening** — cached results are invalidated and the
  next query pays one exact full solve (the "exact fallback").

Every mutation bumps :attr:`GraphView.version`, and
:attr:`GraphView.signature` identifies the current graph state, so
consumers holding a view (routing caches, experiment stages, sweep
drivers) can detect that the graph changed underneath them.

Batch *what-if* removals go through
:meth:`GraphView.distances_with_edges_removed`: distances with a set
of edges removed/worsened, computed by restarting Dijkstra only from
the sources whose rows can change — without mutating the view.  The
weather layer's failure-set evaluation is built on it.
"""

from __future__ import annotations

import numpy as np

from .kernel import DENSE_DENSITY_THRESHOLD, GraphKernel, edge_delta_distances


def affected_sources(base: np.ndarray, changes) -> np.ndarray:
    """Sources whose distance rows can change when edges are worsened.

    ``base`` is an exact all-pairs matrix of the *pre-change* graph and
    ``changes`` an iterable of ``(a, b, old_weight)`` for the edges
    about to be worsened or removed.  Source ``s`` is affected only if
    some changed edge is tight on a shortest path from ``s``
    (``d[s,a] + w == d[s,b]`` in either orientation).  The comparison
    carries a 1e-9 relative guard band, so float association error can
    only cause over-recomputation, never a stale row.

    Shared by :meth:`GraphView.distances_with_edges_removed` and the
    failure-set solver's delta route
    (:class:`~repro.graph.whatif.FailureSetSolver`).
    """
    n = base.shape[0]
    affected = np.zeros(n, dtype=bool)
    for a, b, old in changes:
        da, db = base[:, a], base[:, b]
        finite = np.isfinite(da) & np.isfinite(db)
        tol = 1e-9 * np.maximum(1.0, np.maximum(np.abs(da), np.abs(db)))
        tight = (da + old <= db + tol) | (db + old <= da + tol)
        affected |= finite & tight
    return affected


class GraphView:
    """A mutable, versioned view of one evolving graph.

    Args:
        weights: dense (n, n) symmetric weight matrix (``inf`` = no
            edge); the view keeps a private copy.
        tag: a short label identifying what the graph models (part of
            the signature).
    """

    __slots__ = ("_weights", "_tag", "_version", "_dist", "_kernel")

    def __init__(self, weights: np.ndarray, tag: str = "graph") -> None:
        w = np.array(weights, dtype=float)
        if w.ndim != 2 or w.shape[0] != w.shape[1]:
            raise ValueError(f"weights must be square, got shape {w.shape}")
        np.fill_diagonal(w, 0.0)
        self._weights = w
        self._tag = str(tag)
        self._version = 0
        self._dist: np.ndarray | None = None
        self._kernel: GraphKernel | None = None

    @property
    def n(self) -> int:
        return self._weights.shape[0]

    @property
    def tag(self) -> str:
        return self._tag

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by every edge change)."""
        return self._version

    @property
    def signature(self) -> tuple[str, int, int, int]:
        """``(tag, version, n, edge_count)`` identifying the graph state."""
        iu = np.triu_indices(self.n, k=1)
        n_edges = int(np.isfinite(self._weights[iu]).sum())
        return (self._tag, self._version, self.n, n_edges)

    def weight(self, a: int, b: int) -> float:
        """The current weight of edge (a, b) (``inf`` when absent)."""
        return float(self._weights[a, b])

    def weights_copy(self) -> np.ndarray:
        """A writable copy of the current weight matrix."""
        return self._weights.copy()

    def kernel(self) -> GraphKernel:
        """A kernel snapshot at the current weights (cached per version)."""
        if self._kernel is None:
            self._kernel = GraphKernel(self._weights)
        return self._kernel

    def distances(self) -> np.ndarray:
        """All-pairs distances at the current weights (read-only).

        Served from the delta-maintained cache when available, else one
        exact kernel solve.
        """
        if self._dist is None:
            self._dist = self.kernel().distances()
        return self._dist

    def path(self, s: int, t: int) -> list[int] | None:
        """Shortest s -> t node sequence, or None when unreachable."""
        return self.kernel().path(s, t)

    def set_edge(self, a: int, b: int, weight: float) -> None:
        """Set edge (a, b) to ``weight`` (``inf`` removes it).

        A strict improvement delta-updates the cached distances in
        O(n^2); a removal or worsening invalidates them (exact
        fallback: the next query runs a full solve).
        """
        if not (0 <= a < self.n and 0 <= b < self.n) or a == b:
            raise ValueError(f"invalid edge ({a}, {b}) for {self.n} nodes")
        if weight < 0:
            raise ValueError("edge weights must be non-negative")
        old = self._weights[a, b]
        if weight == old:
            return
        self._weights[a, b] = self._weights[b, a] = weight
        self._version += 1
        self._kernel = None
        if self._dist is not None and weight < old:
            dist = edge_delta_distances(self._dist, a, b, weight)
            dist.setflags(write=False)
            self._dist = dist
        else:
            self._dist = None

    def remove_edge(self, a: int, b: int) -> None:
        """Remove edge (a, b) (exact fallback on the next query)."""
        self.set_edge(a, b, np.inf)

    def distances_with_edges_removed(self, edges) -> np.ndarray:
        """All-pairs distances with ``edges`` removed or worsened.

        A batch *what-if* query: the view itself is not mutated (no
        version bump, no cache invalidation), so a caller can probe
        many removal sets against one base graph — the weather layer's
        failure-set evaluation is the canonical consumer.

        Args:
            edges: iterable of ``(a, b)`` (full removal) or
                ``(a, b, new_weight)`` with ``new_weight`` at least the
                current weight.  Entries whose weight does not actually
                change (already absent, or equal weight) are ignored;
                duplicate entries for one undirected edge (in either
                orientation) are merged, the strongest worsening
                winning; an *improvement* is rejected — that is
                :meth:`set_edge`'s delta-update territory.

        Instead of re-solving the whole graph, only the sources whose
        rows can change are restarted: source ``s`` is affected only
        if some changed edge is tight on a shortest path from ``s``
        (``d[s,a] + w == d[s,b]`` in either orientation, with a 1e-9
        relative guard band so float association error can only cause
        over-recomputation, never a stale row).  When no source is
        affected the cached base distances are returned untouched;
        otherwise, on sparse graphs, batched Dijkstra restarted from
        just the affected sources recomputes exactly those rows
        (bit-identical to the full sparse solve, whose rows are
        independent per source).  Dense graphs — where the kernel's
        full solve is Floyd-Warshall, which cannot restart per source
        — fall back to one exact full solve of the modified weights.
        Results are always exact; when the cached base distances come
        from a kernel solve (rather than a chain of :meth:`set_edge`
        delta updates), they are additionally bit-identical to
        :meth:`set_edge`-then-:meth:`distances` — the weather
        evaluator's CI gate rides on that.  Returns a read-only array.
        """
        base = self.distances()
        # Deduplicate by undirected edge: the same (a, b) — in either
        # orientation — listed twice in one batch reads the same ``old``
        # both times, so applying both entries would double-process the
        # edge (and make the result depend on entry order when the
        # weights conflict).  The strongest worsening wins.
        merged: dict[tuple[int, int], tuple[float, float]] = {}
        for edge in edges:
            if len(edge) == 2:
                a, b = edge
                new = np.inf
            else:
                a, b, new = edge
            a, b, new = int(a), int(b), float(new)
            if not (0 <= a < self.n and 0 <= b < self.n) or a == b:
                raise ValueError(f"invalid edge ({a}, {b}) for {self.n} nodes")
            old = float(self._weights[a, b])
            if new < old:
                raise ValueError(
                    f"edge ({a}, {b}): weight {new} improves on {old}; "
                    "distances_with_edges_removed only removes/worsens "
                    "(use set_edge for improvements)"
                )
            if not np.isfinite(old) or new == old:
                continue  # already absent / unchanged: a no-op
            key = (a, b) if a < b else (b, a)
            seen = merged.get(key)
            if seen is None or new > seen[1]:
                merged[key] = (old, new)
        changes = [(a, b, old, new) for (a, b), (old, new) in merged.items()]
        if not changes:
            return base
        idx = np.flatnonzero(
            affected_sources(base, [(a, b, old) for a, b, old, _ in changes])
        )
        if idx.size == 0:
            return base
        weights = self._weights.copy()
        for a, b, _, new in changes:
            weights[a, b] = weights[b, a] = new
        kernel = GraphKernel(weights)
        # Branch on the *base* graph's density: if the base solve ran
        # dense FW, its cached rows cannot be merged bitwise with
        # per-source Dijkstra restarts — take the exact fallback (one
        # full solve, same as set_edge-then-distances).  A base below
        # the threshold keeps the modified graph below it too (edges
        # are only removed or worsened, never added), so the sparse
        # restart merges Dijkstra rows with Dijkstra rows.
        if idx.size == self.n or self.kernel().density() >= DENSE_DENSITY_THRESHOLD:
            return kernel.distances()
        rows = kernel.distances_from(idx)
        out = np.array(base)
        out[idx, :] = rows
        out.setflags(write=False)
        return out

    def to_networkx(self, weight: str = "latency"):
        """Export the current graph as an undirected networkx graph.

        Nodes are ``range(n)``; every finite off-diagonal pair becomes
        an edge whose ``weight`` attribute holds its length.  Insertion
        order is deterministic (upper-triangle order), so repeated
        exports of the same view state are identical graphs.
        """
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        s_idx, t_idx = np.triu_indices(self.n, k=1)
        finite = np.isfinite(self._weights[s_idx, t_idx])
        graph.add_weighted_edges_from(
            (
                (int(s), int(t), float(self._weights[s, t]))
                for s, t in zip(s_idx[finite], t_idx[finite])
            ),
            weight=weight,
        )
        return graph
