"""Exact flow-based ILP for topology design (paper §3.2).

Implements objective (1): minimize the traffic-weighted mean stretch

    min sum_{s,t} (h_st / d_st) * sum_{i,j} (o_ij f^{st}_{ij,o}
                                             + m_ij f^{st}_{ij,m})

over binary link-build variables x_ij (budget sum c_ij x_ij <= B) and
binary unsplittable-flow variables, with flow conservation and the
requirement that only built MW links carry flow.  Fiber is free and
always available.

The paper solves this with Gurobi; we use scipy's HiGHS backend
(:func:`scipy.optimize.milp`).  The module also implements the paper's
*pruning oracle*: flow variables that are provably dominated by the
direct fiber path are eliminated up front.  The oracle preserves
optimality because every latency-equivalent edge length is bounded
below by the geodesic distance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from .topology import DesignInput, Topology

#: Numerical slack when comparing path lengths in the pruning oracle.
_EPS = 1e-9


@dataclass(frozen=True)
class IlpResult:
    """Outcome of an exact ILP solve.

    Attributes:
        topology: the chosen topology (empty if infeasible).
        objective: traffic-weighted mean stretch of the solution.
        status: HiGHS status string ("optimal", "time_limit", ...).
        runtime_s: wall-clock solve time (including matrix build).
        n_variables / n_constraints: problem size after pruning.
    """

    topology: Topology
    objective: float
    status: str
    runtime_s: float
    n_variables: int
    n_constraints: int


def prune_useless_links(design: DesignInput) -> list[tuple[int, int]]:
    """Candidate MW links that could ever improve on fiber.

    A link (i, j) with m_ij >= o_ij can always be replaced by the direct
    fiber between i and j on any path, so it is globally useless (the
    paper's "obviously bad" oracle, which is exact, not a heuristic).
    """
    return [
        (a, b)
        for a, b in design.candidate_links()
        if design.mw_km[a, b] < design.fiber_km[a, b] - _EPS
    ]


def useful_arcs_for_commodity(
    design: DesignInput,
    s: int,
    t: int,
    mw_candidates: list[tuple[int, int]],
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """The directed arcs that could lie on a sub-fiber-latency s->t path.

    Returns (mw_arcs, fiber_arcs) as directed (i, j) lists.  An arc is
    kept iff the geodesic lower bound of any s->t path through it beats
    the direct fiber o_st; the direct fiber arc s->t is always kept as
    the fallback.  Exact: every edge length is >= geodesic, so a pruned
    arc cannot be on a path shorter than direct fiber.
    """
    d = design.geodesic_km
    o = design.fiber_km
    m = design.mw_km
    budget_len = o[s, t]
    mw_arcs: list[tuple[int, int]] = []
    for a, b in mw_candidates:
        if d[s, a] + m[a, b] + d[b, t] < budget_len - _EPS:
            mw_arcs.append((a, b))
        if d[s, b] + m[a, b] + d[a, t] < budget_len - _EPS:
            mw_arcs.append((b, a))
    fiber_arcs: list[tuple[int, int]] = [(s, t)]
    n = design.n_sites
    for i in range(n):
        for j in range(n):
            if i == j or (i == s and j == t):
                continue
            if d[s, i] + o[i, j] + d[j, t] < budget_len - _EPS:
                fiber_arcs.append((i, j))
    return mw_arcs, fiber_arcs


def solve_ilp(
    design: DesignInput,
    budget_towers: float,
    candidate_links: list[tuple[int, int]] | None = None,
    use_pruning: bool = True,
    time_limit_s: float | None = None,
    mip_rel_gap: float = 1e-4,
) -> IlpResult:
    """Solve the topology-design ILP exactly.

    Args:
        design: the problem input.
        budget_towers: tower budget B.
        candidate_links: restrict the choice to these links (the
            heuristic passes its greedy-generated candidates here);
            default is all feasible Step-1 links.
        use_pruning: apply the exactness-preserving oracle.  Disabling
            it reproduces the paper's scalability baseline (Fig 2a).
        time_limit_s: HiGHS wall-clock limit.
        mip_rel_gap: relative MIP gap tolerance.
    """
    start = time.perf_counter()
    if budget_towers < 0:
        raise ValueError("budget must be non-negative")
    if candidate_links is None:
        candidate_links = (
            prune_useless_links(design) if use_pruning else design.candidate_links()
        )
    links = sorted(set(candidate_links))
    n_links = len(links)
    link_index = {e: k for k, e in enumerate(links)}
    n = design.n_sites
    h = design.traffic
    commodities = [
        (s, t) for s in range(n) for t in range(s + 1, n) if h[s, t] > 0
    ]

    # --- Variable layout: [x_0..x_{L-1}, then per-commodity arc flows] --
    col_cost: list[float] = [0.0] * n_links
    rows_eq: list[int] = []
    cols_eq: list[int] = []
    vals_eq: list[float] = []
    beq: list[float] = []
    rows_ub: list[int] = []
    cols_ub: list[int] = []
    vals_ub: list[float] = []
    n_eq = 0
    n_ub = 0
    next_var = n_links
    mw_flow_vars: list[tuple[int, int]] = []  # (flow var, link index)
    d = design.geodesic_km
    o = design.fiber_km
    m = design.mw_km

    for s, t in commodities:
        weight = h[s, t] / d[s, t] if d[s, t] > 0 else 0.0
        if use_pruning:
            mw_arcs, fiber_arcs = useful_arcs_for_commodity(design, s, t, links)
        else:
            mw_arcs = [(a, b) for a, b in links] + [(b, a) for a, b in links]
            fiber_arcs = [(i, j) for i in range(n) for j in range(n) if i != j]
        arc_vars: list[tuple[int, int, int, bool]] = []  # (var, i, j, is_mw)
        for i, j in mw_arcs:
            col_cost.append(weight * m[min(i, j), max(i, j)])
            arc_vars.append((next_var, i, j, True))
            mw_flow_vars.append((next_var, link_index[(min(i, j), max(i, j))]))
            next_var += 1
        for i, j in fiber_arcs:
            col_cost.append(weight * o[i, j])
            arc_vars.append((next_var, i, j, False))
            next_var += 1

        # Flow conservation on the nodes touched by this commodity.
        nodes = {s, t}
        for _, i, j, _mw in arc_vars:
            nodes.add(i)
            nodes.add(j)
        node_row = {v: n_eq + k for k, v in enumerate(sorted(nodes))}
        for v in sorted(nodes):
            beq.append(1.0 if v == s else (-1.0 if v == t else 0.0))
        n_eq += len(nodes)
        for var, i, j, _mw in arc_vars:
            rows_eq.append(node_row[i])
            cols_eq.append(var)
            vals_eq.append(1.0)
            rows_eq.append(node_row[j])
            cols_eq.append(var)
            vals_eq.append(-1.0)

        # Built-link coupling: f <= x for MW arcs.
        for var, i, j, is_mw in arc_vars:
            if is_mw:
                rows_ub.append(n_ub)
                cols_ub.append(var)
                vals_ub.append(1.0)
                rows_ub.append(n_ub)
                cols_ub.append(link_index[(min(i, j), max(i, j))])
                vals_ub.append(-1.0)
                n_ub += 1

    # Budget row.
    for k, (a, b) in enumerate(links):
        rows_ub.append(n_ub)
        cols_ub.append(k)
        vals_ub.append(float(design.cost_towers[a, b]))
    n_ub += 1

    n_vars = next_var
    constraints = []
    if n_eq:
        a_eq = sparse.csr_matrix(
            (vals_eq, (rows_eq, cols_eq)), shape=(n_eq, n_vars)
        )
        constraints.append(LinearConstraint(a_eq, np.array(beq), np.array(beq)))
    ub_bounds = np.zeros(n_ub)
    ub_bounds[-1] = float(budget_towers)
    a_ub = sparse.csr_matrix((vals_ub, (rows_ub, cols_ub)), shape=(n_ub, n_vars))
    constraints.append(LinearConstraint(a_ub, -np.inf, ub_bounds))

    options: dict[str, float] = {"mip_rel_gap": mip_rel_gap}
    if time_limit_s is not None:
        options["time_limit"] = float(time_limit_s)
    result = milp(
        c=np.array(col_cost),
        constraints=constraints,
        integrality=np.ones(n_vars),
        bounds=Bounds(0.0, 1.0),
        options=options,
    )
    runtime = time.perf_counter() - start

    if result.x is None:
        return IlpResult(
            topology=Topology(design=design),
            objective=float("inf"),
            status=str(result.message),
            runtime_s=runtime,
            n_variables=n_vars,
            n_constraints=n_eq + n_ub,
        )
    # Keep only links that actually carry flow: the solver is free to
    # set x = 1 on links no commodity uses (they have zero objective
    # cost), which would inflate the reported tower spend.
    used_links = {link for var, link in mw_flow_vars if result.x[var] > 0.5}
    chosen = frozenset(
        links[k] for k in range(n_links) if result.x[k] > 0.5 and k in used_links
    )
    topology = Topology(design=design, mw_links=chosen)
    return IlpResult(
        topology=topology,
        objective=topology.mean_stretch(),
        status="optimal" if result.status == 0 else str(result.message),
        runtime_s=runtime,
        n_variables=n_vars,
        n_constraints=n_eq + n_ub,
    )
