"""Step 3: capacity augmentation with parallel tower series (§3.3, §4).

A single MW link carries ~1 Gbps.  Links that must carry more get
parallel series of towers; with the paper's k^2 trick (multiple antennae
per tower at >= 6 degrees angular separation), k parallel series provide
k^2 Gbps.  Extra series reuse spare existing towers where the
infrastructure is dense enough, and pay for new towers otherwise.

This module routes the scaled traffic matrix over a designed topology,
sizes each link's series count, and produces the paper's hop census
(Fig 3 caption: at 100 Gbps, 1,660 hops need no new towers, 552 need one
new tower at each end, 86 need two) plus the inputs to the cost model.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..links.builder import LinkCatalog
from ..towers.registry import TowerRegistry
from .costs import CostModel
from .topology import Topology

#: Bandwidth of one MW series, Gbps (paper §2).
SERIES_CAPACITY_GBPS = 1.0

#: Radius around a hop midpoint within which existing towers can host a
#: parallel series (tower-siting tolerance, §3.3).
SPARE_SEARCH_RADIUS_KM = 15.0


@dataclass(frozen=True)
class LinkProvision:
    """Capacity provisioning for one built MW link.

    Attributes:
        link: the (a, b) site pair.
        demand_gbps: traffic routed over the link.
        n_series: parallel tower series (k, giving k^2 Gbps capacity).
        n_hops: tower-to-tower hops along one series.
        new_towers: newly built towers across all hops and series.
        hop_new_tower_census: per-hop count of new towers needed at each
            end (0, 1, 2, ...), as a Counter.
    """

    link: tuple[int, int]
    demand_gbps: float
    n_series: int
    n_hops: int
    new_towers: int
    hop_new_tower_census: Counter


@dataclass(frozen=True)
class AugmentationResult:
    """Network-wide capacity provisioning summary.

    Attributes:
        provisions: per-link provisioning details.
        aggregate_gbps: the provisioned aggregate demand.
        n_hop_series: radio hops counting parallel series separately.
        n_new_towers: total newly built towers.
        n_rented_towers: towers rented (existing towers in use).
        hop_census: Counter of new-towers-per-end -> number of hops
            (the Fig 3 caption numbers).
    """

    provisions: tuple[LinkProvision, ...]
    aggregate_gbps: float
    n_hop_series: int
    n_new_towers: int
    n_rented_towers: int
    hop_census: Counter

    def cost_per_gb(self, model: CostModel | None = None) -> float:
        """Amortized cost per GB under the paper's cost model."""
        model = model or CostModel()
        return model.cost_per_gb(
            n_hop_series=self.n_hop_series,
            n_new_towers=self.n_new_towers,
            n_rented_towers=self.n_rented_towers,
            aggregate_gbps=self.aggregate_gbps,
        )


def series_needed(demand_gbps: float) -> int:
    """Parallel series required for a demand (k^2 rule, §3.3).

    <1 Gbps -> 1 series; 1-4 -> 2; 4-9 -> 3; etc.  Zero-demand links
    still get their single built series.
    """
    if demand_gbps < 0:
        raise ValueError("demand must be non-negative")
    if demand_gbps <= SERIES_CAPACITY_GBPS:
        return 1
    return max(1, math.ceil(math.sqrt(demand_gbps / SERIES_CAPACITY_GBPS)))


def route_link_demands(
    topology: Topology, aggregate_gbps: float
) -> dict[tuple[int, int], float]:
    """Traffic carried by each built MW link at the given aggregate.

    Routes every commodity along its shortest hybrid path (the same
    routing the design objective assumes) and accumulates demand on the
    MW edges it traverses.
    """
    if aggregate_gbps <= 0:
        raise ValueError("aggregate demand must be positive")
    design = topology.design
    h = design.traffic
    total_h = np.triu(h, k=1).sum()
    routes = topology.routed_paths()
    mw_links = topology.mw_links
    demands: dict[tuple[int, int], float] = {e: 0.0 for e in mw_links}
    for (s, t), path in routes.items():
        demand = aggregate_gbps * h[s, t] / total_h
        for u, v in zip(path[:-1], path[1:]):
            edge = (min(u, v), max(u, v))
            if edge in demands and (
                design.mw_km[edge] < design.fiber_km[edge]
            ):
                demands[edge] += demand
    return demands


def augment_capacity(
    topology: Topology,
    catalog: LinkCatalog,
    registry: TowerRegistry,
    aggregate_gbps: float,
    cost_model: CostModel | None = None,
    spare_radius_km: float = SPARE_SEARCH_RADIUS_KM,
) -> AugmentationResult:
    """Provision every built link for its routed demand.

    For each hop of a link needing k parallel series, the k-1 extra
    series first occupy spare existing towers near the hop (within
    ``spare_radius_km`` of its midpoint), and new towers are built at
    each end for whatever remains, at the cost model's new-tower price.
    """
    del cost_model  # cost application happens on the result
    demands = route_link_demands(topology, aggregate_gbps)
    provisions: list[LinkProvision] = []
    total_census: Counter = Counter()
    n_hop_series = 0
    n_new_towers = 0
    n_rented = 0
    for link, demand in sorted(demands.items()):
        cand = catalog.link(*link)
        if cand is None:
            raise ValueError(f"built link {link} missing from catalog")
        k = series_needed(demand)
        path = cand.tower_path
        n_hops = max(len(path) - 1, 1)
        census: Counter = Counter()
        new_for_link = 0
        if k == 1:
            census[0] = n_hops
        else:
            for hop_idx in range(n_hops):
                end_a = registry[path[hop_idx]] if hop_idx < len(path) else None
                # Spare existing towers near the hop's first endpoint:
                # total towers in the vicinity minus those this path uses.
                if end_a is not None:
                    nearby = registry.count_near(end_a.point, spare_radius_km)
                else:
                    nearby = 0
                spares_per_end = max(0, (nearby - 2)) // 2
                new_per_end = max(0, (k - 1) - spares_per_end)
                census[new_per_end] += 1
                new_for_link += 2 * new_per_end
        n_hop_series += n_hops * k
        n_new_towers += new_for_link
        # Rented towers: every existing tower occupied by any series.
        existing_per_series = len(path)
        n_rented += existing_per_series + (k - 1) * max(existing_per_series - 0, 0)
        total_census.update(census)
        provisions.append(
            LinkProvision(
                link=link,
                demand_gbps=float(demand),
                n_series=k,
                n_hops=n_hops,
                new_towers=new_for_link,
                hop_new_tower_census=census,
            )
        )
    # New towers are owned, not rented; subtract them from the rented
    # estimate (they were counted inside the per-series tower totals).
    n_rented = max(0, n_rented - n_new_towers)
    return AugmentationResult(
        provisions=tuple(provisions),
        aggregate_gbps=aggregate_gbps,
        n_hop_series=n_hop_series,
        n_new_towers=n_new_towers,
        n_rented_towers=n_rented,
        hop_census=total_census,
    )
