"""Design-problem inputs and hybrid-topology evaluation (paper §3.2).

A :class:`DesignInput` bundles everything the topology-design algorithms
consume: the sites, the traffic matrix H, geodesic distances d_ij, the
Step-1 microwave link lengths m_ij and tower costs c_ij, and the
latency-equivalent fiber distances o_ij (route length x 1.5).

A :class:`Topology` is a set of *built* MW links on top of the
always-available fiber.  Its key operation is computing the effective
site-to-site latency-equivalent distance matrix (shortest paths over
fiber + built MW links) and from it the traffic-weighted mean stretch,
the paper's objective.

All distance/routing queries go through the shared graph kernel
(:mod:`repro.graph`) and are memoized on the (frozen) ``Topology``
instance: the hybrid weight matrix, the kernel, the effective distance
matrix, and the routed paths are each computed at most once per
topology, no matter how many of ``mean_stretch()`` / ``mw_shares()`` /
``routed_paths()`` a caller chains (``solve_heuristic``'s per-budget
loop used to redo an identical all-pairs solve for every one of them).
Memoized arrays are returned read-only; copy before mutating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..datasets.sites import Site
from ..graph import GraphKernel, GraphView


@dataclass(frozen=True)
class DesignInput:
    """Inputs to the network-design problem (all matrices (n, n)).

    Attributes:
        sites: the sites to interconnect.
        traffic: symmetric traffic matrix, upper triangle sums to 1.
        geodesic_km: great-circle distances d_ij.
        mw_km: Step-1 MW link lengths m_ij (inf where infeasible).
        cost_towers: Step-1 link costs c_ij in towers (inf if infeasible).
        fiber_km: latency-equivalent fiber distances o_ij
            (1.5 x conduit route; this is a metric closure).
    """

    sites: tuple[Site, ...]
    traffic: np.ndarray
    geodesic_km: np.ndarray
    mw_km: np.ndarray
    cost_towers: np.ndarray
    fiber_km: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.sites)
        for name in ("traffic", "geodesic_km", "mw_km", "cost_towers", "fiber_km"):
            m = getattr(self, name)
            if m.shape != (n, n):
                raise ValueError(f"{name} must be ({n}, {n}), got {m.shape}")
        if np.any(self.geodesic_km < 0):
            raise ValueError("geodesic distances must be non-negative")

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    def pair_weights(self) -> np.ndarray:
        """Objective weights w_ij = h_ij / d_ij (0 where d is 0).

        With these weights, sum(w * D) over the upper triangle equals
        the traffic-weighted mean stretch when D is the effective
        distance matrix.
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            w = np.where(self.geodesic_km > 0, self.traffic / self.geodesic_km, 0.0)
        return np.triu(w, k=1)

    def candidate_links(self) -> list[tuple[int, int]]:
        """All (a, b) pairs, a < b, with a feasible Step-1 MW link."""
        n = self.n_sites
        return [
            (a, b)
            for a in range(n)
            for b in range(a + 1, n)
            if np.isfinite(self.mw_km[a, b]) and self.mw_km[a, b] > 0
        ]


@dataclass(frozen=True)
class Topology:
    """A hybrid MW + fiber topology: the set of built MW links.

    Attributes:
        design: the problem input this topology belongs to.
        mw_links: built links as (a, b) pairs with a < b.
    """

    design: DesignInput
    mw_links: frozenset[tuple[int, int]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        for a, b in self.mw_links:
            if not (0 <= a < b < self.design.n_sites):
                raise ValueError(f"invalid link ({a}, {b})")
            if not np.isfinite(self.design.mw_km[a, b]):
                raise ValueError(f"link ({a}, {b}) is not feasible in the input")
        object.__setattr__(self, "_cache", {})

    def __getstate__(self) -> dict:
        # The memoization cache is derived data: keep it out of pickles
        # (the artifact store serializes topologies) and deep copies.
        state = dict(self.__dict__)
        state.pop("_cache", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        object.__setattr__(self, "_cache", {})

    def _memo(self, key: str, compute) -> Any:
        cache = self._cache
        if key not in cache:
            cache[key] = compute()
        return cache[key]

    @property
    def total_cost_towers(self) -> float:
        """Total tower cost of the built MW links."""
        return float(sum(self.design.cost_towers[a, b] for a, b in self.mw_links))

    def hybrid_weight_matrix(self) -> np.ndarray:
        """Site-pair edge weights of the hybrid graph (memoized, read-only).

        Fiber between any pair is always available at o_ij; built MW
        links replace it where their m_ij is shorter.  This is the one
        place the hybrid fiber/MW model is defined — routing, stretch,
        and the netsim experiments all derive from it.
        """

        def build() -> np.ndarray:
            w = self.design.fiber_km.copy()
            for a, b in self.mw_links:
                m = self.design.mw_km[a, b]
                if m < w[a, b]:
                    w[a, b] = w[b, a] = m
            np.fill_diagonal(w, 0.0)
            w.setflags(write=False)
            return w

        return self._memo("weights", build)

    def graph_kernel(self) -> GraphKernel:
        """The shared graph kernel over the hybrid graph (memoized)."""
        return self._memo(
            "kernel", lambda: GraphKernel(self.hybrid_weight_matrix())
        )

    def graph_view(self) -> GraphView:
        """A fresh, caller-owned mutable view of the hybrid graph.

        Each call returns an independent :class:`~repro.graph.GraphView`
        (mutations never leak between consumers); the memoized kernel
        and distance matrix stay untouched.
        """
        return GraphView(self.hybrid_weight_matrix(), tag="hybrid")

    def effective_distance_matrix(self) -> np.ndarray:
        """Latency-equivalent distances over fiber + built MW links.

        Paths may concatenate fiber and MW segments.  Memoized; the
        returned array is read-only.
        """
        return self.graph_kernel().distances()

    def stretch_matrix(self) -> np.ndarray:
        """Per-pair latency stretch over geodesic (NaN on the diagonal)."""
        dist = self.effective_distance_matrix()
        geo = self.design.geodesic_km
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(geo > 0, dist / geo, np.nan)

    def mean_stretch(self) -> float:
        """Traffic-weighted mean stretch, the paper's objective."""
        return mean_stretch_from_distances(self.design, self.effective_distance_matrix())

    def routed_paths(self) -> dict[tuple[int, int], list[int]]:
        """Shortest site-level route for every pair with positive demand.

        Returns, for each (s, t) with s < t and h_st > 0, the node
        sequence s, ..., t over the hybrid graph.  Pairs that are
        unreachable (infinite hybrid distance) are skipped — they have
        no route, and storing a truncated partial path (the pre-kernel
        behavior) would silently corrupt downstream demand routing.
        Memoized; treat the returned mapping as read-only.
        """

        def build() -> dict[tuple[int, int], list[int]]:
            distances, predecessors = self.graph_kernel().predecessors()
            n = self.design.n_sites
            routes: dict[tuple[int, int], list[int]] = {}
            for s in range(n):
                for t in range(s + 1, n):
                    if self.design.traffic[s, t] <= 0:
                        continue
                    if not np.isfinite(distances[s, t]):
                        continue  # unreachable pair: no route to store
                    path = [t]
                    node = t
                    while node != s:
                        node = int(predecessors[s, node])
                        path.append(node)
                    path.reverse()
                    routes[(s, t)] = path
            return routes

        return self._memo("routes", build)


def mean_stretch_from_distances(design: DesignInput, distances: np.ndarray) -> float:
    """Traffic-weighted mean stretch for a given distance matrix."""
    w = design.pair_weights()
    total_h = np.triu(design.traffic, k=1).sum()
    if total_h <= 0:
        raise ValueError("no traffic demand")
    return float((w * np.triu(distances, k=1)).sum() / total_h)


def fiber_only_topology(design: DesignInput) -> Topology:
    """The degenerate all-fiber topology (budget 0)."""
    return Topology(design=design, mw_links=frozenset())
