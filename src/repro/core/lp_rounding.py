"""LP-relaxation + rounding baseline (paper §3.2 / §4).

The paper reports that "even the naive LP relaxation followed by
rounding did not scale beyond 60 cities, and gave results worse than
optimal".  This module implements that baseline so the comparison can be
reproduced: relax every binary variable of the flow ILP to [0, 1], solve
the LP, build every link with x above a threshold, and repair the budget
by dropping the lowest-valued links.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, linprog

from .ilp import prune_useless_links, useful_arcs_for_commodity
from .topology import DesignInput, Topology


@dataclass(frozen=True)
class LpRoundingResult:
    """Outcome of the LP-rounding baseline.

    Attributes:
        topology: the rounded (and budget-repaired) topology.
        objective: its traffic-weighted mean stretch.
        lp_objective: the (lower-bound) fractional LP objective.
        runtime_s: wall-clock time.
    """

    topology: Topology
    objective: float
    lp_objective: float
    runtime_s: float


def solve_lp_rounding(
    design: DesignInput,
    budget_towers: float,
    threshold: float = 0.5,
) -> LpRoundingResult:
    """Solve the relaxed LP and round the link variables.

    Links with fractional value >= ``threshold`` are built; if they
    exceed the budget, the smallest-valued ones are dropped until the
    solution fits.
    """
    start = time.perf_counter()
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    links = prune_useless_links(design)
    n_links = len(links)
    link_index = {e: k for k, e in enumerate(links)}
    n = design.n_sites
    h = design.traffic
    d = design.geodesic_km
    o = design.fiber_km
    m = design.mw_km
    commodities = [(s, t) for s in range(n) for t in range(s + 1, n) if h[s, t] > 0]

    col_cost: list[float] = [0.0] * n_links
    rows_eq: list[int] = []
    cols_eq: list[int] = []
    vals_eq: list[float] = []
    beq: list[float] = []
    rows_ub: list[int] = []
    cols_ub: list[int] = []
    vals_ub: list[float] = []
    n_eq = 0
    n_ub = 0
    next_var = n_links
    for s, t in commodities:
        weight = h[s, t] / d[s, t] if d[s, t] > 0 else 0.0
        mw_arcs, fiber_arcs = useful_arcs_for_commodity(design, s, t, links)
        arc_vars: list[tuple[int, int, int, bool]] = []
        for i, j in mw_arcs:
            col_cost.append(weight * m[min(i, j), max(i, j)])
            arc_vars.append((next_var, i, j, True))
            next_var += 1
        for i, j in fiber_arcs:
            col_cost.append(weight * o[i, j])
            arc_vars.append((next_var, i, j, False))
            next_var += 1
        nodes = {s, t}
        for _, i, j, _mw in arc_vars:
            nodes.add(i)
            nodes.add(j)
        node_row = {v: n_eq + k for k, v in enumerate(sorted(nodes))}
        for v in sorted(nodes):
            beq.append(1.0 if v == s else (-1.0 if v == t else 0.0))
        n_eq += len(nodes)
        for var, i, j, _mw in arc_vars:
            rows_eq.append(node_row[i])
            cols_eq.append(var)
            vals_eq.append(1.0)
            rows_eq.append(node_row[j])
            cols_eq.append(var)
            vals_eq.append(-1.0)
        for var, i, j, is_mw in arc_vars:
            if is_mw:
                rows_ub.append(n_ub)
                cols_ub.append(var)
                vals_ub.append(1.0)
                rows_ub.append(n_ub)
                cols_ub.append(link_index[(min(i, j), max(i, j))])
                vals_ub.append(-1.0)
                n_ub += 1
    for k, (a, b) in enumerate(links):
        rows_ub.append(n_ub)
        cols_ub.append(k)
        vals_ub.append(float(design.cost_towers[a, b]))
    n_ub += 1

    n_vars = next_var
    a_eq = sparse.csr_matrix((vals_eq, (rows_eq, cols_eq)), shape=(n_eq, n_vars))
    ub = np.zeros(n_ub)
    ub[-1] = float(budget_towers)
    a_ub = sparse.csr_matrix((vals_ub, (rows_ub, cols_ub)), shape=(n_ub, n_vars))
    result = linprog(
        c=np.array(col_cost),
        A_ub=a_ub,
        b_ub=ub,
        A_eq=a_eq,
        b_eq=np.array(beq),
        bounds=(0.0, 1.0),
        method="highs",
    )
    if result.x is None:
        raise RuntimeError(f"LP failed: {result.message}")

    x = result.x[:n_links]
    picked = [(links[k], float(x[k])) for k in range(n_links) if x[k] >= threshold]
    picked.sort(key=lambda kv: -kv[1])
    chosen: set[tuple[int, int]] = set()
    spent = 0.0
    for (a, b), _val in picked:
        c = float(design.cost_towers[a, b])
        if spent + c <= budget_towers:
            chosen.add((a, b))
            spent += c
    topology = Topology(design=design, mw_links=frozenset(chosen))
    return LpRoundingResult(
        topology=topology,
        objective=topology.mean_stretch(),
        lp_objective=float(result.fun),
        runtime_s=time.perf_counter() - start,
    )
