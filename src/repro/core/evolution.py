"""Budget evolution: how the hybrid shifts from fiber to microwave.

The paper publishes an animation ([20]) of the network evolving "from
mostly-fiber to mostly-MW as the budget increases".  This module
produces that evolution as data: for each budget, the share of traffic
that touches any MW link and the share of traffic-weighted distance
actually carried over MW.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .heuristic import GreedyStep
from .topology import DesignInput, Topology


@dataclass(frozen=True)
class EvolutionPoint:
    """The hybrid's composition at one budget.

    Attributes:
        budget_towers: the budget at this point.
        towers_used: towers actually spent.
        n_links: MW links built.
        mean_stretch: traffic-weighted mean stretch.
        traffic_on_mw: fraction of traffic whose route uses >= 1 MW link.
        distance_share_mw: fraction of traffic-weighted route-km carried
            over MW links (the "mostly-fiber -> mostly-MW" measure).
    """

    budget_towers: float
    towers_used: float
    n_links: int
    mean_stretch: float
    traffic_on_mw: float
    distance_share_mw: float


def mw_shares(topology: Topology) -> tuple[float, float]:
    """(traffic_on_mw, distance_share_mw) for a topology."""
    design = topology.design
    h = design.traffic
    routes = topology.routed_paths()
    mw = topology.mw_links
    total_h = 0.0
    touched_h = 0.0
    mw_km_weighted = 0.0
    total_km_weighted = 0.0
    for (s, t), path in routes.items():
        w = h[s, t]
        total_h += w
        uses_mw = False
        for u, v in zip(path[:-1], path[1:]):
            edge = (min(u, v), max(u, v))
            is_mw = edge in mw and design.mw_km[edge] < design.fiber_km[edge]
            length = design.mw_km[edge] if is_mw else design.fiber_km[edge]
            total_km_weighted += w * length
            if is_mw:
                uses_mw = True
                mw_km_weighted += w * length
        if uses_mw:
            touched_h += w
    if total_h <= 0:
        raise ValueError("no traffic")
    return (
        touched_h / total_h,
        mw_km_weighted / total_km_weighted if total_km_weighted > 0 else 0.0,
    )


def budget_evolution(
    design: DesignInput,
    steps: list[GreedyStep],
    budgets: list[float],
) -> list[EvolutionPoint]:
    """The evolution table for a greedy run's prefixes."""
    points = []
    for budget in budgets:
        links = []
        spent = 0.0
        for step in steps:
            if step.cumulative_cost <= budget:
                links.append(step.link)
                spent = step.cumulative_cost
        topology = Topology(design=design, mw_links=frozenset(links))
        traffic_on_mw, distance_share = mw_shares(topology)
        points.append(
            EvolutionPoint(
                budget_towers=float(budget),
                towers_used=spent,
                n_links=len(links),
                mean_stretch=topology.mean_stretch(),
                traffic_on_mw=traffic_on_mw,
                distance_share_mw=distance_share,
            )
        )
    return points
