"""Budget evolution: how the hybrid shifts from fiber to microwave.

The paper publishes an animation ([20]) of the network evolving "from
mostly-fiber to mostly-MW as the budget increases".  This module
produces that evolution as data: for each budget, the share of traffic
that touches any MW link and the share of traffic-weighted distance
actually carried over MW.

Scoring is *delta-evaluated* on the shared graph kernel: instead of a
fresh all-pairs solve per budget point (the pre-kernel behavior paid
two dense O(n^3) Floyd-Warshall solves per point — one for the stretch
and one for the routes behind :func:`mw_shares`), the distance matrix
and the per-pair MW-km are maintained incrementally across the greedy
prefix with :func:`repro.graph.edge_delta_with_carry` — one O(n^2)
update per added link, O(n^2) readout per budget, zero full solves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import edge_delta_with_carry
from .heuristic import GreedyStep
from .topology import DesignInput, Topology, mean_stretch_from_distances


@dataclass(frozen=True)
class EvolutionPoint:
    """The hybrid's composition at one budget.

    Attributes:
        budget_towers: the budget at this point.
        towers_used: towers actually spent.
        n_links: MW links built.
        mean_stretch: traffic-weighted mean stretch.
        traffic_on_mw: fraction of traffic whose route uses >= 1 MW link.
        distance_share_mw: fraction of traffic-weighted route-km carried
            over MW links (the "mostly-fiber -> mostly-MW" measure).
    """

    budget_towers: float
    towers_used: float
    n_links: int
    mean_stretch: float
    traffic_on_mw: float
    distance_share_mw: float


def mw_shares(topology: Topology) -> tuple[float, float]:
    """(traffic_on_mw, distance_share_mw) for a topology."""
    design = topology.design
    h = design.traffic
    routes = topology.routed_paths()
    mw = topology.mw_links
    total_h = 0.0
    touched_h = 0.0
    mw_km_weighted = 0.0
    total_km_weighted = 0.0
    for (s, t), path in routes.items():
        w = h[s, t]
        total_h += w
        uses_mw = False
        for u, v in zip(path[:-1], path[1:]):
            edge = (min(u, v), max(u, v))
            is_mw = edge in mw and design.mw_km[edge] < design.fiber_km[edge]
            length = design.mw_km[edge] if is_mw else design.fiber_km[edge]
            total_km_weighted += w * length
            if is_mw:
                uses_mw = True
                mw_km_weighted += w * length
        if uses_mw:
            touched_h += w
    if total_h <= 0:
        raise ValueError("no traffic")
    return (
        touched_h / total_h,
        mw_km_weighted / total_km_weighted if total_km_weighted > 0 else 0.0,
    )


def shares_from_state(
    design: DesignInput, dist: np.ndarray, mw_km_on_route: np.ndarray
) -> tuple[float, float]:
    """(traffic_on_mw, distance_share_mw) from the incremental kernel state.

    ``dist`` and ``mw_km_on_route`` are the delta-maintained all-pairs
    distance and MW-km-on-route matrices (see
    :func:`repro.graph.edge_delta_with_carry`).  A pair's total routed
    km *is* its distance, so no route reconstruction is needed.
    """
    iu = np.triu_indices(design.n_sites, k=1)
    h = design.traffic[iu]
    d = dist[iu]
    m = mw_km_on_route[iu]
    mask = (h > 0) & np.isfinite(d)
    total_h = float(h[mask].sum())
    if total_h <= 0:
        raise ValueError("no traffic")
    touched_h = float(h[mask & (m > 0)].sum())
    mw_km_weighted = float((h * m)[mask].sum())
    total_km_weighted = float((h * d)[mask].sum())
    return (
        touched_h / total_h,
        mw_km_weighted / total_km_weighted if total_km_weighted > 0 else 0.0,
    )


def budget_evolution(
    design: DesignInput,
    steps: list[GreedyStep],
    budgets: list[float],
) -> list[EvolutionPoint]:
    """The evolution table for a greedy run's prefixes.

    Budgets are evaluated in ascending order internally (results come
    back in the given order): the greedy prefix only grows, so each
    added link is one incremental delta update of the shared
    (distance, MW-km) state — no per-budget all-pairs solve.
    """
    order = sorted(range(len(budgets)), key=lambda i: float(budgets[i]))
    dist = design.fiber_km.copy()
    np.fill_diagonal(dist, 0.0)
    mw_carry = np.zeros_like(dist)
    mw = design.mw_km

    by_index: dict[int, EvolutionPoint] = {}
    next_step = 0
    spent = 0.0
    for i in order:
        budget = float(budgets[i])
        while (
            next_step < len(steps)
            and steps[next_step].cumulative_cost <= budget
        ):
            a, b = steps[next_step].link
            dist, mw_carry = edge_delta_with_carry(
                dist, mw_carry, a, b, mw[a, b]
            )
            spent = steps[next_step].cumulative_cost
            next_step += 1
        traffic_on_mw, distance_share = shares_from_state(
            design, dist, mw_carry
        )
        by_index[i] = EvolutionPoint(
            budget_towers=budget,
            towers_used=spent,
            n_links=next_step,
            mean_stretch=mean_stretch_from_distances(design, dist),
            traffic_on_mw=traffic_on_mw,
            distance_share_mw=distance_share,
        )
    return [by_index[i] for i in range(len(budgets))]
