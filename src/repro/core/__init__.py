"""The cISP design core: topology optimization, augmentation, costing."""

from .augmentation import (
    SERIES_CAPACITY_GBPS,
    AugmentationResult,
    LinkProvision,
    augment_capacity,
    route_link_demands,
    series_needed,
)
from .costs import CostModel
from .evolution import (
    EvolutionPoint,
    budget_evolution,
    mw_shares,
    shares_from_state,
)
from .exhaustive import solve_exhaustive
from .media import (
    ALL_MEDIA,
    FREE_SPACE_OPTICS,
    HOLLOW_CORE_FIBER,
    MICROWAVE,
    MILLIMETER_WAVE,
    SOLID_FIBER,
    Medium,
    hollow_core_fiber_stretch,
    reprice_links_for_medium,
)
from .design import (
    DesignResult,
    SolveOutcome,
    Solver,
    design_network,
    get_solver,
    register_solver,
    solve,
    solver_names,
    solver_version,
    topology_from_links,
)
from .pipeline import (
    CachingLosChecker,
    HopPipeline,
    PipelineStats,
    enumerate_hops,
    shared_pipeline,
)
from .heuristic import GreedyStep, HeuristicResult, greedy_sequence, solve_heuristic
from .ilp import IlpResult, prune_useless_links, solve_ilp, useful_arcs_for_commodity
from .lp_rounding import LpRoundingResult, solve_lp_rounding
from .topology import (
    DesignInput,
    Topology,
    fiber_only_topology,
    mean_stretch_from_distances,
)

__all__ = [
    "SERIES_CAPACITY_GBPS",
    "AugmentationResult",
    "LinkProvision",
    "augment_capacity",
    "route_link_demands",
    "series_needed",
    "CostModel",
    "solve_exhaustive",
    "EvolutionPoint",
    "budget_evolution",
    "mw_shares",
    "shares_from_state",
    "ALL_MEDIA",
    "FREE_SPACE_OPTICS",
    "HOLLOW_CORE_FIBER",
    "MICROWAVE",
    "MILLIMETER_WAVE",
    "SOLID_FIBER",
    "Medium",
    "hollow_core_fiber_stretch",
    "reprice_links_for_medium",
    "DesignResult",
    "SolveOutcome",
    "Solver",
    "design_network",
    "get_solver",
    "register_solver",
    "solve",
    "solver_names",
    "solver_version",
    "topology_from_links",
    "CachingLosChecker",
    "HopPipeline",
    "PipelineStats",
    "enumerate_hops",
    "shared_pipeline",
    "GreedyStep",
    "HeuristicResult",
    "greedy_sequence",
    "solve_heuristic",
    "IlpResult",
    "prune_useless_links",
    "solve_ilp",
    "useful_arcs_for_commodity",
    "LpRoundingResult",
    "solve_lp_rounding",
    "DesignInput",
    "Topology",
    "fiber_only_topology",
    "mean_stretch_from_distances",
]
