"""End-to-end network design: Steps 1-3 plus costing (paper §3, §4).

:func:`design_network` is the library's front door: given a scenario's
:class:`~repro.core.topology.DesignInput` (plus the link catalog and
tower registry for capacity augmentation), it runs the cISP heuristic,
provisions capacity for a target aggregate throughput, and applies the
cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..links.builder import LinkCatalog
from ..towers.registry import TowerRegistry
from .augmentation import AugmentationResult, augment_capacity
from .costs import CostModel
from .heuristic import HeuristicResult, solve_heuristic
from .topology import DesignInput, Topology, fiber_only_topology


@dataclass(frozen=True)
class DesignResult:
    """A fully designed, provisioned, and costed cISP network.

    Attributes:
        topology: the chosen MW links over fiber.
        mean_stretch: traffic-weighted mean latency stretch.
        fiber_mean_stretch: the all-fiber baseline stretch.
        heuristic: the raw optimizer output (greedy trace etc.).
        augmentation: capacity provisioning (None when no throughput
            target was given).
        cost_per_gb_usd: amortized $/GB (None without a throughput
            target).
    """

    topology: Topology
    mean_stretch: float
    fiber_mean_stretch: float
    heuristic: HeuristicResult
    augmentation: AugmentationResult | None
    cost_per_gb_usd: float | None

    @property
    def mw_link_count(self) -> int:
        return len(self.topology.mw_links)

    @property
    def towers_used(self) -> float:
        return self.topology.total_cost_towers

    def stretch_percentiles(self, percentiles=(50, 90, 99)) -> dict[int, float]:
        """Unweighted per-pair stretch percentiles of the design."""
        s = self.topology.stretch_matrix()
        vals = s[np.isfinite(s)]
        return {int(p): float(np.percentile(vals, p)) for p in percentiles}


def design_network(
    design_input: DesignInput,
    budget_towers: float,
    aggregate_gbps: float | None = None,
    catalog: LinkCatalog | None = None,
    registry: TowerRegistry | None = None,
    cost_model: CostModel | None = None,
    **heuristic_kwargs,
) -> DesignResult:
    """Design, provision, and cost a cISP network.

    Args:
        design_input: sites, traffic, and distance matrices (Step 1
            outputs included).
        budget_towers: the tower budget B.
        aggregate_gbps: target aggregate throughput; enables Step 3 and
            costing, and requires ``catalog`` and ``registry``.
        catalog: Step-1 link catalog (tower paths for augmentation).
        registry: tower registry (spare-tower availability).
        cost_model: cost constants (defaults to the paper's).
        **heuristic_kwargs: forwarded to
            :func:`repro.core.heuristic.solve_heuristic`.
    """
    heuristic = solve_heuristic(design_input, budget_towers, **heuristic_kwargs)
    fiber_stretch = fiber_only_topology(design_input).mean_stretch()
    augmentation = None
    cost_per_gb = None
    if aggregate_gbps is not None:
        if catalog is None or registry is None:
            raise ValueError(
                "capacity augmentation needs the link catalog and tower registry"
            )
        augmentation = augment_capacity(
            heuristic.topology, catalog, registry, aggregate_gbps
        )
        cost_per_gb = augmentation.cost_per_gb(cost_model or CostModel())
    return DesignResult(
        topology=heuristic.topology,
        mean_stretch=heuristic.objective,
        fiber_mean_stretch=fiber_stretch,
        heuristic=heuristic,
        augmentation=augmentation,
        cost_per_gb_usd=cost_per_gb,
    )


def topology_from_links(
    design_input: DesignInput, links: list[tuple[int, int]]
) -> Topology:
    """Convenience constructor for a topology from explicit link pairs."""
    return Topology(
        design=design_input,
        mw_links=frozenset((min(a, b), max(a, b)) for a, b in links),
    )
