"""End-to-end network design: Steps 1-3 plus costing (paper §3, §4).

:func:`design_network` is the library's front door: given a scenario's
:class:`~repro.core.topology.DesignInput` (plus the link catalog and
tower registry for capacity augmentation), it runs a topology solver,
provisions capacity for a target aggregate throughput, and applies the
cost model.

All topology optimizers — the cISP heuristic, the exact ILP, the
LP-rounding baseline, the exhaustive oracle, and the greedy
budget-evolution — sit behind one :class:`Solver` protocol with a
string-keyed registry (:func:`get_solver`, :func:`solve`), so the CLI,
scenarios, and benchmarks select backends by name with a single
``solve(problem, budget, **opts)`` signature.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

import numpy as np

from ..links.builder import LinkCatalog
from ..towers.registry import TowerRegistry
from .augmentation import AugmentationResult, augment_capacity
from .costs import CostModel
from .heuristic import HeuristicResult, solve_heuristic
from .topology import DesignInput, Topology, fiber_only_topology


@dataclass(frozen=True)
class DesignResult:
    """A fully designed, provisioned, and costed cISP network.

    Attributes:
        topology: the chosen MW links over fiber.
        mean_stretch: traffic-weighted mean latency stretch.
        fiber_mean_stretch: the all-fiber baseline stretch.
        heuristic: the raw optimizer output (greedy trace etc.).
        augmentation: capacity provisioning (None when no throughput
            target was given).
        cost_per_gb_usd: amortized $/GB (None without a throughput
            target).
    """

    topology: Topology
    mean_stretch: float
    fiber_mean_stretch: float
    heuristic: HeuristicResult | None
    augmentation: AugmentationResult | None
    cost_per_gb_usd: float | None
    solve_outcome: "SolveOutcome | None" = None

    @property
    def backend(self) -> str:
        """Registry name of the solver that produced the topology."""
        return self.solve_outcome.backend if self.solve_outcome else "heuristic"

    @property
    def mw_link_count(self) -> int:
        return len(self.topology.mw_links)

    @property
    def towers_used(self) -> float:
        return self.topology.total_cost_towers

    def stretch_percentiles(self, percentiles=(50, 90, 99)) -> dict[int, float]:
        """Unweighted per-pair stretch percentiles of the design."""
        s = self.topology.stretch_matrix()
        vals = s[np.isfinite(s)]
        return {int(p): float(np.percentile(vals, p)) for p in percentiles}


def design_network(
    design_input: DesignInput,
    budget_towers: float,
    aggregate_gbps: float | None = None,
    catalog: LinkCatalog | None = None,
    registry: TowerRegistry | None = None,
    cost_model: CostModel | None = None,
    solver: str = "heuristic",
    **solver_kwargs,
) -> DesignResult:
    """Design, provision, and cost a cISP network.

    Args:
        design_input: sites, traffic, and distance matrices (Step 1
            outputs included).
        budget_towers: the tower budget B.
        aggregate_gbps: target aggregate throughput; enables Step 3 and
            costing, and requires ``catalog`` and ``registry``.
        catalog: Step-1 link catalog (tower paths for augmentation).
        registry: tower registry (spare-tower availability).
        cost_model: cost constants (defaults to the paper's).
        solver: topology-solver backend name (see :func:`solver_names`).
        **solver_kwargs: forwarded to the backend's underlying solve.
    """
    outcome = solve(design_input, budget_towers, backend=solver, **solver_kwargs)
    fiber_stretch = fiber_only_topology(design_input).mean_stretch()
    augmentation = None
    cost_per_gb = None
    if aggregate_gbps is not None:
        if catalog is None or registry is None:
            raise ValueError(
                "capacity augmentation needs the link catalog and tower registry"
            )
        augmentation = augment_capacity(
            outcome.topology, catalog, registry, aggregate_gbps
        )
        cost_per_gb = augmentation.cost_per_gb(cost_model or CostModel())
    return DesignResult(
        topology=outcome.topology,
        mean_stretch=outcome.objective,
        fiber_mean_stretch=fiber_stretch,
        heuristic=outcome.details if solver == "heuristic" else None,
        augmentation=augmentation,
        cost_per_gb_usd=cost_per_gb,
        solve_outcome=outcome,
    )


# --------------------------------------------------------------------------
# The unified solver backend.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SolveOutcome:
    """What every solver backend returns.

    Attributes:
        backend: registry name of the solver that produced this.
        topology: the chosen MW-over-fiber topology.
        objective: its traffic-weighted mean stretch.
        runtime_s: wall-clock time of the solve.
        details: the backend's native result object (``HeuristicResult``,
            ``IlpResult``, ...), for callers that need solver-specific
            diagnostics; None when the backend has no richer result.
    """

    backend: str
    topology: Topology
    objective: float
    runtime_s: float
    details: Any = None


@runtime_checkable
class Solver(Protocol):
    """One topology-design backend behind the uniform signature.

    Backends may carry a ``version`` string (default "1"): the
    experiment orchestration layer (:mod:`repro.exp`) embeds it in the
    design stage's cache key, so bumping a solver's version retires
    every cached design it produced without touching other backends'
    artifacts.
    """

    name: str

    def solve(
        self, problem: DesignInput, budget: float, **opts
    ) -> SolveOutcome:  # pragma: no cover - protocol
        ...


_SOLVERS: dict[str, Solver] = {}


def register_solver(solver_cls):
    """Class decorator: instantiate and register a solver by its name."""
    instance = solver_cls()
    name = instance.name
    if not name or name != name.lower():
        raise ValueError(f"solver name {name!r} must be a lowercase key")
    _SOLVERS[name] = instance
    return solver_cls


def solver_names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_SOLVERS)


def get_solver(name: str) -> Solver:
    """The registered solver for ``name`` (KeyError with choices otherwise)."""
    try:
        return _SOLVERS[name]
    except KeyError:
        raise KeyError(
            f"unknown solver {name!r}; registered: {', '.join(solver_names())}"
        ) from None


def solver_version(name: str) -> str:
    """The backend's code-version tag (cache-key ingredient; default "1")."""
    return getattr(get_solver(name), "version", "1")


def solve(problem: DesignInput, budget: float, backend: str = "heuristic", **opts) -> SolveOutcome:
    """Solve a design problem through the registry.

    Args:
        problem: the design input.
        budget: tower budget B.
        backend: registry name (see :func:`solver_names`).
        **opts: backend-specific options, forwarded verbatim.
    """
    return get_solver(backend).solve(problem, budget, **opts)


@register_solver
class HeuristicSolver:
    """The paper's scalable pipeline: pruning + greedy + restricted ILP."""

    name = "heuristic"

    def solve(self, problem: DesignInput, budget: float, **opts) -> SolveOutcome:
        result = solve_heuristic(problem, budget, **opts)
        return SolveOutcome(
            backend=self.name,
            topology=result.topology,
            objective=result.objective,
            runtime_s=result.runtime_s,
            details=result,
        )


@register_solver
class IlpSolver:
    """The exact flow ILP (optimal, exponential-ish runtime)."""

    name = "ilp"

    def solve(self, problem: DesignInput, budget: float, **opts) -> SolveOutcome:
        from .ilp import solve_ilp

        result = solve_ilp(problem, budget, **opts)
        return SolveOutcome(
            backend=self.name,
            topology=result.topology,
            objective=result.objective,
            runtime_s=result.runtime_s,
            details=result,
        )


@register_solver
class LpRoundingSolver:
    """The LP-relaxation + threshold-rounding baseline."""

    name = "lp_rounding"

    def solve(self, problem: DesignInput, budget: float, **opts) -> SolveOutcome:
        from .lp_rounding import solve_lp_rounding

        result = solve_lp_rounding(problem, budget, **opts)
        return SolveOutcome(
            backend=self.name,
            topology=result.topology,
            objective=result.objective,
            runtime_s=result.runtime_s,
            details=result,
        )


@register_solver
class ExhaustiveSolver:
    """Brute-force subset enumeration (ground truth on tiny instances)."""

    name = "exhaustive"

    def solve(self, problem: DesignInput, budget: float, **opts) -> SolveOutcome:
        from .exhaustive import solve_exhaustive

        start = time.perf_counter()
        topology = solve_exhaustive(problem, budget, **opts)
        return SolveOutcome(
            backend=self.name,
            topology=topology,
            objective=topology.mean_stretch(),
            runtime_s=time.perf_counter() - start,
            details=None,
        )


@register_solver
class EvolutionSolver:
    """Greedy budget-evolution: the incremental build-out's topology at B.

    The greedy sequence is run once to the requested budget and the
    affordable prefix is the design — the deployment-order view of
    Fig 4a / §7.  ``details`` carries the step list so callers can read
    off every smaller budget from the same solve.
    """

    name = "evolution"

    def solve(self, problem: DesignInput, budget: float, **opts) -> SolveOutcome:
        from .heuristic import greedy_sequence

        start = time.perf_counter()
        steps = greedy_sequence(problem, budget, **opts)
        # greedy_sequence only emits picks whose cumulative cost fits
        # the budget, so the whole sequence is the affordable prefix.
        topology = Topology(
            design=problem, mw_links=frozenset(s.link for s in steps)
        )
        return SolveOutcome(
            backend=self.name,
            topology=topology,
            objective=topology.mean_stretch(),
            runtime_s=time.perf_counter() - start,
            details=tuple(steps),
        )


def topology_from_links(
    design_input: DesignInput, links: list[tuple[int, int]]
) -> Topology:
    """Convenience constructor for a topology from explicit link pairs."""
    return Topology(
        design=design_input,
        mw_links=frozenset((min(a, b), max(a, b)) for a, b in links),
    )
