"""The paper's cost model (§2) and cost-per-GB computation.

Constants (paper §2):

* installing a bidirectional MW link *on existing towers* costs ~$75K
  for 500 Mbps and ~$150K for 1 Gbps, per tower-to-tower hop;
* building a new tower costs ~$100K on average;
* the dominant operational expense is tower rent, $25-50K/year/tower;
* cost per GB amortizes build + 5 years of operation over 5 years of
  carried traffic at the provisioned aggregate rate.

The paper reports $0.81/GB for the 1.05x-stretch, 100 Gbps US network.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Seconds in the 5-year amortization window.
SECONDS_PER_YEAR = 365.25 * 86_400


@dataclass(frozen=True)
class CostModel:
    """Cost constants, defaulting to the paper's estimates.

    Attributes:
        link_cost_1gbps_usd: radio equipment + install per hop per
            1 Gbps series, on existing towers.
        link_cost_500mbps_usd: the half-bandwidth variant.
        new_tower_cost_usd: average cost of constructing a tower.
        tower_rent_usd_per_year: rent per tower per year ($25-50K range;
            the midpoint is the default).
        amortization_years: period over which costs are amortized.
    """

    link_cost_1gbps_usd: float = 150_000.0
    link_cost_500mbps_usd: float = 75_000.0
    new_tower_cost_usd: float = 100_000.0
    tower_rent_usd_per_year: float = 37_500.0
    amortization_years: float = 5.0

    def __post_init__(self) -> None:
        if self.amortization_years <= 0:
            raise ValueError("amortization period must be positive")
        for field_name in (
            "link_cost_1gbps_usd",
            "link_cost_500mbps_usd",
            "new_tower_cost_usd",
            "tower_rent_usd_per_year",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")

    def capex_usd(self, n_hop_series: int, n_new_towers: int) -> float:
        """Build cost: radio hops (1 Gbps class) plus new towers.

        Args:
            n_hop_series: total tower-to-tower radio hops, counting each
                parallel series separately.
            n_new_towers: towers that must be newly constructed.
        """
        return (
            n_hop_series * self.link_cost_1gbps_usd
            + n_new_towers * self.new_tower_cost_usd
        )

    def opex_usd(self, n_rented_towers: int) -> float:
        """Total rent over the amortization period."""
        return n_rented_towers * self.tower_rent_usd_per_year * self.amortization_years

    def total_usd(
        self, n_hop_series: int, n_new_towers: int, n_rented_towers: int
    ) -> float:
        """Capex plus amortization-period opex."""
        return self.capex_usd(n_hop_series, n_new_towers) + self.opex_usd(
            n_rented_towers
        )

    def gb_carried(self, aggregate_gbps: float, utilization: float = 1.0) -> float:
        """GB moved over the amortization period at the given rate."""
        if aggregate_gbps <= 0:
            raise ValueError("aggregate throughput must be positive")
        if not 0.0 < utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")
        seconds = self.amortization_years * SECONDS_PER_YEAR
        return aggregate_gbps * utilization / 8.0 * seconds

    def cost_per_gb(
        self,
        n_hop_series: int,
        n_new_towers: int,
        n_rented_towers: int,
        aggregate_gbps: float,
        utilization: float = 1.0,
    ) -> float:
        """Amortized cost per gigabyte carried."""
        return self.total_usd(
            n_hop_series, n_new_towers, n_rented_towers
        ) / self.gb_carried(aggregate_gbps, utilization)
