"""Brute-force optimal topology search (verification oracle).

Enumerates every affordable subset of candidate MW links and evaluates
the true objective.  Exponential — usable only for a handful of
candidates — but it is *ground truth*: the test suite uses it to verify
the flow ILP and, transitively, the heuristic.
"""

from __future__ import annotations

from itertools import combinations

from .ilp import prune_useless_links
from .topology import DesignInput, Topology


def solve_exhaustive(
    design: DesignInput,
    budget_towers: float,
    candidate_links: list[tuple[int, int]] | None = None,
    max_candidates: int = 16,
) -> Topology:
    """The provably optimal topology by subset enumeration.

    Args:
        design: problem input.
        budget_towers: tower budget.
        candidate_links: links to choose among (default: oracle-pruned).
        max_candidates: safety bound; enumeration is 2^n.
    """
    if budget_towers < 0:
        raise ValueError("budget must be non-negative")
    candidates = candidate_links
    if candidates is None:
        candidates = prune_useless_links(design)
    if len(candidates) > max_candidates:
        raise ValueError(
            f"{len(candidates)} candidates exceed the enumeration bound "
            f"({max_candidates}); use the ILP instead"
        )
    best = Topology(design=design, mw_links=frozenset())
    best_objective = best.mean_stretch()
    for r in range(1, len(candidates) + 1):
        for subset in combinations(candidates, r):
            cost = sum(design.cost_towers[a, b] for a, b in subset)
            if cost > budget_towers:
                continue
            topology = Topology(design=design, mw_links=frozenset(subset))
            objective = topology.mean_stretch()
            if objective < best_objective - 1e-12:
                best = topology
                best_objective = objective
    return best
