"""Transmission-medium generality (paper §3.4).

The cISP framework is medium-agnostic: any line-of-sight technology
(microwave, millimeter wave, free-space optics) or future fiber
(hollow-core) slots into the same design pipeline through three
parameters — propagation speed relative to c, practicable hop range,
and per-link bandwidth — plus costs.  This module defines the media the
paper mentions and a helper that re-derives design inputs for a chosen
medium, so the whole optimizer stack can be re-run under, e.g., an FSO
deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

import numpy as np

from .topology import DesignInput


@dataclass(frozen=True)
class Medium:
    """A line-of-sight (or fiber) transmission technology.

    Attributes:
        name: label ("microwave", "mmw", "fso", "hollow-core").
        speed_factor: propagation speed as a fraction of c (1.0 for air,
            ~0.667 for solid-core fiber, ~0.997 for hollow-core).
        max_hop_km: practicable tower-to-tower range.
        bandwidth_gbps: capacity of one link/series.
        link_cost_usd: equipment + install per hop.
        weather_sensitivity: relative fade susceptibility (1.0 = MW at
            11 GHz; FSO suffers more from fog, MMW more from rain).
    """

    name: str
    speed_factor: float
    max_hop_km: float
    bandwidth_gbps: float
    link_cost_usd: float
    weather_sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.speed_factor <= 1.0:
            raise ValueError("speed factor must be in (0, 1]")
        if self.max_hop_km <= 0 or self.bandwidth_gbps <= 0:
            raise ValueError("range and bandwidth must be positive")

    def latency_equivalent_km(self, physical_km: float) -> float:
        """Physical distance converted to latency-equivalent km
        (distance light would cover in the same time)."""
        if physical_km < 0:
            raise ValueError("distance must be non-negative")
        return physical_km / self.speed_factor


#: The paper's primary choice: 6-18 GHz microwave.
MICROWAVE = Medium(
    name="microwave",
    speed_factor=1.0,
    max_hop_km=100.0,
    bandwidth_gbps=1.0,
    link_cost_usd=150_000.0,
    weather_sensitivity=1.0,
)

#: Millimeter wave: shorter range, more bandwidth, worse in rain.
MILLIMETER_WAVE = Medium(
    name="mmw",
    speed_factor=1.0,
    max_hop_km=15.0,
    bandwidth_gbps=10.0,
    link_cost_usd=80_000.0,
    weather_sensitivity=3.0,
)

#: Free-space optics: short range, high bandwidth, fog-limited.
FREE_SPACE_OPTICS = Medium(
    name="fso",
    speed_factor=1.0,
    max_hop_km=10.0,
    bandwidth_gbps=40.0,
    link_cost_usd=60_000.0,
    weather_sensitivity=4.0,
)

#: Conventional solid-core fiber (the substrate's bulk carrier).
SOLID_FIBER = Medium(
    name="fiber",
    speed_factor=2.0 / 3.0,
    max_hop_km=80.0,
    bandwidth_gbps=1000.0,
    link_cost_usd=0.0,
    weather_sensitivity=0.0,
)

#: Hollow-core fiber (§2): c-speed in fiber, but still conduit-bound.
HOLLOW_CORE_FIBER = Medium(
    name="hollow-core",
    speed_factor=0.997,
    max_hop_km=80.0,
    bandwidth_gbps=1000.0,
    link_cost_usd=0.0,
    weather_sensitivity=0.0,
)

ALL_MEDIA = {
    m.name: m
    for m in (
        MICROWAVE,
        MILLIMETER_WAVE,
        FREE_SPACE_OPTICS,
        SOLID_FIBER,
        HOLLOW_CORE_FIBER,
    )
}


def reprice_links_for_medium(
    design: DesignInput,
    medium: Medium,
    reference: Medium = MICROWAVE,
) -> DesignInput:
    """Re-derive a design input for a different line-of-sight medium.

    Shorter-range media need proportionally more relay sites along the
    same physical routes, so link tower-costs scale by the range ratio;
    latency-equivalent lengths scale with the medium's speed factor.
    The adjustment keeps Step-1 routing geometry (tower chains follow
    the same corridors) — the approximation the paper's generality
    argument rests on.
    """
    range_ratio = reference.max_hop_km / medium.max_hop_km
    new_cost = np.where(
        np.isfinite(design.cost_towers),
        np.ceil(design.cost_towers * range_ratio),
        np.inf,
    )
    np.fill_diagonal(new_cost, 0.0)
    speed_ratio = reference.speed_factor / medium.speed_factor
    new_mw = design.mw_km * speed_ratio
    return dc_replace(design, mw_km=new_mw, cost_towers=new_cost)


def hollow_core_fiber_stretch(conduit_stretch: float) -> float:
    """Latency stretch if today's conduits carried hollow-core fiber.

    The paper (§2) notes hollow-core removes the 1.5x refractive
    penalty but keeps conduit circuitousness; with the measured ~1.29x
    route inflation the floor is ~1.3x, still above cISP's 1.05x.
    """
    if conduit_stretch < 1.0:
        raise ValueError("conduit stretch must be >= 1")
    return conduit_stretch / HOLLOW_CORE_FIBER.speed_factor
