"""The cISP topology-design heuristic (paper §3.2).

The paper's near-optimal, scalable pipeline:

1. *Pruning oracle* — drop MW candidates dominated by fiber (exact).
2. *Greedy candidate generation* — with an inflated budget (2x by
   default), repeatedly add the MW link that reduces the traffic-
   weighted mean stretch the most; the picked links become the ILP's
   candidate set.
3. *Final ILP* — solve the exact ILP restricted to those candidates at
   the true budget.  At scales where even that is too slow, the greedy
   selection at the true budget is used directly (the paper reports the
   greedy matches the ILP wherever both can run).

The greedy uses lazy re-evaluation: stretch gains only shrink as the
network improves (approximately submodular), so a stale-gain max-heap
re-verifies just a few candidates per iteration instead of all of them.
A single greedy run also yields the whole budget curve (Fig 4a): the
selection is incremental, so every budget corresponds to a prefix.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from ..graph import edge_delta_distances
from .ilp import prune_useless_links, solve_ilp
from .topology import DesignInput, Topology, mean_stretch_from_distances


@dataclass(frozen=True)
class GreedyStep:
    """One greedy pick.

    Attributes:
        link: the (a, b) site pair added.
        cost_towers: the link's tower cost.
        cumulative_cost: total towers spent after this pick.
        mean_stretch: traffic-weighted mean stretch after this pick.
    """

    link: tuple[int, int]
    cost_towers: float
    cumulative_cost: float
    mean_stretch: float


@dataclass(frozen=True)
class HeuristicResult:
    """Outcome of the full heuristic pipeline.

    Attributes:
        topology: the final topology at the true budget.
        objective: its traffic-weighted mean stretch.
        greedy_steps: the greedy sequence (to the inflated budget).
        used_ilp_refinement: whether step 3 ran the restricted ILP.
        runtime_s: wall-clock time for the whole pipeline.
    """

    topology: Topology
    objective: float
    greedy_steps: tuple[GreedyStep, ...]
    used_ilp_refinement: bool
    runtime_s: float


def _stretch_gain(
    dist: np.ndarray,
    weights: np.ndarray,
    a: int,
    b: int,
    mw_len: float,
) -> tuple[float, np.ndarray]:
    """Stretch reduction from adding link (a, b), and the new distances.

    A thin wrapper over the graph kernel's single-edge delta rule
    (:func:`repro.graph.edge_delta_distances`), so the greedy and the
    evolution backend provably share incremental-update semantics.
    """
    new_dist = edge_delta_distances(dist, a, b, mw_len)
    gain = float((weights * (dist - new_dist)).sum())
    return gain, new_dist


def greedy_sequence(
    design: DesignInput,
    budget_towers: float,
    candidates: list[tuple[int, int]] | None = None,
    selection: str = "gain",
) -> list[GreedyStep]:
    """Greedy link selection up to ``budget_towers``.

    Args:
        design: problem input.
        budget_towers: stop when the next affordable pick would exceed
            this; candidates that no longer fit are skipped.
        candidates: restrict to these links (default: oracle-pruned).
        selection: "gain" picks the largest stretch reduction (the
            paper's rule); "gain_per_cost" normalizes by tower cost.

    Returns the ordered picks; prefixes of the sequence are valid
    solutions for smaller budgets.
    """
    if selection not in ("gain", "gain_per_cost"):
        raise ValueError("selection must be 'gain' or 'gain_per_cost'")
    if candidates is None:
        candidates = prune_useless_links(design)
    weights = design.pair_weights()
    # Count each unordered pair once but let links shorten either
    # direction: distances are symmetric, so work on the full matrix
    # with upper-triangle weights.
    dist = design.fiber_km.copy()
    np.fill_diagonal(dist, 0.0)
    cost = design.cost_towers
    mw = design.mw_km

    def score(gain: float, link_cost: float) -> float:
        if selection == "gain":
            return gain
        return gain / max(link_cost, 1.0)

    heap: list[tuple[float, int, tuple[int, int]]] = []
    stamp = 0
    for a, b in candidates:
        gain, _ = _stretch_gain(dist, weights, a, b, mw[a, b])
        heapq.heappush(heap, (-score(gain, cost[a, b]), stamp, (a, b)))
        stamp += 1

    steps: list[GreedyStep] = []
    spent = 0.0
    chosen: set[tuple[int, int]] = set()
    fresh: dict[tuple[int, int], int] = {}
    epoch = 0
    while heap:
        neg_score, _, link = heapq.heappop(heap)
        if link in chosen:
            continue
        a, b = link
        if spent + cost[a, b] > budget_towers:
            continue  # cannot afford; cheaper links may still fit
        gain, new_dist = _stretch_gain(dist, weights, a, b, mw[a, b])
        current = score(gain, cost[a, b])
        if fresh.get(link, -1) != epoch:
            # Stale entry: re-verify against the next-best stale score.
            next_best = -heap[0][0] if heap else -np.inf
            if current < next_best - 1e-15:
                fresh[link] = epoch
                heapq.heappush(heap, (-current, stamp, link))
                stamp += 1
                continue
        if gain <= 1e-12:
            break
        dist = new_dist
        chosen.add(link)
        spent += cost[a, b]
        epoch += 1
        steps.append(
            GreedyStep(
                link=link,
                cost_towers=float(cost[a, b]),
                cumulative_cost=spent,
                mean_stretch=mean_stretch_from_distances(design, dist),
            )
        )
    return steps


def solve_heuristic(
    design: DesignInput,
    budget_towers: float,
    inflation: float = 2.0,
    selection: str = "gain",
    ilp_refinement: bool | None = None,
    ilp_max_sites: int = 40,
    time_limit_s: float | None = None,
) -> HeuristicResult:
    """Run the full cISP heuristic pipeline.

    Args:
        design: problem input.
        budget_towers: the true tower budget B.
        inflation: greedy candidate-generation budget multiplier (2x in
            the paper).
        selection: greedy scoring rule.
        ilp_refinement: force the restricted final ILP on/off; default
            (None) enables it when the instance is small enough
            (n_sites <= ilp_max_sites).
        ilp_max_sites: auto-refinement size threshold.
        time_limit_s: time limit for the final ILP, if it runs.
    """
    start = time.perf_counter()
    if inflation < 1.0:
        raise ValueError("inflation must be >= 1")
    steps = greedy_sequence(
        design, budget_towers * inflation, selection=selection
    )
    if ilp_refinement is None:
        ilp_refinement = design.n_sites <= ilp_max_sites
    if ilp_refinement and steps:
        # Candidate set for the restricted ILP: the union of both greedy
        # scoring rules.  The cost-normalized pass surfaces cheap links
        # the pure-gain pass overlooks, and empirically the union
        # recovers the exact ILP optimum at every scale we can verify.
        other = "gain_per_cost" if selection == "gain" else "gain"
        alt_steps = greedy_sequence(
            design, budget_towers * inflation, selection=other
        )
        candidate_links = sorted(
            {s.link for s in steps} | {s.link for s in alt_steps}
        )
        ilp = solve_ilp(
            design,
            budget_towers,
            candidate_links=candidate_links,
            time_limit_s=time_limit_s,
        )
        topology = ilp.topology
    else:
        links: set[tuple[int, int]] = set()
        spent = 0.0
        for step in steps:
            if spent + step.cost_towers <= budget_towers:
                links.add(step.link)
                spent += step.cost_towers
        topology = Topology(design=design, mw_links=frozenset(links))
    return HeuristicResult(
        topology=topology,
        objective=topology.mean_stretch(),
        greedy_steps=tuple(steps),
        used_ilp_refinement=bool(ilp_refinement and steps),
        runtime_s=time.perf_counter() - start,
    )
