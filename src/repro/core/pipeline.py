"""The candidate-hop pipeline: spatial pruning -> cached, chunked LoS.

Feasible-hop enumeration is the scale bottleneck of the whole system:
the paper's US instantiation checks hundreds of thousands of candidate
tower pairs against terrain profiles.  This module stages that work so
each part is only done when (and once) it must be:

1. **Spatial pruning** — a :class:`~repro.geo.spatial.GridIndex` over
   the tower field discards every pair beyond
   ``RadioProfile.max_range_km`` before any terrain is sampled; only
   same-cell and neighbor-cell pairs are even distance-checked.
2. **Chunked LoS** — survivors flow through the vectorized batch
   checker in bounded chunks (memory stays flat no matter how many
   candidates), grouped by per-pair sample count so every hop gets its
   deterministic fidelity.
3. **Terrain-profile reuse** — a :class:`CachingLosChecker` memoizes
   terrain profiles and tower-base elevations in LRU caches keyed by
   quantized endpoints, so re-enumerations over the same tower field
   (parameter sweeps over usable height, radio range, clutter...) skip
   the terrain model entirely.

:func:`enumerate_hops` is the front door;
:meth:`HopPipeline.enumerate_hops` gives reuse of the caches across
calls.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..geo.coords import haversine_km
from ..geo.spatial import GridIndex
from ..geo.terrain import TerrainModel
from ..towers.los import LosChecker, LosConfig
from ..towers.registry import TowerRegistry

#: Default LoS chunk size (pairs per vectorized batch).
DEFAULT_CHUNK_SIZE = 4096

#: Default LRU capacity: cached terrain profiles (one row per hop).
DEFAULT_PROFILE_CAPACITY = 200_000

#: Endpoint quantization for cache keys, degrees (~11 m).  Two
#: endpoints closer than this share cached terrain.
DEFAULT_QUANT_DEG = 1e-4


class _LruCache:
    """A small LRU mapping (OrderedDict-backed) with hit/miss counters."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        """The cached value, or None (and a miss) when absent."""
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)


class CachingLosChecker(LosChecker):
    """A :class:`LosChecker` that memoizes all terrain sampling.

    Terrain profiles are cached per hop, keyed by quantized endpoints
    and sample count; tower-base elevations are cached per point.  Hop
    keys are canonicalized (endpoint order does not matter — the
    reverse hop reuses the same profile, flipped), so A->B and B->A
    share one entry.

    The cache stores terrain heights, never feasibility, so every
    radio/height/clutter parameter still applies fresh.  Verdicts match
    the plain checker's up to the endpoint quantization: towers closer
    than ``quant_deg`` (~11 m at the default) share cached terrain, so
    a marginal hop between near-coincident towers can resolve from the
    first-sampled tower's profile.  Real tower fields keep distinct
    towers far apart relative to this tolerance.
    """

    def __init__(
        self,
        terrain: TerrainModel,
        config: LosConfig | None = None,
        profile_capacity: int = DEFAULT_PROFILE_CAPACITY,
        quant_deg: float = DEFAULT_QUANT_DEG,
    ):
        super().__init__(terrain, config)
        if quant_deg <= 0:
            raise ValueError("quantization step must be positive")
        self._quant = quant_deg
        self._profiles = _LruCache(profile_capacity)
        self._grounds = _LruCache(max(4 * profile_capacity, 1))

    def _qpt(self, lat: float, lon: float) -> tuple[int, int]:
        return (int(round(lat / self._quant)), int(round(lon / self._quant)))

    def cache_stats(self) -> dict[str, int]:
        """Profile/ground cache sizes and hit/miss counters."""
        return {
            "profile_entries": len(self._profiles),
            "profile_hits": self._profiles.hits,
            "profile_misses": self._profiles.misses,
            "ground_entries": len(self._grounds),
            "ground_hits": self._grounds.hits,
            "ground_misses": self._grounds.misses,
        }

    def profile_terrain_m(self, lat_a, lon_a, lat_b, lon_b, m: int) -> np.ndarray:
        lat_a = np.atleast_1d(np.asarray(lat_a, dtype=float))
        lon_a = np.atleast_1d(np.asarray(lon_a, dtype=float))
        lat_b = np.atleast_1d(np.asarray(lat_b, dtype=float))
        lon_b = np.atleast_1d(np.asarray(lon_b, dtype=float))
        n = len(lat_a)
        rows: list[np.ndarray | None] = [None] * n
        flipped = np.zeros(n, dtype=bool)
        miss_idx: list[int] = []
        keys: list[tuple] = []
        for k in range(n):
            qa = self._qpt(lat_a[k], lon_a[k])
            qb = self._qpt(lat_b[k], lon_b[k])
            # Canonical endpoint order; the interior sample grid is
            # symmetric, so the reverse hop's profile is the flip.
            if qb < qa:
                qa, qb = qb, qa
                flipped[k] = True
            key = (qa, qb, m)
            keys.append(key)
            cached = self._profiles.get(key)
            if cached is None:
                miss_idx.append(k)
            else:
                rows[k] = cached[::-1] if flipped[k] else cached
        if miss_idx:
            mi = np.array(miss_idx)
            fresh = super().profile_terrain_m(
                lat_a[mi], lon_a[mi], lat_b[mi], lon_b[mi], m
            )
            for j, k in enumerate(miss_idx):
                row = fresh[j]
                canonical = row[::-1] if flipped[k] else row
                self._profiles.put(keys[k], canonical)
                rows[k] = row
        return np.stack(rows)

    def ground_elevation_m(self, lats, lons) -> np.ndarray:
        lats = np.atleast_1d(np.asarray(lats, dtype=float))
        lons = np.atleast_1d(np.asarray(lons, dtype=float))
        n = len(lats)
        out = np.empty(n, dtype=float)
        miss_idx: list[int] = []
        keys: list[tuple[int, int]] = []
        for k in range(n):
            key = self._qpt(lats[k], lons[k])
            keys.append(key)
            cached = self._grounds.get(key)
            if cached is None:
                miss_idx.append(k)
            else:
                out[k] = cached
        if miss_idx:
            mi = np.array(miss_idx)
            fresh = super().ground_elevation_m(lats[mi], lons[mi])
            for j, k in enumerate(miss_idx):
                self._grounds.put(keys[k], float(fresh[j]))
                out[k] = fresh[j]
        return out


@dataclass
class PipelineStats:
    """Work accounting for one (or more) enumeration runs.

    Attributes:
        n_towers: towers in the last enumerated registry.
        all_pairs: the O(n^2) pair count the index avoided scanning.
        candidate_pairs: pairs surviving spatial pruning.
        feasible_hops: pairs surviving the LoS check.
    """

    n_towers: int = 0
    all_pairs: int = 0
    candidate_pairs: int = 0
    feasible_hops: int = 0

    @property
    def pruned_fraction(self) -> float:
        """Fraction of all pairs discarded before any terrain work."""
        if self.all_pairs == 0:
            return 0.0
        return 1.0 - self.candidate_pairs / self.all_pairs


class HopPipeline:
    """Reusable spatial-pruning + cached-LoS hop enumerator.

    One pipeline instance owns a checker (usually a
    :class:`CachingLosChecker`) whose terrain caches persist across
    :meth:`enumerate_hops` calls — the second enumeration over the same
    tower field is mostly cache hits.

    Args:
        checker: the LoS checker to drive.  Use :meth:`from_terrain`
            to get a caching one.
        chunk_size: candidate pairs per vectorized LoS batch.
    """

    def __init__(self, checker: LosChecker, chunk_size: int = DEFAULT_CHUNK_SIZE):
        if chunk_size <= 0:
            raise ValueError("chunk size must be positive")
        self.checker = checker
        self.chunk_size = chunk_size
        self.stats = PipelineStats()

    @classmethod
    def from_terrain(
        cls,
        terrain: TerrainModel,
        config: LosConfig | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        profile_capacity: int = DEFAULT_PROFILE_CAPACITY,
    ) -> "HopPipeline":
        """A pipeline with a fresh caching checker over ``terrain``."""
        return cls(
            CachingLosChecker(terrain, config, profile_capacity=profile_capacity),
            chunk_size=chunk_size,
        )

    def candidate_pairs(self, registry: TowerRegistry) -> tuple[np.ndarray, np.ndarray]:
        """Spatially pruned tower pairs within radio range, (a, b) with a < b.

        Reuses the registry's own :class:`GridIndex` (queries at radii
        other than the build radius remain exact), falling back to a
        fresh index only when the registry has none.
        """
        max_range = self.checker.config.radio.max_range_km
        if len(registry) == 0:
            return np.zeros(0, dtype=int), np.zeros(0, dtype=int)
        index = registry.spatial_index
        if index is None:
            lats, lons = registry.coordinates()
            index = GridIndex(lats, lons, max_range)
        return index.pairs_within(max_range)

    def feasible_mask(
        self,
        registry: TowerRegistry,
        cand_a: np.ndarray,
        cand_b: np.ndarray,
    ) -> np.ndarray:
        """LoS verdicts for candidate pair arrays, chunked and cached.

        Verdicts equal :meth:`LosChecker.hop_feasible` on each pair:
        pairs are grouped by their deterministic per-pair sample count,
        so batch composition never changes an answer.
        """
        if len(cand_a) != len(cand_b):
            raise ValueError("candidate arrays must be aligned")
        if len(cand_a) == 0:
            return np.zeros(0, dtype=bool)
        lats, lons = registry.coordinates()
        heights = np.array([t.height_m for t in registry])
        return self.checker.feasible_arrays(
            lats[cand_a], lons[cand_a], heights[cand_a],
            lats[cand_b], lons[cand_b], heights[cand_b],
            chunk_size=self.chunk_size,
        )

    def enumerate_hops(self, registry: TowerRegistry):
        """The feasible hop graph for a registry.

        Returns a :class:`~repro.towers.hops.HopGraph`; equivalent to
        checking every O(n^2) pair but only terrain-samples pairs the
        spatial index cannot rule out.
        """
        from ..towers.hops import HopGraph

        cand_a, cand_b = self.candidate_pairs(registry)
        ok = self.feasible_mask(registry, cand_a, cand_b)
        edges_a, edges_b = cand_a[ok], cand_b[ok]
        # Sort edges for a canonical, order-independent graph.
        if len(edges_a):
            order = np.lexsort((edges_b, edges_a))
            edges_a, edges_b = edges_a[order], edges_b[order]
        lats, lons = registry.coordinates()
        lengths = (
            haversine_km(lats[edges_a], lons[edges_a], lats[edges_b], lons[edges_b])
            if len(edges_a)
            else np.zeros(0)
        )
        n = len(registry)
        self.stats.n_towers = n
        self.stats.all_pairs = n * (n - 1) // 2
        self.stats.candidate_pairs = len(cand_a)
        self.stats.feasible_hops = len(edges_a)
        return HopGraph(
            n_towers=n,
            edges_a=edges_a,
            edges_b=edges_b,
            lengths_km=np.atleast_1d(lengths),
        )


def enumerate_hops(
    registry: TowerRegistry,
    checker: LosChecker,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
):
    """One-shot hop enumeration through a fresh :class:`HopPipeline`."""
    return HopPipeline(checker, chunk_size=chunk_size).enumerate_hops(registry)


#: Shared terrain caches, keyed by (terrain model, quantization step).
#: TerrainModel is a frozen value type, so equal terrains share caches
#: even across separately constructed instances.
_SHARED_TERRAIN_CACHES: dict[tuple, tuple[_LruCache, _LruCache]] = {}


def shared_pipeline(
    terrain: TerrainModel,
    config: LosConfig | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    profile_capacity: int = DEFAULT_PROFILE_CAPACITY,
) -> HopPipeline:
    """A pipeline whose terrain caches are shared per terrain model.

    Scenario builders use this so parameter sweeps (usable height
    fraction, radio range, clutter...) over the same geography reuse
    every terrain profile already sampled: the cache stores terrain
    heights only, which are config-independent, while each returned
    pipeline still applies its own :class:`LosConfig` to the verdicts.
    """
    checker = CachingLosChecker(terrain, config, profile_capacity=profile_capacity)
    key = (terrain, checker._quant)
    profiles, grounds = _SHARED_TERRAIN_CACHES.setdefault(
        key, (checker._profiles, checker._grounds)
    )
    # Later callers may request a larger cache than the first: grow the
    # shared instance so no caller's capacity is silently reduced.
    profiles.capacity = max(profiles.capacity, profile_capacity)
    grounds.capacity = max(grounds.capacity, 4 * profile_capacity)
    checker._profiles = profiles
    checker._grounds = grounds
    return HopPipeline(checker, chunk_size=chunk_size)
