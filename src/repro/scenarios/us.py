"""The contiguous-US scenario (paper §4): 120 population centers.

Scenario construction is cached: the substrate pipeline (tower
synthesis, LOS enumeration, Step-1 shortest paths) takes seconds at full
scale and is reused across experiments.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING

from ..datasets.us_cities import us_population_centers
from ..geo.fresnel import RadioProfile
from ..geo.terrain import us_terrain
from ..towers.los import LosConfig
from .base import Scenario, build_scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import HopPipeline


@lru_cache(maxsize=8)
def us_scenario(
    n_sites: int = 120,
    max_range_km: float = 100.0,
    usable_height_fraction: float = 1.0,
    seed: int = 42,
    pipeline: "HopPipeline | None" = None,
) -> Scenario:
    """Build (and cache) the US scenario.

    Args:
        n_sites: number of population centers (<= 120); smaller values
            give the city subsets used in the scalability experiments.
        max_range_km: maximum MW hop length (§6.5 varies 60-100 km).
        usable_height_fraction: antenna mounting height restriction
            (§6.5 varies 0.45-1.0).
        seed: tower-synthesis seed.
        pipeline: hop-enumeration pipeline override; the default shares
            US terrain profiles across every sweep point.
    """
    sites = us_population_centers()[:n_sites]
    terrain = us_terrain()
    los = LosConfig(
        radio=RadioProfile(max_range_km=max_range_km),
        usable_height_fraction=usable_height_fraction,
    )
    from ..towers.synthesis import SynthesisConfig

    return build_scenario(
        name=f"us-{n_sites}",
        sites=sites,
        terrain=terrain,
        los_config=los,
        synthesis_config=SynthesisConfig(seed=seed),
        pipeline=pipeline,
    )
