"""Pre-assembled scenarios: US, Europe, and data-center deployments."""

from .base import SCENARIO_BUILDERS, Scenario, build_scenario, get_scenario
from .europe import EU_FIBER_STRETCH, europe_scenario
from .interdc import (
    city_dc_scenario,
    city_dc_traffic,
    dc_dc_traffic,
    dc_indices,
    interdc_scenario,
)
from .us import us_scenario

__all__ = [
    "SCENARIO_BUILDERS",
    "Scenario",
    "build_scenario",
    "get_scenario",
    "EU_FIBER_STRETCH",
    "europe_scenario",
    "city_dc_scenario",
    "city_dc_traffic",
    "dc_dc_traffic",
    "dc_indices",
    "interdc_scenario",
    "us_scenario",
]
