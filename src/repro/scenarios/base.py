"""Scenario assembly: sites + terrain + towers + fiber -> design inputs.

A :class:`Scenario` bundles every substrate artifact for a geography so
experiments can build :class:`~repro.core.topology.DesignInput` objects
for any traffic model without re-running the expensive steps (tower
synthesis, LOS hop enumeration, Step-1 shortest paths).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pipeline import HopPipeline, shared_pipeline
from ..core.topology import DesignInput
from ..datasets.sites import Site
from ..fiber.conduits import FiberNetwork, build_conduit_network
from ..geo.coords import pairwise_distance_matrix
from ..geo.fresnel import RadioProfile
from ..geo.terrain import TerrainModel
from ..links.builder import LinkCatalog, build_link_catalog
from ..towers.hops import HopGraph
from ..towers.los import LosConfig
from ..towers.registry import TowerRegistry, cull_towers
from ..towers.synthesis import SynthesisConfig, synthesize_towers
from ..traffic.matrices import dc_to_dc_matrix, population_product_matrix


@dataclass(frozen=True)
class Scenario:
    """All substrate artifacts for one geography.

    Attributes:
        name: scenario label ("us", "europe", ...).
        sites: the interconnected sites.
        terrain: elevation model.
        registry: culled tower registry.
        hop_graph: feasible tower-to-tower hops.
        catalog: Step-1 site-to-site MW link candidates.
        fiber: conduit network (None when fiber is modelled as a flat
            geodesic multiple, as for Europe).
        geodesic_km: site pairwise great-circle distances.
        fiber_km: latency-equivalent fiber distance matrix o_ij.
    """

    name: str
    sites: tuple[Site, ...]
    terrain: TerrainModel
    registry: TowerRegistry
    hop_graph: HopGraph
    catalog: LinkCatalog
    fiber: FiberNetwork | None
    geodesic_km: np.ndarray
    fiber_km: np.ndarray

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    def design_input(self, traffic: np.ndarray | None = None) -> DesignInput:
        """A design input for the given (or default) traffic matrix.

        The default is the paper's population-product model; for
        all-zero-population site lists (the inter-DC scenarios, §6.3)
        it falls back to equal demand between every pair.
        """
        if traffic is None:
            sites = list(self.sites)
            if all(s.population == 0 for s in sites):
                traffic = dc_to_dc_matrix(sites, list(range(len(sites))))
            else:
                traffic = population_product_matrix(sites)
        return DesignInput(
            sites=self.sites,
            traffic=traffic,
            geodesic_km=self.geodesic_km,
            mw_km=self.catalog.mw_km,
            cost_towers=self.catalog.cost_towers,
            fiber_km=self.fiber_km,
        )


def build_scenario(
    name: str,
    sites: list[Site],
    terrain: TerrainModel,
    los_config: LosConfig | None = None,
    synthesis_config: SynthesisConfig | None = None,
    fiber_seed: int = 17,
    flat_fiber_stretch: float | None = None,
    pipeline: HopPipeline | None = None,
) -> Scenario:
    """Run the full substrate pipeline for a site list.

    Args:
        name: scenario label.
        sites: sites to interconnect.
        terrain: elevation model for LOS checks and tower thinning.
        los_config: line-of-sight parameters (range, usable height...).
        synthesis_config: synthetic tower field parameters.
        fiber_seed: conduit-network seed.
        flat_fiber_stretch: if given, skip the conduit network and set
            o_ij = flat_fiber_stretch x geodesic (the paper's Europe
            assumption of ~1.9x latency inflation).
        pipeline: candidate-hop pipeline to enumerate with; defaults to
            a caching pipeline whose terrain profiles are shared across
            all scenarios over the same terrain model, so parameter
            sweeps skip re-sampling the elevation field.
    """
    los_config = los_config or LosConfig()
    towers = synthesize_towers(sites, terrain, synthesis_config)
    registry = TowerRegistry(cull_towers(towers))
    if pipeline is None:
        pipeline = shared_pipeline(terrain, los_config)
    hop_graph = pipeline.enumerate_hops(registry)
    catalog = build_link_catalog(sites, registry, hop_graph)
    lats = [s.lat for s in sites]
    lons = [s.lon for s in sites]
    geodesic = pairwise_distance_matrix(lats, lons)
    if flat_fiber_stretch is not None:
        if flat_fiber_stretch < 1.0:
            raise ValueError("fiber stretch must be >= 1")
        fiber_net = None
        fiber_km = geodesic * flat_fiber_stretch
    else:
        fiber_net = build_conduit_network(sites, seed=fiber_seed)
        fiber_km = fiber_net.latency_equivalent_matrix()
    return Scenario(
        name=name,
        sites=tuple(sites),
        terrain=terrain,
        registry=registry,
        hop_graph=hop_graph,
        catalog=catalog,
        fiber=fiber_net,
        geodesic_km=geodesic,
        fiber_km=fiber_km,
    )


def radio_profile_with_range(max_range_km: float) -> RadioProfile:
    """A default radio profile with a custom maximum hop range (§6.5)."""
    return RadioProfile(max_range_km=max_range_km)


# The scenario name/seed metadata and validation rules live in the
# (dependency-free) spec module so the spec layer, this dispatcher, and
# the CLI share one copy.
from ..exp.spec import (  # noqa: E402 - single source of scenario metadata
    ScenarioSpec,
    SCENARIO_NAMES as SCENARIO_BUILDERS,
)

_DEFAULT_MAX_RANGE_KM = 100.0
_DEFAULT_USABLE_HEIGHT = 1.0


def get_scenario(
    name: str,
    sites: int | None = None,
    max_range_km: float = _DEFAULT_MAX_RANGE_KM,
    usable_height_fraction: float = _DEFAULT_USABLE_HEIGHT,
    seed: int | None = None,
) -> Scenario:
    """Build (or fetch the cached) scenario by name — the substrate stage.

    This is the one dispatcher the CLI and the experiment orchestration
    layer (:mod:`repro.exp`) share, and it is *strict*: a parameter a
    scenario cannot honor raises ``ValueError`` instead of being
    silently dropped (``sites`` for the fixed-site ``europe`` and
    ``interdc`` scenarios, LoS overrides for the data-center scenarios).

    Args:
        name: "us", "europe", "interdc", or "city_dc".
        sites: site-list size (``us``: ≤120 population centers,
            ``city_dc``: city count); None picks the scenario default.
        max_range_km / usable_height_fraction: §6.5 LoS overrides
            (``us`` and ``europe`` only).
        seed: tower-synthesis seed; None keeps the scenario default.
    """
    # ScenarioSpec owns the validation rules (unknown name, fixed site
    # lists, LoS-override restrictions); constructing one applies them.
    spec = ScenarioSpec(
        name=name,
        sites=sites,
        max_range_km=max_range_km,
        usable_height_fraction=usable_height_fraction,
        seed=seed,
    )
    seed = spec.resolved_seed()

    from .europe import europe_scenario
    from .interdc import city_dc_scenario, interdc_scenario
    from .us import us_scenario
    if name == "us":
        kwargs = dict(
            max_range_km=max_range_km,
            usable_height_fraction=usable_height_fraction,
            seed=seed,
        )
        if sites is not None:
            kwargs["n_sites"] = sites
        return us_scenario(**kwargs)
    if name == "europe":
        return europe_scenario(
            max_range_km=max_range_km,
            usable_height_fraction=usable_height_fraction,
            seed=seed,
        )
    if name == "interdc":
        return interdc_scenario(seed=seed)
    kwargs = {"seed": seed}
    if sites is not None:
        kwargs["n_cities"] = sites
    return city_dc_scenario(**kwargs)
