"""Data-center deployment scenarios (paper §6.3).

Two variants built on the US substrate:

* *inter-DC*: the six public Google US data centers with equal pairwise
  demand;
* *city-DC*: the 120 population centers plus the data centers, each
  city sending to its nearest DC proportionally to population.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING

from ..datasets.datacenters import google_us_datacenters
from ..datasets.us_cities import us_population_centers
from ..geo.terrain import us_terrain
from ..towers.synthesis import SynthesisConfig
from ..traffic.matrices import city_to_dc_matrix, dc_to_dc_matrix
from .base import Scenario, build_scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import HopPipeline


@lru_cache(maxsize=2)
def interdc_scenario(seed: int = 44, pipeline: "HopPipeline | None" = None) -> Scenario:
    """The six-data-center scenario.

    Shares the US terrain-profile cache with the city scenarios by
    default: DC tower fields over the same terrain reuse any profiles
    already sampled there.
    """
    sites = google_us_datacenters()
    return build_scenario(
        name="us-interdc",
        sites=sites,
        terrain=us_terrain(),
        synthesis_config=SynthesisConfig(seed=seed),
        pipeline=pipeline,
    )


@lru_cache(maxsize=2)
def city_dc_scenario(
    n_cities: int = 120, seed: int = 45, pipeline: "HopPipeline | None" = None
) -> Scenario:
    """Cities plus data centers in one site list.

    The DC sites are appended after the cities, so DC indices are
    ``range(n_cities, n_cities + 6)`` — as returned by
    :func:`dc_indices`.
    """
    sites = us_population_centers()[:n_cities] + google_us_datacenters()
    return build_scenario(
        name="us-city-dc",
        sites=sites,
        terrain=us_terrain(),
        synthesis_config=SynthesisConfig(seed=seed),
        pipeline=pipeline,
    )


def dc_indices(scenario: Scenario) -> list[int]:
    """Indices of data-center sites within a scenario's site list."""
    return [i for i, s in enumerate(scenario.sites) if s.population == 0]


def dc_dc_traffic(scenario: Scenario):
    """Equal-demand DC-DC traffic matrix for a scenario."""
    return dc_to_dc_matrix(list(scenario.sites), dc_indices(scenario))


def city_dc_traffic(scenario: Scenario):
    """Population-weighted city-to-nearest-DC traffic matrix."""
    return city_to_dc_matrix(list(scenario.sites), dc_indices(scenario))
