"""The European scenario (paper §6.2): cities above 300k population.

The paper lacks European conduit data and assumes fiber latencies
inflated over geodesics as in the US (~1.9x); we adopt the same flat
inflation.  Tower data comes from the same synthetic generator (the
paper uses crowd-sourced OpenCelliD towers).
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING

from ..datasets.eu_cities import eu_population_centers
from ..geo.fresnel import RadioProfile
from ..geo.terrain import europe_terrain
from ..towers.los import LosConfig
from .base import Scenario, build_scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import HopPipeline

#: The paper's US-measured fiber latency inflation, reused for Europe.
EU_FIBER_STRETCH = 1.93


@lru_cache(maxsize=4)
def europe_scenario(
    max_range_km: float = 100.0,
    usable_height_fraction: float = 1.0,
    seed: int = 43,
    pipeline: "HopPipeline | None" = None,
) -> Scenario:
    """Build (and cache) the European scenario.

    The default ``pipeline`` shares European terrain profiles across
    sweep points (range / usable-height variations re-check LoS over
    the same tower field without re-sampling the elevation model).
    """
    sites = eu_population_centers()
    terrain = europe_terrain()
    los = LosConfig(
        radio=RadioProfile(max_range_km=max_range_km),
        usable_height_fraction=usable_height_fraction,
    )
    from ..towers.synthesis import SynthesisConfig

    return build_scenario(
        name="europe",
        sites=sites,
        terrain=terrain,
        los_config=los,
        synthesis_config=SynthesisConfig(seed=seed),
        flat_fiber_stretch=EU_FIBER_STRETCH,
        pipeline=pipeline,
    )
