"""repro: a full reproduction of "cISP: A Speed-of-Light Internet
Service Provider" (NSDI 2022).

The library designs hybrid microwave + fiber wide-area networks whose
mean latency approaches the speed-of-light lower bound, and reproduces
every experiment in the paper's evaluation on synthetic substrates
(terrain, towers, fiber conduits, precipitation, web pages) documented
in DESIGN.md.

Quickstart::

    from repro import us_scenario, design_network

    scenario = us_scenario(n_sites=30)
    result = design_network(
        scenario.design_input(),
        budget_towers=1000,
        aggregate_gbps=100,
        catalog=scenario.catalog,
        registry=scenario.registry,
    )
    print(result.mean_stretch, result.cost_per_gb_usd)
"""

from .core import (
    CostModel,
    DesignInput,
    DesignResult,
    HopPipeline,
    SolveOutcome,
    Solver,
    Topology,
    design_network,
    fiber_only_topology,
    get_solver,
    greedy_sequence,
    register_solver,
    shared_pipeline,
    solve,
    solve_heuristic,
    solve_ilp,
    solve_lp_rounding,
    solver_names,
)
from .datasets import (
    Site,
    eu_population_centers,
    google_us_datacenters,
    us_population_centers,
)
from .geo import GeoPoint, c_latency_ms, haversine_km
from .scenarios import (
    Scenario,
    build_scenario,
    city_dc_scenario,
    europe_scenario,
    interdc_scenario,
    us_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "DesignInput",
    "DesignResult",
    "Topology",
    "design_network",
    "fiber_only_topology",
    "greedy_sequence",
    "HopPipeline",
    "SolveOutcome",
    "Solver",
    "get_solver",
    "register_solver",
    "shared_pipeline",
    "solve",
    "solve_heuristic",
    "solve_ilp",
    "solve_lp_rounding",
    "solver_names",
    "Site",
    "eu_population_centers",
    "google_us_datacenters",
    "us_population_centers",
    "GeoPoint",
    "c_latency_ms",
    "haversine_km",
    "Scenario",
    "build_scenario",
    "city_dc_scenario",
    "europe_scenario",
    "interdc_scenario",
    "us_scenario",
    "__version__",
]
