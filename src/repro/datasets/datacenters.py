"""The six publicly known Google US data center locations (paper §6.3).

Berkeley County SC; Council Bluffs IA; Douglas County GA; Lenoir NC;
Mayes County OK; The Dalles OR.  Populations are zero: data centers
contribute traffic through the DC-DC and city-DC traffic models, not
through the population product.
"""

from __future__ import annotations

from .sites import Site

_DATACENTERS: list[tuple[str, float, float]] = [
    ("DC Berkeley County SC", 33.0632, -80.0405),
    ("DC Council Bluffs IA", 41.2619, -95.8608),
    ("DC Douglas County GA", 33.7515, -84.7477),
    ("DC Lenoir NC", 35.9140, -81.5390),
    ("DC Mayes County OK", 36.2416, -95.3314),
    ("DC The Dalles OR", 45.5946, -121.1787),
]


def google_us_datacenters() -> list[Site]:
    """The six public Google US data center sites."""
    return [Site(name=n, lat=lat, lon=lon, population=0) for n, lat, lon in _DATACENTERS]
