"""Site datasets: US/EU population centers and data center locations."""

from .datacenters import google_us_datacenters
from .eu_cities import eu_population_centers
from .eu_cities import raw_cities as raw_eu_cities
from .sites import Site, coalesce_sites
from .us_cities import raw_cities as raw_us_cities
from .us_cities import us_population_centers

__all__ = [
    "Site",
    "coalesce_sites",
    "google_us_datacenters",
    "eu_population_centers",
    "raw_eu_cities",
    "raw_us_cities",
    "us_population_centers",
]
