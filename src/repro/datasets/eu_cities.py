"""European cities with population above ~300k (paper §6.2).

The paper designs a European cISP "across cities with population more
than 300k" at a geographical scale similar to the contiguous US.  We
include the major cities of continental Europe plus Great Britain.
Coordinates are approximate city centers; populations are city-proper
estimates.  As with the US list, only relative populations and geometry
matter to the design pipeline.
"""

from __future__ import annotations

from .sites import Site, coalesce_sites

_RAW_CITIES: list[tuple[str, float, float, int]] = [
    ("London", 51.5074, -0.1278, 8174000),
    ("Berlin", 52.5200, 13.4050, 3645000),
    ("Madrid", 40.4168, -3.7038, 3266000),
    ("Rome", 41.9028, 12.4964, 2873000),
    ("Paris", 48.8566, 2.3522, 2206000),
    ("Bucharest", 44.4268, 26.1025, 1883000),
    ("Vienna", 48.2082, 16.3738, 1897000),
    ("Hamburg", 53.5511, 9.9937, 1841000),
    ("Warsaw", 52.2297, 21.0122, 1765000),
    ("Budapest", 47.4979, 19.0402, 1752000),
    ("Barcelona", 41.3851, 2.1734, 1620000),
    ("Munich", 48.1351, 11.5820, 1472000),
    ("Milan", 45.4642, 9.1900, 1352000),
    ("Prague", 50.0755, 14.4378, 1309000),
    ("Sofia", 42.6977, 23.3219, 1236000),
    ("Brussels", 50.8503, 4.3517, 1209000),
    ("Birmingham", 52.4862, -1.8904, 1137000),
    ("Cologne", 50.9375, 6.9603, 1086000),
    ("Naples", 40.8518, 14.2681, 967000),
    ("Stockholm", 59.3293, 18.0686, 975000),
    ("Turin", 45.0703, 7.6869, 870000),
    ("Marseille", 43.2965, 5.3698, 863000),
    ("Amsterdam", 52.3676, 4.9041, 872000),
    ("Zagreb", 45.8150, 15.9819, 790000),
    ("Valencia", 39.4699, -0.3763, 791000),
    ("Krakow", 50.0647, 19.9450, 779000),
    ("Leeds", 53.8008, -1.5491, 789000),
    ("Frankfurt", 50.1109, 8.6821, 753000),
    ("Lodz", 51.7592, 19.4560, 679000),
    ("Seville", 37.3891, -5.9845, 688000),
    ("Palermo", 38.1157, 13.3615, 657000),
    ("Zaragoza", 41.6488, -0.8891, 675000),
    ("Athens", 37.9838, 23.7275, 664000),
    ("Rotterdam", 51.9244, 4.4777, 651000),
    ("Wroclaw", 51.1079, 17.0385, 643000),
    ("Stuttgart", 48.7758, 9.1829, 634000),
    ("Riga", 56.9496, 24.1052, 632000),
    ("Dusseldorf", 51.2277, 6.7735, 619000),
    ("Vilnius", 54.6872, 25.2797, 588000),
    ("Glasgow", 55.8642, -4.2518, 612000),
    ("Dortmund", 51.5136, 7.4653, 587000),
    ("Essen", 51.4556, 7.0116, 583000),
    ("Gothenburg", 57.7089, 11.9746, 579000),
    ("Genoa", 44.4056, 8.9463, 580000),
    ("Oslo", 59.9139, 10.7522, 673000),
    ("Dublin", 53.3498, -6.2603, 553000),
    ("Sheffield", 53.3811, -1.4701, 577000),
    ("Copenhagen", 55.6761, 12.5683, 602000),
    ("Leipzig", 51.3397, 12.3731, 587000),
    ("Bremen", 53.0793, 8.8017, 569000),
    ("Lisbon", 38.7223, -9.1393, 505000),
    ("Manchester", 53.4808, -2.2426, 547000),
    ("Dresden", 51.0504, 13.7373, 554000),
    ("Hannover", 52.3759, 9.7320, 538000),
    ("Poznan", 52.4064, 16.9252, 534000),
    ("Antwerp", 51.2194, 4.4025, 523000),
    ("Nuremberg", 49.4521, 11.0767, 518000),
    ("Lyon", 45.7640, 4.8357, 516000),
    ("Liverpool", 53.4084, -2.9916, 498000),
    ("Edinburgh", 55.9533, -3.1883, 488000),
    ("Bratislava", 48.1486, 17.1077, 432000),
    ("Gdansk", 54.3520, 18.6466, 470000),
    ("Malaga", 36.7213, -4.4214, 574000),
    ("Tallinn", 59.4370, 24.7536, 437000),
    ("Bristol", 51.4545, -2.5879, 463000),
    ("Bologna", 44.4949, 11.3426, 389000),
    ("Florence", 43.7696, 11.2558, 382000),
    ("Brno", 49.1951, 16.6068, 380000),
    ("Szczecin", 53.4285, 14.5528, 403000),
    ("Toulouse", 43.6047, 1.4442, 479000),
    ("Duisburg", 51.4344, 6.7623, 498000),
    ("Murcia", 37.9922, -1.1307, 447000),
    ("Bilbao", 43.2630, -2.9350, 345000),
    ("Nice", 43.7102, 7.2620, 342000),
    ("Cardiff", 51.4816, -3.1791, 362000),
    ("Belfast", 54.5973, -5.9301, 341000),
    ("Nantes", 47.2184, -1.5536, 309000),
    ("Catania", 37.5079, 15.0830, 311000),
    ("Bari", 41.1171, 16.8719, 320000),
    ("Thessaloniki", 40.6401, 22.9444, 325000),
    ("Utrecht", 52.0907, 5.1214, 357000),
    ("Malmo", 55.6049, 13.0038, 344000),
    ("Bydgoszcz", 53.1235, 18.0084, 350000),
    ("Lublin", 51.2465, 22.5684, 339000),
    ("Alicante", 38.3452, -0.4810, 334000),
    ("Cordoba", 37.8882, -4.7794, 325000),
    ("Bochum", 51.4818, 7.2162, 364000),
    ("Wuppertal", 51.2562, 7.1508, 354000),
    ("Bielefeld", 52.0302, 8.5325, 334000),
    ("Bonn", 50.7374, 7.0982, 327000),
    ("Montpellier", 43.6108, 3.8767, 290000),
    ("Strasbourg", 48.5734, 7.7521, 280000),
    ("Bordeaux", 44.8378, -0.5792, 257000),
    ("Porto", 41.1579, -8.6291, 237000),
    ("Geneva", 46.2044, 6.1432, 201000),
    ("Zurich", 47.3769, 8.5417, 415000),
    ("Ljubljana", 46.0569, 14.5058, 295000),
    ("Graz", 47.0707, 15.4395, 289000),
    ("Belgrade", 44.7866, 20.4489, 1166000),
    ("Skopje", 41.9981, 21.4254, 544000),
    ("Sarajevo", 43.8563, 18.4131, 275000),
    ("Ostrava", 49.8209, 18.2625, 287000),
    ("Katowice", 50.2649, 19.0238, 294000),
    ("Kaunas", 54.8985, 23.9036, 289000),
    ("Aarhus", 56.1629, 10.2039, 273000),
]


def raw_cities() -> list[Site]:
    """The uncoalesced European city list."""
    return [
        Site(name=name, lat=lat, lon=lon, population=pop)
        for name, lat, lon, pop in _RAW_CITIES
    ]


def eu_population_centers(
    coalesce_km: float = 50.0, min_population: int = 300_000
) -> list[Site]:
    """European population centers (coalesced, population >= 300k)."""
    centers = coalesce_sites(raw_cities(), radius_km=coalesce_km)
    return [c for c in centers if c.population >= min_population]
