"""Site datatypes shared by all scenario datasets."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..geo.coords import GeoPoint, haversine_km


@dataclass(frozen=True)
class Site:
    """A network site: a population center or a data center.

    Attributes:
        name: unique human-readable identifier.
        lat: latitude, degrees.
        lon: longitude, degrees.
        population: resident population (0 for data centers).
    """

    name: str
    lat: float
    lon: float
    population: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("site name must be non-empty")
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude {self.lat} out of range")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude {self.lon} out of range")
        if self.population < 0:
            raise ValueError("population must be non-negative")

    @property
    def point(self) -> GeoPoint:
        """The site's location as a :class:`GeoPoint`."""
        return GeoPoint(self.lat, self.lon)

    def distance_km(self, other: "Site") -> float:
        """Great-circle distance to another site, km."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)


def coalesce_sites(sites: list[Site], radius_km: float) -> list[Site]:
    """Merge sites within ``radius_km`` into single population centers.

    Implements the paper's suburb-coalescing rule (§4): iterate over
    sites by descending population; each site is absorbed into the first
    already-kept center within ``radius_km``, adding its population to
    that center.  Returns centers ordered by descending (merged)
    population.
    """
    if radius_km < 0:
        raise ValueError("radius must be non-negative")
    ordered = sorted(sites, key=lambda s: -s.population)
    centers: list[Site] = []
    for site in ordered:
        merged = False
        for i, center in enumerate(centers):
            if site.distance_km(center) <= radius_km:
                centers[i] = replace(
                    center, population=center.population + site.population
                )
                merged = True
                break
        if not merged:
            centers.append(site)
    return sorted(centers, key=lambda s: -s.population)
