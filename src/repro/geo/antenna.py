"""Antenna geometry for parallel tower series (paper §3.3, Fig 1).

The k^2 bandwidth trick connects multiple antennae per tower across
parallel series.  Antennae reusing the same frequency band need an
angular separation of at least 6 degrees, which fixes the minimum
lateral spacing between parallel series (e.g., 100 km hops force
100 * tan(6 deg) ~= 10.5 km), and that lateral detour slightly
lengthens end-to-end paths — negligibly, as the paper argues (0.2% for
a 10 km mid-path offset on a 500 km link).
"""

from __future__ import annotations

import math

#: Minimum angular separation for antennae sharing a frequency (§3.3).
MIN_ANGULAR_SEPARATION_DEG = 6.0


def min_parallel_spacing_km(
    hop_km: float, separation_deg: float = MIN_ANGULAR_SEPARATION_DEG
) -> float:
    """Minimum lateral distance between parallel tower series.

    For a hop of length ``hop_km``, cross-connected antennae subtend an
    angle of spacing/hop; that angle must exceed ``separation_deg``.
    """
    if hop_km <= 0:
        raise ValueError("hop length must be positive")
    if not 0 < separation_deg < 90:
        raise ValueError("separation must be in (0, 90) degrees")
    return hop_km * math.tan(math.radians(separation_deg))


def lateral_offset_stretch(link_km: float, offset_km: float) -> float:
    """Path stretch from a mid-path lateral offset (paper's 0.2% example).

    A link of length L whose midpoint detours laterally by ``offset_km``
    has length 2 * sqrt((L/2)^2 + offset^2); the paper notes a 10 km
    offset on a 500 km link costs only ~0.2%.
    """
    if link_km <= 0:
        raise ValueError("link length must be positive")
    if offset_km < 0:
        raise ValueError("offset must be non-negative")
    half = link_km / 2.0
    detoured = 2.0 * math.hypot(half, offset_km)
    return detoured / link_km


def series_for_bandwidth_gbps(
    bandwidth_gbps: float, per_series_gbps: float = 1.0
) -> int:
    """Parallel series needed for a target bandwidth under the k^2 trick.

    Mirrors :func:`repro.core.augmentation.series_needed` but
    parameterized by per-series capacity, for §3.4's media generality.
    """
    if bandwidth_gbps < 0:
        raise ValueError("bandwidth must be non-negative")
    if per_series_gbps <= 0:
        raise ValueError("per-series capacity must be positive")
    if bandwidth_gbps <= per_series_gbps:
        return 1
    return math.ceil(math.sqrt(bandwidth_gbps / per_series_gbps))
