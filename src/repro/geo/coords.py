"""Geodesic primitives: points, great-circle distances, and c-latency.

All of cISP's latency arguments are anchored to the *c-latency*: the time
light would take to travel the geodesic (great-circle) distance between
two points.  This module provides that yardstick plus the small amount of
spherical trigonometry the rest of the library needs (bearings, great
circle interpolation for terrain profiles, midpoints).

Distances are kilometres, latencies milliseconds, angles degrees unless
stated otherwise.  We use a spherical Earth (radius 6371 km); the paper's
conclusions are insensitive to the <0.5% ellipsoidal correction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Mean Earth radius in kilometres (IUGG).
EARTH_RADIUS_KM = 6371.0

#: Speed of light in vacuum, km per second.
SPEED_OF_LIGHT_KM_S = 299_792.458

#: Refractive slowdown of light in optical fiber (speed ~ 2c/3).  The
#: paper multiplies fiber route distances by 1.5 to convert them to
#: latency-equivalent distances.
FIBER_SLOWDOWN = 1.5


@dataclass(frozen=True, order=True)
class GeoPoint:
    """A point on the Earth's surface.

    Attributes:
        lat: latitude in degrees, in [-90, 90].
        lon: longitude in degrees, in [-180, 180].
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude {self.lat} out of range [-90, 90]")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude {self.lon} out of range [-180, 180]")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)


def haversine_km(lat1, lon1, lat2, lon2):
    """Great-circle distance between (lat1, lon1) and (lat2, lon2).

    Accepts scalars or numpy arrays (broadcasting applies) and returns
    the same shape.  Inputs are degrees; output is kilometres.
    """
    lat1 = np.radians(lat1)
    lon1 = np.radians(lon1)
    lat2 = np.radians(lat2)
    lon2 = np.radians(lon2)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    # Clip to guard against floating point drift just above 1.0.
    central = 2.0 * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
    result = EARTH_RADIUS_KM * central
    if np.ndim(result) == 0:
        return float(result)
    return result


def pairwise_distance_matrix(lats, lons) -> np.ndarray:
    """All-pairs great-circle distance matrix for coordinate vectors.

    Args:
        lats: array of latitudes, shape (n,).
        lons: array of longitudes, shape (n,).

    Returns:
        (n, n) symmetric matrix of distances in kilometres with a zero
        diagonal.
    """
    lats = np.asarray(lats, dtype=float)
    lons = np.asarray(lons, dtype=float)
    d = haversine_km(lats[:, None], lons[:, None], lats[None, :], lons[None, :])
    np.fill_diagonal(d, 0.0)
    return d


def c_latency_ms(distance_km: float) -> float:
    """One-way speed-of-light travel time over ``distance_km``, in ms."""
    return distance_km / SPEED_OF_LIGHT_KM_S * 1000.0


def fiber_latency_ms(route_km: float) -> float:
    """One-way latency over a fiber route of physical length ``route_km``."""
    return c_latency_ms(route_km * FIBER_SLOWDOWN)


def initial_bearing_deg(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Initial great-circle bearing from point 1 to point 2, degrees in [0, 360)."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dlon = math.radians(lon2 - lon1)
    y = math.sin(dlon) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlon)
    return math.degrees(math.atan2(y, x)) % 360.0


def destination_point(lat: float, lon: float, bearing_deg: float, distance_km: float) -> GeoPoint:
    """Point reached travelling ``distance_km`` from (lat, lon) on ``bearing_deg``."""
    delta = distance_km / EARTH_RADIUS_KM
    theta = math.radians(bearing_deg)
    phi1 = math.radians(lat)
    lam1 = math.radians(lon)
    phi2 = math.asin(
        math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    )
    lam2 = lam1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(phi1),
        math.cos(delta) - math.sin(phi1) * math.sin(phi2),
    )
    lon2 = (math.degrees(lam2) + 540.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(phi2), lon2)


def great_circle_points(p1: GeoPoint, p2: GeoPoint, n: int) -> tuple[np.ndarray, np.ndarray]:
    """``n`` points evenly spaced along the great circle from p1 to p2.

    Includes both endpoints.  Returns (lats, lons) arrays of shape (n,).
    Uses spherical linear interpolation (slerp), which is exact on the
    sphere.
    """
    if n < 2:
        raise ValueError("need at least 2 points (the endpoints)")
    phi1, lam1 = math.radians(p1.lat), math.radians(p1.lon)
    phi2, lam2 = math.radians(p2.lat), math.radians(p2.lon)
    v1 = np.array(
        [math.cos(phi1) * math.cos(lam1), math.cos(phi1) * math.sin(lam1), math.sin(phi1)]
    )
    v2 = np.array(
        [math.cos(phi2) * math.cos(lam2), math.cos(phi2) * math.sin(lam2), math.sin(phi2)]
    )
    omega = math.acos(float(np.clip(np.dot(v1, v2), -1.0, 1.0)))
    t = np.linspace(0.0, 1.0, n)
    if omega < 1e-12:
        # Degenerate case: identical points.
        vs = np.tile(v1, (n, 1))
    else:
        sin_omega = math.sin(omega)
        a = np.sin((1.0 - t) * omega) / sin_omega
        b = np.sin(t * omega) / sin_omega
        vs = a[:, None] * v1[None, :] + b[:, None] * v2[None, :]
    lats = np.degrees(np.arcsin(np.clip(vs[:, 2], -1.0, 1.0)))
    lons = np.degrees(np.arctan2(vs[:, 1], vs[:, 0]))
    return lats, lons


def midpoint(p1: GeoPoint, p2: GeoPoint) -> GeoPoint:
    """Great-circle midpoint of two points."""
    lats, lons = great_circle_points(p1, p2, 3)
    return GeoPoint(float(lats[1]), float(lons[1]))
