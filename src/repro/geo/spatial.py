"""Grid-bucket spatial index for lat/lon point sets.

Continental-scale hop enumeration must avoid the O(n^2) pairwise
distance scan: with tens of thousands of towers only a tiny fraction of
pairs are within radio range.  :class:`GridIndex` buckets points into a
uniform lat/lon grid whose cell edge is matched to the query radius, so
radius queries and all-pairs-within-range enumeration only touch
neighboring cells.

The index is exact, not approximate: candidate sets from the grid are
always post-filtered by true great-circle distance, so callers get
precisely the pairs a brute-force scan would find (see
:func:`brute_force_pairs_within`, the oracle the test suite compares
against).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from .coords import haversine_km

#: Kilometres per degree of latitude (spherical Earth).
KM_PER_DEG_LAT = 110.0

#: Smallest permitted grid cell, degrees (guards against degenerate
#: cells when the query radius is tiny).
MIN_CELL_DEG = 0.05


class GridIndex:
    """A uniform lat/lon grid over a fixed set of points.

    The cell edge is sized so that any two points within ``radius_km``
    of each other fall in the same or adjacent cells (with the
    longitude reach widened at high latitude, where meridians
    converge).

    Args:
        lats: point latitudes, degrees, shape (n,).
        lons: point longitudes, degrees, shape (n,).
        radius_km: the query radius the grid is tuned for.  Queries at
            larger radii remain correct but scan more cells.
    """

    def __init__(self, lats, lons, radius_km: float):
        if radius_km <= 0:
            raise ValueError("radius must be positive")
        self.lats = np.atleast_1d(np.asarray(lats, dtype=float))
        self.lons = np.atleast_1d(np.asarray(lons, dtype=float))
        if self.lats.shape != self.lons.shape:
            raise ValueError("lat/lon arrays must be aligned")
        self.radius_km = float(radius_km)
        self.cell_deg = max(radius_km / KM_PER_DEG_LAT, MIN_CELL_DEG)
        self._buckets: dict[tuple[int, int], list[int]] = defaultdict(list)
        ci = np.floor(self.lats / self.cell_deg).astype(int)
        cj = np.floor(self.lons / self.cell_deg).astype(int)
        for k in range(len(self.lats)):
            self._buckets[(int(ci[k]), int(cj[k]))].append(k)
        self._cell_i = ci
        self._cell_j = cj

    def __len__(self) -> int:
        return len(self.lats)

    @property
    def n_cells(self) -> int:
        """Number of occupied grid cells."""
        return len(self._buckets)

    def _lon_reach(self, radius_km: float, at_lat: float) -> int:
        """Cells of longitude reach covering ``radius_km`` at a latitude."""
        cos_lat = max(np.cos(np.radians(min(abs(at_lat), 85.0))), 0.1)
        return int(np.ceil(radius_km / (KM_PER_DEG_LAT * cos_lat * self.cell_deg)))

    def query_radius(self, lat: float, lon: float, radius_km: float | None = None) -> np.ndarray:
        """Indices of all points within ``radius_km`` of (lat, lon).

        Defaults to the radius the index was built for.  Exact: grid
        candidates are filtered by true great-circle distance.
        """
        r = self.radius_km if radius_km is None else float(radius_km)
        if r < 0:
            raise ValueError("radius must be non-negative")
        lat_reach = int(np.ceil(r / (KM_PER_DEG_LAT * self.cell_deg)))
        lon_reach = self._lon_reach(r, lat)
        ci = int(np.floor(lat / self.cell_deg))
        cj = int(np.floor(lon / self.cell_deg))
        cand: list[int] = []
        for di in range(-lat_reach, lat_reach + 1):
            for dj in range(-lon_reach, lon_reach + 1):
                cand.extend(self._buckets.get((ci + di, cj + dj), ()))
        if not cand:
            return np.zeros(0, dtype=int)
        idx = np.array(cand, dtype=int)
        dist = haversine_km(lat, lon, self.lats[idx], self.lons[idx])
        return idx[np.atleast_1d(dist) <= r]

    def pairs_within(self, max_range_km: float | None = None) -> tuple[np.ndarray, np.ndarray]:
        """All point pairs within ``max_range_km``, as aligned (a, b) arrays.

        Returns exactly the pairs a brute-force O(n^2) scan would find,
        with a < b, but only examines same-cell and neighboring-cell
        candidates.  Pair order within the arrays is unspecified.
        """
        r = self.radius_km if max_range_km is None else float(max_range_km)
        if r < 0:
            raise ValueError("range must be non-negative")
        n = len(self.lats)
        if n == 0:
            return np.zeros(0, dtype=int), np.zeros(0, dtype=int)
        lat_reach = int(np.ceil(r / (KM_PER_DEG_LAT * self.cell_deg)))
        max_abs_lat = min(float(np.abs(self.lats).max()) + 1.0, 85.0)
        lon_reach = self._lon_reach(r, max_abs_lat)
        pair_a: list[np.ndarray] = []
        pair_b: list[np.ndarray] = []
        for (ci, cj), members in self._buckets.items():
            members_arr = np.array(members)
            # Scan only the "forward" half-neighborhood so each cell
            # pair is visited once.
            neighborhood: list[int] = []
            for di in range(0, lat_reach + 1):
                for dj in range(-lon_reach, lon_reach + 1):
                    if di == 0 and dj <= 0:
                        continue
                    other = self._buckets.get((ci + di, cj + dj))
                    if other is not None:
                        neighborhood.extend(other)
            if len(members_arr) > 1:
                ii, jj = np.triu_indices(len(members_arr), k=1)
                pair_a.append(members_arr[ii])
                pair_b.append(members_arr[jj])
            if neighborhood:
                nb = np.array(neighborhood)
                aa = np.repeat(members_arr, len(nb))
                bb = np.tile(nb, len(members_arr))
                pair_a.append(np.minimum(aa, bb))
                pair_b.append(np.maximum(aa, bb))
        if not pair_a:
            return np.zeros(0, dtype=int), np.zeros(0, dtype=int)
        a = np.concatenate(pair_a)
        b = np.concatenate(pair_b)
        dist = np.atleast_1d(haversine_km(self.lats[a], self.lons[a], self.lats[b], self.lons[b]))
        mask = (dist <= r) & (a != b)
        return a[mask], b[mask]


def brute_force_pairs_within(lats, lons, max_range_km: float) -> tuple[np.ndarray, np.ndarray]:
    """O(n^2) oracle for :meth:`GridIndex.pairs_within` (tests, benchmarks)."""
    lats = np.atleast_1d(np.asarray(lats, dtype=float))
    lons = np.atleast_1d(np.asarray(lons, dtype=float))
    n = len(lats)
    if n < 2:
        return np.zeros(0, dtype=int), np.zeros(0, dtype=int)
    a, b = np.triu_indices(n, k=1)
    dist = np.atleast_1d(haversine_km(lats[a], lons[a], lats[b], lons[b]))
    mask = dist <= max_range_km
    return a[mask], b[mask]
