"""Microwave line-of-sight physics: Fresnel zone and Earth-bulge clearance.

Section 3.1 of the paper gives the two clearance terms a microwave hop
must overcome at its midpoint:

    hFres  ~= 8.7 m * sqrt(D / 1 km) / sqrt(f / 1 GHz)
    hEarth ~= (1 m / (50 K)) * (D / 1 km)^2

where ``D`` is the hop length, ``f`` the carrier frequency, and ``K`` the
effective Earth-radius factor accounting for atmospheric refraction.  The
paper adopts K = 1.3 and f = 11 GHz.  This module generalizes both terms
to arbitrary positions along the hop (needed for terrain-profile checks)
with constants chosen so the midpoint values match the paper's formulas
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Paper's refraction constant ("K-factor").
DEFAULT_K_FACTOR = 1.3

#: Paper's carrier frequency, GHz (6-18 GHz band; 11 GHz adopted).
DEFAULT_FREQUENCY_GHZ = 11.0

#: Paper's practicable maximum hop range, km.
DEFAULT_MAX_RANGE_KM = 100.0


def fresnel_radius_m(d1_km, d2_km, frequency_ghz: float = DEFAULT_FREQUENCY_GHZ):
    """First-Fresnel-zone radius at a point along a hop, in metres.

    Args:
        d1_km: distance from the transmitter, km (scalar or array).
        d2_km: distance to the receiver, km.
        frequency_ghz: carrier frequency, GHz.

    At the midpoint of a hop of length D this evaluates to the paper's
    ``8.7 * sqrt(D) / sqrt(f)`` metres.
    """
    d1 = np.asarray(d1_km, dtype=float)
    d2 = np.asarray(d2_km, dtype=float)
    total = d1 + d2
    # 2 * 8.7 * sqrt(d1*d2 / (D*f)); at d1 = d2 = D/2 this is 8.7*sqrt(D/f).
    with np.errstate(divide="ignore", invalid="ignore"):
        r = 17.4 * np.sqrt(np.where(total > 0, d1 * d2 / (total * frequency_ghz), 0.0))
    result = np.where(total > 0, r, 0.0)
    if np.ndim(result) == 0:
        return float(result)
    return result


def earth_bulge_m(d1_km, d2_km, k_factor: float = DEFAULT_K_FACTOR):
    """Height of the effective Earth bulge above the chord, in metres.

    Args:
        d1_km: distance from one endpoint, km (scalar or array).
        d2_km: distance to the other endpoint, km.
        k_factor: effective Earth-radius factor (refraction), typically 1.3.

    At the midpoint of a hop of length D this evaluates to the paper's
    ``D^2 / (50 K)`` metres.
    """
    d1 = np.asarray(d1_km, dtype=float)
    d2 = np.asarray(d2_km, dtype=float)
    result = d1 * d2 / (12.5 * k_factor)
    if np.ndim(result) == 0:
        return float(result)
    return result


def midpoint_clearance_m(
    hop_km: float,
    frequency_ghz: float = DEFAULT_FREQUENCY_GHZ,
    k_factor: float = DEFAULT_K_FACTOR,
) -> float:
    """Total clearance (bulge + Fresnel) required at the hop midpoint, metres."""
    half = hop_km / 2.0
    return float(
        earth_bulge_m(half, half, k_factor) + fresnel_radius_m(half, half, frequency_ghz)
    )


def required_clearance_m(
    d1_km,
    d2_km,
    frequency_ghz: float = DEFAULT_FREQUENCY_GHZ,
    k_factor: float = DEFAULT_K_FACTOR,
):
    """Clearance the sight line must keep above terrain along the hop.

    This is the sum of the Earth-bulge and the (fully clear, per the
    paper) first Fresnel zone radius at each sample point.
    """
    return earth_bulge_m(d1_km, d2_km, k_factor) + fresnel_radius_m(
        d1_km, d2_km, frequency_ghz
    )


@dataclass(frozen=True)
class RadioProfile:
    """Radio-engineering parameters for hop feasibility assessment.

    Attributes:
        frequency_ghz: carrier frequency.
        k_factor: atmospheric refraction constant.
        max_range_km: maximum allowed hop length (attenuation limit).
        fade_margin_db: link budget headroom before rain outage; consumed
            by :mod:`repro.weather.attenuation`.
    """

    frequency_ghz: float = DEFAULT_FREQUENCY_GHZ
    k_factor: float = DEFAULT_K_FACTOR
    max_range_km: float = DEFAULT_MAX_RANGE_KM
    fade_margin_db: float = 35.0

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.k_factor <= 0:
            raise ValueError("K-factor must be positive")
        if self.max_range_km <= 0:
            raise ValueError("max range must be positive")

    def clearance_m(self, d1_km, d2_km):
        """Required clearance at distance ``d1_km`` from one end of the hop."""
        return required_clearance_m(d1_km, d2_km, self.frequency_ghz, self.k_factor)
