"""Synthetic terrain elevation model (substitute for NASA SRTM/NED data).

The paper assesses microwave hop feasibility against the NASA SRTM/NED
elevation dataset (which includes ground clutter and tree canopy).  That
dataset is tens of gigabytes and unavailable offline, so we substitute a
deterministic procedural elevation field with the properties the
line-of-sight engine actually consumes:

* smooth multi-octave relief with realistic amplitudes (plains tens of
  metres, hills hundreds, mountain belts thousands);
* named mountain ridges placed where the real ones are (Rockies,
  Sierra Nevada, Appalachians, Alps, ...), so hop feasibility varies
  geographically the way the paper reports (e.g., the long
  Illinois-California link crosses the Rockies through low tower
  density);
* determinism: the same (lat, lon, seed) always yields the same
  elevation, so experiments are reproducible.

Elevations are metres above a nominal sea level and are never negative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .coords import GeoPoint, great_circle_points

#: Kilometres per degree of latitude (spherical Earth).
_KM_PER_DEG_LAT = 111.19


def _mix_hash(ix: np.ndarray, iy: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic integer hash of lattice coordinates to [0, 1)."""
    seed_mix = np.uint64((seed * 0x165667B19E3779F9) % (1 << 64))
    h = (
        ix.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        ^ iy.astype(np.uint64) * np.uint64(0xC2B2AE3D27D4EB4F)
        ^ seed_mix
    )
    h ^= h >> np.uint64(33)
    h *= np.uint64(0xFF51AFD7ED558CCD)
    h ^= h >> np.uint64(33)
    return (h >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def _smoothstep(t: np.ndarray) -> np.ndarray:
    return t * t * (3.0 - 2.0 * t)


def _value_noise(x: np.ndarray, y: np.ndarray, seed: int) -> np.ndarray:
    """Bilinear-interpolated lattice value noise in [0, 1)."""
    x0 = np.floor(x)
    y0 = np.floor(y)
    tx = _smoothstep(x - x0)
    ty = _smoothstep(y - y0)
    ix0 = x0.astype(np.int64)
    iy0 = y0.astype(np.int64)
    v00 = _mix_hash(ix0, iy0, seed)
    v10 = _mix_hash(ix0 + 1, iy0, seed)
    v01 = _mix_hash(ix0, iy0 + 1, seed)
    v11 = _mix_hash(ix0 + 1, iy0 + 1, seed)
    top = v00 + (v10 - v00) * tx
    bottom = v01 + (v11 - v01) * tx
    return top + (bottom - top) * ty


def fractal_noise(
    x: np.ndarray,
    y: np.ndarray,
    octaves: int = 5,
    persistence: float = 0.5,
    lacunarity: float = 2.0,
    seed: int = 0,
) -> np.ndarray:
    """Multi-octave value noise normalized to [0, 1)."""
    total = np.zeros_like(np.asarray(x, dtype=float))
    amplitude = 1.0
    frequency = 1.0
    norm = 0.0
    for octave in range(octaves):
        total += amplitude * _value_noise(x * frequency, y * frequency, seed + octave)
        norm += amplitude
        amplitude *= persistence
        frequency *= lacunarity
    return total / norm


@dataclass(frozen=True)
class MountainRidge:
    """A mountain belt modelled as a Gaussian wall along a polyline.

    Attributes:
        name: human-readable label (e.g., "Rockies").
        waypoints: polyline of (lat, lon) pairs tracing the ridge crest.
        height_m: peak crest height above the surrounding base level.
        width_km: e-folding half-width of the belt.
    """

    name: str
    waypoints: tuple[tuple[float, float], ...]
    height_m: float
    width_km: float

    def distance_km(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Approximate distance from query points to the ridge polyline.

        Uses a local equirectangular projection per segment, accurate to
        a few percent at the few-hundred-km scales that matter for the
        ridge envelope.
        """
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        best = np.full(lats.shape, np.inf)
        pts = self.waypoints
        for (lat_a, lon_a), (lat_b, lon_b) in zip(pts[:-1], pts[1:]):
            mean_lat = np.radians((lat_a + lat_b) / 2.0)
            kx = _KM_PER_DEG_LAT * np.cos(mean_lat)
            ax, ay = lon_a * kx, lat_a * _KM_PER_DEG_LAT
            bx, by = lon_b * kx, lat_b * _KM_PER_DEG_LAT
            px = lons * kx
            py = lats * _KM_PER_DEG_LAT
            dx, dy = bx - ax, by - ay
            seg_len_sq = dx * dx + dy * dy
            if seg_len_sq <= 0:
                t = np.zeros_like(px)
            else:
                t = np.clip(((px - ax) * dx + (py - ay) * dy) / seg_len_sq, 0.0, 1.0)
            cx = ax + t * dx
            cy = ay + t * dy
            dist = np.hypot(px - cx, py - cy)
            best = np.minimum(best, dist)
        return best


@dataclass(frozen=True)
class TerrainModel:
    """Deterministic procedural elevation field.

    Attributes:
        seed: noise seed; the same seed reproduces the same terrain.
        base_m: mean elevation of the gently rolling base relief.
        relief_m: peak-to-peak amplitude of the base relief.
        noise_scale_deg: spatial scale (degrees per noise cell) of the
            base relief's lowest octave.
        ridges: mountain belts superimposed on the base relief.
    """

    seed: int = 7
    base_m: float = 120.0
    relief_m: float = 380.0
    noise_scale_deg: float = 1.6
    ridges: tuple[MountainRidge, ...] = field(default_factory=tuple)

    def elevation_m(self, lats, lons) -> np.ndarray:
        """Elevation in metres at the query coordinates (vectorized)."""
        lats = np.atleast_1d(np.asarray(lats, dtype=float))
        lons = np.atleast_1d(np.asarray(lons, dtype=float))
        x = lons / self.noise_scale_deg
        y = lats / self.noise_scale_deg
        base = self.base_m + self.relief_m * fractal_noise(x, y, octaves=5, seed=self.seed)
        elevation = base
        for i, ridge in enumerate(self.ridges):
            dist = ridge.distance_km(lats, lons)
            envelope = np.exp(-((dist / ridge.width_km) ** 2))
            # Ruggedness: crest height varies along the belt.
            rough = 0.55 + 0.45 * fractal_noise(
                x * 3.0, y * 3.0, octaves=3, seed=self.seed + 101 + i
            )
            elevation = elevation + ridge.height_m * envelope * rough
        return np.maximum(elevation, 0.0)

    def point_elevation_m(self, point: GeoPoint) -> float:
        """Elevation at a single point, metres."""
        return float(self.elevation_m([point.lat], [point.lon])[0])

    def profile(
        self, p1: GeoPoint, p2: GeoPoint, n_samples: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Terrain profile along the great circle from ``p1`` to ``p2``.

        Returns (lats, lons, elevations_m), each of shape (n_samples,),
        including the endpoints.
        """
        lats, lons = great_circle_points(p1, p2, n_samples)
        return lats, lons, self.elevation_m(lats, lons)


def us_terrain(seed: int = 7) -> TerrainModel:
    """Terrain model for the contiguous United States."""
    return TerrainModel(
        seed=seed,
        base_m=150.0,
        relief_m=420.0,
        noise_scale_deg=1.7,
        ridges=(
            MountainRidge(
                "Rockies",
                ((48.8, -115.0), (44.5, -110.5), (39.5, -106.0), (35.5, -105.8)),
                height_m=2400.0,
                width_km=260.0,
            ),
            MountainRidge(
                "Sierra Nevada",
                ((40.5, -121.3), (37.5, -119.0), (35.8, -118.2)),
                height_m=2300.0,
                width_km=90.0,
            ),
            MountainRidge(
                "Cascades",
                ((48.8, -121.4), (44.0, -121.8), (41.5, -122.2)),
                height_m=1900.0,
                width_km=90.0,
            ),
            MountainRidge(
                "Appalachians",
                ((43.0, -73.2), (40.5, -77.5), (37.5, -80.5), (35.0, -83.5)),
                height_m=900.0,
                width_km=130.0,
            ),
        ),
    )


def europe_terrain(seed: int = 11) -> TerrainModel:
    """Terrain model for Europe."""
    return TerrainModel(
        seed=seed,
        base_m=120.0,
        relief_m=360.0,
        noise_scale_deg=1.5,
        ridges=(
            MountainRidge(
                "Alps",
                ((45.2, 6.0), (46.3, 8.5), (47.0, 11.0), (46.5, 13.8)),
                height_m=2600.0,
                width_km=130.0,
            ),
            MountainRidge(
                "Pyrenees",
                ((43.1, -1.8), (42.6, 0.8), (42.4, 2.8)),
                height_m=2000.0,
                width_km=70.0,
            ),
            MountainRidge(
                "Carpathians",
                ((49.3, 19.8), (48.0, 24.0), (45.7, 25.4)),
                height_m=1500.0,
                width_km=110.0,
            ),
            MountainRidge(
                "Scandes",
                ((59.5, 7.5), (63.0, 11.0), (67.5, 16.5)),
                height_m=1400.0,
                width_km=150.0,
            ),
            MountainRidge(
                "Apennines",
                ((44.4, 8.8), (42.5, 13.3), (40.5, 15.8)),
                height_m=1400.0,
                width_km=70.0,
            ),
        ),
    )


def flat_terrain(elevation_m: float = 0.0) -> TerrainModel:
    """A perfectly flat terrain (useful for tests and calibration)."""
    return TerrainModel(seed=0, base_m=elevation_m, relief_m=0.0, ridges=())
