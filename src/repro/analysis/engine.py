"""The lint engine: one AST walk per file, rules dispatched by node type.

:func:`run_lint` is the single entry point (the CLI's ``repro lint``
and the test-suite gates both call it): discover files, parse each one
once, walk its tree once dispatching nodes to every in-scope file
rule, apply inline suppressions, then run the project-level rules
(the stage-version lockfile check).

Suppressions are inline comments::

    expr()  # repro: allow[rule-id] -- why this is legitimate

or a standalone comment on the line directly above the finding.  The
reason after ``--`` is mandatory; a reason-less or unknown-rule
suppression is itself reported (rule ``bad-suppression``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from .rules import (
    FileContext,
    Finding,
    ProjectContext,
    ProjectRule,
    Rule,
    RuleScope,
    all_rules,
    get_rule,
    rule_names,
)

#: The suppression-comment format (see the module docstring); the
#: mandatory reason is enforced in parse_suppressions, not the regex.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<ids>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S))?"
)

_RULE_ID_RE = re.compile(r"^[a-z][a-z0-9-]*$")


@dataclass(frozen=True)
class Suppression:
    rules: tuple[str, ...]
    reason: str
    standalone: bool  # comment-only line (covers the line below too)


@dataclass
class LintConfig:
    """Engine configuration.

    Attributes:
        repo_root: paths in findings and scope matching are relative to
            this directory (default: the src-layout repo root).
        lock_path: the stage_versions.lock location.
        scopes: per-rule scope overrides (rule name -> RuleScope);
            unlisted rules keep their class default.
    """

    repo_root: Path | None = None
    lock_path: Path | None = None
    scopes: dict[str, RuleScope] = field(default_factory=dict)

    def resolved_repo_root(self) -> Path:
        if self.repo_root is not None:
            return Path(self.repo_root).resolve()
        from .versions import default_lock_path

        return default_lock_path().parent

    def resolved_lock_path(self) -> Path:
        if self.lock_path is not None:
            return Path(self.lock_path)
        from .versions import default_lock_path

        return default_lock_path()

    def scope_for(self, rule: Rule) -> RuleScope:
        return self.scopes.get(rule.name, rule.scope)


@dataclass
class LintResult:
    """What one lint invocation produced.

    ``findings`` are the live (unsuppressed) problems; ``suppressed``
    carries the inline-waived ones for ``--show-suppressed`` style
    reporting.
    """

    findings: list[Finding]
    suppressed: list[Finding]
    files_checked: int
    rules_run: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.findings


def parse_suppressions(
    source: str, rel: str, known_rules: set[str]
) -> tuple[dict[int, Suppression], list[Finding]]:
    """Per-line suppressions from real comment tokens (never strings)."""
    suppressions: dict[int, Suppression] = {}
    findings: list[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return suppressions, findings
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        line, col = tok.start
        ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        reason = match.group("reason")
        bad = [i for i in ids if not _RULE_ID_RE.match(i) or i not in known_rules]
        if not ids or bad:
            findings.append(
                Finding(
                    rule="bad-suppression",
                    path=rel,
                    line=line,
                    col=col,
                    message=(
                        f"unknown rule id(s) in suppression: {', '.join(bad)}"
                        if bad
                        else "suppression names no rule: repro: allow[rule-id]"
                    ),
                )
            )
            continue
        if not reason:
            findings.append(
                Finding(
                    rule="bad-suppression",
                    path=rel,
                    line=line,
                    col=col,
                    message=(
                        "suppression needs a reason: "
                        "# repro: allow[" + ", ".join(ids) + "] -- <why>"
                    ),
                )
            )
            continue
        standalone = source.splitlines()[line - 1][:col].strip() == ""
        suppressions[line] = Suppression(ids, reason, standalone)
    return suppressions, findings


def _apply_suppressions(
    findings: list[Finding], suppressions: dict[int, Suppression]
) -> tuple[list[Finding], list[Finding]]:
    live: list[Finding] = []
    waived: list[Finding] = []
    for finding in findings:
        sup = suppressions.get(finding.line)
        if sup is None or finding.rule not in sup.rules:
            above = suppressions.get(finding.line - 1)
            sup = (
                above
                if above is not None
                and above.standalone
                and finding.rule in above.rules
                else None
            )
        if sup is None:
            live.append(finding)
        else:
            waived.append(
                Finding(
                    rule=finding.rule,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    message=finding.message,
                    suppressed=True,
                    suppress_reason=sup.reason,
                )
            )
    return live, waived


def _discover(paths: list[Path]) -> list[Path]:
    files: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def _walk_file(
    ctx: FileContext, rules: list[Rule], findings: list[Finding]
) -> None:
    by_type: dict[type, list[Rule]] = {}
    for rule in rules:
        for node_type in rule.node_types:
            by_type.setdefault(node_type, []).append(rule)

    def dispatch(node: ast.AST) -> None:
        for rule in by_type.get(type(node), ()):
            findings.extend(rule.visit(node, ctx))
        ctx.stack.append(node)
        for child in ast.iter_child_nodes(node):
            dispatch(child)
        ctx.stack.pop()

    dispatch(ctx.tree)


def _rel_path(path: Path, repo_root: Path) -> str:
    try:
        return path.resolve().relative_to(repo_root).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def run_lint(
    paths: list[Path | str],
    *,
    rules: list[str] | None = None,
    config: LintConfig | None = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) with the selected rules.

    Args:
        paths: files and/or directories to walk for ``*.py`` sources.
        rules: registry names to run (default: every registered rule).
            Project rules run once per invocation regardless of paths.
        config: engine configuration (repo root, lock path, scope
            overrides).
    """
    config = config or LintConfig()
    repo_root = config.resolved_repo_root()
    selected = (
        all_rules() if rules is None else [get_rule(name) for name in rules]
    )
    file_rules = [r for r in selected if isinstance(r, Rule)]
    project_rules = [r for r in selected if isinstance(r, ProjectRule)]
    # Suppressions are validated against the full registry, not the
    # selected subset: a justified `allow[dense-fw-ban]` must not read
    # as a typo just because this invocation runs other rules.
    known = set(rule_names())

    live: list[Finding] = []
    waived: list[Finding] = []
    files = _discover([Path(p) for p in paths])
    for path in files:
        rel = _rel_path(path, repo_root)
        source = path.read_text()
        applicable = [
            r for r in file_rules if config.scope_for(r).matches(rel)
        ]
        suppressions, bad = parse_suppressions(source, rel, known)
        file_findings: list[Finding] = list(bad)
        if applicable:
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                live.append(
                    Finding(
                        rule="syntax-error",
                        path=rel,
                        line=exc.lineno or 1,
                        col=exc.offset or 0,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
                continue
            ctx = FileContext(path, rel, source, tree)
            _walk_file(ctx, applicable, file_findings)
        file_live, file_waived = _apply_suppressions(
            file_findings, suppressions
        )
        live.extend(file_live)
        waived.extend(file_waived)

    if project_rules:
        from .versions import default_package_root

        project_ctx = ProjectContext(
            repo_root=repo_root,
            package_root=default_package_root(),
            lock_path=config.resolved_lock_path(),
        )
        for rule in project_rules:
            live.extend(rule.check(project_ctx))

    live.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    waived.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintResult(
        findings=live,
        suppressed=waived,
        files_checked=len(files),
        rules_run=tuple(sorted(r.name for r in selected)),
    )


def lint_source(
    source: str,
    *,
    rules: list[str],
    path: str = "snippet.py",
) -> LintResult:
    """Lint a source string with the named file rules (no scope filter).

    The unit-test entry point: rule logic can be exercised on synthetic
    snippets without touching the filesystem or the default scopes.
    """
    selected = [get_rule(name) for name in rules]
    file_rules = [r for r in selected if isinstance(r, Rule)]
    suppressions, bad = parse_suppressions(source, path, set(rule_names()))
    findings: list[Finding] = list(bad)
    tree = ast.parse(source)
    ctx = FileContext(Path(path), path, source, tree)
    _walk_file(ctx, file_rules, findings)
    live, waived = _apply_suppressions(findings, suppressions)
    live.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintResult(
        findings=live,
        suppressed=waived,
        files_checked=1,
        rules_run=tuple(sorted(r.name for r in selected)),
    )
