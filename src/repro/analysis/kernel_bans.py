"""Kernel bans: dense Floyd-Warshall is the graph kernel's monopoly.

One graph kernel (``src/repro/graph/``) serves every distance query in
the repo (ROADMAP PR 4); its density heuristics, delta rules, and
version tag are only trustworthy if no other code path reaches scipy's
dense Floyd-Warshall behind its back.  Historically a substring grep in
``tests/test_graph_kernel.py`` enforced this; this rule is the AST
reimplementation — it flags *code* (imports, references, ``method="FW"``
call arguments, and string constants that smuggle the name through
``getattr``) and ignores prose in comments and docstrings.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .rules import FileContext, Finding, Rule, RuleScope, register_rule

_BANNED_NAME = "floyd_warshall"  # repro: allow[dense-fw-ban] -- the ban rule must name its target


@register_rule
class DenseFwBanRule(Rule):
    name = "dense-fw-ban"
    description = (
        "dense Floyd-Warshall reference outside src/repro/graph/ "
        "(route distance queries through the graph kernel)"
    )
    scope = RuleScope(include=("*",), exclude=("src/repro/graph/*",))
    node_types = (
        ast.Name,
        ast.Attribute,
        ast.ImportFrom,
        ast.Call,
        ast.Constant,
    )

    def _finding(self, node: ast.AST, ctx: FileContext, what: str) -> Finding:
        return Finding(
            rule=self.name,
            path=ctx.rel,
            line=node.lineno,
            col=node.col_offset,
            message=(
                f"{what}: dense Floyd-Warshall is banned outside "
                "src/repro/graph/ — use GraphKernel/GraphView (the "
                "kernel picks dense FW itself when the graph warrants "
                "it, under KERNEL_VERSION)"
            ),
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Name):
            # Resolve through import aliases so `from ... import
            # floyd_warshall as fw; fw(m)` is caught at the call site
            # too — stronger than the substring grep this replaces.
            resolved = ctx.aliases.get(node.id, node.id)
            if resolved == _BANNED_NAME or resolved.endswith(
                "." + _BANNED_NAME
            ):
                yield self._finding(node, ctx, f"reference to {_BANNED_NAME}")
        elif isinstance(node, ast.Attribute):
            if node.attr == _BANNED_NAME:
                yield self._finding(
                    node, ctx, f"attribute access .{_BANNED_NAME}"
                )
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == _BANNED_NAME:
                    yield self._finding(
                        node, ctx, f"import of {_BANNED_NAME}"
                    )
        elif isinstance(node, ast.Call):
            for kw in node.keywords:
                if (
                    kw.arg == "method"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value == "FW"
                ):
                    yield self._finding(node, ctx, 'method="FW" call')
        elif isinstance(node, ast.Constant):
            # Closes the getattr(csgraph, "floyd_warshall") hole the
            # old grep caught by accident; docstrings/comments are not
            # Constant nodes mentioning exactly this string.
            if node.value == _BANNED_NAME:
                yield self._finding(
                    node, ctx, f'string constant "{_BANNED_NAME}"'
                )
