"""Cache-version drift: the stage_versions.lock contract.

The artifact store is content-addressed by *spec slices plus
hand-bumped version tags* (stage ``version``, ``solver_version``,
``KERNEL_VERSION``) — the code itself never enters a cache key.  That
makes a missed bump silent and poisonous: change a stage's payload
semantics without bumping its tag and every warm store keeps serving
stale artifacts.

``stage_versions.lock`` (committed at the repo root) pins, for every
versioned component, the pair ``(version tag, fingerprint)`` where the
fingerprint hashes the normalized AST of the component's code closure
(see :mod:`repro.analysis.callgraph`).  The ``stage-version-drift``
rule recomputes the fingerprints and fails when one moved while its
version tag did not — the reviewer-time analogue of the runtime cache
key.  ``repro lint --update-lock`` regenerates the file after a
legitimate bump.

The fingerprint is deliberately conservative: any structural change in
the closure demands either a version bump or (for pure refactors) a
bump anyway — retiring a cache entry costs a recompute; serving a
stale one costs correctness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .callgraph import DefRef, ProjectIndex
from .rules import Finding, ProjectContext, ProjectRule, register_rule

LOCK_FORMAT = 1
LOCK_NAME = "stage_versions.lock"
UPDATE_COMMAND = "python -m repro lint --update-lock"


@dataclass(frozen=True)
class LockEntry:
    """One versioned component's pinned state."""

    version: str
    fingerprint: str


def default_lock_path() -> Path:
    """``stage_versions.lock`` at the repo root of the src layout."""
    import repro

    return Path(repro.__file__).resolve().parents[2] / LOCK_NAME


def default_package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def read_lock(path: Path) -> dict[str, LockEntry] | None:
    """The committed entries, or None when the lock does not exist."""
    try:
        doc = json.loads(Path(path).read_text())
    except FileNotFoundError:
        return None
    if doc.get("format") != LOCK_FORMAT:
        raise ValueError(
            f"{path}: unsupported lock format {doc.get('format')!r} "
            f"(expected {LOCK_FORMAT}); regenerate with: {UPDATE_COMMAND}"
        )
    return {
        name: LockEntry(entry["version"], entry["fingerprint"])
        for name, entry in doc["entries"].items()
    }


def write_lock(path: Path, entries: dict[str, LockEntry]) -> None:
    doc = {
        "format": LOCK_FORMAT,
        "comment": (
            "Pinned (version tag, code fingerprint) per cached component. "
            f"Regenerate with: {UPDATE_COMMAND}"
        ),
        "entries": {
            name: {
                "version": entries[name].version,
                "fingerprint": entries[name].fingerprint,
            }
            for name in sorted(entries)
        },
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _locate(fn) -> DefRef:
    """(module, qualname) of a callable defined in the repro package."""
    modname = fn.__module__
    qualname = fn.__qualname__
    if not modname.startswith("repro"):
        raise ValueError(f"{modname}.{qualname} is not repo-local")
    if "<locals>" in qualname:
        raise ValueError(
            f"{modname}.{qualname}: lockfile targets must be module-level "
            "defs (lambdas/closures have no stable AST address)"
        )
    return (modname, qualname)


def compute_entries(
    index: ProjectIndex | None = None,
) -> dict[str, LockEntry]:
    """Current (version, fingerprint) for every versioned component.

    Targets come from :func:`repro.exp.stages.stage_code_targets`;
    entries that claim whole packages (the graph kernel) become opaque
    boundaries in every *other* entry's closure, so each hash moves
    only with the code its own version tag governs.
    """
    from ..exp.stages import stage_code_targets

    if index is None:
        index = ProjectIndex(default_package_root())
    targets = stage_code_targets()
    boundaries_all: dict[str, str] = {}
    for name in sorted(targets):
        for prefix in targets[name].get("packages", ()):
            boundaries_all[prefix] = name
    entries: dict[str, LockEntry] = {}
    for name in sorted(targets):
        spec = targets[name]
        own_packages = tuple(spec.get("packages", ()))
        roots: list[DefRef] = [_locate(fn) for fn in spec.get("functions", ())]
        for prefix in own_packages:
            roots.extend(index.package_defs(prefix))
        boundaries = {
            prefix: entry
            for prefix, entry in boundaries_all.items()
            if prefix not in own_packages
        }
        entries[name] = LockEntry(
            version=str(spec["version"]),
            fingerprint=index.fingerprint(roots, boundaries),
        )
    return entries


def compare_lock(
    current: dict[str, LockEntry],
    locked: dict[str, LockEntry] | None,
    lock_path: str,
) -> list[Finding]:
    """Drift findings between the computed and the committed entries."""

    def finding(message: str) -> Finding:
        return Finding(
            rule=StageVersionDriftRule.name,
            path=lock_path,
            line=1,
            col=0,
            message=message,
        )

    if locked is None:
        return [
            finding(
                f"{LOCK_NAME} is missing; generate it with: "
                f"{UPDATE_COMMAND}"
            )
        ]
    findings: list[Finding] = []
    for name in sorted(current):
        cur = current[name]
        old = locked.get(name)
        if old is None:
            findings.append(
                finding(
                    f"{name}: new versioned component not in {LOCK_NAME}; "
                    f"run: {UPDATE_COMMAND}"
                )
            )
        elif cur.fingerprint != old.fingerprint and cur.version == old.version:
            findings.append(
                finding(
                    f"{name}: code changed but the version tag is still "
                    f"{cur.version!r} — a warm artifact store would keep "
                    f"serving stale results. Bump the component's version "
                    f"tag, then run: {UPDATE_COMMAND}"
                )
            )
        elif cur != old:
            findings.append(
                finding(
                    f"{name}: {LOCK_NAME} is stale (recorded version "
                    f"{old.version!r}, current {cur.version!r}); "
                    f"run: {UPDATE_COMMAND}"
                )
            )
    for name in sorted(set(locked) - set(current)):
        findings.append(
            finding(
                f"{name}: {LOCK_NAME} pins a component that no longer "
                f"exists; run: {UPDATE_COMMAND}"
            )
        )
    return findings


def update_lock(
    lock_path: Path | None = None, index: ProjectIndex | None = None
) -> tuple[Path, dict[str, LockEntry]]:
    """Recompute every fingerprint and rewrite the lockfile."""
    path = Path(lock_path) if lock_path is not None else default_lock_path()
    entries = compute_entries(index)
    write_lock(path, entries)
    return path, entries


@register_rule
class StageVersionDriftRule(ProjectRule):
    name = "stage-version-drift"
    description = (
        "stage/solver/kernel code changed without a version-tag bump "
        "(stale cached artifacts would survive)"
    )

    def check(self, ctx: ProjectContext) -> list[Finding]:
        current = compute_entries(ctx.index)
        locked = read_lock(ctx.lock_path)
        try:
            rel = str(ctx.lock_path.relative_to(ctx.repo_root))
        except ValueError:
            rel = str(ctx.lock_path)
        return compare_lock(current, locked, rel)
