"""Static contract checks for the reproduction's invariants.

Nine PRs of infrastructure rest on contracts that are prose in
ROADMAP.md: every experiment is seed-pinned, cached stages carry
hand-bumped version tags, and dense Floyd-Warshall belongs to the
graph kernel alone.  This package turns them into an enforced lint
layer (CLI: ``repro lint``):

* a plugin rule registry (:func:`register_rule`, mirroring the solver
  registry in :mod:`repro.core.design`) over a single-walk AST engine
  (:func:`run_lint`) with per-path scopes and inline
  ``# repro: allow[rule-id] -- reason`` suppressions;
* determinism rules — ``unseeded-rng``, ``wall-clock-in-cached-code``,
  ``nondeterministic-iteration`` (:mod:`repro.analysis.determinism`);
* the kernel ban — ``dense-fw-ban``
  (:mod:`repro.analysis.kernel_bans`);
* cache-version drift — ``stage-version-drift`` against the committed
  ``stage_versions.lock`` (:mod:`repro.analysis.versions`, hashing via
  :mod:`repro.analysis.callgraph`).
"""

from .callgraph import ProjectIndex, normalized_dump
from .engine import (
    LintConfig,
    LintResult,
    lint_source,
    parse_suppressions,
    run_lint,
)
from .report import render_json, render_text
from .rules import (
    FileContext,
    Finding,
    ProjectContext,
    ProjectRule,
    Rule,
    RuleScope,
    all_rules,
    get_rule,
    register_rule,
    rule_names,
)

# Importing the rule modules populates the registry.
from . import determinism  # noqa: F401  (registers rules)
from . import kernel_bans  # noqa: F401  (registers rules)
from . import versions  # noqa: F401  (registers rules)
from .versions import (
    LOCK_NAME,
    UPDATE_COMMAND,
    LockEntry,
    compare_lock,
    compute_entries,
    default_lock_path,
    read_lock,
    update_lock,
    write_lock,
)

__all__ = [
    "FileContext",
    "Finding",
    "LintConfig",
    "LintResult",
    "LOCK_NAME",
    "LockEntry",
    "ProjectContext",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "RuleScope",
    "UPDATE_COMMAND",
    "all_rules",
    "compare_lock",
    "compute_entries",
    "default_lock_path",
    "get_rule",
    "lint_source",
    "normalized_dump",
    "parse_suppressions",
    "read_lock",
    "register_rule",
    "render_json",
    "render_text",
    "rule_names",
    "run_lint",
    "update_lock",
    "write_lock",
]
